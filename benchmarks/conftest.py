"""Shared fixtures for the benchmark suite.

Benchmarks use scaled-down dataset sizes so the whole suite completes in a
few minutes; the full Table-1/Fig-6 protocols are available through the
``repro-bench`` CLI (see EXPERIMENTS.md for full-scale results).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import load_dataset


@pytest.fixture(scope="session")
def jpvow_small():
    """JPVOW at reduced size: the fastest realistic benchmark dataset."""
    return load_dataset("JPVOW", seed=0, n_train=90, n_test=90)


@pytest.fixture(scope="session")
def lib_small():
    """LIB at reduced size (short series, 15 classes)."""
    return load_dataset("LIB", seed=0, n_train=75, n_test=75)


@pytest.fixture(scope="session")
def char_small():
    """CHAR at reduced size for the Fig. 6 landscape bench."""
    return load_dataset("CHAR", seed=0, n_train=80, n_test=80)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
