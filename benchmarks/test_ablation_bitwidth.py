"""Benchmark: fixed-point bit-width ablation (embedded-hardware context).

Times the quantized datapath and checks the precision/accuracy trend: a
generously wide datapath must match float accuracy, a starved one must
lose accuracy relative to it.
"""

import numpy as np

from repro.core.pipeline import DFRClassifier
from repro.core.trainer import TrainerConfig
from repro.hardware.fixed_point import QFormat, QuantizedModularDFR
from repro.readout.ridge import select_beta
from repro.representation.dprr import DPRR

N_NODES = 12
EPOCHS = 8


def test_bitwidth_sweep(benchmark, jpvow_small):
    data = jpvow_small
    clf = DFRClassifier(n_nodes=N_NODES, seed=0,
                        config=TrainerConfig(epochs=EPOCHS))
    clf.fit(data.u_train, data.y_train)
    float_acc = clf.score(data.u_test, data.y_test)
    std = clf.extractor.standardizer
    dprr = clf.extractor.dprr

    def accuracy_at(frac_bits):
        qdfr = QuantizedModularDFR(clf.extractor.reservoir.mask,
                                   QFormat(3, frac_bits))
        f_train = dprr.features(qdfr.run(std.transform(data.u_train),
                                         clf.A_, clf.B_))
        f_test = dprr.features(qdfr.run(std.transform(data.u_test),
                                        clf.A_, clf.B_))
        sel = select_beta(f_train, data.y_train, n_classes=data.n_classes,
                          seed=0)
        return sel.best_model.accuracy(f_test, data.y_test)

    def sweep():
        return {fb: accuracy_at(fb) for fb in (1, 6, 14)}

    accs = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    assert accs[14] >= float_acc - 0.1   # wide datapath ~ float
    assert accs[1] <= accs[14] + 1e-9    # starved datapath cannot beat it
