"""Micro-benchmarks of the computational kernels.

These locate where the time goes in the Table-1 cost model: the reservoir
forward sweep, the DPRR contraction, the (truncated vs full) backward pass,
and the ridge solve that dominates each grid point.
"""

import os
import time

import numpy as np
import pytest

from repro.backend import available_backends, resolve_backend
from repro.backend.scan import (
    FILTER_IMPL_ENV_VAR,
    first_order_scan_stacked,
    scan_crossover,
)
from repro.core.backprop import BackpropEngine
from repro.readout.ridge import PAPER_BETAS, fit_ridge_sweep
from repro.readout.softmax import SoftmaxReadout, one_hot
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR

N_NODES = 30
T_LEN = 150
N_BATCH = 100


@pytest.fixture(scope="module")
def batch(rng):
    return rng.normal(size=(N_BATCH, T_LEN, 4))


@pytest.fixture(scope="module")
def dfr():
    return ModularDFR(InputMask.binary(N_NODES, 4, seed=0))


@pytest.fixture(scope="module")
def trace(dfr, batch):
    return dfr.run(batch, 0.2, 0.3)


def test_forward_identity_fast_path(benchmark, dfr, batch):
    trace = benchmark(dfr.run, batch, 0.2, 0.3)
    assert trace.states.shape == (N_BATCH, T_LEN + 1, N_NODES)


def test_forward_nonlinear_path(benchmark, batch):
    dfr_mg = ModularDFR(InputMask.binary(N_NODES, 4, seed=0),
                        nonlinearity="mackey-glass")
    trace = benchmark(dfr_mg.run, batch, 0.2, 0.3)
    assert not trace.diverged.any()


def test_dprr_contraction(benchmark, trace):
    feats = benchmark(DPRR().features, trace)
    assert feats.shape == (N_BATCH, N_NODES * (N_NODES + 1))


def test_truncated_backward(benchmark, dfr, trace, rng):
    dprr = DPRR()
    feats = dprr.features(trace)
    readout = SoftmaxReadout(feats.shape[1], 3)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(rng.integers(0, 3, size=N_BATCH), 3)
    engine = BackpropEngine(window=1, dprr=dprr)
    win = trace.final_window(1)

    def backward_all():
        total = 0.0
        for i in range(N_BATCH):
            g = engine.sample_gradients(
                win.window_states[i], win.window_pre_activations[i],
                feats[i], readout, targets[i], 0.2, 0.3, n_steps=T_LEN,
            )
            total += g.d_A
        return total

    benchmark.pedantic(backward_all, rounds=1, iterations=1, warmup_rounds=0)


def test_full_bptt_backward(benchmark, dfr, trace, rng):
    dprr = DPRR()
    feats = dprr.features(trace)
    readout = SoftmaxReadout(feats.shape[1], 3)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(rng.integers(0, 3, size=N_BATCH), 3)
    engine = BackpropEngine(window=None, dprr=dprr)
    win = trace.final_window(T_LEN)

    def backward_some():
        total = 0.0
        for i in range(10):  # full BPTT is ~T times dearer; keep 10 samples
            g = engine.sample_gradients(
                win.window_states[i], win.window_pre_activations[i],
                feats[i], readout, targets[i], 0.2, 0.3, n_steps=T_LEN,
            )
            total += g.d_A
        return total

    benchmark.pedantic(backward_some, rounds=1, iterations=1, warmup_rounds=0)


def test_backward_batched_vs_per_sample(benchmark, jpvow_small, rng):
    """Throughput of ``batch_gradients`` vs a per-sample loop at batch 32.

    The recorded metric is the batched backward pass; ``extra_info`` carries
    the per-sample baseline and the speedup factor so the pytest-benchmark
    JSON report (``--benchmark-json``) tracks the ratio across PRs.
    """
    data = jpvow_small
    batch = 32
    u = data.u_train[:batch]
    dfr = ModularDFR(InputMask.binary(N_NODES, u.shape[2], seed=0))
    trace32 = dfr.run(u, 0.2, 0.3)
    t_len = trace32.n_steps
    dprr = DPRR()
    feats = dprr.features(trace32)
    readout = SoftmaxReadout(feats.shape[1], data.n_classes)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(data.y_train[:batch], data.n_classes)
    engine = BackpropEngine(window=1, dprr=dprr)
    win = trace32.final_window(1, copy=False)

    def per_sample():
        for i in range(batch):
            engine.sample_gradients(
                win.window_states[i], win.window_pre_activations[i],
                feats[i], readout, targets[i], 0.2, 0.3, n_steps=t_len,
            )

    def batched():
        return engine.batch_gradients(
            win.window_states, win.window_pre_activations,
            feats, readout, targets, 0.2, 0.3, n_steps=t_len,
        )

    def best_of(fn, rounds=5):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    per_sample_s = best_of(per_sample)
    batched_s = best_of(batched)
    speedup = per_sample_s / batched_s
    benchmark.extra_info["per_sample_seconds"] = per_sample_s
    benchmark.extra_info["batched_seconds"] = batched_s
    benchmark.extra_info["batch_size"] = batch
    benchmark.extra_info["speedup_batched_vs_per_sample"] = speedup
    grads = benchmark.pedantic(batched, rounds=3, iterations=1, warmup_rounds=1)
    assert grads.n_samples == batch
    # the acceptance bar for the batched engine is >= 3x backward throughput
    # (typically ~10x); REPRO_SPEEDUP_FLOOR relaxes the gate on noisy shared
    # runners where wall-clock ratios are unreliable
    floor = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "3.0"))
    assert speedup >= floor, f"batched backward only {speedup:.1f}x faster"


def test_backward_batched_per_backend(benchmark, jpvow_small, rng):
    """Per-backend timing of the batched backward pass at batch 32.

    Runs ``batch_gradients`` once per array backend installed on this host
    (NumPy is always present; torch/cupy join when their libraries import)
    and records ``batched_seconds_<name>`` plus the speedup over NumPy in
    the pytest-benchmark ``extra_info``, so the JSON report tracks how each
    backend's hot path evolves across PRs.  No gate: relative backend
    speed is hardware-dependent (a CPU-only torch build is expected to be
    slower than NumPy+SciPy on small reservoirs).
    """
    data = jpvow_small
    batch = 32
    u = data.u_train[:batch]
    dfr = ModularDFR(InputMask.binary(N_NODES, u.shape[2], seed=0))
    trace32 = dfr.run(u, 0.2, 0.3)
    t_len = trace32.n_steps
    dprr = DPRR()
    feats = dprr.features(trace32)
    readout = SoftmaxReadout(feats.shape[1], data.n_classes)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(data.y_train[:batch], data.n_classes)
    win = trace32.final_window(1)

    def best_of(fn, rounds=5):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    backends = available_backends()
    timings = {}
    grads = {}
    for name in backends:
        engine = BackpropEngine(window=1, dprr=dprr, backend=name)
        xb = resolve_backend(name)
        # pre-stage the window on the device so the timing covers compute,
        # not the one-off host-to-device transfer
        ws = xb.asarray(win.window_states)
        wp = xb.asarray(win.window_pre_activations)
        fx = xb.asarray(feats)

        def backward(engine=engine, ws=ws, wp=wp, fx=fx):
            out = engine.batch_gradients(ws, wp, fx, readout, targets,
                                         0.2, 0.3, n_steps=t_len)
            xb.synchronize()
            return out

        grads[name] = backward()  # warm-up (JIT/caches) + parity sample
        timings[name] = best_of(backward)
        benchmark.extra_info[f"batched_seconds_{name}"] = timings[name]
    for name in backends[1:]:
        benchmark.extra_info[f"speedup_{name}_vs_numpy"] = (
            timings["numpy"] / timings[name]
        )
        np.testing.assert_allclose(grads[name].d_A, grads["numpy"].d_A,
                                   rtol=1e-8, atol=1e-11)
    benchmark.extra_info["backends"] = ",".join(backends)
    benchmark.extra_info["batch_size"] = batch

    engine = BackpropEngine(window=1, dprr=dprr, backend="numpy")
    result = benchmark.pedantic(
        lambda: engine.batch_gradients(
            win.window_states, win.window_pre_activations, feats, readout,
            targets, 0.2, 0.3, n_steps=t_len,
        ),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.n_samples == batch


def test_long_t_filter_kernels(benchmark, monkeypatch):
    """lfilter vs Toeplitz vs scan on a long chain (T=8192, K=16 stacked).

    The paper's ``N_x = 30`` chains are where the cached Toeplitz matmul
    wins; this benchmark measures the other end — series-length chains,
    where the ``(T, T)`` matrix of powers is a 512 MB float64 object at
    ``T = 8192`` and the log-depth scan takes over.  Per available
    backend it records the lfilter / Toeplitz / scan timings and, for the
    device backends, probes the Toeplitz-vs-scan crossover length into
    ``extra_info`` (compare against ``REPRO_SCAN_CROSSOVER``).

    All K candidates share one coefficient value, so the sequential
    Toeplitz baseline reuses a single cached ``(T, T)`` matrix — the
    per-candidate *stack* would be K x 512 MB, which is itself the reason
    the scan exists; the shared-coef form is the cheapest possible
    Toeplitz and still loses.
    """
    t_long = 8192
    k_cand = 16
    n_rows = 4
    gen = np.random.default_rng(42)
    x = gen.normal(size=(k_cand, n_rows, t_long))
    coefs = np.full(k_cand, 0.37)
    zi = gen.normal(size=(k_cand, n_rows, 1))

    def best_of(fn, rounds=3):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    numpy_xb = resolve_backend("numpy")
    ref = numpy_xb.first_order_filter_stacked(x, coefs, zi)
    benchmark.extra_info["t_long"] = t_long
    benchmark.extra_info["k_candidates"] = k_cand
    benchmark.extra_info["dtype"] = numpy_xb.dtype_name
    benchmark.extra_info["scan_crossover"] = scan_crossover()
    benchmark.extra_info["lfilter_seconds_numpy"] = best_of(
        lambda: numpy_xb.first_order_filter_stacked(x, coefs, zi))

    # the backend-generic scan run on plain NumPy arrays: same arithmetic
    # the device backends execute, checked against the exact lfilter
    scan_np = first_order_scan_stacked(numpy_xb, x, coefs, zi)
    np.testing.assert_allclose(scan_np, ref, rtol=1e-12, atol=1e-12)
    benchmark.extra_info["scan_seconds_numpy"] = best_of(
        lambda: first_order_scan_stacked(numpy_xb, x, coefs, zi))

    floor = float(os.environ.get("REPRO_SCAN_SPEEDUP_FLOOR", "3.0"))
    for name in available_backends():
        if name == "numpy":
            continue
        xb = resolve_backend(name)
        x_dev = xb.asarray(x)
        zi_dev = xb.asarray(zi)
        # flatten the shared-coef stack to (K * rows, T): the fairest
        # sequential-Toeplitz form, one cached matrix and one big matmul
        x_flat = x_dev.reshape(k_cand * n_rows, t_long)
        zi_flat = zi_dev.reshape(k_cand * n_rows, 1)
        coef = float(coefs[0])

        monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "toeplitz")

        def toeplitz():
            out = xb.first_order_filter(x_flat, coef, zi_flat)
            xb.synchronize()
            return out
        y_toep = toeplitz()  # warm-up: builds + caches the (T, T) matrix
        t_toep = best_of(toeplitz)

        monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "scan")

        def scan():
            out = xb.first_order_filter_stacked(x_dev, coefs, zi_dev)
            xb.synchronize()
            return out
        y_scan = scan()
        t_scan = best_of(scan)
        monkeypatch.delenv(FILTER_IMPL_ENV_VAR)

        np.testing.assert_allclose(xb.to_numpy(y_scan), ref,
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            xb.to_numpy(y_toep).reshape(k_cand, n_rows, t_long), ref,
            rtol=1e-9, atol=1e-9)
        speedup = t_toep / t_scan
        benchmark.extra_info[f"toeplitz_seconds_{name}"] = t_toep
        benchmark.extra_info[f"scan_seconds_{name}"] = t_scan
        benchmark.extra_info[f"speedup_scan_vs_toeplitz_{name}"] = speedup

        # probe the true crossover: shortest T where the scan matches the
        # Toeplitz matmul (the REPRO_SCAN_CROSSOVER default of 256 should
        # sit at or above this on most machines)
        crossover = None
        for t_probe in (128, 256, 512, 1024, 2048):
            xp = xb.asarray(gen.normal(size=(64, t_probe)))
            zp = xb.asarray(gen.normal(size=(64, 1)))
            monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "toeplitz")
            xb.first_order_filter(xp, coef, zp)  # warm the matrix cache
            tt = best_of(lambda: xb.first_order_filter(xp, coef, zp))
            monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "scan")
            ts = best_of(lambda: xb.first_order_filter(xp, coef, zp))
            monkeypatch.delenv(FILTER_IMPL_ENV_VAR)
            if ts <= tt:
                crossover = t_probe
                break
        benchmark.extra_info[f"crossover_{name}"] = crossover or -1

        # acceptance bar: at series-length chains the scan must be >= 3x
        # the Toeplitz matmul (relaxable on noisy shared runners)
        assert speedup >= floor, (
            f"{name} scan only {speedup:.1f}x faster than Toeplitz at "
            f"T={t_long} (floor {floor})"
        )

    result = benchmark.pedantic(
        lambda: first_order_scan_stacked(numpy_xb, x, coefs, zi),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.shape == (k_cand, n_rows, t_long)


def test_ridge_sweep_cost(benchmark, trace, rng):
    """The per-grid-point ridge cost (4 betas over 930 features)."""
    feats = DPRR().features(trace)
    labels = rng.integers(0, 3, size=N_BATCH)
    models = benchmark(fit_ridge_sweep, feats, labels, PAPER_BETAS)
    assert len(models) == 4
