"""Micro-benchmarks of the computational kernels.

These locate where the time goes in the Table-1 cost model: the reservoir
forward sweep, the DPRR contraction, the (truncated vs full) backward pass,
and the ridge solve that dominates each grid point.
"""

import os
import time

import numpy as np
import pytest

from repro.backend import available_backends, resolve_backend
from repro.core.backprop import BackpropEngine
from repro.readout.ridge import PAPER_BETAS, fit_ridge_sweep
from repro.readout.softmax import SoftmaxReadout, one_hot
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR

N_NODES = 30
T_LEN = 150
N_BATCH = 100


@pytest.fixture(scope="module")
def batch(rng):
    return rng.normal(size=(N_BATCH, T_LEN, 4))


@pytest.fixture(scope="module")
def dfr():
    return ModularDFR(InputMask.binary(N_NODES, 4, seed=0))


@pytest.fixture(scope="module")
def trace(dfr, batch):
    return dfr.run(batch, 0.2, 0.3)


def test_forward_identity_fast_path(benchmark, dfr, batch):
    trace = benchmark(dfr.run, batch, 0.2, 0.3)
    assert trace.states.shape == (N_BATCH, T_LEN + 1, N_NODES)


def test_forward_nonlinear_path(benchmark, batch):
    dfr_mg = ModularDFR(InputMask.binary(N_NODES, 4, seed=0),
                        nonlinearity="mackey-glass")
    trace = benchmark(dfr_mg.run, batch, 0.2, 0.3)
    assert not trace.diverged.any()


def test_dprr_contraction(benchmark, trace):
    feats = benchmark(DPRR().features, trace)
    assert feats.shape == (N_BATCH, N_NODES * (N_NODES + 1))


def test_truncated_backward(benchmark, dfr, trace, rng):
    dprr = DPRR()
    feats = dprr.features(trace)
    readout = SoftmaxReadout(feats.shape[1], 3)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(rng.integers(0, 3, size=N_BATCH), 3)
    engine = BackpropEngine(window=1, dprr=dprr)
    win = trace.final_window(1)

    def backward_all():
        total = 0.0
        for i in range(N_BATCH):
            g = engine.sample_gradients(
                win.window_states[i], win.window_pre_activations[i],
                feats[i], readout, targets[i], 0.2, 0.3, n_steps=T_LEN,
            )
            total += g.d_A
        return total

    benchmark.pedantic(backward_all, rounds=1, iterations=1, warmup_rounds=0)


def test_full_bptt_backward(benchmark, dfr, trace, rng):
    dprr = DPRR()
    feats = dprr.features(trace)
    readout = SoftmaxReadout(feats.shape[1], 3)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(rng.integers(0, 3, size=N_BATCH), 3)
    engine = BackpropEngine(window=None, dprr=dprr)
    win = trace.final_window(T_LEN)

    def backward_some():
        total = 0.0
        for i in range(10):  # full BPTT is ~T times dearer; keep 10 samples
            g = engine.sample_gradients(
                win.window_states[i], win.window_pre_activations[i],
                feats[i], readout, targets[i], 0.2, 0.3, n_steps=T_LEN,
            )
            total += g.d_A
        return total

    benchmark.pedantic(backward_some, rounds=1, iterations=1, warmup_rounds=0)


def test_backward_batched_vs_per_sample(benchmark, jpvow_small, rng):
    """Throughput of ``batch_gradients`` vs a per-sample loop at batch 32.

    The recorded metric is the batched backward pass; ``extra_info`` carries
    the per-sample baseline and the speedup factor so the pytest-benchmark
    JSON report (``--benchmark-json``) tracks the ratio across PRs.
    """
    data = jpvow_small
    batch = 32
    u = data.u_train[:batch]
    dfr = ModularDFR(InputMask.binary(N_NODES, u.shape[2], seed=0))
    trace32 = dfr.run(u, 0.2, 0.3)
    t_len = trace32.n_steps
    dprr = DPRR()
    feats = dprr.features(trace32)
    readout = SoftmaxReadout(feats.shape[1], data.n_classes)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(data.y_train[:batch], data.n_classes)
    engine = BackpropEngine(window=1, dprr=dprr)
    win = trace32.final_window(1, copy=False)

    def per_sample():
        for i in range(batch):
            engine.sample_gradients(
                win.window_states[i], win.window_pre_activations[i],
                feats[i], readout, targets[i], 0.2, 0.3, n_steps=t_len,
            )

    def batched():
        return engine.batch_gradients(
            win.window_states, win.window_pre_activations,
            feats, readout, targets, 0.2, 0.3, n_steps=t_len,
        )

    def best_of(fn, rounds=5):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    per_sample_s = best_of(per_sample)
    batched_s = best_of(batched)
    speedup = per_sample_s / batched_s
    benchmark.extra_info["per_sample_seconds"] = per_sample_s
    benchmark.extra_info["batched_seconds"] = batched_s
    benchmark.extra_info["batch_size"] = batch
    benchmark.extra_info["speedup_batched_vs_per_sample"] = speedup
    grads = benchmark.pedantic(batched, rounds=3, iterations=1, warmup_rounds=1)
    assert grads.n_samples == batch
    # the acceptance bar for the batched engine is >= 3x backward throughput
    # (typically ~10x); REPRO_SPEEDUP_FLOOR relaxes the gate on noisy shared
    # runners where wall-clock ratios are unreliable
    floor = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "3.0"))
    assert speedup >= floor, f"batched backward only {speedup:.1f}x faster"


def test_backward_batched_per_backend(benchmark, jpvow_small, rng):
    """Per-backend timing of the batched backward pass at batch 32.

    Runs ``batch_gradients`` once per array backend installed on this host
    (NumPy is always present; torch/cupy join when their libraries import)
    and records ``batched_seconds_<name>`` plus the speedup over NumPy in
    the pytest-benchmark ``extra_info``, so the JSON report tracks how each
    backend's hot path evolves across PRs.  No gate: relative backend
    speed is hardware-dependent (a CPU-only torch build is expected to be
    slower than NumPy+SciPy on small reservoirs).
    """
    data = jpvow_small
    batch = 32
    u = data.u_train[:batch]
    dfr = ModularDFR(InputMask.binary(N_NODES, u.shape[2], seed=0))
    trace32 = dfr.run(u, 0.2, 0.3)
    t_len = trace32.n_steps
    dprr = DPRR()
    feats = dprr.features(trace32)
    readout = SoftmaxReadout(feats.shape[1], data.n_classes)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    targets = one_hot(data.y_train[:batch], data.n_classes)
    win = trace32.final_window(1)

    def best_of(fn, rounds=5):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    backends = available_backends()
    timings = {}
    grads = {}
    for name in backends:
        engine = BackpropEngine(window=1, dprr=dprr, backend=name)
        xb = resolve_backend(name)
        # pre-stage the window on the device so the timing covers compute,
        # not the one-off host-to-device transfer
        ws = xb.asarray(win.window_states)
        wp = xb.asarray(win.window_pre_activations)
        fx = xb.asarray(feats)

        def backward(engine=engine, ws=ws, wp=wp, fx=fx):
            out = engine.batch_gradients(ws, wp, fx, readout, targets,
                                         0.2, 0.3, n_steps=t_len)
            xb.synchronize()
            return out

        grads[name] = backward()  # warm-up (JIT/caches) + parity sample
        timings[name] = best_of(backward)
        benchmark.extra_info[f"batched_seconds_{name}"] = timings[name]
    for name in backends[1:]:
        benchmark.extra_info[f"speedup_{name}_vs_numpy"] = (
            timings["numpy"] / timings[name]
        )
        np.testing.assert_allclose(grads[name].d_A, grads["numpy"].d_A,
                                   rtol=1e-8, atol=1e-11)
    benchmark.extra_info["backends"] = ",".join(backends)
    benchmark.extra_info["batch_size"] = batch

    engine = BackpropEngine(window=1, dprr=dprr, backend="numpy")
    result = benchmark.pedantic(
        lambda: engine.batch_gradients(
            win.window_states, win.window_pre_activations, feats, readout,
            targets, 0.2, 0.3, n_steps=t_len,
        ),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.n_samples == batch


def test_ridge_sweep_cost(benchmark, trace, rng):
    """The per-grid-point ridge cost (4 betas over 930 features)."""
    feats = DPRR().features(trace)
    labels = rng.integers(0, 3, size=N_BATCH)
    models = benchmark(fit_ridge_sweep, feats, labels, PAPER_BETAS)
    assert len(models) == 4
