"""Benchmark: Fig. 6 — recursive grid-search landscape on CHAR.

Runs the two-level recursive zoom plus the exhaustive reference grid at
reduced scale and checks the landscape artifacts have the figure's shape.
The full-scale run is ``repro-bench fig6``.
"""

import numpy as np

from repro.core.grid_search import GridSearch, RecursiveGridSearch
from repro.core.pipeline import DFRFeatureExtractor

N_NODES = 20
DIVISIONS = 4


def test_fig6_recursive_levels(benchmark, char_small):
    data = char_small
    ext = DFRFeatureExtractor(n_nodes=N_NODES, seed=0).fit(data.u_train)

    def run():
        rgs = RecursiveGridSearch(ext, divisions=DIVISIONS, seed=0)
        return rgs.run(data.u_train, data.y_train, data.u_test, data.y_test,
                       n_levels=2, n_classes=data.n_classes)

    levels = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert len(levels) == 2
    lvl1, lvl2 = levels
    assert lvl1.accuracy_matrix.shape == (DIVISIONS, DIVISIONS)
    # the zoomed box is strictly inside the level-1 box
    assert lvl2.a_box[0] >= lvl1.a_box[0] and lvl2.a_box[1] <= lvl1.a_box[1]
    assert lvl2.b_box[0] >= lvl1.b_box[0] and lvl2.b_box[1] <= lvl1.b_box[1]
    # the landscape is non-trivial: accuracies vary across the level-1 grid
    finite = lvl1.accuracy_matrix[np.isfinite(lvl1.accuracy_matrix)]
    assert finite.max() - finite.min() > 0.05


def test_fig6_reference_grid(benchmark, char_small):
    """The exhaustive grid the zoom is compared against."""
    data = char_small
    ext = DFRFeatureExtractor(n_nodes=N_NODES, seed=0).fit(data.u_train)
    gs = GridSearch(ext, seed=1)

    def run():
        return gs.run_level(data.u_train, data.y_train,
                            data.u_test, data.y_test, 5,
                            n_classes=data.n_classes)

    level = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert level.n_points == 25
