"""Benchmark: Table 2 — storage accounting (exact paper reproduction).

The storage model is closed-form, so this bench both times the table
generation and *asserts bit-exact agreement* with the paper's 12 rows.
"""

from repro.bench.table2 import format_table2, run_table2
from repro.data.metadata import PAPER_TABLE2


def test_table2_exact_reproduction(benchmark):
    rows = benchmark(run_table2)
    assert len(rows) == 12
    for row in rows:
        assert row.matches_paper, f"{row.dataset} deviates from the paper"
        paper = PAPER_TABLE2[row.dataset]
        assert (row.naive, row.simplified, row.reduction_percent) == paper


def test_table2_formatting(benchmark):
    rows = run_table2()
    text = benchmark(format_table2, rows)
    assert "12/12 rows match the paper exactly" in text


def test_table2_wider_windows_monotone(benchmark):
    """Sanity: widening the window can only increase the simplified count."""

    def sweep():
        return [run_table2(window=w) for w in (1, 2, 8, 64)]

    tables = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    for key_idx in range(12):
        totals = [t[key_idx].simplified for t in tables]
        assert totals == sorted(totals)
