"""Benchmark: serial vs multiprocess grid search through the executor layer.

Times one full ``d=4`` grid level (16 independent ``(A, B)`` candidates)
serially and sharded across 4 worker processes, mirroring PR 1's
batched-backward benchmark: the measured metric is the parallel run, and
``extra_info`` carries both timings plus the speedup ratio so the
pytest-benchmark JSON report (``--benchmark-json``) tracks it across PRs.

The acceptance bar is a >= 2x wall-clock speedup at 4 workers, which
obviously needs hardware parallelism; on fewer than 4 usable cores the
gate degrades gracefully (the ratio is still recorded).
``REPRO_PARALLEL_SPEEDUP_FLOOR`` overrides the gate either way, mirroring
``REPRO_SPEEDUP_FLOOR`` on shared CI runners.
"""

import os

import pytest

from repro.core.grid_search import GridSearch
from repro.core.pipeline import DFRFeatureExtractor

DIVISIONS = 4
WORKERS = 4
N_NODES = 24


def _usable_cores() -> int:
    # affinity-aware where available (cgroup/taskset limits): cpu_count()
    # reports the host's cores even when this process may only use a few
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _default_floor(cores: int) -> str:
    if cores >= 4:
        return "2.0"
    if cores >= 2:
        return "1.0"   # 4 workers on 2 cores: expect a gain, not 2x
    return "0.0"       # single core: parallelism cannot win; record only


def test_grid_search_parallel_speedup(benchmark, jpvow_small):
    data = jpvow_small
    extractor = DFRFeatureExtractor(n_nodes=N_NODES, seed=0).fit(data.u_train)

    def run_level(workers):
        grid = GridSearch(extractor, seed=0, workers=workers)
        return grid.run_level(
            data.u_train, data.y_train, data.u_test, data.y_test,
            DIVISIONS, n_classes=data.n_classes,
        )

    serial = run_level(1)
    parallel = run_level(WORKERS)
    # sharding must never change results — the same candidates, seeds and
    # winner, bit for bit
    assert parallel.evaluations == serial.evaluations
    assert parallel.best == serial.best

    speedup = serial.elapsed_seconds / parallel.elapsed_seconds
    cores = _usable_cores()
    benchmark.extra_info["divisions"] = DIVISIONS
    benchmark.extra_info["grid_points"] = DIVISIONS * DIVISIONS
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cpu_count"] = cores
    benchmark.extra_info["serial_seconds"] = serial.elapsed_seconds
    benchmark.extra_info["parallel_seconds"] = parallel.elapsed_seconds
    benchmark.extra_info["serial_compute_seconds"] = serial.compute_seconds
    benchmark.extra_info["parallel_compute_seconds"] = parallel.compute_seconds
    benchmark.extra_info["speedup_parallel_vs_serial"] = speedup

    level = benchmark.pedantic(
        run_level, args=(WORKERS,), rounds=1, iterations=1, warmup_rounds=0,
    )
    assert level.n_points == DIVISIONS * DIVISIONS

    floor = float(os.environ.get("REPRO_PARALLEL_SPEEDUP_FLOOR",
                                 _default_floor(cores)))
    assert speedup >= floor, (
        f"parallel grid search only {speedup:.2f}x faster at {WORKERS} "
        f"workers on {cores} cores (floor {floor})"
    )
