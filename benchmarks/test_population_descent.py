"""Benchmark: fused population descent vs sequential BP+GD restarts.

Times K=16 restarts of the paper's backprop+GD training once as 16
sequential :class:`~repro.core.trainer.BackpropTrainer` fits and once as a
single fused :class:`~repro.core.population.PopulationTrainer` run (one
candidate-stacked ``(K, N, ...)`` forward/backward per minibatch), asserts
the two are bit-identical member for member, and records both timings plus
the speedup ratio in ``extra_info`` so the pytest-benchmark JSON report
tracks it across PRs.  Every additional backend available on the host
(torch, cupy) gets its own fused timing recorded alongside.

What to expect from the ratio: the fused run shares the per-minibatch mask
drive, the stacked readout/backward contractions, and amortizes the Python
epoch/minibatch loop over the whole population, but on NumPy the
per-candidate flat-chain filters of the forward are inherent, so the CPU
win is real yet moderate (~1.3-2x at K=16 on short series).  The default
floor is therefore a conservative "measurably faster" gate;
``REPRO_POPULATION_SPEEDUP_FLOOR`` overrides it either way, mirroring the
other speedup gates on shared runners.  Accelerator backends are where the
fused stack pays most — one resident program instead of K training loops —
which is what the per-backend ``extra_info`` timings track.
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro.backend import available_backends
from repro.core.population import PopulationTrainer, draw_starting_points
from repro.core.trainer import BackpropTrainer, TrainerConfig
from repro.data.preprocessing import ChannelStandardizer
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR

POPULATION = 16
N_NODES = 24
EPOCHS = 3
BATCH_SIZE = 8
SEED = 0

DEFAULT_FLOOR = "1.05"


def test_population_descent_speedup(benchmark, jpvow_small):
    data = jpvow_small
    std = ChannelStandardizer().fit(data.u_train)
    u = std.transform(data.u_train)
    y = data.y_train
    mask = InputMask.binary(N_NODES, u.shape[2], seed=SEED)
    config = TrainerConfig(epochs=EPOCHS, batch_size=BATCH_SIZE)
    a0, b0 = draw_starting_points(
        np.random.default_rng(SEED), POPULATION,
        (-3.75, -0.25), (-2.75, -0.25),
        init_A=config.init_A, init_B=config.init_B,
    )

    def run_fused(backend=None):
        cfg = config if backend is None else replace(config, backend=backend)
        trainer = PopulationTrainer(ModularDFR(mask), data.n_classes,
                                    config=cfg, seed=SEED)
        return trainer.fit(u, y, a0, b0)

    def run_sequential():
        results = []
        for k in range(POPULATION):
            trainer = BackpropTrainer(
                ModularDFR(mask), data.n_classes,
                config=replace(config, init_A=float(a0[k]),
                               init_B=float(b0[k])),
                seed=SEED,
            )
            results.append(trainer.fit(u, y))
        return results

    def timed_sequential():
        t0 = time.perf_counter()
        results = run_sequential()
        return results, time.perf_counter() - t0

    # warm both paths once (allocator/cache effects), then time best-of-2
    run_fused()
    run_sequential()
    sequential, sequential_seconds = min(
        (timed_sequential() for _ in range(2)), key=lambda pair: pair[1])
    fused = min((run_fused() for _ in range(2)),
                key=lambda r: r.elapsed_seconds)

    # fusing K restarts must never change any member — bit for bit
    for k in range(POPULATION):
        member = fused.members[k].result
        assert member.A == sequential[k].A
        assert member.B == sequential[k].B
        np.testing.assert_array_equal(member.readout.weights,
                                      sequential[k].readout.weights)

    speedup = sequential_seconds / fused.elapsed_seconds
    benchmark.extra_info["population"] = POPULATION
    benchmark.extra_info["epochs"] = EPOCHS
    benchmark.extra_info["batch_size"] = BATCH_SIZE
    benchmark.extra_info["sequential_seconds"] = sequential_seconds
    benchmark.extra_info["fused_seconds_numpy"] = fused.elapsed_seconds
    benchmark.extra_info["speedup_fused_numpy_vs_sequential"] = speedup

    # every other importable backend gets its fused timing recorded (no
    # bitwise pin there — only NumPy is the bit-exact reference)
    for name in available_backends():
        if name == "numpy":
            continue
        run_fused(backend=name)  # warm the device path
        fused_backend = run_fused(backend=name)
        benchmark.extra_info[f"fused_seconds_{name}"] = (
            fused_backend.elapsed_seconds)
        benchmark.extra_info[f"speedup_fused_{name}_vs_sequential_numpy"] = (
            sequential_seconds / fused_backend.elapsed_seconds)

    result = benchmark.pedantic(run_fused, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert result.population == POPULATION

    floor = float(os.environ.get("REPRO_POPULATION_SPEEDUP_FLOOR",
                                 DEFAULT_FLOOR))
    assert speedup >= floor, (
        f"fused K={POPULATION} population descent only {speedup:.3f}x the "
        f"sequential restarts on the NumPy backend (floor {floor})"
    )
