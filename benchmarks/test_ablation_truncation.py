"""Benchmark: truncation-window ablation (paper Sec. 3.4 claim).

Times truncated (window=1) against full-BPTT training at reduced scale and
checks the structural claims: same epoch count, comparable accuracy, and a
strictly smaller storage requirement for the truncated variant.
"""

from repro.core.pipeline import DFRClassifier
from repro.core.trainer import TrainerConfig
from repro.memory.accounting import naive_storage, truncated_storage

N_NODES = 20
EPOCHS = 10


def _fit(data, window):
    clf = DFRClassifier(
        n_nodes=N_NODES, seed=0,
        config=TrainerConfig(epochs=EPOCHS, window=window),
    )
    clf.fit(data.u_train, data.y_train)
    return clf


def test_truncated_window1_training(benchmark, jpvow_small):
    data = jpvow_small
    clf = benchmark.pedantic(lambda: _fit(data, 1), rounds=1, iterations=1,
                             warmup_rounds=0)
    assert clf.score(data.u_test, data.y_test) > 0.5


def test_full_bptt_training(benchmark, jpvow_small):
    data = jpvow_small
    clf = benchmark.pedantic(lambda: _fit(data, None), rounds=1, iterations=1,
                             warmup_rounds=0)
    assert clf.score(data.u_test, data.y_test) > 0.5


def test_storage_claim(benchmark, jpvow_small):
    """Truncation shrinks per-sample training storage (Table 2 machinery)."""
    data = jpvow_small

    def storage_pair():
        naive = naive_storage(data.length, N_NODES, data.n_classes).total
        reduced = truncated_storage(N_NODES, data.n_classes, window=1).total
        return naive, reduced

    naive, reduced = benchmark(storage_pair)
    assert reduced < naive
