"""Benchmark: serial vs candidate-axis-vectorized grid search.

Times one full ``d=4`` grid level (16 independent ``(A, B)`` candidates)
through the :class:`~repro.exec.SerialExecutor` (one dispatch per
candidate) and through the :class:`~repro.exec.VectorizedExecutor` (one
fused ``(K, N, ...)`` sweep per block of 16), asserting bit-identical
results and recording both timings plus the speedup ratio in
``extra_info`` so the pytest-benchmark JSON report tracks it across PRs.
Every additional backend available on the host (torch, cupy) gets its own
fused timing recorded alongside.

What to expect from the ratio: the fusion amortizes the per-candidate
standardize/mask/dispatch work, but the per-candidate ridge/beta fits and
(on NumPy) the per-candidate flat-chain filters are inherent, so the CPU
win is real yet modest (~1.1-1.3x on short-series datasets, approaching
parity on very long series where the filter dominates — tune
``candidate_block_size`` there).  The default floor is therefore a
conservative "measurably faster" gate; ``REPRO_VECTORIZED_SPEEDUP_FLOOR``
overrides it either way, mirroring the other speedup gates on shared
runners.  Accelerator backends are where the fused block pays most — one
resident program instead of K dispatches — which is what the per-backend
``extra_info`` timings track.
"""

import os

from repro.backend import available_backends
from repro.core.grid_search import GridSearch
from repro.core.pipeline import DFRFeatureExtractor
from repro.exec import BackendExecutor, SerialExecutor, VectorizedExecutor

DIVISIONS = 4
BLOCK_SIZE = 16
N_NODES = 24

DEFAULT_FLOOR = "1.02"


def test_vectorized_grid_speedup(benchmark, jpvow_small):
    data = jpvow_small
    extractor = DFRFeatureExtractor(n_nodes=N_NODES, seed=0).fit(data.u_train)

    def run_level(executor):
        grid = GridSearch(extractor, seed=0, executor=executor)
        return grid.run_level(
            data.u_train, data.y_train, data.u_test, data.y_test,
            DIVISIONS, n_classes=data.n_classes,
        )

    # warm both paths once (allocator/cache effects), then time best-of-2
    run_level(SerialExecutor())
    run_level(VectorizedExecutor(block_size=BLOCK_SIZE))
    serial = min((run_level(SerialExecutor()) for _ in range(2)),
                 key=lambda level: level.elapsed_seconds)
    fused = min((run_level(VectorizedExecutor(block_size=BLOCK_SIZE))
                 for _ in range(2)),
                key=lambda level: level.elapsed_seconds)

    # candidate-axis fusion must never change results — bit for bit
    assert fused.evaluations == serial.evaluations
    assert fused.best == serial.best

    speedup = serial.elapsed_seconds / fused.elapsed_seconds
    benchmark.extra_info["divisions"] = DIVISIONS
    benchmark.extra_info["grid_points"] = DIVISIONS * DIVISIONS
    benchmark.extra_info["candidate_block_size"] = BLOCK_SIZE
    benchmark.extra_info["serial_seconds"] = serial.elapsed_seconds
    benchmark.extra_info["fused_seconds_numpy"] = fused.elapsed_seconds
    benchmark.extra_info["speedup_fused_numpy_vs_serial"] = speedup

    # every other importable backend gets its fused-sweep timing recorded
    # (and a serial BackendExecutor timing for the per-backend ratio)
    for name in available_backends():
        if name == "numpy":
            continue
        per_candidate = run_level(BackendExecutor(name))
        fused_backend = run_level(
            VectorizedExecutor(block_size=BLOCK_SIZE, backend=name))
        benchmark.extra_info[f"serial_seconds_{name}"] = (
            per_candidate.elapsed_seconds)
        benchmark.extra_info[f"fused_seconds_{name}"] = (
            fused_backend.elapsed_seconds)
        benchmark.extra_info[f"speedup_fused_{name}_vs_serial_{name}"] = (
            per_candidate.elapsed_seconds / fused_backend.elapsed_seconds)

    level = benchmark.pedantic(
        run_level, args=(VectorizedExecutor(block_size=BLOCK_SIZE),),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert level.n_points == DIVISIONS * DIVISIONS

    floor = float(os.environ.get("REPRO_VECTORIZED_SPEEDUP_FLOOR",
                                 DEFAULT_FLOOR))
    assert speedup >= floor, (
        f"fused K={BLOCK_SIZE} grid level only {speedup:.3f}x the serial "
        f"per-candidate dispatch on the NumPy backend (floor {floor})"
    )
