"""Benchmark: nonlinearity ablation — the modular DFR's swappable f block.

The paper's evaluation fixes f(x) = Ax; this bench times training under
each shape at reduced scale.  All shapes must train *mechanically* (finite
losses, moved parameters — the modular-DFR differentiability claim of
Sec. 2.3); an accuracy bar is asserted only for the shapes that perform at
this reduced scale (identity and tanh) — the full-scale sweep lives in
``repro-bench ablation-nonlinearity``.
"""

import numpy as np
import pytest

from repro.core.pipeline import DFRClassifier
from repro.core.trainer import TrainerConfig

N_NODES = 16
EPOCHS = 8

#: shapes whose reduced-scale accuracy is reliably above chance
STRONG_SHAPES = {"identity", "tanh"}


@pytest.mark.parametrize("shape", ["identity", "mackey-glass", "tanh", "sine"])
def test_training_under_shape(benchmark, jpvow_small, shape):
    data = jpvow_small

    def fit():
        clf = DFRClassifier(
            n_nodes=N_NODES, nonlinearity=shape, seed=0,
            config=TrainerConfig(epochs=EPOCHS),
        )
        clf.fit(data.u_train, data.y_train)
        return clf

    clf = benchmark.pedantic(fit, rounds=1, iterations=1, warmup_rounds=0)
    assert np.isfinite(clf.training_.final_loss)
    assert (clf.A_, clf.B_) != (0.01, 0.01), f"{shape}: parameters never moved"
    if shape in STRONG_SHAPES:
        acc = clf.score(data.u_test, data.y_test)
        assert acc > 0.3, f"{shape} failed to train (acc {acc:.3f})"
