"""Benchmark: Table 1 — backpropagation training vs grid search cost.

Regenerates the paper's Table 1 comparison at reduced scale (pytest-benchmark
wants second-scale runs; the full 12-dataset protocol is
``repro-bench table1``).  The structural claims benchmarked here:

* one bp training run (25 epochs, truncated backprop, final ridge) costs a
  small constant multiple of a single grid *point*;
* a grid *level* at ``d`` divisions costs ``d^2`` points, so the cumulative
  until-parity protocol overtakes bp cost as soon as more than a couple of
  divisions are needed.
"""

import pytest

from repro.bench.table1 import run_dataset
from repro.core.grid_search import GridSearch
from repro.core.pipeline import DFRClassifier, DFRFeatureExtractor
from repro.core.trainer import TrainerConfig

N_NODES = 20  # reduced from the paper's 30 to keep the bench suite fast


def test_bp_training_run(benchmark, jpvow_small):
    """Cost of the proposed method: full 25-epoch bp fit + ridge."""
    data = jpvow_small

    def fit():
        clf = DFRClassifier(n_nodes=N_NODES, seed=0,
                            config=TrainerConfig(epochs=25))
        clf.fit(data.u_train, data.y_train)
        return clf

    clf = benchmark.pedantic(fit, rounds=1, iterations=1, warmup_rounds=0)
    assert clf.score(data.u_test, data.y_test) > 0.5


def test_grid_level_d2(benchmark, jpvow_small):
    """Cost of one 2x2 grid level (4 reservoir sweeps + 4 ridge fits each)."""
    data = jpvow_small
    ext = DFRFeatureExtractor(n_nodes=N_NODES, seed=0).fit(data.u_train)
    gs = GridSearch(ext, seed=1)

    def level():
        return gs.run_level(data.u_train, data.y_train,
                            data.u_test, data.y_test, 2,
                            n_classes=data.n_classes)

    result = benchmark.pedantic(level, rounds=1, iterations=1, warmup_rounds=0)
    assert result.n_points == 4


def test_until_parity_protocol(benchmark, lib_small):
    """The full Table-1 row protocol on a reduced dataset."""
    data = lib_small

    def row():
        return run_dataset("LIB", n_nodes=N_NODES, seed=0, max_divisions=6,
                           epochs=10)

    # run_dataset reloads at bench size; warm the generator cache via the
    # fixture then measure the protocol itself
    result = benchmark.pedantic(row, rounds=1, iterations=1, warmup_rounds=0)
    assert result.bp_seconds > 0
    assert result.gs_divisions >= 1
    assert 0.0 <= result.bp_accuracy <= 1.0


def test_grid_cost_scales_quadratically(benchmark, jpvow_small):
    """A d=4 level must cost ~4x a d=2 level (16 vs 4 points)."""
    data = jpvow_small
    ext = DFRFeatureExtractor(n_nodes=N_NODES, seed=0).fit(data.u_train)
    gs = GridSearch(ext, seed=1)

    def two_levels():
        lvl2 = gs.run_level(data.u_train, data.y_train,
                            data.u_test, data.y_test, 2,
                            n_classes=data.n_classes)
        lvl4 = gs.run_level(data.u_train, data.y_train,
                            data.u_test, data.y_test, 4,
                            n_classes=data.n_classes)
        return lvl2, lvl4

    lvl2, lvl4 = benchmark.pedantic(two_levels, rounds=1, iterations=1,
                                    warmup_rounds=0)
    assert lvl4.n_points == 4 * lvl2.n_points
    # wall-clock should scale roughly with the point count (loose factor:
    # constant overheads favor the larger level)
    assert lvl4.elapsed_seconds > 1.5 * lvl2.elapsed_seconds
