"""Setup shim; all metadata lives in setup.cfg (declarative setuptools).

The setup.cfg + setup.py layout (rather than pyproject.toml) is deliberate:
it keeps ``pip install -e .`` working in fully offline environments, where
PEP 517 build isolation cannot fetch its build requirements.
"""

from setuptools import setup

setup()
