"""From the analog Mackey-Glass DFR to the trainable modular model.

Walks the modeling chain the paper builds on (Sec. 2):

1. the *analog* DFR — a Mackey-Glass delay differential equation integrated
   at sub-node resolution;
2. the *digital* DFR (Eq. 8) — the exact zero-order-hold solution of the
   same dynamics, tuned by (eta, gamma, p);
3. the *modular* DFR (Eq. 13) — the same system re-parameterized to just
   (A, B) with a swappable nonlinearity, which is what makes
   backpropagation practical.

The script verifies the equivalences numerically and then shows the
modular model's flexibility: swapping the Mackey-Glass block for other
shape functions under the same training protocol.

Run:  python examples/analog_to_digital.py
"""

import numpy as np

from repro import (
    AnalogMGDFR,
    DFRClassifier,
    DigitalMGDFR,
    InputMask,
    MackeyGlass,
    ModularDFR,
    load_dataset,
)
from repro.core.trainer import TrainerConfig
from repro.reservoir.digital import modular_params_from_mg


def main() -> None:
    rng = np.random.default_rng(0)
    mask = InputMask.binary(n_nodes=20, n_channels=2, seed=0)
    u = rng.normal(size=(4, 40, 2))
    mg_params = dict(eta=0.7, gamma=0.08, theta=0.25, p=2.0)

    # ---- 1 -> 2: analog DDE integrates to the digital DFR ----------------
    analog = AnalogMGDFR(mask, substeps=8, integrator="exact", hold="node",
                         **mg_params)
    digital = DigitalMGDFR(mask, **mg_params)
    gap = np.max(np.abs(analog.run(u) - digital.run(u).states))
    print(f"analog (8 substeps, exact) vs digital Eq. 8:   max gap {gap:.2e}")

    # ---- 2 -> 3: digital DFR == modular DFR with mapped (A, B) -----------
    a_eq, b_eq = modular_params_from_mg(mg_params["eta"], mg_params["theta"])
    modular = ModularDFR(InputMask(mg_params["gamma"] * mask.matrix),
                         nonlinearity=MackeyGlass(p=mg_params["p"]))
    gap = np.max(np.abs(digital.run(u).states - modular.run(u, a_eq, b_eq).states))
    print(f"digital Eq. 8 vs modular Eq. 13 (A={a_eq:.4f}, B={b_eq:.4f}): "
          f"max gap {gap:.2e}")
    print("-> three parameters (eta, gamma, theta) collapse to two (A, B)\n")

    # ---- the payoff: any differentiable f trains the same way ------------
    data = load_dataset("JPVOW", seed=0)
    print(f"training the modular DFR on {data.key} with different f blocks:")
    for shape in ("identity", "mackey-glass", "tanh", "sine"):
        clf = DFRClassifier(
            n_nodes=20, nonlinearity=shape, seed=0,
            config=TrainerConfig(epochs=15),
        )
        clf.fit(data.u_train, data.y_train)
        print(f"  f = {shape:13s}: test acc "
              f"{clf.score(data.u_test, data.y_test):.3f} "
              f"(A={clf.A_:.4f}, B={clf.B_:.4f})")


if __name__ == "__main__":
    main()
