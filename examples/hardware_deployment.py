"""Embedded deployment study: fixed-point precision, circuit cost, memory.

The paper targets embedded DFR hardware (Sec. 1): this example takes a
backprop-trained reservoir and answers the three deployment questions —

1. how many bits does the datapath need? (fixed-point simulation)
2. what does the circuit cost? (multiplier/adder/MAC/memory model)
3. how much training memory does truncated backprop save on-chip?
   (the paper's Table 2 accounting)

Run:  python examples/hardware_deployment.py
"""

from repro import DFRClassifier, load_dataset
from repro.hardware import (
    QFormat,
    QuantizedModularDFR,
    dfr_inference_cost,
    dfr_training_memory_bits,
)
from repro.memory import naive_storage, truncated_storage
from repro.readout import select_beta


def main() -> None:
    data = load_dataset("JPVOW", seed=0)
    print(f"dataset: {data.summary()}\n")

    clf = DFRClassifier(n_nodes=30, seed=0)
    clf.fit(data.u_train, data.y_train)
    float_acc = clf.score(data.u_test, data.y_test)
    print(f"float64 reference accuracy: {float_acc:.3f} "
          f"(A={clf.A_:.4f}, B={clf.B_:.4f})\n")

    # ---- 1. bit-width exploration --------------------------------------
    print("fixed-point datapath exploration (Q3.f, saturating):")
    std = clf.extractor.standardizer
    dprr = clf.extractor.dprr
    for frac_bits in (2, 4, 6, 8, 12):
        qfmt = QFormat(3, frac_bits)
        qdfr = QuantizedModularDFR(clf.extractor.reservoir.mask, qfmt)
        f_train = dprr.features(qdfr.run(std.transform(data.u_train),
                                         clf.A_, clf.B_))
        f_test = dprr.features(qdfr.run(std.transform(data.u_test),
                                        clf.A_, clf.B_))
        sel = select_beta(f_train, data.y_train, n_classes=data.n_classes,
                          seed=0)
        acc = sel.best_model.accuracy(f_test, data.y_test)
        print(f"  {qfmt} ({qfmt.total_bits:2d}-bit words): acc {acc:.3f}")

    # ---- 2. circuit cost ------------------------------------------------
    cost = dfr_inference_cost(30, data.n_classes, data.length,
                              n_channels=data.n_channels)
    print("\ncircuit cost (modular DFR + DPRR + readout):")
    print(f"  multipliers: {cost.multipliers} (the modular DFR's A and B)")
    print(f"  adders:      {cost.adders}")
    print(f"  MACs per inference: {cost.macs_per_inference:,}")
    print(f"  inference memory:   {cost.memory_words:,} words "
          f"({cost.memory_bits(16) / 8192:.1f} KiB at 16 bit)")

    # ---- 3. on-chip training memory (paper Table 2) ---------------------
    naive = naive_storage(data.length, 30, data.n_classes)
    reduced = truncated_storage(30, data.n_classes, window=1)
    saving = 100 * (naive.total - reduced.total) / naive.total
    print("\non-chip training storage (paper Table 2 accounting):")
    print(f"  full backpropagation:      {naive.total:,} values")
    print(f"  truncated backpropagation: {reduced.total:,} values "
          f"({saving:.0f}% saved)")
    print(f"  at 16-bit words: "
          f"{dfr_training_memory_bits(30, data.n_classes, data.length, word_bits=16) / 8192:.1f} KiB -> "
          f"{dfr_training_memory_bits(30, data.n_classes, data.length, word_bits=16, window=1) / 8192:.1f} KiB")


if __name__ == "__main__":
    main()
