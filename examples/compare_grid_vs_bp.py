"""Backpropagation vs grid search: a miniature of the paper's Table 1.

Runs the proposed method and the cumulative grid-search baseline on two
datasets and prints accuracy, wall-clock time, and the speed ratio — the
paper's headline comparison (up to ~700x on the full protocol; run
``repro-bench table1`` for all 12 datasets).

Run:  python examples/compare_grid_vs_bp.py
"""

import time

from repro import DFRClassifier, GridSearch, load_dataset
from repro.core.pipeline import DFRFeatureExtractor


def compare(key: str, seed: int = 0) -> None:
    data = load_dataset(key, seed=seed)
    print(f"\n=== {data.summary()} ===")

    start = time.perf_counter()
    clf = DFRClassifier(n_nodes=30, seed=seed)
    clf.fit(data.u_train, data.y_train)
    bp_acc = clf.score(data.u_test, data.y_test)
    bp_time = time.perf_counter() - start
    print(f"backprop:    acc {bp_acc:.3f} in {bp_time:5.1f}s "
          f"(A={clf.A_:.4f}, B={clf.B_:.4f}, beta={clf.beta_:g})")

    extractor = DFRFeatureExtractor(n_nodes=30, seed=seed).fit(data.u_train)
    grid = GridSearch(extractor, seed=seed)
    outcome = grid.search_until(
        data.u_train, data.y_train, data.u_test, data.y_test,
        target_accuracy=bp_acc, max_divisions=8, n_classes=data.n_classes,
    )
    marker = "" if outcome.reached else " (division cap hit)"
    print(f"grid search: acc {outcome.achieved_accuracy:.3f} in "
          f"{outcome.total_seconds:5.1f}s after {outcome.divisions} "
          f"division level(s), {outcome.total_points} grid points{marker}")
    print(f"grid/backprop time ratio: {outcome.total_seconds / bp_time:.1f}x")


def main() -> None:
    # ECG needs a fine grid (backprop wins big); KICK's coarse grid already
    # suffices (grid wins slightly) — the two regimes of the paper's Table 1
    for key in ("ECG", "KICK"):
        compare(key)


if __name__ == "__main__":
    main()
