"""Single-node DFR vs classical echo-state network, at matched state size.

The DFR's pitch (paper Sec. 1) is hardware economy: one physical nonlinear
node and a delay line emulate what an ESN does with an N x N random coupling
matrix. This example quantifies the trade on one benchmark task:

* accuracy through the identical DPRR + ridge readout stack,
* the recurrent-weight count each reservoir must implement.

Also compares the DPRR against the simpler representation baselines, and
reports the DFR's linear memory capacity at the trained operating point —
the quantitative version of "why A and B matter".

Run:  python examples/esn_vs_dfr.py
"""

from repro import DFRClassifier, load_dataset
from repro.data import ChannelStandardizer
from repro.readout import select_beta
from repro.representation import DPRR, LastState, MeanState
from repro.reservoir import EchoStateNetwork, InputMask, ModularDFR, memory_capacity


def main() -> None:
    data = load_dataset("JPVOW", seed=0)
    print(f"dataset: {data.summary()}\n")

    # ---- DFR: backprop-trained (the paper's method) ----------------------
    clf = DFRClassifier(n_nodes=30, seed=0)
    clf.fit(data.u_train, data.y_train)
    dfr_acc = clf.score(data.u_test, data.y_test)
    print(f"modular DFR (backprop-optimized): acc {dfr_acc:.3f} | "
          f"2 multipliers + 30-word delay line")

    # ---- ESN at the same state size --------------------------------------
    std = ChannelStandardizer().fit(data.u_train)
    esn = EchoStateNetwork(30, data.n_channels, spectral_radius=0.9, seed=0)
    dprr = DPRR()
    f_train = dprr.features(esn.run(std.transform(data.u_train)))
    f_test = dprr.features(esn.run(std.transform(data.u_test)))
    sel = select_beta(f_train, data.y_train, n_classes=data.n_classes, seed=0)
    esn_acc = sel.best_model.accuracy(f_test, data.y_test)
    print(f"echo-state network (30 nodes):    acc {esn_acc:.3f} | "
          f"{esn.n_recurrent_weights} recurrent weights to implement\n")

    # ---- representation baselines on the trained DFR ---------------------
    print("representation comparison on the trained DFR (paper Sec. 2.2):")
    reservoir = clf.extractor.reservoir
    trace_train = reservoir.run(std.transform(data.u_train), clf.A_, clf.B_)
    trace_test = reservoir.run(std.transform(data.u_test), clf.A_, clf.B_)
    for rep in (DPRR(), MeanState(), LastState()):
        r_train = rep.features(trace_train)
        r_test = rep.features(trace_test)
        rep_sel = select_beta(r_train, data.y_train,
                              n_classes=data.n_classes, seed=0)
        acc = rep_sel.best_model.accuracy(r_test, data.y_test)
        print(f"  {type(rep).__name__:18s} ({r_train.shape[1]:4d} features): "
              f"acc {acc:.3f}")

    # ---- memory capacity at the trained operating point -------------------
    probe = ModularDFR(InputMask.binary(30, 1, seed=1))
    cap_trained = memory_capacity(probe, clf.A_, clf.B_, seed=0)
    cap_init = memory_capacity(probe, 0.01, 0.01, seed=0)
    print(f"\nlinear memory capacity (30-node DFR, max 30):")
    print(f"  at the initial parameters (0.01, 0.01): {cap_init:.2f}")
    print(f"  at the trained parameters ({clf.A_:.3f}, {clf.B_:.3f}): "
          f"{cap_trained:.2f}")


if __name__ == "__main__":
    main()
