"""Quickstart: train a DFR classifier with backpropagation (the paper's method).

Loads the JPVOW benchmark task (Japanese-vowel-like synthetic speech), runs
the paper's full two-phase optimization — 25 epochs of truncated
backpropagation for the reservoir parameters (A, B), then ridge regression
with automatic regularizer selection for the readout — and reports accuracy.

Run:  python examples/quickstart.py
"""

from repro import DFRClassifier, load_dataset

def main() -> None:
    data = load_dataset("JPVOW", seed=0)
    print(f"dataset: {data.summary()}")

    clf = DFRClassifier(n_nodes=30, seed=0)
    clf.fit(data.u_train, data.y_train)

    print("\ntraining trajectory (every 5th epoch):")
    for stats in clf.training_.history[::5]:
        print(
            f"  epoch {stats.epoch:2d}: loss {stats.mean_loss:8.4f} "
            f"train-acc {stats.accuracy:.3f}  A={stats.A:.4f} B={stats.B:.4f} "
            f"(lr_res={stats.lr_reservoir:g}, lr_out={stats.lr_output:g})"
        )

    print(
        f"\noptimized parameters: A = {clf.A_:.4f}, B = {clf.B_:.4f}, "
        f"ridge beta = {clf.beta_:g}"
    )
    print(f"train accuracy: {clf.score(data.u_train, data.y_train):.3f}")
    print(f"test accuracy:  {clf.score(data.u_test, data.y_test):.3f}")
    print(f"optimization took {clf.training_.elapsed_seconds:.1f}s "
          "(25 epochs of truncated backpropagation)")


if __name__ == "__main__":
    main()
