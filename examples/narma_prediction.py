"""NARMA-10 time-series regression with a delayed-feedback reservoir.

The classic pre-classification benchmark of the DFR literature (Appeltant
et al. 2011): drive the reservoir with a random input stream, read the
NARMA-10 target off the reservoir states with ridge regression, and score
NRMSE.  Also demonstrates *why* reservoir parameters matter — the same
readout is fitted at several (A, B) operating points, including the
backprop-free classic Mackey-Glass parameterization.

Run:  python examples/narma_prediction.py
"""

import numpy as np

from repro import InputMask, ModularDFR
from repro.data import narma10
from repro.readout import fit_ridge_regressor, nrmse


def reservoir_features(dfr: ModularDFR, u: np.ndarray, A: float, B: float):
    """Per-step regression features: states, squared states, raw input.

    The quadratic augmentation is the standard RC readout for NARMA-type
    targets (the system multiplies inputs, which a linear readout of a
    near-linear reservoir cannot express).
    """
    trace = dfr.run(u[np.newaxis, :, np.newaxis], A, B)
    states = trace.states[0, 1:, :]
    return np.concatenate([states, states**2, u[:, np.newaxis]], axis=1)


def main() -> None:
    train_u, train_y = narma10(2000, seed=0)
    test_u, test_y = narma10(1000, seed=1)

    dfr = ModularDFR(InputMask.binary(n_nodes=50, n_channels=1, seed=0))
    print("NARMA-10 one-step regression, 50 virtual nodes, ridge readout\n")
    print(f"{'A':>8} {'B':>8} {'train NRMSE':>12} {'test NRMSE':>12}")
    best = (None, np.inf)
    for a_val, b_val in [
        (0.01, 0.01),   # the paper's backprop starting point
        (0.05, 0.30),
        (0.20, 0.55),   # a strong operating point
        (0.45, 0.45),
        (0.56, 0.10),
    ]:
        f_train = reservoir_features(dfr, train_u, a_val, b_val)
        f_test = reservoir_features(dfr, test_u, a_val, b_val)
        model = fit_ridge_regressor(f_train, train_y, beta=1e-8)
        err_train = nrmse(train_y, model.predict(f_train))
        err_test = nrmse(test_y, model.predict(f_test))
        print(f"{a_val:8.2f} {b_val:8.2f} {err_train:12.4f} {err_test:12.4f}")
        if err_test < best[1]:
            best = ((a_val, b_val), err_test)

    (a_best, b_best), err = best
    print(
        f"\nbest operating point: A={a_best}, B={b_best} "
        f"(test NRMSE {err:.4f}) — the spread above is exactly why DFR "
        "parameter optimization matters."
    )


if __name__ == "__main__":
    main()
