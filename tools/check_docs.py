#!/usr/bin/env python
"""Documentation checker: executable snippets + local-link integrity.

Two checks, both cheap enough to gate CI (the ``docs`` job runs this):

1. **Snippet execution.**  Every fenced ``python`` code block immediately
   preceded by an ``<!-- check:exec -->`` marker is executed in a fresh
   namespace, in repo-root working directory, with ``src/`` importable.
   The README quickstart carries the marker, so the front-door example can
   never silently rot.
2. **Link integrity.**  Every relative markdown link/image target in the
   checked files must exist on disk (anchors are stripped; external
   ``http(s)``/``mailto`` links are not fetched).

Usage::

    python tools/check_docs.py [files...]   # default: README.md,
                                            # EXPERIMENTS.md, ROADMAP.md,
                                            # docs/ARCHITECTURE.md

Exit code 0 when everything passes; 1 with a per-failure report otherwise.
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FILES = [
    "README.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
]

EXEC_MARKER = "<!-- check:exec -->"
FENCE_RE = re.compile(
    r"(?P<marker><!-- check:exec -->\s*\n)?```python\n(?P<code>.*?)```",
    re.DOTALL,
)
# [text](target) and ![alt](target); ignores external schemes below
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def iter_exec_blocks(text: str):
    """Yield the code of every ``check:exec``-marked python fence."""
    for match in FENCE_RE.finditer(text):
        if match.group("marker"):
            yield match.group("code")


def check_links(path: Path, text: str) -> list:
    failures = []
    base = path.parent
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = (base / target.split("#")[0]).resolve()
        if not resolved.exists():
            failures.append(f"{path}: broken link -> {target}")
    return failures


def run_snippet(source_name: str, code: str) -> list:
    namespace = {"__name__": "__main__"}
    start = time.perf_counter()
    try:
        exec(compile(code, f"<{source_name} snippet>", "exec"), namespace)
    except Exception as exc:  # report, don't crash the checker
        return [f"{source_name}: snippet raised {type(exc).__name__}: {exc}"]
    print(f"  executed snippet from {source_name} "
          f"({time.perf_counter() - start:.1f}s)")
    return []


def main(argv=None) -> int:
    args = (argv if argv is not None else sys.argv[1:]) or DEFAULT_FILES
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures = []
    for name in args:
        path = REPO_ROOT / name
        if not path.exists():
            failures.append(f"{name}: file not found")
            continue
        text = path.read_text(encoding="utf-8")
        failures.extend(check_links(path, text))
        for code in iter_exec_blocks(text):
            failures.extend(run_snippet(name, code))
    if failures:
        print("\nDOCS CHECK FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("docs check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
