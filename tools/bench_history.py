#!/usr/bin/env python
"""Persisted performance trajectory for the benchmark suite.

Runs the pytest-benchmark suite (``benchmarks/``), condenses each
benchmark into its min/mean timing plus the speedup ratios the suite
stores in ``extra_info``, tags the entry with machine / backend / dtype /
git metadata, and appends it to the committed ``BENCH_history.json`` at
the repo root — so the repo carries its own performance trajectory and a
regression shows up as a diff, not as a vanished artifact.

Usage::

    python tools/bench_history.py                  # run suite, append entry
    python tools/bench_history.py --check          # also compare vs history
    python tools/bench_history.py --check --no-append   # CI: compare only
    python tools/bench_history.py --dry-run        # print entry, touch nothing
    python tools/bench_history.py --suite serve    # serving-latency suite

``--suite`` picks which harness feeds the entry: ``training`` (default)
runs the pytest-benchmark suite in ``benchmarks/``; ``serve`` runs
``repro-bench serve`` (streaming inference under replayed traffic) and
condenses its latency/throughput numbers; ``matrix`` runs ``repro-bench
matrix`` (scenario cells over registry dataset specs) and records one
benchmark per cell.  Every entry is tagged with its
suite, and entries from different suites are never compared against each
other — a serving-latency number regressing against a training-throughput
baseline would be meaningless.

``--check`` compares the fresh entry against the most recent *comparable*
history entry (same suite, machine fingerprint, backend set and dtype) and
fails when any benchmark regressed beyond ``REPRO_BENCH_REGRESSION_FLOOR``
(default 0.5: flag only when the new run is slower than floor x the old
throughput, i.e. > 2x slower — wall-clock on shared runners is noisy, so
the default only catches order-of-magnitude cliffs; tighten it locally).
Incomparable entries (different suite/machine/backend/dtype) are never
compared; when no comparable baseline exists the check reports a warning
and passes.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY_PATH = REPO_ROOT / "BENCH_history.json"

#: environment variable: minimum acceptable new/old throughput ratio per
#: benchmark before --check fails (0.5 = flag a > 2x slowdown)
REGRESSION_FLOOR_ENV_VAR = "REPRO_BENCH_REGRESSION_FLOOR"
DEFAULT_REGRESSION_FLOOR = 0.5


def _git(*args: str) -> str:
    try:
        out = subprocess.run(
            ["git", *args], cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=10,
        )
        return out.stdout.strip() if out.returncode == 0 else ""
    except OSError:
        return ""


def machine_fingerprint() -> dict:
    """A stable description of the hardware/software running the suite."""
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def _available_backends() -> list:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.backend import available_backends

        return available_backends()
    finally:
        sys.path.pop(0)


def _suite_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"),
                    env.get("PYTHONPATH", "")) if p
    )
    return env


def run_suite(pytest_args: list) -> dict:
    """Run the benchmark suite, returning the pytest-benchmark JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        cmd = [
            sys.executable, "-m", "pytest", "-q", "benchmarks",
            f"--benchmark-json={json_path}", *pytest_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=_suite_env())
        if proc.returncode != 0:
            raise SystemExit(
                f"benchmark suite failed (exit {proc.returncode}); "
                f"no history entry written"
            )
        with open(json_path) as fh:
            return json.load(fh)


def run_serve_suite(extra_args: list) -> dict:
    """Run ``repro-bench serve`` and condense it to the benchmarks payload.

    The serving bench replays one seeded Poisson trace through a serial
    (``max_batch=1``) and a continuously batched engine and verifies the
    outputs bitwise; here each engine becomes one benchmark whose
    ``min_seconds`` is its best per-chunk wall time, with latency
    percentiles, occupancy and the speedup kept as ``extra_info``.
    """
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "serve.json"
        cmd = [
            sys.executable, "-m", "repro.bench", "serve",
            "--json", str(json_path), *extra_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=_suite_env())
        if proc.returncode != 0:
            raise SystemExit(
                f"serve bench failed (exit {proc.returncode}); "
                f"no history entry written"
            )
        with open(json_path) as fh:
            result = json.load(fh)
    if result.get("bitwise_mismatches"):
        raise SystemExit(
            f"serve bench reported {result['bitwise_mismatches']} bitwise "
            f"mismatches between serial and batched serving; no history "
            f"entry written"
        )
    benchmarks = {}
    for key, label in (("serial", "serve_serial"), ("batched", "serve_batched")):
        rep = result[key]
        n_chunks = max(rep.get("n_chunks", 0), 1)
        benchmarks[label] = {
            "min_seconds": rep["wall_s"] / n_chunks,
            "mean_seconds": rep["wall_s"] / n_chunks,
            "rounds": result.get("repeats"),
            "extra_info": {
                "sessions_per_sec": rep["sessions_per_sec"],
                "chunks_per_sec": rep["chunks_per_sec"],
                "p50_ms": rep["p50_ms"],
                "p99_ms": rep["p99_ms"],
                "mean_occupancy": rep["mean_occupancy"],
                "streams": result["streams"],
                "max_batch": result["max_batch"] if key == "batched" else 1,
                "speedup_vs_serial": result["speedup"] if key == "batched"
                else 1.0,
            },
        }
    # deadline legs (PR 9): the same trace paced to a serveable rate with
    # a per-chunk budget — caller-driven sync (ticks only on submits) vs
    # the async background loop firing a slack margin early.  The
    # violation counts are the story; p99 under deadline load is the
    # tracked number.
    async_rep = result.get("async_deadline")
    sync_rep = result.get("sync_deadline")
    if async_rep is not None and sync_rep is not None:
        n_chunks = max(async_rep.get("n_chunks", 0), 1)
        benchmarks["serve_async"] = {
            "min_seconds": async_rep["wall_s"] / n_chunks,
            "mean_seconds": async_rep["wall_s"] / n_chunks,
            "rounds": 1,
            "extra_info": {
                "sessions_per_sec": async_rep["sessions_per_sec"],
                "chunks_per_sec": async_rep["chunks_per_sec"],
                "p50_ms": async_rep["p50_ms"],
                "p99_ms": async_rep["p99_ms"],
                "deadline_ms": result.get("deadline_ms"),
                "slack_margin_ms": result.get("slack_margin_ms"),
                "deadline_rate_hz": result.get("deadline_rate_hz"),
                "deadline_chunks": async_rep["deadline_chunks"],
                "violations": async_rep["violations"],
                "min_slack_ms": async_rep["min_slack_ms"],
                "streams": result["streams"],
                "max_batch": result["max_batch"],
                "sync_p50_ms": sync_rep["p50_ms"],
                "sync_p99_ms": sync_rep["p99_ms"],
                "sync_sessions_per_sec": sync_rep["sessions_per_sec"],
                "sync_violations": sync_rep["violations"],
            },
        }
    return benchmarks


def run_matrix_suite(extra_args: list) -> dict:
    """Run ``repro-bench matrix`` and condense it to the benchmarks payload.

    Each scenario cell (dataset spec x backend x executor x search)
    becomes one benchmark keyed by its axes, timed by its search
    wall-clock, with the accuracy columns kept as ``extra_info`` — so the
    trajectory records throughput *and* flags a score drift (scores are
    deterministic per seed on NumPy, so any change is a real behavior
    change, not noise).
    """
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "matrix.json"
        cmd = [
            sys.executable, "-m", "repro.bench", "matrix",
            "--json", str(json_path), *extra_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=_suite_env())
        if proc.returncode != 0:
            raise SystemExit(
                f"matrix bench failed (exit {proc.returncode}); "
                f"no history entry written"
            )
        with open(json_path) as fh:
            report = json.load(fh)
    benchmarks = {}
    for cell in report.get("cells", []):
        label = "|".join((cell["spec"], cell["backend"], cell["executor"],
                          cell["search"]))
        benchmarks[label] = {
            "min_seconds": cell["total_seconds"],
            "mean_seconds": cell["total_seconds"],
            "rounds": 1,
            "extra_info": {
                "val_accuracy": cell["val_accuracy"],
                "test_accuracy": cell["test_accuracy"],
                "n_evaluations": cell["n_evaluations"],
                "compute_seconds": cell["compute_seconds"],
            },
        }
    return benchmarks


def condense(report: dict) -> dict:
    """Reduce a pytest-benchmark report to the trajectory payload."""
    benchmarks = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        entry = {
            "min_seconds": stats.get("min"),
            "mean_seconds": stats.get("mean"),
            "rounds": stats.get("rounds"),
        }
        extra = bench.get("extra_info") or {}
        if extra:
            entry["extra_info"] = extra
        benchmarks[bench["name"]] = entry
    return benchmarks


def build_entry(benchmarks: dict, suite: str = "training") -> dict:
    return {
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_sha": _git("rev-parse", "--short", "HEAD") or "unknown",
        "git_branch": _git("rev-parse", "--abbrev-ref", "HEAD") or "unknown",
        "suite": suite,
        "machine": machine_fingerprint(),
        "backends": _available_backends(),
        "dtype": os.environ.get("REPRO_DTYPE", "") or "float64",
        "backend_env": os.environ.get("REPRO_BACKEND", "") or "numpy",
        "benchmarks": benchmarks,
    }


def load_history(path: Path = None) -> list:
    """Load the trajectory list, tolerating a missing or empty file.

    A history file that exists but is empty (or whitespace-only — e.g. a
    freshly ``touch``-ed file, or a truncated write) means "no entries
    yet", exactly like a missing file; invalid JSON is a clean error
    instead of a traceback.
    """
    path = HISTORY_PATH if path is None else Path(path)
    if not path.exists():
        return []
    text = path.read_text()
    if not text.strip():
        return []
    try:
        history = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"{path} is not valid JSON ({exc}); fix or delete it to reset "
            f"the trajectory"
        ) from None
    if not isinstance(history, list):
        raise SystemExit(f"{path} must hold a JSON list")
    return history


def comparable(old: dict, new: dict) -> bool:
    """Entries compare only on matching suite, machine, backends, dtype.

    Entries written before the ``suite`` field existed are all training
    runs, so a missing field defaults to ``"training"`` — serving-latency
    entries never compare against them.
    """
    return (
        old.get("suite", "training") == new.get("suite", "training")
        and old.get("machine") == new.get("machine")
        and old.get("backends") == new.get("backends")
        and old.get("dtype") == new.get("dtype")
        and old.get("backend_env") == new.get("backend_env")
    )


def check_regressions(history: list, entry: dict, floor: float) -> list:
    """Benchmarks whose new/old throughput ratio fell below ``floor``."""
    baseline = next(
        (old for old in reversed(history) if comparable(old, entry)), None
    )
    if baseline is None:
        print(
            f"[bench-history] WARNING: none of the {len(history)} history "
            f"entries is comparable to this run (suite="
            f"{entry.get('suite', 'training')!r}, machine/backends/dtype "
            f"must all match) — nothing to regress against, check passes "
            f"vacuously; append an entry from this configuration to "
            f"establish a baseline"
        )
        return []
    regressions = []
    for name, new_stats in entry["benchmarks"].items():
        old_stats = baseline["benchmarks"].get(name)
        if not old_stats:
            continue  # new benchmark: no baseline yet
        old_min = old_stats.get("min_seconds")
        new_min = new_stats.get("min_seconds")
        if not old_min or not new_min:
            continue
        ratio = old_min / new_min  # > 1 means the new run is faster
        if ratio < floor:
            regressions.append(
                f"{name}: {new_min:.6f}s vs baseline {old_min:.6f}s "
                f"({baseline['git_sha']}) — throughput ratio {ratio:.2f} "
                f"< floor {floor}"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark suite and persist its trajectory."
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail when a benchmark regressed beyond "
             f"{REGRESSION_FLOOR_ENV_VAR} vs the last comparable entry",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="do not write the new entry to BENCH_history.json (CI mode: "
             "compare only, the committed history stays author-curated)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the condensed entry and exit without touching history",
    )
    parser.add_argument(
        "--suite", choices=("training", "serve", "matrix"),
        default="training",
        help="which harness feeds the entry: 'training' runs the "
             "pytest-benchmark suite, 'serve' runs repro-bench serve "
             "(streaming latency/throughput), 'matrix' runs repro-bench "
             "matrix (scenario cells). Entries only ever compare within "
             "their own suite",
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="extra arguments forwarded to pytest (--suite training), "
             "repro-bench serve (--suite serve), or repro-bench matrix "
             "(--suite matrix), after --",
    )
    args = parser.parse_args(argv)

    if args.suite == "serve":
        benchmarks = run_serve_suite(args.pytest_args)
    elif args.suite == "matrix":
        benchmarks = run_matrix_suite(args.pytest_args)
    else:
        benchmarks = condense(run_suite(args.pytest_args))
    entry = build_entry(benchmarks, suite=args.suite)

    if args.dry_run:
        json.dump(entry, sys.stdout, indent=2)
        print()
        return 0

    history = load_history()

    rc = 0
    if args.check:
        floor = float(
            os.environ.get(REGRESSION_FLOOR_ENV_VAR, "")
            or DEFAULT_REGRESSION_FLOOR
        )
        regressions = check_regressions(history, entry, floor)
        for line in regressions:
            print(f"[bench-history] REGRESSION {line}", file=sys.stderr)
        if regressions:
            rc = 1
        else:
            print("[bench-history] no regressions beyond the floor")

    if not args.no_append:
        history.append(entry)
        with open(HISTORY_PATH, "w") as fh:
            json.dump(history, fh, indent=2)
            fh.write("\n")
        print(f"[bench-history] appended entry {entry['git_sha']} "
              f"({len(history)} total) to {HISTORY_PATH.name}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
