"""Tests for population gradient descent (fused K-restart BP+GD).

The contract under test is *bit-parity on NumPy*: member ``k`` of a fused
K-member :class:`~repro.core.population.PopulationTrainer` run must
reproduce a sequential :meth:`~repro.core.trainer.BackpropTrainer.fit`
started from that member's ``(A, B)`` with the same seed — final
parameters, readout, and the complete per-epoch history, for every
optimizer (so momenta/moments and schedule state are transitively pinned).
On top sit the retirement semantics, the :class:`PopulationDescent` search
(executor parity, chunking invariance), the ``DFRClassifier`` wiring, and
the ``REPRO_POPULATION`` resolution.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.hyperopt import DescentOutcome, PopulationDescent
from repro.core.pipeline import DFRClassifier, DFRFeatureExtractor
from repro.core.population import (
    DEFAULT_POPULATION,
    PopulationTrainer,
    draw_starting_points,
    resolve_population,
)
from repro.core.selection import best_evaluation
from repro.core.trainer import BackpropTrainer, TrainerConfig
from repro.data.loaders import make_toy_dataset
from repro.data.preprocessing import ChannelStandardizer
from repro.exec import MultiprocessExecutor, SerialExecutor, VectorizedExecutor
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR

A0 = np.array([0.01, 0.12, 0.30])
B0 = np.array([0.01, 0.05, 0.20])


@pytest.fixture(scope="module")
def toy():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=30,
                            n_train=45, n_test=45, noise=0.25, seed=7)
    std = ChannelStandardizer().fit(data.u_train)
    return data, std.transform(data.u_train), std.transform(data.u_test)


def _mask(n_nodes=8, seed=0):
    return InputMask.binary(n_nodes, 2, seed=seed)


def _assert_same_training(member_result, reference):
    """Member trajectory == sequential trajectory, bit for bit."""
    assert member_result.A == reference.A
    assert member_result.B == reference.B
    np.testing.assert_array_equal(member_result.readout.weights,
                                  reference.readout.weights)
    np.testing.assert_array_equal(member_result.readout.bias,
                                  reference.readout.bias)
    assert len(member_result.history) == len(reference.history)
    for got, want in zip(member_result.history, reference.history):
        assert got.epoch == want.epoch
        assert got.mean_loss == want.mean_loss
        assert got.accuracy == want.accuracy
        assert got.lr_reservoir == want.lr_reservoir
        assert got.lr_output == want.lr_output
        assert got.A == want.A
        assert got.B == want.B
        assert got.n_skipped == want.n_skipped


class TestPopulationTrainerParity:
    """Fused descent == sequential BackpropTrainer runs, bit for bit."""

    def test_population_of_one_per_sample_is_the_paper_reference(self, toy):
        """K=1 at batch_size=1 IS BackpropTrainer.fit (the pinned seed SGD)."""
        data, u_train, _ = toy
        cfg = TrainerConfig(epochs=5)
        pop = PopulationTrainer(ModularDFR(_mask()), 3, config=cfg, seed=3)
        result = pop.fit(u_train, data.y_train)
        ref = BackpropTrainer(ModularDFR(_mask()), 3, config=cfg,
                              seed=3).fit(u_train, data.y_train)
        assert result.population == 1
        _assert_same_training(result.members[0].result, ref)

    def test_population_of_one_batched_matches_trainer(self, toy):
        """K=1 through the fused stack == BackpropTrainer's batched path."""
        data, u_train, _ = toy
        cfg = TrainerConfig(epochs=5, batch_size=4)
        result = PopulationTrainer(ModularDFR(_mask()), 3, config=cfg,
                                   seed=3).fit(u_train, data.y_train)
        ref = BackpropTrainer(ModularDFR(_mask()), 3, config=cfg,
                              seed=3).fit(u_train, data.y_train)
        _assert_same_training(result.members[0].result, ref)

    @pytest.mark.parametrize("optimizer", ["sgd", "momentum", "adam"])
    def test_fused_members_match_sequential_runs(self, toy, optimizer):
        """Every member of a fused K=3 run == its own sequential fit.

        Momentum and Adam make the pin transitive over the stacked
        optimizer state: one diverging velocity or moment entry (or a
        per-row Adam step count off by one) would break the trajectories.
        """
        data, u_train, _ = toy
        cfg = TrainerConfig(epochs=6, batch_size=4, optimizer=optimizer)
        fused = PopulationTrainer(ModularDFR(_mask()), 3, config=cfg,
                                  seed=11).fit(u_train, data.y_train, A0, B0)
        assert fused.population == 3
        assert fused.active_per_epoch == [3] * 6
        for k in range(3):
            ref = BackpropTrainer(
                ModularDFR(_mask()), 3,
                config=replace(cfg, init_A=float(A0[k]), init_B=float(B0[k])),
                seed=11,
            ).fit(u_train, data.y_train)
            _assert_same_training(fused.members[k].result, ref)

    def test_divergent_members_match_sequential_pull_backs(self):
        """Mixed clean/diverging minibatches keep row-wise parity.

        Members 0/1 start in the unstable region (some samples diverge and
        trigger pull-backs mid-epoch, exercising the per-member fallback
        inside the fused sweep); member 2 stays clean and fused throughout.
        """
        rng = np.random.default_rng(0)
        u = rng.normal(size=(12, 250, 1))
        y = rng.integers(0, 2, size=12)
        mask = InputMask.binary(6, 1, seed=0)
        cfg = TrainerConfig(epochs=3, batch_size=4, init_A=1.2, init_B=0.9,
                            param_max=2.0, divergence_shrink=0.85)
        a0 = np.array([1.2, 1.8, 0.2])
        b0 = np.array([0.9, 0.9, 0.1])
        fused = PopulationTrainer(ModularDFR(mask), 2, config=cfg,
                                  seed=0).fit(u, y, a0, b0)
        skipped = [sum(h.n_skipped for h in m.result.history)
                   for m in fused.members]
        assert skipped[0] > 0 and skipped[1] > 0  # divergence really hit
        assert skipped[2] == 0
        for k in range(3):
            ref = BackpropTrainer(
                ModularDFR(mask), 2,
                config=replace(cfg, init_A=float(a0[k]), init_B=float(b0[k])),
                seed=0,
            ).fit(u, y)
            _assert_same_training(fused.members[k].result, ref)

    def test_scalar_init_broadcasts(self, toy):
        data, u_train, _ = toy
        cfg = TrainerConfig(epochs=2, batch_size=8)
        result = PopulationTrainer(ModularDFR(_mask()), 3, config=cfg,
                                   seed=1).fit(u_train, data.y_train,
                                               0.05, np.array([0.01, 0.2]))
        assert result.population == 2
        assert [m.init_A for m in result.members] == [0.05, 0.05]

    def test_validation(self, toy):
        data, u_train, _ = toy
        trainer = PopulationTrainer(ModularDFR(_mask()), 3, seed=0)
        with pytest.raises(ValueError):
            trainer.fit(u_train, data.y_train, [0.1, 0.2], [0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            trainer.fit(u_train, data.y_train, [0.1, np.nan], [0.1, 0.2])
        with pytest.raises(ValueError):
            PopulationTrainer(ModularDFR(_mask()), 3, retire_tol=-1.0)
        with pytest.raises(ValueError):
            PopulationTrainer(ModularDFR(_mask()), 3, retire_patience=0)
        with pytest.raises(ValueError):
            PopulationTrainer(ModularDFR(_mask()), 3, retire_diverged_epochs=0)


class TestRetirement:
    def test_converged_members_leave_the_stack(self, toy):
        data, u_train, _ = toy
        cfg = TrainerConfig(epochs=8, batch_size=8)
        result = PopulationTrainer(
            ModularDFR(_mask()), 3, config=cfg, seed=5,
            retire_tol=1.0, retire_patience=2,
        ).fit(u_train, data.y_train, A0, B0)
        # an absurdly large tol retires everything at the patience epoch
        assert all(m.retired_epoch == 2 for m in result.members)
        assert all(m.retired_reason == "converged" for m in result.members)
        assert result.n_retired == 3
        assert result.active_per_epoch == [3, 3]  # the fused sweep stopped
        for m in result.members:
            assert len(m.result.history) == 2

    def test_retirement_shrinks_but_matches_per_member_rule(self, toy):
        """Fused retirement == the same rule applied member by member.

        The rule is a pure function of each member's own trajectory, so a
        fused run with compaction must retire the same members at the same
        epochs — and leave every trajectory untouched up to retirement —
        as single-member runs with identical settings.
        """
        data, u_train, _ = toy
        cfg = TrainerConfig(epochs=10, batch_size=4)
        kwargs = dict(retire_tol=1e-4, retire_patience=2)
        fused = PopulationTrainer(ModularDFR(_mask()), 3, config=cfg, seed=9,
                                  **kwargs).fit(u_train, data.y_train, A0, B0)
        for k in range(3):
            solo = PopulationTrainer(
                ModularDFR(_mask()), 3, config=cfg, seed=9, **kwargs,
            ).fit(u_train, data.y_train, np.array([A0[k]]), np.array([B0[k]]))
            assert (fused.members[k].retired_epoch
                    == solo.members[0].retired_epoch)
            assert (fused.members[k].retired_reason
                    == solo.members[0].retired_reason)
            _assert_same_training(fused.members[k].result,
                                  solo.members[0].result)
        widths = fused.active_per_epoch
        assert all(b <= a for a, b in zip(widths, widths[1:]))

    def test_budget_exhaustion_is_not_retirement(self, toy):
        data, u_train, _ = toy
        cfg = TrainerConfig(epochs=2, batch_size=8)
        result = PopulationTrainer(
            ModularDFR(_mask()), 3, config=cfg, seed=5,
            retire_tol=1.0, retire_patience=2,
        ).fit(u_train, data.y_train, A0, B0)
        # patience lands exactly on the final epoch: members complete
        # normally instead of being marked retired
        assert result.n_retired == 0
        assert all(m.retired_epoch is None for m in result.members)


class TestResolvePopulation:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_POPULATION", "5")
        assert resolve_population(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_POPULATION", "5")
        assert resolve_population(None) == 5

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_POPULATION", raising=False)
        assert resolve_population(None) == DEFAULT_POPULATION

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_POPULATION", "many")
        assert resolve_population(None) == DEFAULT_POPULATION
        monkeypatch.setenv("REPRO_POPULATION", "0")
        assert resolve_population(None) == DEFAULT_POPULATION

    def test_explicit_invalid_raises(self):
        with pytest.raises(ValueError):
            resolve_population(0)

    def test_draw_starting_points(self):
        rng = np.random.default_rng(0)
        a0, b0 = draw_starting_points(rng, 4, (-3.75, -0.25), (-2.75, -0.25),
                                      init_A=0.01, init_B=0.01)
        assert a0[0] == 0.01 and b0[0] == 0.01  # the paper's init, no draw
        assert np.all((a0[1:] >= 10**-3.75) & (a0[1:] <= 10**-0.25))
        assert np.all((b0[1:] >= 10**-2.75) & (b0[1:] <= 10**-0.25))
        # a population of one consumes no randomness at all
        rng1 = np.random.default_rng(0)
        draw_starting_points(rng1, 1, (-3.75, -0.25), (-2.75, -0.25),
                             init_A=0.01, init_B=0.01)
        rng2 = np.random.default_rng(0)
        assert rng1.integers(2**31) == rng2.integers(2**31)


class TestPopulationDescentSearch:
    @pytest.fixture(scope="class")
    def search_setup(self):
        data = make_toy_dataset(n_classes=3, n_channels=2, length=20,
                                n_train=30, n_test=30, noise=0.3, seed=7)
        ext = DFRFeatureExtractor(n_nodes=5, seed=0).fit(data.u_train)
        return data, ext, TrainerConfig(epochs=3, batch_size=8)

    def _search(self, data, ext, cfg, **kwargs):
        return PopulationDescent(ext, trainer_config=cfg, seed=4,
                                 **kwargs).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            population=5, n_classes=3,
        )

    def test_outcome_shape(self, search_setup):
        data, ext, cfg = search_setup
        outcome = self._search(data, ext, cfg, executor=SerialExecutor())
        assert isinstance(outcome, DescentOutcome)
        assert outcome.population == 5
        assert outcome.n_evaluations == 5
        assert outcome.best == best_evaluation(outcome.evaluations)
        assert outcome.training_seconds > 0
        assert outcome.total_seconds >= outcome.training_seconds
        assert outcome.active_per_epoch[0] == 5
        # member 0 is the paper's initialization
        assert outcome.members[0].init_A == cfg.init_A
        assert [m.index for m in outcome.members] == [0, 1, 2, 3, 4]
        # endpoint scoring scores the descent endpoints, in member order
        for member, ev in zip(outcome.members, outcome.evaluations):
            assert ev.A == member.result.A
            assert ev.B == member.result.B

    def test_executor_parity(self, search_setup):
        """Serial, vectorized, and two-level scoring are bit-identical."""
        data, ext, cfg = search_setup
        serial = self._search(data, ext, cfg, executor=SerialExecutor())
        fused = self._search(data, ext, cfg,
                             executor=VectorizedExecutor(block_size=2))
        assert fused.evaluations == serial.evaluations
        assert fused.best == serial.best
        two_level = MultiprocessExecutor(2, vectorized_block_size=2)
        try:
            sharded = self._search(data, ext, cfg, executor=two_level)
        finally:
            two_level.close()
        assert sharded.evaluations == serial.evaluations

    def test_chunked_descent_matches_unchunked(self, search_setup):
        """Training-chunk size never changes any member trajectory."""
        data, ext, cfg = search_setup
        whole = self._search(data, ext, cfg, executor=SerialExecutor())
        chunked = self._search(data, ext, cfg, executor=SerialExecutor(),
                               candidate_block_size=2)
        assert chunked.evaluations == whole.evaluations
        for a, b in zip(chunked.members, whole.members):
            _assert_same_training(a.result, b.result)

    def test_chunked_descent_per_sample_batches(self, search_setup):
        """Regression: a trailing chunk of ONE member at batch_size=1 must
        not slip into the per-sample delegation path — every chunk of one
        logical population trains through the same fused arithmetic, so
        chunking stays invisible even at the paper's update granularity."""
        data, ext, _ = search_setup
        cfg = TrainerConfig(epochs=2)          # batch_size=1
        whole = PopulationDescent(
            ext, trainer_config=cfg, seed=4, executor=SerialExecutor(),
        ).descend(data.u_train, data.y_train, population=3, n_classes=3)
        chunked = PopulationDescent(
            ext, trainer_config=cfg, seed=4, executor=SerialExecutor(),
            candidate_block_size=2,            # trailing chunk holds 1 member
        ).descend(data.u_train, data.y_train, population=3, n_classes=3)
        for a, b in zip(chunked.members, whole.members):
            _assert_same_training(a.result, b.result)

    def test_unfitted_extractor_raises(self, search_setup):
        data, _, cfg = search_setup
        fresh = DFRFeatureExtractor(n_nodes=5, seed=0)
        with pytest.raises(RuntimeError, match="fitted"):
            PopulationDescent(fresh, trainer_config=cfg, seed=0).descend(
                data.u_train, data.y_train, population=2)


class TestClassifierDescent:
    @pytest.fixture(scope="class")
    def data(self):
        return make_toy_dataset(n_classes=3, n_channels=2, length=20,
                                n_train=40, n_test=40, noise=0.3, seed=7)

    def test_population_one_is_bit_identical_to_backprop(self, data):
        cfg = TrainerConfig(epochs=3)
        plain = DFRClassifier(n_nodes=5, config=cfg, seed=0).fit(
            data.u_train, data.y_train)
        descent = DFRClassifier(n_nodes=5, config=cfg, search="descent",
                                population=1, seed=0).fit(
            data.u_train, data.y_train)
        assert descent.A_ == plain.A_
        assert descent.B_ == plain.B_
        assert descent.beta_ == plain.beta_
        np.testing.assert_array_equal(descent.predict(data.u_test),
                                      plain.predict(data.u_test))

    def test_population_selects_by_validation(self, data):
        cfg = TrainerConfig(epochs=3, batch_size=8)
        clf = DFRClassifier(n_nodes=5, config=cfg, search="descent",
                            population=4, seed=0).fit(
            data.u_train, data.y_train)
        assert clf.population_.population == 4
        # the winner is one of the members
        endpoints = {(m.result.A, m.result.B) for m in clf.population_.members}
        assert (clf.A_, clf.B_) in endpoints
        assert clf.score(data.u_test, data.y_test) > 0.5

    def test_classifier_descent_chunks_by_block_size(self, data, monkeypatch):
        """Regression: classifier training is chunked by the candidate
        block size (bounded memory at any population) without changing the
        winner — chunking is trajectory-invariant."""
        cfg = TrainerConfig(epochs=3, batch_size=8)

        def fit_with_block(block):
            if block is None:
                monkeypatch.delenv("REPRO_CANDIDATE_BLOCK_SIZE",
                                   raising=False)
            else:
                monkeypatch.setenv("REPRO_CANDIDATE_BLOCK_SIZE", str(block))
            return DFRClassifier(n_nodes=5, config=cfg, search="descent",
                                 population=5, seed=0).fit(
                data.u_train, data.y_train)

        whole = fit_with_block(None)
        chunked = fit_with_block(2)   # 5 members -> chunks of 2, 2, 1
        assert chunked.A_ == whole.A_
        assert chunked.B_ == whole.B_
        assert chunked.beta_ == whole.beta_
        for a, b in zip(chunked.population_.members,
                        whole.population_.members):
            _assert_same_training(a.result, b.result)

    def test_env_population_resolution(self, data, monkeypatch):
        cfg = TrainerConfig(epochs=2, batch_size=8)
        monkeypatch.setenv("REPRO_POPULATION", "3")
        clf = DFRClassifier(n_nodes=5, config=cfg, search="descent",
                            seed=0).fit(data.u_train, data.y_train)
        assert clf.population_.population == 3

    def test_backprop_path_untouched(self, data):
        clf = DFRClassifier(n_nodes=5, config=TrainerConfig(epochs=2),
                            seed=0).fit(data.u_train, data.y_train)
        assert clf.population_ is None

    def test_invalid_search_rejected(self):
        with pytest.raises(ValueError, match="search"):
            DFRClassifier(search="quantum")
