"""Tests for the candidate axis: stacked sweeps and the vectorized executor.

The contract under test is *bit-parity on NumPy*: a vector-``(A, B)``
sweep — through the reservoir, the DPRR contraction, the batched backward,
and the whole fused candidate evaluation — must reproduce the scalar
per-candidate path exactly, row for row.  On top of that sit the
executor-level guarantees: result ordering, block chunking, row-wise fault
isolation, and the ``REPRO_EXECUTOR`` / ``REPRO_CANDIDATE_BLOCK_SIZE``
resolution knobs.
"""

import numpy as np
import pytest

import repro.core.pipeline as pipeline_mod
from repro.core.backprop import BackpropEngine, batch_reservoir_backward
from repro.core.grid_search import GridSearch
from repro.core.hyperopt import RandomSearch
from repro.core.pipeline import (
    DFRFeatureExtractor,
    evaluate_fixed_params,
    evaluate_fixed_params_block,
)
from repro.data.loaders import make_toy_dataset
from repro.exec import (
    Candidate,
    EvaluationContext,
    MultiprocessExecutor,
    SerialExecutor,
    VectorizedExecutor,
    make_executor,
    resolve_candidate_block_size,
    resolve_executor_kind,
)
from repro.readout.softmax import SoftmaxReadout, one_hot
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR

A_VEC = np.array([0.10, 0.02, 0.30, 0.005])
B_VEC = np.array([0.05, 0.20, 0.01, 0.150])
K = len(A_VEC)


@pytest.fixture(scope="module")
def toy():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=20,
                            n_train=30, n_test=30, noise=0.3, seed=7)
    ext = DFRFeatureExtractor(n_nodes=5, seed=0).fit(data.u_train)
    return data, ext


def _context(data, ext, **kwargs):
    return EvaluationContext(
        extractor=ext.snapshot(),
        u_train=data.u_train, y_train=data.y_train,
        u_test=data.u_test, y_test=data.y_test,
        n_classes=3, **kwargs,
    )


def _candidates(n, seed=123):
    rng = np.random.default_rng(0)
    return [
        Candidate(index=i, A=float(10.0 ** rng.uniform(-3, -1)),
                  B=float(10.0 ** rng.uniform(-2, -1)), seed=seed)
        for i in range(n)
    ]


class TestStackedReservoir:
    """Vector-(A, B) runs match per-candidate scalar runs bit for bit."""

    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(3)
        mask = InputMask.binary(n_nodes=6, n_channels=2, seed=0)
        u = rng.normal(size=(5, 14, 2))
        return mask, u

    @pytest.mark.parametrize("nonlinearity", ["identity", "tanh"])
    def test_run_matches_scalar_rows(self, setup, nonlinearity):
        # "identity" exercises the flat-chain fast path (per-candidate
        # lfilter loop), "tanh" the per-step stacked-filter path
        mask, u = setup
        dfr = ModularDFR(mask, nonlinearity=nonlinearity)
        trace = dfr.run(u, A_VEC, B_VEC)
        assert trace.stacked
        assert trace.n_candidates == K
        assert trace.states.shape == (K, 5, 15, 6)
        assert trace.pre_activations.shape == (K, 5, 14, 6)
        assert trace.diverged.shape == (K, 5)
        for k in range(K):
            ref = dfr.run(u, float(A_VEC[k]), float(B_VEC[k]))
            np.testing.assert_array_equal(trace.states[k], ref.states)
            np.testing.assert_array_equal(trace.pre_activations[k],
                                          ref.pre_activations)
            np.testing.assert_array_equal(trace.diverged[k], ref.diverged)

    @pytest.mark.parametrize("nonlinearity", ["identity", "tanh"])
    def test_run_streaming_matches_scalar_rows(self, setup, nonlinearity):
        mask, u = setup
        dfr = ModularDFR(mask, nonlinearity=nonlinearity)
        result = dfr.run_streaming(u, A_VEC, B_VEC, window=3)
        assert result.stacked
        assert result.window == 3
        for k in range(K):
            ref = dfr.run_streaming(u, float(A_VEC[k]), float(B_VEC[k]),
                                    window=3)
            np.testing.assert_array_equal(result.window_states[k],
                                          ref.window_states)
            np.testing.assert_array_equal(result.window_pre_activations[k],
                                          ref.window_pre_activations)
            np.testing.assert_array_equal(result.dprr_sums[0][k],
                                          ref.dprr_sums[0])
            np.testing.assert_array_equal(result.dprr_sums[1][k],
                                          ref.dprr_sums[1])
            np.testing.assert_array_equal(result.diverged[k], ref.diverged)

    def test_final_window_slices_candidate_axis(self, setup):
        mask, u = setup
        dfr = ModularDFR(mask)
        trace = dfr.run(u, A_VEC, B_VEC)
        window = trace.final_window(2)
        assert window.stacked
        assert window.window_states.shape == (K, 5, 3, 6)
        streamed = dfr.run_streaming(u, A_VEC, B_VEC, window=2)
        np.testing.assert_allclose(window.window_states,
                                   streamed.window_states)

    def test_scalar_broadcasts_against_vector(self, setup):
        mask, u = setup
        dfr = ModularDFR(mask)
        trace = dfr.run(u, 0.1, B_VEC)
        for k in range(K):
            ref = dfr.run(u, 0.1, float(B_VEC[k]))
            np.testing.assert_array_equal(trace.states[k], ref.states)

    def test_vector_validation(self, setup):
        mask, u = setup
        dfr = ModularDFR(mask)
        with pytest.raises(ValueError):
            dfr.run(u, np.array([0.1, 0.2]), np.array([0.1, 0.2, 0.3]))
        with pytest.raises(ValueError):
            dfr.run(u, np.array([0.1, np.nan]), np.array([0.1, 0.2]))


class TestStackedDPRR:
    def test_features_match_scalar_rows(self):
        rng = np.random.default_rng(5)
        mask = InputMask.binary(n_nodes=5, n_channels=2, seed=1)
        dfr = ModularDFR(mask)
        u = rng.normal(size=(4, 11, 2))
        dprr = DPRR()
        trace = dfr.run(u, A_VEC, B_VEC)
        feats = dprr.features(trace)
        assert feats.shape == (K, 4, dprr.n_features(5))
        streamed = dfr.run_streaming(u, A_VEC, B_VEC, window=1)
        feats_streamed = dprr.features(streamed)
        for k in range(K):
            ref = dfr.run(u, float(A_VEC[k]), float(B_VEC[k]))
            np.testing.assert_array_equal(feats[k], dprr.features(ref))
            ref_s = dfr.run_streaming(u, float(A_VEC[k]), float(B_VEC[k]),
                                      window=1)
            np.testing.assert_array_equal(feats_streamed[k],
                                          dprr.features(ref_s))


class TestStackedBackward:
    """K-candidate training gradients match per-candidate calls bit for bit."""

    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(11)
        mask = InputMask.binary(n_nodes=6, n_channels=2, seed=0)
        dfr = ModularDFR(mask, nonlinearity="tanh")
        dprr = DPRR()
        u = rng.normal(size=(4, 10, 2))
        targets = one_hot(rng.integers(0, 3, size=4), 3)
        weights = rng.normal(size=(K, 3, dprr.n_features(6)))
        bias = rng.normal(size=(K, 3))
        return dfr, dprr, u, targets, weights, bias

    def test_batch_reservoir_backward_stacked_rows(self, setup):
        dfr, dprr, u, _, _, _ = setup
        rng = np.random.default_rng(2)
        trace = dfr.run(u, A_VEC, B_VEC)
        win = trace.final_window(3)
        d_repr = rng.normal(size=(K, 4, dprr.n_features(6)))
        d_a, d_b, grads = batch_reservoir_backward(
            win.window_states, win.window_pre_activations, d_repr,
            A_VEC, B_VEC, n_steps=10, nonlinearity=dfr.nonlinearity,
        )
        assert d_a.shape == (K, 4) and grads.shape == (K, 4, 3, 6)
        for k in range(K):
            ref = dfr.run(u, float(A_VEC[k]), float(B_VEC[k]))
            ref_win = ref.final_window(3)
            ra, rb, rg = batch_reservoir_backward(
                ref_win.window_states, ref_win.window_pre_activations,
                d_repr[k], float(A_VEC[k]), float(B_VEC[k]),
                n_steps=10, nonlinearity=dfr.nonlinearity,
            )
            np.testing.assert_array_equal(d_a[k], ra)
            np.testing.assert_array_equal(d_b[k], rb)
            np.testing.assert_array_equal(grads[k], rg)

    def test_backward_broadcasts_scalar_against_stack(self, setup):
        # the forward accepts mixed scalar/vector (A, B); the backward
        # must accept the same spelling for the resulting 4-D trace
        dfr, dprr, u, _, _, _ = setup
        rng = np.random.default_rng(4)
        trace = dfr.run(u, 0.1, B_VEC)
        win = trace.final_window(2)
        d_repr = rng.normal(size=(K, 4, dprr.n_features(6)))
        d_a, d_b, grads = batch_reservoir_backward(
            win.window_states, win.window_pre_activations, d_repr,
            0.1, B_VEC, n_steps=10, nonlinearity=dfr.nonlinearity,
        )
        ref_a, ref_b, ref_g = batch_reservoir_backward(
            win.window_states, win.window_pre_activations, d_repr,
            np.full(K, 0.1), B_VEC, n_steps=10,
            nonlinearity=dfr.nonlinearity,
        )
        np.testing.assert_array_equal(d_a, ref_a)
        np.testing.assert_array_equal(d_b, ref_b)
        np.testing.assert_array_equal(grads, ref_g)
        with pytest.raises(ValueError):
            batch_reservoir_backward(
                win.window_states, win.window_pre_activations, d_repr,
                np.array([0.1, 0.2]), B_VEC, n_steps=10,
                nonlinearity=dfr.nonlinearity,
            )

    def test_engine_trains_candidate_stack(self, setup):
        dfr, dprr, u, targets, weights, bias = setup
        engine = BackpropEngine(nonlinearity="tanh", dprr=dprr, window=3)
        readout = SoftmaxReadout(dprr.n_features(6), 3)
        trace = dfr.run(u, A_VEC, B_VEC)
        win = trace.final_window(3)
        grads = engine.batch_gradients(
            win.window_states, win.window_pre_activations,
            dprr.features(trace), readout, targets, A_VEC, B_VEC,
            n_steps=10, keep_state_grads=True, weights=weights, bias=bias,
        )
        assert grads.stacked
        assert grads.losses.shape == (K, 4)
        assert grads.d_weights.shape == weights.shape
        assert grads.d_bias.shape == bias.shape
        for k in range(K):
            ref_trace = dfr.run(u, float(A_VEC[k]), float(B_VEC[k]))
            ref_win = ref_trace.final_window(3)
            per = SoftmaxReadout(dprr.n_features(6), 3)
            per.weights = weights[k]
            per.bias = bias[k]
            ref = engine.batch_gradients(
                ref_win.window_states, ref_win.window_pre_activations,
                dprr.features(ref_trace), per, targets,
                float(A_VEC[k]), float(B_VEC[k]),
                n_steps=10, keep_state_grads=True,
            )
            np.testing.assert_array_equal(grads.losses[k], ref.losses)
            np.testing.assert_array_equal(grads.probs[k], ref.probs)
            np.testing.assert_array_equal(grads.d_A[k], ref.d_A)
            np.testing.assert_array_equal(grads.d_B[k], ref.d_B)
            np.testing.assert_array_equal(grads.d_weights[k], ref.d_weights)
            np.testing.assert_array_equal(grads.d_bias[k], ref.d_bias)
            np.testing.assert_array_equal(grads.state_grads[k],
                                          ref.state_grads)

    def test_stacked_softmax_shares_targets(self, setup):
        _, dprr, _, targets, weights, bias = setup
        rng = np.random.default_rng(8)
        readout = SoftmaxReadout(dprr.n_features(6), 3)
        feats = rng.normal(size=(K, 4, dprr.n_features(6)))
        out = readout.batch_loss_and_grads(feats, targets,
                                           weights=weights, bias=bias)
        assert out.losses.shape == (K, 4)
        for k in range(K):
            per = SoftmaxReadout(dprr.n_features(6), 3)
            per.weights = weights[k]
            per.bias = bias[k]
            ref = per.batch_loss_and_grads(feats[k], targets)
            np.testing.assert_array_equal(out.losses[k], ref.losses)
            np.testing.assert_array_equal(out.d_features[k], ref.d_features)

    def test_stacked_softmax_partial_overrides(self, setup):
        # a weight stack with the readout's own (shared) bias — and the
        # other way round — must broadcast per candidate, not crash
        _, dprr, _, targets, weights, bias = setup
        rng = np.random.default_rng(9)
        readout = SoftmaxReadout(dprr.n_features(6), 3)
        readout.weights = rng.normal(size=readout.weights.shape)
        readout.bias = rng.normal(size=readout.bias.shape)
        feats = rng.normal(size=(K, 4, dprr.n_features(6)))
        w_only = readout.batch_loss_and_grads(feats, targets, weights=weights)
        b_only = readout.batch_loss_and_grads(feats, targets, bias=bias)
        for k in range(K):
            per = SoftmaxReadout(dprr.n_features(6), 3)
            per.weights = weights[k]
            per.bias = readout.bias
            ref = per.batch_loss_and_grads(feats[k], targets)
            np.testing.assert_array_equal(w_only.losses[k], ref.losses)
            per.weights = readout.weights
            per.bias = bias[k]
            ref = per.batch_loss_and_grads(feats[k], targets)
            np.testing.assert_array_equal(b_only.losses[k], ref.losses)
        # a bias stack against unstacked features is a shape error
        with pytest.raises(ValueError):
            readout.batch_loss_and_grads(feats[0], targets, bias=bias)


class TestStackedPipelineFeatures:
    def test_features_vector_params_match_scalar(self, toy):
        data, ext = toy
        feats, div = ext.features(data.u_train, A_VEC, B_VEC)
        assert feats.shape == (K, 30, ext.n_features)
        assert div.shape == (K, 30)
        for k in range(K):
            ref_f, ref_d = ext.features(data.u_train, float(A_VEC[k]),
                                        float(B_VEC[k]))
            np.testing.assert_array_equal(feats[k], ref_f)
            np.testing.assert_array_equal(div[k], ref_d)

    def test_feature_batch_size_chunking_identical(self, toy):
        data, ext = toy
        full, div_full = ext.features(data.u_train, A_VEC, B_VEC)
        chunked, div_chunked = ext.features(data.u_train, A_VEC, B_VEC,
                                            batch_size=7)
        np.testing.assert_array_equal(full, chunked)
        np.testing.assert_array_equal(div_full, div_chunked)

    def test_block_evaluation_matches_serial(self, toy):
        data, ext = toy
        seeds = [11, 22, 33, 44]
        block = evaluate_fixed_params_block(
            ext, data.u_train, data.y_train, data.u_test, data.y_test,
            A_VEC, B_VEC, n_classes=3, seeds=seeds,
        )
        for k in range(K):
            ref = evaluate_fixed_params(
                ext, data.u_train, data.y_train, data.u_test, data.y_test,
                float(A_VEC[k]), float(B_VEC[k]), n_classes=3, seed=seeds[k],
            )
            assert block[k] == ref

    def test_block_validation(self, toy):
        data, ext = toy
        with pytest.raises(ValueError):
            evaluate_fixed_params_block(
                ext, data.u_train, data.y_train, data.u_test, data.y_test,
                [0.1, 0.2], [0.1], n_classes=3,
            )
        with pytest.raises(ValueError):
            evaluate_fixed_params_block(
                ext, data.u_train, data.y_train, data.u_test, data.y_test,
                [0.1, 0.2], [0.1, 0.2], n_classes=3, seeds=[1],
            )


class TestVectorizedExecutor:
    def test_bit_identical_to_serial(self, toy):
        data, ext = toy
        context = _context(data, ext)
        candidates = _candidates(9)
        serial = SerialExecutor().run(context, candidates).evaluations()
        for block_size in (1, 3, 9, 64):
            fused = VectorizedExecutor(block_size=block_size).run(
                context, candidates).evaluations()
            assert fused == serial

    def test_results_in_candidate_order_with_timing(self, toy):
        data, ext = toy
        context = _context(data, ext)
        candidates = _candidates(5)
        report = VectorizedExecutor(block_size=2).run(context, candidates)
        assert [r.candidate.index for r in report.results] == [0, 1, 2, 3, 4]
        assert all(r.ok for r in report.results)
        assert report.wall_seconds > 0
        assert report.compute_seconds > 0
        assert report.wall_seconds >= report.compute_seconds * 0.99

    def test_derived_seeds_match_serial(self, toy):
        data, ext = toy
        # no explicit candidate seeds: both executors must derive the same
        # per-candidate seeds from base_seed (spawn-key splitting)
        context = _context(data, ext, base_seed=99)
        candidates = [
            Candidate(index=i, A=0.05 * (i + 1), B=0.02 * (i + 1))
            for i in range(5)
        ]
        serial = SerialExecutor().run(context, candidates).evaluations()
        fused = VectorizedExecutor(block_size=3).run(
            context, candidates).evaluations()
        assert fused == serial

    def test_nan_candidate_isolated_row_wise(self, toy):
        data, ext = toy
        context = _context(data, ext)
        candidates = _candidates(6)
        candidates[2] = Candidate(index=2, A=float("nan"), B=0.1, seed=0)
        serial = SerialExecutor().run(context, candidates)
        fused = VectorizedExecutor(block_size=4).run(context, candidates)
        assert fused.n_failed == 1
        assert [r.ok for r in fused.results] == [r.ok for r in serial.results]
        # the healthy rows of the block are unaffected and bit-identical
        assert fused.evaluations() == serial.evaluations()
        assert "ValueError" in fused.results[2].error

    def test_scoring_failure_inside_block_isolated(self, toy, monkeypatch):
        data, ext = toy
        context = _context(data, ext)
        candidates = _candidates(5)
        healthy = SerialExecutor().run(context, candidates).evaluations()
        real = pipeline_mod._score_fixed_params
        boom = candidates[3].A

        def flaky(f_train, f_test, y_train, y_test, A, B, **kwargs):
            # deterministic per-candidate failure: raises for candidate 3
            # whether scored inside the fused block or through the serial
            # path (the executor re-scores failing rows serially)
            if A == boom:
                raise RuntimeError("injected per-candidate failure")
            return real(f_train, f_test, y_train, y_test, A, B, **kwargs)

        monkeypatch.setattr(pipeline_mod, "_score_fixed_params", flaky)
        serial = SerialExecutor().run(context, candidates)
        report = VectorizedExecutor(block_size=5).run(context, candidates)
        assert report.n_failed == 1
        assert [r.ok for r in report.results] == [True, True, True, False, True]
        bad = report.results[3]
        assert bad.candidate.A == boom
        assert "injected per-candidate failure" in bad.error
        evaluations = report.evaluations()
        assert evaluations[3].diverged
        assert evaluations[3].val_loss == float("inf")
        # the failure record — traceback text included — and every healthy
        # row are bit-identical to the serial executor's
        assert evaluations == serial.evaluations()
        for k in (0, 1, 2, 4):
            assert evaluations[k] == healthy[k]

    def test_whole_block_failure_falls_back_to_serial(self, toy, monkeypatch):
        data, ext = toy
        context = _context(data, ext)
        candidates = _candidates(4)
        serial = SerialExecutor().run(context, candidates).evaluations()

        def explode(self, block):
            raise RuntimeError("fused sweep exploded")

        monkeypatch.setattr(EvaluationContext, "evaluate_block", explode)
        fused = VectorizedExecutor(block_size=4).run(
            context, candidates).evaluations()
        assert fused == serial

    def test_grid_search_parity(self, toy):
        data, ext = toy
        serial = GridSearch(ext, seed=0, executor=SerialExecutor())
        fused = GridSearch(ext, seed=0, executor=VectorizedExecutor(block_size=6))
        level_s = serial.run_level(data.u_train, data.y_train,
                                   data.u_test, data.y_test, 3, n_classes=3)
        level_v = fused.run_level(data.u_train, data.y_train,
                                  data.u_test, data.y_test, 3, n_classes=3)
        assert level_v.evaluations == level_s.evaluations
        assert level_v.best == level_s.best

    def test_random_search_parity(self, toy):
        data, ext = toy
        kwargs = dict(n_samples=8, n_classes=3)
        serial = RandomSearch(ext, seed=5, executor=SerialExecutor()).search(
            data.u_train, data.y_train, data.u_test, data.y_test, **kwargs)
        fused = RandomSearch(ext, seed=5,
                             executor=VectorizedExecutor(block_size=3)).search(
            data.u_train, data.y_train, data.u_test, data.y_test, **kwargs)
        assert fused.evaluations == serial.evaluations
        assert fused.best == serial.best

    def test_backend_spec_stamped_on_context(self, toy):
        data, ext = toy
        context = _context(data, ext)
        executor = VectorizedExecutor(block_size=4, backend="numpy")
        retargeted = executor._apply_backend(context)
        assert retargeted.backend == "numpy"
        serial = SerialExecutor().run(context, _candidates(3)).evaluations()
        assert executor.run(context, _candidates(3)).evaluations() == serial

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            VectorizedExecutor(block_size=0)


class TestExecutorResolution:
    def test_kind_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_executor_kind(None) is None
        assert resolve_executor_kind("vectorized") == "vectorized"
        monkeypatch.setenv("REPRO_EXECUTOR", "vectorized")
        assert resolve_executor_kind(None) == "vectorized"
        assert resolve_executor_kind("serial") == "serial"  # explicit wins
        with pytest.raises(ValueError):
            resolve_executor_kind("quantum")

    def test_block_size_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CANDIDATE_BLOCK_SIZE", raising=False)
        assert resolve_candidate_block_size(8) == 8
        from repro.exec import DEFAULT_CANDIDATE_BLOCK_SIZE

        assert resolve_candidate_block_size(None) == DEFAULT_CANDIDATE_BLOCK_SIZE
        monkeypatch.setenv("REPRO_CANDIDATE_BLOCK_SIZE", "5")
        assert resolve_candidate_block_size(None) == 5
        monkeypatch.setenv("REPRO_CANDIDATE_BLOCK_SIZE", "lots")
        assert resolve_candidate_block_size(None) == DEFAULT_CANDIDATE_BLOCK_SIZE
        # numeric-but-invalid env values also fall back instead of raising
        # in every default-constructed search; only explicit args raise
        monkeypatch.setenv("REPRO_CANDIDATE_BLOCK_SIZE", "0")
        assert resolve_candidate_block_size(None) == DEFAULT_CANDIDATE_BLOCK_SIZE
        with pytest.raises(ValueError):
            resolve_candidate_block_size(0)

    def test_make_executor_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        ex = make_executor(kind="vectorized", candidate_block_size=7)
        assert isinstance(ex, VectorizedExecutor)
        assert ex.block_size == 7
        monkeypatch.setenv("REPRO_EXECUTOR", "vectorized")
        assert isinstance(make_executor(None), VectorizedExecutor)
        # the env kind wins even over an explicit worker count
        assert isinstance(make_executor(4), VectorizedExecutor)
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        assert isinstance(make_executor(4), SerialExecutor)
        monkeypatch.setenv("REPRO_EXECUTOR", "multiprocess")
        ex = make_executor(None)
        assert isinstance(ex, MultiprocessExecutor)

    def test_classifier_executor_cache_stable_under_forced_kind(self, toy,
                                                                monkeypatch):
        from repro.core.pipeline import DFRClassifier

        monkeypatch.setenv("REPRO_EXECUTOR", "vectorized")
        clf = DFRClassifier(n_nodes=4, workers=4, seed=0)
        first = clf.candidate_executor()
        assert isinstance(first, VectorizedExecutor)
        # the forced kind's workers (1) differ from the requested count
        # (4); the cache must not rebuild the executor on every call
        assert clf.candidate_executor() is first

    def test_searches_accept_executor_kind(self, toy):
        data, ext = toy
        grid = GridSearch(ext, seed=0, executor_kind="vectorized",
                          candidate_block_size=4)
        assert isinstance(grid.executor, VectorizedExecutor)
        assert grid.executor.block_size == 4
        rs = RandomSearch(ext, seed=0, executor_kind="vectorized")
        assert isinstance(rs.executor, VectorizedExecutor)
