"""Unit tests for the bench harness logic (fast paths only).

Full-scale harness runs are exercised via ``repro-bench`` and the
pytest-benchmark suite; here we test the pure logic: row assembly, paper
comparison, formatting, and the CLI parser.
"""

import copy
import json

import pytest

from repro.bench.__main__ import build_parser
from repro.bench.fig6 import Fig6Result
from repro.bench.matrix import (
    MATRIX_FORMAT,
    MATRIX_FORMAT_VERSION,
    compare_matrix_reports,
    format_matrix,
    format_matrix_compare,
    parse_spec_arg,
    run_matrix,
)
from repro.bench.table1 import Table1Row, format_table1
from repro.bench.table2 import format_table2, run_table2
from repro.data.metadata import PAPER_TABLE2, dataset_keys
from repro.data.registry import spec_for_dataset


class TestTable2Harness:
    def test_all_rows_match_paper(self):
        rows = run_table2()
        assert [r.dataset for r in rows] == list(dataset_keys())
        assert all(r.matches_paper for r in rows)

    def test_subset_selection(self):
        rows = run_table2(["LIB", "WAF"])
        assert [r.dataset for r in rows] == ["LIB", "WAF"]

    def test_window_changes_simplified_column(self):
        base = run_table2(["ECG"])[0]
        wider = run_table2(["ECG"], window=8)[0]
        assert wider.simplified > base.simplified
        assert wider.naive == base.naive
        assert not wider.matches_paper  # paper's column is window=1

    def test_formatting_flags_mismatches(self):
        rows = run_table2(["ECG"], window=8)
        text = format_table2(rows)
        assert "MISMATCH" in text
        assert "0/1 rows match" in text

    def test_paper_reference_complete(self):
        assert set(PAPER_TABLE2) == set(dataset_keys())


class TestTable1Formatting:
    def _row(self, **overrides):
        defaults = dict(
            dataset="LIB",
            bp_accuracy=0.81,
            bp_seconds=12.0,
            gs_divisions=18,
            gs_seconds=8423.0,
            gs_accuracy=0.81,
            ratio=700.0,
            gs_reached_target=True,
        )
        defaults.update(overrides)
        return Table1Row(**defaults)

    def test_contains_measured_and_paper_columns(self):
        text = format_table1([self._row()])
        assert "LIB" in text
        assert "0.810" in text
        assert "700.0" in text
        assert "701.9" in text  # the paper's reference ratio for LIB

    def test_cap_marker(self):
        text = format_table1([self._row(gs_reached_target=False,
                                        gs_divisions=20)])
        assert "20+" in text

    def test_unknown_dataset_tolerated(self):
        text = format_table1([self._row(dataset="TOY")])
        assert "TOY" in text and "-" in text


class TestFig6Result:
    def test_missed_optimum_logic(self):
        result = Fig6Result(
            dataset="CHAR", levels=[], reference_best_accuracy=0.95,
            reference_divisions=10, zoom_final_accuracy=0.80,
        )
        assert result.zoom_missed_optimum
        assert result.accuracy_gap == pytest.approx(0.15)
        found = Fig6Result(
            dataset="CHAR", levels=[], reference_best_accuracy=0.95,
            reference_divisions=10, zoom_final_accuracy=0.95,
        )
        assert not found.zoom_missed_optimum


class TestParseSpecArg:
    def test_bare_generator(self):
        spec = parse_spec_arg("harmonic")
        assert spec.name == "harmonic" and spec.params == {} and spec.seed == 0

    def test_params_and_seed(self):
        spec = parse_spec_arg("harmonic:n_classes=2,noise=0.1,seed=5")
        assert spec.params == {"n_classes": 2, "noise": 0.1}
        assert isinstance(spec.params["n_classes"], int)
        assert spec.seed == 5

    def test_dotted_keys_nest(self):
        spec = parse_spec_arg(
            "drift:base.name=harmonic,base.params.n_classes=2,gain_depth=0.3"
        )
        assert spec.params["base"] == {"name": "harmonic",
                                      "params": {"n_classes": 2}}
        assert spec.params["gain_depth"] == 0.3

    def test_paper_key_resolves(self):
        assert parse_spec_arg("LIB", default_seed=3) == spec_for_dataset(
            "LIB", seed=3
        )

    def test_paper_key_takes_no_params(self):
        with pytest.raises(ValueError, match="no parameters"):
            parse_spec_arg("LIB:n_classes=2")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_spec_arg("")
        with pytest.raises(ValueError, match="key=value"):
            parse_spec_arg("harmonic:oops")
        with pytest.raises(KeyError):
            parse_spec_arg("no_such_generator")
        with pytest.raises(ValueError, match="unknown param"):
            parse_spec_arg("harmonic:wavelength=2")


class TestMatrixHarness:
    """Smoke-scale scenario matrix: 2 specs x 2 executors, random search."""

    SPECS = [
        parse_spec_arg("harmonic:n_classes=2,n_train=12,n_test=12,length=16"),
        parse_spec_arg("regime:n_classes=2,n_train=12,n_test=12,length=16"),
    ]

    @pytest.fixture(scope="class")
    def report(self):
        return run_matrix(
            self.SPECS, executors=("serial", "vectorized"),
            searches=("random",), budget=3, n_nodes=10, seed=0,
        )

    def test_versioned_schema(self, report):
        assert report["format"] == MATRIX_FORMAT
        assert report["format_version"] == MATRIX_FORMAT_VERSION
        assert len(report["cells"]) == 4  # 2 specs x 2 executors x 1 search
        for cell in report["cells"]:
            assert set(cell) == {
                "spec", "backend", "executor", "search", "val_accuracy",
                "test_accuracy", "best_A", "best_B", "best_beta",
                "diverged", "n_evaluations", "total_seconds",
                "compute_seconds", "error",
            }
            assert cell["n_evaluations"] == 3
        # the report is JSON-serializable as-is
        json.dumps(report)

    def test_executor_axis_is_score_invariant(self, report):
        by_exec = {}
        for cell in report["cells"]:
            by_exec.setdefault(cell["executor"], []).append(cell)
        for serial, vectorized in zip(by_exec["serial"],
                                      by_exec["vectorized"]):
            assert serial["spec"] == vectorized["spec"]
            for field in ("val_accuracy", "test_accuracy", "best_A",
                          "best_B", "best_beta", "diverged"):
                assert serial[field] == vectorized[field], field

    def test_deterministic_under_fixed_seed(self, report):
        again = run_matrix(
            self.SPECS, executors=("serial", "vectorized"),
            searches=("random",), budget=3, n_nodes=10, seed=0,
        )

        def strip(r):
            r = copy.deepcopy(r)
            for cell in r["cells"]:
                cell.pop("total_seconds")
                cell.pop("compute_seconds")
            return r

        assert strip(again) == strip(report)

    def test_formatting(self, report):
        text = format_matrix(report)
        assert "dataset spec" in text and "serial" in text
        assert "harmonic" in text and "regime" in text

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            run_matrix([])
        with pytest.raises(ValueError, match="unknown search"):
            run_matrix(self.SPECS, searches=("bogus",))
        with pytest.raises(ValueError, match="budget"):
            run_matrix(self.SPECS, budget=0)


def _matrix_report(cells):
    """A minimal well-formed matrix report around the given cells."""
    return {
        "format": MATRIX_FORMAT,
        "format_version": MATRIX_FORMAT_VERSION,
        "seed": 0, "budget": 3, "divisions": 4, "n_nodes": 10, "epochs": 1,
        "specs": [], "backends": ["numpy"], "executors": ["serial"],
        "searches": ["random"],
        "cells": cells,
    }


def _cell(spec="harmonic#0", *, test=0.9, val=0.9, seconds=1.0, error=None,
          executor="serial"):
    return {
        "spec": spec, "backend": "numpy", "executor": executor,
        "search": "random", "val_accuracy": val, "test_accuracy": test,
        "best_A": 0.4, "best_B": 0.5, "best_beta": 1e-2, "diverged": False,
        "n_evaluations": 3, "total_seconds": seconds,
        "compute_seconds": seconds, "error": error,
    }


class TestMatrixCompare:
    def test_clean_diff_is_ok(self):
        old = _matrix_report([_cell(test=0.90, seconds=1.0)])
        new = _matrix_report([_cell(test=0.92, seconds=1.1)])
        diff = compare_matrix_reports(old, new)
        assert diff["ok"] and diff["regressions"] == []
        assert diff["matched"] == 1
        (row,) = diff["cells"]
        assert row["test_accuracy_delta"] == pytest.approx(0.02)
        assert row["time_ratio"] == pytest.approx(1.1)
        json.dumps(diff)  # JSON-ready as-is

    def test_accuracy_regression_beyond_floor(self):
        old = _matrix_report([_cell(test=0.90)])
        new = _matrix_report([_cell(test=0.80)])
        diff = compare_matrix_reports(old, new, accuracy_floor=0.05)
        assert not diff["ok"]
        assert any("test accuracy" in msg for msg in diff["regressions"])
        # the same drop passes under a wider floor
        assert compare_matrix_reports(old, new, accuracy_floor=0.2)["ok"]

    def test_timing_regression_beyond_floor(self):
        old = _matrix_report([_cell(seconds=1.0)])
        new = _matrix_report([_cell(seconds=2.0)])
        diff = compare_matrix_reports(old, new, time_floor=0.5)
        assert not diff["ok"]
        assert any("wall time" in msg for msg in diff["regressions"])
        assert compare_matrix_reports(old, new, time_floor=1.5)["ok"]

    def test_added_removed_and_errors(self):
        old = _matrix_report([_cell("a#0"), _cell("b#0"),
                              _cell("both_broken#0", error="boom")])
        new = _matrix_report([_cell("a#0", error="exploded"), _cell("c#0"),
                              _cell("both_broken#0", error="boom")])
        diff = compare_matrix_reports(old, new)
        assert diff["added"] == ["c#0/numpy/serial/random"]
        assert diff["removed"] == ["b#0/numpy/serial/random"]
        # newly erroring cell is a regression; error-on-both is skipped
        assert not diff["ok"]
        assert any("now errors" in msg for msg in diff["regressions"])

    def test_envelope_is_strict(self):
        good = _matrix_report([_cell()])
        with pytest.raises(ValueError, match="format"):
            compare_matrix_reports({"format": "other"}, good)
        with pytest.raises(ValueError, match="format_version"):
            compare_matrix_reports(
                {**good, "format_version": 99}, good)
        with pytest.raises(TypeError, match="dict"):
            compare_matrix_reports([], good)
        with pytest.raises(ValueError, match="accuracy_floor"):
            compare_matrix_reports(good, good, accuracy_floor=-1.0)

    def test_formatting(self):
        old = _matrix_report([_cell(test=0.90)])
        new = _matrix_report([_cell(test=0.70)])
        text = format_matrix_compare(compare_matrix_reports(old, new))
        assert "REGRESSIONS" in text and "test accuracy" in text
        ok_text = format_matrix_compare(compare_matrix_reports(old, old))
        assert "no regressions" in ok_text


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--datasets", "LIB", "JPVOW"])
        assert args.command == "table1"
        assert args.datasets == ["LIB", "JPVOW"]
        args = parser.parse_args(["table2", "--window", "4"])
        assert args.window == 4
        args = parser.parse_args(["fig6", "--divisions", "3"])
        assert args.divisions == 3
        for cmd in ("ablation-truncation", "ablation-nonlinearity",
                    "ablation-bitwidth", "ablation-optimizer", "all"):
            assert build_parser().parse_args([cmd]).command == cmd

    def test_parser_matrix_command(self):
        args = build_parser().parse_args([
            "matrix", "--specs", "harmonic:n_classes=2", "LIB",
            "--executors", "serial", "vectorized",
            "--searches", "random", "grid", "--budget", "4",
        ])
        assert args.command == "matrix"
        assert args.specs == ["harmonic:n_classes=2", "LIB"]
        assert args.executors == ["serial", "vectorized"]
        assert args.searches == ["random", "grid"]
        assert args.budget == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--searches", "bogus"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--executors", "bogus"])

    def test_parser_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--datasets", "MNIST"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
