"""Unit tests for the bench harness logic (fast paths only).

Full-scale harness runs are exercised via ``repro-bench`` and the
pytest-benchmark suite; here we test the pure logic: row assembly, paper
comparison, formatting, and the CLI parser.
"""

import pytest

from repro.bench.__main__ import build_parser
from repro.bench.fig6 import Fig6Result
from repro.bench.table1 import Table1Row, format_table1
from repro.bench.table2 import format_table2, run_table2
from repro.data.metadata import PAPER_TABLE2, dataset_keys


class TestTable2Harness:
    def test_all_rows_match_paper(self):
        rows = run_table2()
        assert [r.dataset for r in rows] == list(dataset_keys())
        assert all(r.matches_paper for r in rows)

    def test_subset_selection(self):
        rows = run_table2(["LIB", "WAF"])
        assert [r.dataset for r in rows] == ["LIB", "WAF"]

    def test_window_changes_simplified_column(self):
        base = run_table2(["ECG"])[0]
        wider = run_table2(["ECG"], window=8)[0]
        assert wider.simplified > base.simplified
        assert wider.naive == base.naive
        assert not wider.matches_paper  # paper's column is window=1

    def test_formatting_flags_mismatches(self):
        rows = run_table2(["ECG"], window=8)
        text = format_table2(rows)
        assert "MISMATCH" in text
        assert "0/1 rows match" in text

    def test_paper_reference_complete(self):
        assert set(PAPER_TABLE2) == set(dataset_keys())


class TestTable1Formatting:
    def _row(self, **overrides):
        defaults = dict(
            dataset="LIB",
            bp_accuracy=0.81,
            bp_seconds=12.0,
            gs_divisions=18,
            gs_seconds=8423.0,
            gs_accuracy=0.81,
            ratio=700.0,
            gs_reached_target=True,
        )
        defaults.update(overrides)
        return Table1Row(**defaults)

    def test_contains_measured_and_paper_columns(self):
        text = format_table1([self._row()])
        assert "LIB" in text
        assert "0.810" in text
        assert "700.0" in text
        assert "701.9" in text  # the paper's reference ratio for LIB

    def test_cap_marker(self):
        text = format_table1([self._row(gs_reached_target=False,
                                        gs_divisions=20)])
        assert "20+" in text

    def test_unknown_dataset_tolerated(self):
        text = format_table1([self._row(dataset="TOY")])
        assert "TOY" in text and "-" in text


class TestFig6Result:
    def test_missed_optimum_logic(self):
        result = Fig6Result(
            dataset="CHAR", levels=[], reference_best_accuracy=0.95,
            reference_divisions=10, zoom_final_accuracy=0.80,
        )
        assert result.zoom_missed_optimum
        assert result.accuracy_gap == pytest.approx(0.15)
        found = Fig6Result(
            dataset="CHAR", levels=[], reference_best_accuracy=0.95,
            reference_divisions=10, zoom_final_accuracy=0.95,
        )
        assert not found.zoom_missed_optimum


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--datasets", "LIB", "JPVOW"])
        assert args.command == "table1"
        assert args.datasets == ["LIB", "JPVOW"]
        args = parser.parse_args(["table2", "--window", "4"])
        assert args.window == 4
        args = parser.parse_args(["fig6", "--divisions", "3"])
        assert args.divisions == 3
        for cmd in ("ablation-truncation", "ablation-nonlinearity",
                    "ablation-bitwidth", "ablation-optimizer", "all"):
            assert build_parser().parse_args([cmd]).command == cmd

    def test_parser_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--datasets", "MNIST"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
