"""Tests for dataset metadata, synthetic generators, and preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.loaders import load_dataset, make_toy_dataset
from repro.data.metadata import (
    DATASETS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    dataset_keys,
    get_spec,
)
from repro.data.preprocessing import (
    ChannelStandardizer,
    pad_or_truncate,
    stratified_split,
)
from repro.data.synthetic import (
    FAMILIES,
    class_counts,
    family_prototypes,
    generate_family,
)


class TestMetadata:
    def test_twelve_datasets_in_table_order(self):
        assert len(DATASETS) == 12
        assert dataset_keys() == (
            "ARAB", "AUS", "CHAR", "CMU", "ECG", "JPVOW",
            "KICK", "LIB", "NET", "UWAV", "WAF", "WALK",
        )

    def test_paper_tables_cover_all_datasets(self):
        assert set(PAPER_TABLE1) == set(DATASETS)
        assert set(PAPER_TABLE2) == set(DATASETS)

    def test_get_spec_case_insensitive(self):
        assert get_spec("jpvow").key == "JPVOW"
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("MNIST")

    def test_known_paper_exact_values(self):
        """Spot-check the Table 2 inversion (see DESIGN.md Sec. 4)."""
        assert (get_spec("ARAB").length, get_spec("ARAB").n_classes) == (92, 10)
        assert (get_spec("AUS").length, get_spec("AUS").n_classes) == (135, 95)
        assert (get_spec("WALK").length, get_spec("WALK").n_classes) == (1917, 2)
        assert (get_spec("NET").length, get_spec("NET").n_classes) == (993, 13)
        assert (get_spec("JPVOW").length, get_spec("JPVOW").n_classes) == (28, 9)

    def test_sizes_profiles(self):
        spec = get_spec("ARAB")
        assert spec.sizes("paper") == (6600, 2200)
        assert spec.sizes("bench") == (300, 200)
        with pytest.raises(ValueError):
            spec.sizes("huge")

    def test_bench_sizes_feasible(self):
        for spec in DATASETS.values():
            assert spec.train_bench >= spec.n_classes
            assert spec.test_bench >= spec.n_classes
            assert spec.train_bench <= spec.train_paper
            assert spec.test_bench <= spec.test_paper

    def test_all_families_registered(self):
        for spec in DATASETS.values():
            assert spec.family in FAMILIES


class TestGenerators:
    @pytest.mark.parametrize("key", ["JPVOW", "LIB", "ECG", "WAF", "NET"])
    def test_shapes_and_labels(self, key):
        data = load_dataset(key, seed=0, n_train=2 * DATASETS[key].n_classes,
                            n_test=2 * DATASETS[key].n_classes)
        spec = DATASETS[key]
        assert data.u_train.shape == (2 * spec.n_classes, spec.length,
                                      spec.n_channels)
        assert set(np.unique(data.y_train)) == set(range(spec.n_classes))
        assert np.all(np.isfinite(data.u_train))
        assert np.all(np.isfinite(data.u_test))

    def test_reproducible_under_seed(self):
        d1 = load_dataset("LIB", seed=4, n_train=30, n_test=30)
        d2 = load_dataset("LIB", seed=4, n_train=30, n_test=30)
        np.testing.assert_array_equal(d1.u_train, d2.u_train)
        np.testing.assert_array_equal(d1.y_test, d2.y_test)

    def test_different_seeds_differ(self):
        d1 = load_dataset("LIB", seed=4, n_train=30, n_test=30)
        d2 = load_dataset("LIB", seed=5, n_train=30, n_test=30)
        assert not np.array_equal(d1.u_train, d2.u_train)

    def test_different_datasets_differ_for_same_seed(self):
        d1 = load_dataset("CHAR", seed=4, n_train=20, n_test=20)
        d2 = load_dataset("LIB", seed=4, n_train=20, n_test=20)
        assert d1.u_train.shape != d2.u_train.shape or not np.array_equal(
            d1.u_train, d2.u_train
        )

    def test_class_structure_stable_across_sample_counts(self):
        """Prototypes depend only on (seed, key): growing the sample count
        must not change the class-conditional distribution (checked through
        per-class means of a moderately sized draw)."""
        small = load_dataset("WAF", seed=9, n_train=20, n_test=2)
        large = load_dataset("WAF", seed=9, n_train=80, n_test=2)
        for cls in range(2):
            mean_small = small.u_train[small.y_train == cls].mean(axis=0)
            mean_large = large.u_train[large.y_train == cls].mean(axis=0)
            # same prototype -> per-class means agree up to sampling noise
            corr = np.corrcoef(mean_small.ravel(), mean_large.ravel())[0, 1]
            assert corr > 0.8, f"class {cls} structure drifted"

    def test_classes_are_distinguishable(self):
        """Per-class mean trajectories must differ (separation knob works)."""
        data = load_dataset("WAF", seed=0, n_train=60, n_test=10)
        m0 = data.u_train[data.y_train == 0].mean(axis=0)
        m1 = data.u_train[data.y_train == 1].mean(axis=0)
        gap = np.abs(m0 - m1).mean()
        scale = data.u_train.std()
        assert gap > 0.1 * scale

    def test_requires_integer_seed(self):
        with pytest.raises(TypeError):
            load_dataset("LIB", seed=None)

    def test_unknown_family_rejected(self):
        spec = get_spec("LIB")
        bad = type(spec)(**{**spec.__dict__, "family": "quantum"})
        with pytest.raises(ValueError, match="unknown family"):
            generate_family(bad, 10, 10, seed=0)

    def test_make_toy_dataset(self):
        data = make_toy_dataset(n_classes=4, n_channels=3, length=20,
                                n_train=40, n_test=12, seed=1)
        assert data.u_train.shape == (40, 20, 3)
        assert data.n_classes == 4
        assert "TOY" in data.key
        assert len(data.summary()) > 10

    def test_class_counts_balanced(self):
        counts = class_counts(10, 3)
        assert counts.sum() == 10
        assert counts.max() - counts.min() <= 1
        with pytest.raises(ValueError):
            class_counts(2, 3)


class TestPrototypeInvariance:
    """Pin the docstring claim that class prototypes depend only on
    ``(seed, key)`` — never on sample counts or the train/test side."""

    @staticmethod
    def _spec(family, n_classes=3):
        from repro.data.metadata import DatasetSpec

        return DatasetSpec(
            key=f"TOY-{family}",
            full_name=f"toy {family} problem",
            n_channels=2,
            length=24,
            n_classes=n_classes,
            train_paper=200,
            test_paper=200,
            train_bench=200,
            test_bench=200,
            family=family,
            noise=0.3,
            separation=1.0,
        )

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_prototypes_deterministic(self, family):
        spec = self._spec(family)
        a = family_prototypes(spec, seed=11)
        b = family_prototypes(spec, seed=11)
        assert sorted(a) == sorted(b)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_prototypes_differ_across_seeds(self, family):
        spec = self._spec(family)
        a = family_prototypes(spec, seed=11)
        b = family_prototypes(spec, seed=12)
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    @staticmethod
    def _class_signature(u, y, cls):
        """Per-class mean amplitude spectrum: phase-invariant, so it is a
        stable signature even for families whose per-sample phases are
        random (harmonic, beat) and whose plain time-domain class mean
        washes out toward zero."""
        return np.abs(np.fft.rfft(u[y == cls], axis=1)).mean(axis=0).ravel()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("n_samples", [20, 200])
    def test_class_structure_tracks_prototypes(self, family, n_samples):
        """The per-class structure of a generated draw is the same whether
        20 or 200 samples are drawn, and the same on the train and test
        sides — because both consume the identical prototype stream that
        ``family_prototypes`` reports."""
        spec = self._spec(family, n_classes=2)
        u_train, y_train, u_test, y_test = generate_family(
            spec, n_samples, n_samples, seed=11
        )
        # reference signatures from an independent large draw
        u_ref, y_ref, _, _ = generate_family(spec, 400, 2, seed=11)
        for cls in range(2):
            ref = self._class_signature(u_ref, y_ref, cls)
            for u, y in ((u_train, y_train), (u_test, y_test)):
                sig = self._class_signature(u, y, cls)
                corr = np.corrcoef(sig, ref)[0, 1]
                assert corr > 0.9, (
                    f"{family} class {cls} drifted at n={n_samples} "
                    f"(corr {corr:.3f})"
                )

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_prototypes_invariant_across_sample_counts(self, family):
        """``family_prototypes`` takes no sample count at all — asserted
        here by checking the generated datasets of very different sizes
        embed the same class seed (exact equality of the reported
        prototypes plus cross-size agreement of class means above)."""
        spec = self._spec(family)
        protos = family_prototypes(spec, seed=11)
        assert protos  # every family exposes at least one prototype array
        again = family_prototypes(spec, seed=11)
        for key in protos:
            np.testing.assert_array_equal(protos[key], again[key])

    def test_unknown_family_rejected(self):
        spec = self._spec("harmonic")
        bad = type(spec)(**{**spec.__dict__, "family": "quantum"})
        with pytest.raises(ValueError, match="unknown family"):
            family_prototypes(bad, seed=0)


class TestChannelStandardizer:
    def test_zero_mean_unit_variance(self, rng):
        u = rng.normal(loc=5.0, scale=3.0, size=(20, 30, 4))
        z = ChannelStandardizer().fit_transform(u)
        np.testing.assert_allclose(z.mean(axis=(0, 1)), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=(0, 1)), 1.0, rtol=1e-10)

    def test_transform_uses_train_statistics(self, rng):
        train = rng.normal(size=(10, 20, 2))
        std = ChannelStandardizer().fit(train)
        test = rng.normal(loc=10.0, size=(5, 20, 2))
        z = std.transform(test)
        assert z.mean() > 5.0  # not re-centered on the test batch

    def test_constant_channel_not_scaled(self):
        u = np.zeros((4, 10, 2))
        u[..., 1] = 7.0
        z = ChannelStandardizer().fit_transform(u)
        np.testing.assert_array_equal(z[..., 1], 0.0)
        assert np.all(np.isfinite(z))

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            ChannelStandardizer().transform(np.zeros((2, 3, 1)))

    def test_channel_mismatch_rejected(self, rng):
        std = ChannelStandardizer().fit(rng.normal(size=(4, 5, 3)))
        with pytest.raises(ValueError):
            std.transform(rng.normal(size=(4, 5, 2)))


class TestStratifiedSplit:
    def test_partition_properties(self, rng):
        y = rng.integers(0, 4, size=100)
        fit_idx, val_idx = stratified_split(y, 0.25, seed=0)
        assert len(np.intersect1d(fit_idx, val_idx)) == 0
        assert len(fit_idx) + len(val_idx) == 100

    def test_every_class_on_fit_side(self, rng):
        y = np.repeat(np.arange(5), 4)
        fit_idx, _ = stratified_split(y, 0.4, seed=0)
        assert set(y[fit_idx]) == set(range(5))

    def test_singleton_classes_stay_on_fit_side(self):
        y = np.array([0, 1, 1, 1, 1])
        fit_idx, val_idx = stratified_split(y, 0.5, seed=0)
        assert 0 in y[fit_idx]
        assert 0 not in y[val_idx]

    def test_zero_fraction_gives_empty_val(self, rng):
        y = rng.integers(0, 3, size=30)
        fit_idx, val_idx = stratified_split(y, 0.0, seed=0)
        assert val_idx.size == 0
        assert fit_idx.size == 30

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), frac=st.floats(0.1, 0.5))
    def test_property_partition(self, seed, frac):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 5, size=60)
        fit_idx, val_idx = stratified_split(y, frac, seed=seed)
        combined = np.sort(np.concatenate([fit_idx, val_idx]))
        np.testing.assert_array_equal(combined, np.arange(60))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            stratified_split(np.array([0, 1]), 1.0)


class TestPadOrTruncate:
    def test_truncates(self, rng):
        u = rng.normal(size=(3, 10, 2))
        out = pad_or_truncate(u, 6)
        np.testing.assert_array_equal(out, u[:, :6, :])

    def test_pads_with_zeros(self, rng):
        u = rng.normal(size=(3, 4, 2))
        out = pad_or_truncate(u, 7)
        assert out.shape == (3, 7, 2)
        np.testing.assert_array_equal(out[:, 4:, :], 0.0)

    def test_noop(self, rng):
        u = rng.normal(size=(2, 5, 1))
        np.testing.assert_array_equal(pad_or_truncate(u, 5), u)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            pad_or_truncate(np.zeros((1, 3, 1)), 0)
