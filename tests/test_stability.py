"""Tests for the stability analysis and memory-capacity tools."""

import numpy as np
import pytest

from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.stability import (
    is_stable,
    memory_capacity,
    one_step_matrix,
    spectral_radius,
    stability_margin,
)


class TestOneStepMatrix:
    def test_matches_simulated_step(self, rng):
        """M must map x(k-1) -> x(k) exactly at zero input."""
        nx = 5
        a_val, b_val = 0.3, 0.4
        mat = one_step_matrix(a_val, b_val, nx)
        dfr = ModularDFR(InputMask(np.ones((nx, 1))))
        # drive the reservoir to a nonzero state, then apply one zero step
        u = np.zeros((1, 11, 1))
        u[0, :10, 0] = rng.normal(size=10)
        trace = dfr.run(u, a_val, b_val)
        x_prev = trace.states[0, 10]
        x_next = trace.states[0, 11]
        np.testing.assert_allclose(mat @ x_prev, x_next, rtol=1e-10, atol=1e-12)

    def test_structure(self):
        mat = one_step_matrix(0.2, 0.5, 3)
        # upper triangle (excluding boundary column) is zero
        assert mat[0, 1] == 0.0
        # first column: A * B^(n)
        np.testing.assert_allclose(mat[:, 0], 0.2 * 0.5 ** np.arange(3))
        # boundary column adds B^(n+1)
        assert mat[0, 2] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            one_step_matrix(0.1, 0.1, 0)


class TestSpectralRadius:
    def test_small_params_are_stable(self):
        assert is_stable(0.01, 0.01, 30)
        assert stability_margin(0.01, 0.01, 30) > 0.9

    def test_extreme_params_are_unstable(self):
        assert not is_stable(1.5, 0.9, 10)

    def test_radius_predicts_divergence(self, rng):
        """Empirical check: rho > 1 <-> the identity-shape reservoir blows
        up on persistent input, rho < 1 <-> it stays bounded."""
        nx = 8
        dfr = ModularDFR(InputMask.binary(nx, 1, seed=0))
        u = rng.normal(size=(1, 600, 1))
        for a_val, b_val in [(0.2, 0.3), (0.55, 0.55), (0.9, 0.6)]:
            rho = spectral_radius(a_val, b_val, nx)
            trace = dfr.run(u, a_val, b_val)
            peak = np.abs(trace.states).max()
            if rho < 0.95:
                assert peak < 1e3, (a_val, b_val, rho)
            elif rho > 1.05:
                assert peak > 1e3 or trace.diverged[0], (a_val, b_val, rho)

    def test_radius_monotone_in_A(self):
        rhos = [spectral_radius(a, 0.3, 10) for a in (0.1, 0.3, 0.6)]
        assert rhos[0] < rhos[1] < rhos[2]


class TestMemoryCapacity:
    def test_capacity_bounded_by_state_dimension(self):
        dfr = ModularDFR(InputMask.binary(8, 1, seed=0))
        cap = memory_capacity(dfr, 0.3, 0.4, max_lag=20, n_steps=1500, seed=0)
        assert 0.0 <= cap <= 8.0 + 1e-6

    def test_memory_depends_on_parameters(self):
        """A tiny-A reservoir barely remembers; a well-placed one does —
        the quantitative version of 'why parameters matter'."""
        dfr = ModularDFR(InputMask.binary(10, 1, seed=0))
        weak = memory_capacity(dfr, 0.001, 0.001, max_lag=15, n_steps=1200,
                               seed=0)
        strong = memory_capacity(dfr, 0.35, 0.45, max_lag=15, n_steps=1200,
                                 seed=0)
        assert strong > weak + 1.0

    def test_diverged_parameters_give_zero(self):
        dfr = ModularDFR(InputMask.binary(6, 1, seed=0))
        assert memory_capacity(dfr, 5.0, 5.0, max_lag=5, n_steps=800,
                               seed=0) == 0.0

    def test_multichannel_rejected(self):
        dfr = ModularDFR(InputMask.binary(6, 2, seed=0))
        with pytest.raises(ValueError, match="1-channel"):
            memory_capacity(dfr, 0.1, 0.1)

    def test_bad_lag_budget_rejected(self):
        dfr = ModularDFR(InputMask.binary(6, 1, seed=0))
        with pytest.raises(ValueError):
            memory_capacity(dfr, 0.1, 0.1, max_lag=0)
        with pytest.raises(ValueError):
            memory_capacity(dfr, 0.1, 0.1, max_lag=50, n_steps=100)
