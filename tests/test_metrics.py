"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.readout.metrics import (
    accuracy_score,
    confusion_matrix,
    macro_f1,
    mse,
    nrmse,
)


def test_accuracy_basic():
    assert accuracy_score([0, 1, 2, 1], [0, 1, 1, 1]) == pytest.approx(0.75)
    assert accuracy_score([1], [1]) == 1.0


def test_accuracy_empty_rejected():
    with pytest.raises(ValueError):
        accuracy_score(np.array([], dtype=int), np.array([], dtype=int))


def test_accuracy_length_mismatch_rejected():
    with pytest.raises(ValueError):
        accuracy_score([0, 1], [0])


def test_confusion_matrix_counts():
    mat = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], n_classes=3)
    expected = np.array([[1, 1, 0], [0, 1, 0], [0, 0, 1]])
    np.testing.assert_array_equal(mat, expected)
    assert mat.sum() == 4


def test_confusion_matrix_infers_class_count():
    mat = confusion_matrix([0, 3], [3, 0])
    assert mat.shape == (4, 4)


def test_macro_f1_perfect_and_worst():
    assert macro_f1([0, 1, 2], [0, 1, 2]) == pytest.approx(1.0)
    assert macro_f1([0, 0, 0], [1, 1, 1], n_classes=2) == pytest.approx(0.0)


def test_macro_f1_known_value():
    # class 0: P=1, R=0.5, F1=2/3 ; class 1: P=0.5, R=1, F1=2/3
    y_true = [0, 0, 1]
    y_pred = [0, 1, 1]
    assert macro_f1(y_true, y_pred, n_classes=2) == pytest.approx(2 / 3)


def test_mse():
    assert mse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mse([1.0], [1.0, 2.0])


def test_nrmse_zero_for_perfect_prediction(rng):
    y = rng.normal(size=100)
    assert nrmse(y, y) == pytest.approx(0.0)


def test_nrmse_one_for_mean_prediction(rng):
    y = rng.normal(size=10_000)
    pred = np.full_like(y, y.mean())
    assert nrmse(y, pred) == pytest.approx(1.0, rel=1e-6)


def test_nrmse_rejects_constant_target():
    with pytest.raises(ValueError):
        nrmse(np.ones(5), np.zeros(5))
