"""Differential tests: fast modular DFR vs the naive reference transcription."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.reference import naive_modular_forward


@pytest.mark.parametrize("nonlinearity", ["identity", "tanh", "mackey-glass", "sine"])
def test_fast_forward_matches_naive_reference(nonlinearity):
    rng = np.random.default_rng(42)
    mask = InputMask.uniform(5, 3, seed=rng)
    u = rng.normal(size=(4, 11, 3))
    a_val, b_val = 0.3, 0.25
    dfr = ModularDFR(mask, nonlinearity=nonlinearity)
    trace = dfr.run(u, a_val, b_val)
    ref_states, ref_pre = naive_modular_forward(
        u, mask.matrix, a_val, b_val, nonlinearity
    )
    np.testing.assert_allclose(trace.states, ref_states, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(trace.pre_activations, ref_pre, rtol=1e-12, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    n_nodes=st.integers(1, 7),
    n_steps=st.integers(1, 9),
    a_val=st.floats(0.01, 0.5),
    b_val=st.floats(0.01, 0.5),
    seed=st.integers(0, 10_000),
)
def test_fast_forward_matches_naive_reference_property(
    n_nodes, n_steps, a_val, b_val, seed
):
    rng = np.random.default_rng(seed)
    mask = InputMask.binary(n_nodes, 2, seed=rng)
    u = rng.normal(size=(2, n_steps, 2))
    trace = ModularDFR(mask).run(u, a_val, b_val)
    ref_states, _ = naive_modular_forward(u, mask.matrix, a_val, b_val)
    np.testing.assert_allclose(trace.states, ref_states, rtol=1e-10, atol=1e-12)


def test_initial_state_is_zero_and_shapes():
    mask = InputMask.binary(8, 2, seed=0)
    u = np.random.default_rng(0).normal(size=(3, 12, 2))
    trace = ModularDFR(mask).run(u, 0.1, 0.1)
    assert trace.states.shape == (3, 13, 8)
    assert trace.pre_activations.shape == (3, 12, 8)
    np.testing.assert_array_equal(trace.states[:, 0], 0.0)
    assert trace.n_steps == 12 and trace.n_nodes == 8 and trace.n_samples == 3


def test_node_chain_boundary_crosses_time_steps():
    # with A = 0 the update is x(k)_n = B x(k)_{n-1}: node 1 at step 2 must
    # see node N_x of step 1 through the boundary, not zero
    mask = InputMask(np.ones((3, 1)))
    dfr = ModularDFR(mask)
    u = np.zeros((1, 2, 1))
    # seed the state via one step with A = 1: x(1) = phi(j) = j = 0 here,
    # so instead drive step 1 with input and A = 1
    u[0, 0, 0] = 1.0
    trace = dfr.run(u, 1.0, 0.5)
    x1 = trace.states[0, 1]  # after step 1
    x2 = trace.states[0, 2]
    # step 2 has zero input: x(2)_1 = A*x(1)_1 + B*x(1)_3
    assert x2[0] == pytest.approx(1.0 * x1[0] + 0.5 * x1[2])


def test_first_step_first_node_has_no_feedback():
    # x(1)_1 = A*phi(j(1)_1) exactly (all feedback terms are zero)
    mask = InputMask(np.array([[2.0], [1.0]]))
    dfr = ModularDFR(mask)
    u = np.array([[[3.0]]])  # one sample, one step, one channel
    trace = dfr.run(u, 0.25, 0.9)
    assert trace.states[0, 1, 0] == pytest.approx(0.25 * 6.0)
    # and node 2 sees node 1 through B
    assert trace.states[0, 1, 1] == pytest.approx(0.25 * 3.0 + 0.9 * 0.25 * 6.0)


def test_divergence_flagging():
    mask = InputMask(np.ones((4, 1)))
    dfr = ModularDFR(mask)  # identity shape -> can diverge
    u = np.ones((2, 400, 1))
    u[1] *= 0.0  # second sample: zero input stays at zero
    trace = dfr.run(u, 2.0, 1.5)  # wildly unstable parameters
    assert trace.diverged[0]
    assert not trace.diverged[1]


def test_stable_run_not_flagged():
    mask = InputMask.binary(10, 2, seed=0)
    u = np.random.default_rng(0).normal(size=(3, 200, 2))
    trace = ModularDFR(mask).run(u, 0.3, 0.3)
    assert not trace.diverged.any()
    assert np.all(np.isfinite(trace.states))


def test_rejects_nonfinite_params():
    mask = InputMask.binary(4, 1, seed=0)
    dfr = ModularDFR(mask)
    with pytest.raises(ValueError):
        dfr.run(np.ones((1, 5, 1)), np.nan, 0.1)
    with pytest.raises(ValueError):
        dfr.run(np.ones((1, 5, 1)), 0.1, np.inf)


class TestStreaming:
    def test_streaming_window_matches_trace_tail(self):
        rng = np.random.default_rng(3)
        mask = InputMask.uniform(6, 2, seed=rng)
        dfr = ModularDFR(mask, nonlinearity="tanh")
        u = rng.normal(size=(5, 20, 2))
        trace = dfr.run(u, 0.4, 0.3)
        for window in (1, 3, 20):
            stream = dfr.run_streaming(u, 0.4, 0.3, window=window)
            np.testing.assert_allclose(
                stream.window_states,
                trace.states[:, -(window + 1):],
                rtol=1e-12,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                stream.window_pre_activations,
                trace.pre_activations[:, -window:],
                rtol=1e-12,
                atol=1e-12,
            )

    def test_streaming_dprr_sums_match_batch_dprr(self):
        rng = np.random.default_rng(4)
        mask = InputMask.uniform(5, 3, seed=rng)
        dfr = ModularDFR(mask)
        u = rng.normal(size=(3, 15, 3))
        trace = dfr.run(u, 0.2, 0.35)
        stream = dfr.run_streaming(u, 0.2, 0.35, window=2)
        dprr = DPRR(normalize=None)
        np.testing.assert_allclose(
            dprr.features(stream), dprr.features(trace), rtol=1e-10, atol=1e-12
        )

    def test_final_window_slicing_equals_streaming(self):
        rng = np.random.default_rng(5)
        mask = InputMask.uniform(4, 2, seed=rng)
        dfr = ModularDFR(mask)
        u = rng.normal(size=(2, 10, 2))
        trace = dfr.run(u, 0.3, 0.2)
        stream = dfr.run_streaming(u, 0.3, 0.2, window=4)
        sliced = trace.final_window(4)
        np.testing.assert_allclose(sliced.window_states, stream.window_states)
        np.testing.assert_allclose(
            sliced.window_pre_activations, stream.window_pre_activations
        )
        assert sliced.n_steps == stream.n_steps == 10

    def test_window_longer_than_series_is_clamped(self):
        mask = InputMask.binary(3, 1, seed=0)
        dfr = ModularDFR(mask)
        u = np.random.default_rng(0).normal(size=(1, 5, 1))
        stream = dfr.run_streaming(u, 0.2, 0.2, window=99)
        assert stream.window == 5

    def test_invalid_window_rejected(self):
        mask = InputMask.binary(3, 1, seed=0)
        dfr = ModularDFR(mask)
        with pytest.raises(ValueError):
            dfr.run_streaming(np.ones((1, 5, 1)), 0.2, 0.2, window=0)


class TestChunkedResume:
    """Feeding a series chunk by chunk via ``resume=`` is bit-identical to
    one ``run_streaming`` call over the concatenated series — the contract
    the serving layer's per-stream sessions (``repro.serve``) rely on."""

    @staticmethod
    def _chunked(dfr, u, A, B, window, chunk_sizes):
        result = None
        start = 0
        while start < u.shape[1]:
            stop = min(start + chunk_sizes[0], u.shape[1])
            result = dfr.run_streaming(
                u[:, start:stop], A, B, window=window, resume=result
            )
            start = stop
        return result

    @pytest.mark.parametrize("chunk", [1, 7, 64])
    @pytest.mark.parametrize("nonlinearity", ["identity", "tanh"])
    def test_chunked_equals_one_shot_scalar(self, chunk, nonlinearity):
        rng = np.random.default_rng(11)
        mask = InputMask.uniform(6, 2, seed=rng)
        dfr = ModularDFR(mask, nonlinearity=nonlinearity)
        u = rng.normal(size=(4, 70, 2))
        full = dfr.run_streaming(u, 0.4, 0.5, window=1)
        chunked = self._chunked(dfr, u, 0.4, 0.5, 1, [chunk])
        assert np.array_equal(chunked.window_states, full.window_states)
        assert np.array_equal(
            chunked.window_pre_activations, full.window_pre_activations
        )
        assert np.array_equal(chunked.dprr_sums[0], full.dprr_sums[0])
        assert np.array_equal(chunked.dprr_sums[1], full.dprr_sums[1])
        assert np.array_equal(chunked.diverged, full.diverged)
        assert chunked.n_steps == full.n_steps == 70

    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_chunked_equals_one_shot_stacked(self, chunk):
        # K > 1 candidates on the leading axis: every row of every carried
        # array must survive the chunk boundary bit for bit
        rng = np.random.default_rng(12)
        mask = InputMask.uniform(5, 3, seed=rng)
        dfr = ModularDFR(mask, nonlinearity="tanh")
        u = rng.normal(size=(3, 70, 3))
        A = np.array([0.2, 0.5, 0.8])
        B = np.array([0.6, 0.4, 0.1])
        full = dfr.run_streaming(u, A, B, window=1)
        chunked = self._chunked(dfr, u, A, B, 1, [chunk])
        assert chunked.stacked and chunked.window_states.shape[0] == 3
        assert np.array_equal(chunked.window_states, full.window_states)
        assert np.array_equal(chunked.dprr_sums[0], full.dprr_sums[0])
        assert np.array_equal(chunked.dprr_sums[1], full.dprr_sums[1])
        assert np.array_equal(chunked.diverged, full.diverged)

    def test_chunked_dprr_features_match_full_run(self):
        # against the one-shot full-trace pipeline the drives differ by a
        # GEMM kernel choice, so the contract is tight tolerance, not bits
        rng = np.random.default_rng(13)
        mask = InputMask.uniform(6, 2, seed=rng)
        dfr = ModularDFR(mask)
        u = rng.normal(size=(4, 40, 2))
        trace = dfr.run(u, 0.3, 0.4)
        chunked = self._chunked(dfr, u, 0.3, 0.4, 1, [7])
        dprr = DPRR(normalize=None)
        np.testing.assert_allclose(
            dprr.features(chunked), dprr.features(trace),
            rtol=1e-12, atol=1e-13,
        )

    def test_window_wider_than_one_survives_chunking(self):
        rng = np.random.default_rng(14)
        mask = InputMask.uniform(4, 2, seed=rng)
        dfr = ModularDFR(mask, nonlinearity="tanh")
        u = rng.normal(size=(2, 24, 2))
        full = dfr.run_streaming(u, 0.4, 0.3, window=4)
        chunked = self._chunked(dfr, u, 0.4, 0.3, 4, [8])
        assert np.array_equal(chunked.window_states, full.window_states)
        assert np.array_equal(
            chunked.window_pre_activations, full.window_pre_activations
        )

    def test_resume_from_sliced_trace_rejected(self):
        mask = InputMask.binary(3, 1, seed=0)
        dfr = ModularDFR(mask)
        u = np.random.default_rng(0).normal(size=(1, 10, 1))
        sliced = dfr.run(u, 0.2, 0.2).final_window(2)
        assert sliced.dprr_sums is None
        with pytest.raises(ValueError, match="sliced"):
            dfr.run_streaming(u, 0.2, 0.2, window=2, resume=sliced)

    def test_resume_window_mismatch_rejected(self):
        mask = InputMask.binary(3, 1, seed=0)
        dfr = ModularDFR(mask)
        u = np.random.default_rng(0).normal(size=(1, 10, 1))
        first = dfr.run_streaming(u, 0.2, 0.2, window=3)
        with pytest.raises(ValueError, match="window"):
            dfr.run_streaming(u, 0.2, 0.2, window=5, resume=first)

    def test_resume_wrong_type_rejected(self):
        mask = InputMask.binary(3, 1, seed=0)
        dfr = ModularDFR(mask)
        u = np.random.default_rng(0).normal(size=(1, 10, 1))
        with pytest.raises(TypeError):
            dfr.run_streaming(u, 0.2, 0.2, resume=np.zeros((1, 2, 3)))

    def test_resume_layout_mismatch_rejected(self):
        # carry from a 2-sample batch cannot resume a 3-sample batch
        mask = InputMask.binary(3, 1, seed=0)
        dfr = ModularDFR(mask)
        rng = np.random.default_rng(0)
        first = dfr.run_streaming(rng.normal(size=(2, 8, 1)), 0.2, 0.2)
        with pytest.raises(ValueError):
            dfr.run_streaming(
                rng.normal(size=(3, 8, 1)), 0.2, 0.2, resume=first
            )

    def test_divergence_flag_carries_across_chunks(self):
        # a sample that diverges in chunk 1 must stay flagged after a
        # resumed chunk even if the later chunk alone would look finite
        mask = InputMask.binary(4, 1, seed=1)
        dfr = ModularDFR(mask)
        rng = np.random.default_rng(2)
        u = np.concatenate(
            [rng.normal(size=(1, 8, 1)) * 1e300, rng.normal(size=(1, 8, 1))],
            axis=1,
        )
        first = dfr.run_streaming(u[:, :8], 0.99, 0.99)
        assert first.diverged.all()
        second = dfr.run_streaming(u[:, 8:], 0.99, 0.99, resume=first)
        assert second.diverged.all()
