"""Gradient verification: the paper's analytic backward pass against two
independent oracles (scalar autodiff and central finite differences), plus
the truncation semantics of Sec. 3.4.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff.dfr_graph import dfr_loss_gradients
from repro.core.backprop import BackpropEngine, reservoir_backward
from repro.representation.dprr import DPRR
from repro.reservoir.modular import ModularDFR
from repro.reservoir.nonlinearity import get_nonlinearity
from repro.reservoir.reference import naive_full_backward

from tests.helpers import central_difference, end_to_end_loss, small_instance


def _engine_grads(inst, window, normalize="length"):
    """Run forward + analytic backward for one sample instance."""
    dfr = inst["dfr"]
    trace = dfr.run(inst["u"], inst["A"], inst["B"])
    dprr = DPRR(normalize=normalize)
    feats = dprr.features(trace)[0]
    engine = BackpropEngine(inst["nonlinearity"], dprr=dprr, window=window)
    eff = engine.effective_window(trace.n_steps)
    win = trace.final_window(eff)
    return engine.sample_gradients(
        win.window_states[0],
        win.window_pre_activations[0],
        feats,
        inst["readout"],
        inst["target"],
        inst["A"],
        inst["B"],
        n_steps=trace.n_steps,
        keep_state_grads=True,
    )


class TestFullBPTTAgainstAutodiff:
    @pytest.mark.parametrize(
        "nonlinearity", ["identity", "tanh", "sine", "mackey-glass"]
    )
    def test_matches_autodiff_oracle(self, rng, nonlinearity):
        inst = small_instance(rng, nonlinearity=nonlinearity)
        grads = _engine_grads(inst, window=None)
        oracle = dfr_loss_gradients(
            inst["u"],
            inst["mask"].matrix,
            inst["A"],
            inst["B"],
            inst["readout"].weights,
            inst["readout"].bias,
            inst["target"],
            nonlinearity=nonlinearity,
        )
        assert grads.loss == pytest.approx(oracle.loss, rel=1e-10)
        assert grads.d_A == pytest.approx(oracle.d_A, rel=1e-8, abs=1e-10)
        assert grads.d_B == pytest.approx(oracle.d_B, rel=1e-8, abs=1e-10)
        np.testing.assert_allclose(
            grads.d_weights, oracle.d_weights, rtol=1e-8, atol=1e-10
        )
        np.testing.assert_allclose(grads.d_bias, oracle.d_bias, rtol=1e-8, atol=1e-10)

    def test_matches_autodiff_without_normalization(self, rng):
        inst = small_instance(rng)
        grads = _engine_grads(inst, window=None, normalize=None)
        oracle = dfr_loss_gradients(
            inst["u"],
            inst["mask"].matrix,
            inst["A"],
            inst["B"],
            inst["readout"].weights,
            inst["readout"].bias,
            inst["target"],
            normalize=None,
        )
        assert grads.d_A == pytest.approx(oracle.d_A, rel=1e-8)
        assert grads.d_B == pytest.approx(oracle.d_B, rel=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 99_999),
        n_nodes=st.integers(2, 6),
        n_steps=st.integers(2, 8),
    )
    def test_matches_autodiff_property(self, seed, n_nodes, n_steps):
        rng = np.random.default_rng(seed)
        inst = small_instance(rng, n_nodes=n_nodes, n_steps=n_steps)
        grads = _engine_grads(inst, window=None)
        oracle = dfr_loss_gradients(
            inst["u"],
            inst["mask"].matrix,
            inst["A"],
            inst["B"],
            inst["readout"].weights,
            inst["readout"].bias,
            inst["target"],
        )
        assert grads.d_A == pytest.approx(oracle.d_A, rel=1e-7, abs=1e-10)
        assert grads.d_B == pytest.approx(oracle.d_B, rel=1e-7, abs=1e-10)


class TestFullBPTTAgainstFiniteDifferences:
    @pytest.mark.parametrize("nonlinearity", ["identity", "tanh", "mackey-glass"])
    def test_dA_dB_match_central_differences(self, rng, nonlinearity):
        inst = small_instance(rng, nonlinearity=nonlinearity)
        grads = _engine_grads(inst, window=None)

        def loss_of_a(a_val):
            return end_to_end_loss(
                inst["u"], inst["mask"], a_val, inst["B"],
                inst["readout"].weights, inst["readout"].bias, inst["target"],
                nonlinearity=nonlinearity,
            )

        def loss_of_b(b_val):
            return end_to_end_loss(
                inst["u"], inst["mask"], inst["A"], b_val,
                inst["readout"].weights, inst["readout"].bias, inst["target"],
                nonlinearity=nonlinearity,
            )

        assert grads.d_A == pytest.approx(
            central_difference(loss_of_a, inst["A"]), rel=1e-4, abs=1e-7
        )
        assert grads.d_B == pytest.approx(
            central_difference(loss_of_b, inst["B"]), rel=1e-4, abs=1e-7
        )


class TestAgainstNaiveReferenceBackward:
    def test_fast_reservoir_backward_matches_naive(self, rng):
        """The lfilter-based backward equals the literal Eq. 23/30 loops."""
        inst = small_instance(rng, n_nodes=5, n_steps=7)
        trace = inst["dfr"].run(inst["u"], inst["A"], inst["B"])
        dr = rng.normal(size=DPRR.n_features(5))
        d_a, d_b, g = reservoir_backward(
            trace.states[0],
            trace.pre_activations[0],
            dr,
            inst["A"],
            inst["B"],
            n_steps=trace.n_steps,
            nonlinearity=get_nonlinearity("identity"),
        )
        ref_da, ref_db, ref_g = naive_full_backward(
            trace.states[0],
            trace.pre_activations[0],
            None,
            inst["A"],
            inst["B"],
            dr,
        )
        assert d_a == pytest.approx(ref_da, rel=1e-10)
        assert d_b == pytest.approx(ref_db, rel=1e-10)
        np.testing.assert_allclose(g, ref_g, rtol=1e-10, atol=1e-12)


class TestTruncation:
    def test_window_T_equals_full_bptt(self, rng):
        inst = small_instance(rng, n_steps=6)
        full = _engine_grads(inst, window=None)
        windowed = _engine_grads(inst, window=6)
        assert windowed.d_A == pytest.approx(full.d_A, rel=1e-12)
        assert windowed.d_B == pytest.approx(full.d_B, rel=1e-12)
        np.testing.assert_allclose(windowed.state_grads, full.state_grads)

    def test_window_larger_than_T_is_clamped(self, rng):
        inst = small_instance(rng, n_steps=5)
        full = _engine_grads(inst, window=None)
        clamped = _engine_grads(inst, window=50)
        assert clamped.d_A == pytest.approx(full.d_A, rel=1e-12)

    def test_truncated_window1_matches_paper_equations(self, rng):
        """Re-derive Eqs. 33-36 by hand for a random instance and compare."""
        inst = small_instance(rng, n_nodes=4, n_steps=6)
        nx = 4
        grads = _engine_grads(inst, window=1)
        trace = inst["dfr"].run(inst["u"], inst["A"], inst["B"])
        dprr = DPRR(normalize="length")  # must match _engine_grads' default
        feats = dprr.features(trace)[0]
        out = inst["readout"].loss_and_grads(feats, inst["target"])
        dr = out.d_features * dprr.scale(trace.n_steps)
        g_mat = dr[: nx * nx].reshape(nx, nx)
        g_sum = dr[nx * nx:]
        x_t = trace.states[0, -1]
        x_tm1 = trace.states[0, -2]
        s_t = trace.pre_activations[0, -1]
        # Eq. 33
        bpv = g_mat @ x_tm1 + g_sum
        # Eq. 34, solved from n = N_x down to 1 (g(T)_{N_x + 1} = 0)
        g = np.zeros(nx)
        acc = 0.0
        for n in range(nx - 1, -1, -1):
            acc = bpv[n] + inst["B"] * acc
            g[n] = acc
        # Eq. 35 with f = A * phi: df/dA = phi(s(T))
        expected_da = float(s_t @ g)  # identity shape: phi(s) = s
        # Eq. 36 with x(T)_0 = x(T-1)_{N_x}
        x_left = np.concatenate(([x_tm1[-1]], x_t[:-1]))
        expected_db = float(x_left @ g)
        assert grads.d_A == pytest.approx(expected_da, rel=1e-10)
        assert grads.d_B == pytest.approx(expected_db, rel=1e-10)

    def test_truncated_gradient_aligns_on_convergent_trajectories(self):
        """The paper justifies truncation by "the last reservoir state
        cumulatively reflects past reservoir states, and the impact of past
        states gradually attenuates".  That premise holds exactly when the
        state trajectory converges — e.g. under a constant input — where the
        per-step gradient contributions become proportional, so the
        truncated direction must align with the full BPTT direction."""
        for seed in range(6):
            rng = np.random.default_rng(seed)
            inst = small_instance(rng, n_steps=40)
            inst["u"] = np.tile(rng.normal(size=(1, 2)), (40, 1))
            full = _engine_grads(inst, window=None)
            trunc = _engine_grads(inst, window=1)
            v_full = np.array([full.d_A, full.d_B])
            v_trunc = np.array([trunc.d_A, trunc.d_B])
            cos = float(v_full @ v_trunc) / (
                np.linalg.norm(v_full) * np.linalg.norm(v_trunc)
            )
            assert cos > 0.97

    def test_intermediate_windows_interpolate(self, rng):
        """On a convergent trajectory (constant input) the truncation error
        shrinks monotonically as the window grows, reaching 0 at W = T."""
        inst = small_instance(rng, n_steps=16)
        inst["u"] = np.tile(rng.normal(size=(1, 2)), (16, 1))
        full = _engine_grads(inst, window=None)
        errs = []
        for window in (1, 4, 16):
            g = _engine_grads(inst, window=window)
            errs.append(abs(g.d_A - full.d_A) + abs(g.d_B - full.d_B))
        assert errs[2] == pytest.approx(0.0, abs=1e-12)
        assert errs[0] >= errs[1] >= errs[2]

    def test_output_layer_grads_unaffected_by_truncation(self, rng):
        inst = small_instance(rng)
        full = _engine_grads(inst, window=None)
        trunc = _engine_grads(inst, window=1)
        np.testing.assert_allclose(full.d_weights, trunc.d_weights)
        np.testing.assert_allclose(full.d_bias, trunc.d_bias)


class TestValidation:
    def test_window_shape_mismatch_rejected(self, rng):
        inst = small_instance(rng)
        with pytest.raises(ValueError, match="window_states"):
            reservoir_backward(
                np.zeros((3, 4)),
                np.zeros((3, 4)),
                np.zeros(20),
                0.1,
                0.1,
                n_steps=6,
                nonlinearity=get_nonlinearity("identity"),
            )

    def test_d_repr_size_rejected(self):
        with pytest.raises(ValueError, match="d_repr"):
            reservoir_backward(
                np.zeros((2, 4)),
                np.zeros((1, 4)),
                np.zeros(7),
                0.1,
                0.1,
                n_steps=5,
                nonlinearity=get_nonlinearity("identity"),
            )

    def test_window_exceeding_length_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            reservoir_backward(
                np.zeros((7, 3)),
                np.zeros((6, 3)),
                np.zeros(12),
                0.1,
                0.1,
                n_steps=4,
                nonlinearity=get_nonlinearity("identity"),
            )

    def test_engine_rejects_bad_window(self):
        with pytest.raises(ValueError):
            BackpropEngine(window=0)
