"""Array-backend shim: resolution, bit-identity, and cross-backend parity.

Three layers of guarantees:

* **resolution** — ``resolve_backend`` / ``default_backend`` /
  ``REPRO_BACKEND`` semantics, including the loud
  :class:`~repro.backend.BackendUnavailableError` when a requested
  library is missing (no silent NumPy fallback);
* **NumPy bit-identity** — routing the batched hot path through the
  explicit :class:`~repro.backend.NumpyBackend` reproduces the
  pre-backend implementation *bit for bit* (golden values below are
  ``float.hex()`` captures from the historical code), and the ``backend``
  knob threaded through ``TrainerConfig`` / ``DFRFeatureExtractor`` /
  ``BackendExecutor`` is a no-op for ``"numpy"``;
* **cross-backend parity** — every non-NumPy backend importable on this
  host must match the NumPy gradients within tight tolerance on fixed
  seeds; hosts without torch/cupy skip those cases cleanly (and assert
  that the skip is the *loud* error, not a quiet downgrade).
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    default_backend,
    infer_backend,
    resolve_backend,
)
from repro.core.backprop import BackpropEngine
from repro.core.pipeline import DFRFeatureExtractor
from repro.core.trainer import BackpropTrainer, TrainerConfig
from repro.data.loaders import make_toy_dataset
from repro.exec import BackendExecutor, Candidate, EvaluationContext, SerialExecutor
from repro.readout.softmax import SoftmaxReadout, one_hot
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.nonlinearity import NONLINEARITIES, Nonlinearity

NON_NUMPY = [n for n in BACKEND_NAMES if n != "numpy"]
AVAILABLE_NON_NUMPY = [n for n in available_backends() if n != "numpy"]


def _require(name):
    """Resolve a non-NumPy backend or skip the test cleanly."""
    try:
        return resolve_backend(name)
    except BackendUnavailableError as exc:
        pytest.skip(f"backend {name!r} not installed: {exc}")


# --------------------------------------------------------------------- #
# resolution semantics
# --------------------------------------------------------------------- #


class TestResolution:
    def test_none_is_the_numpy_singleton(self):
        assert isinstance(resolve_backend(None), NumpyBackend)
        assert resolve_backend(None) is resolve_backend("numpy")

    def test_instances_pass_through(self):
        xb = resolve_backend("numpy")
        assert resolve_backend(xb) is xb

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            resolve_backend("tensorflow")

    def test_bad_type_raises(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(42)

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend().name == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert default_backend().name == "numpy"

    def test_missing_backend_raises_cleanly(self):
        """An uninstalled backend must raise loudly, with install guidance.

        (On hosts where torch/cupy *are* installed this degrades to
        checking that resolution succeeds — the parity tests below then
        exercise the real thing.)
        """
        for name in NON_NUMPY:
            if name in AVAILABLE_NON_NUMPY:
                assert isinstance(resolve_backend(name), ArrayBackend)
                continue
            with pytest.raises(BackendUnavailableError, match="install"):
                resolve_backend(name)
            # the error is an ImportError subclass, so plain try/except
            # ImportError guards (the usual optional-dependency idiom) work
            assert issubclass(BackendUnavailableError, ImportError)

    def test_env_naming_missing_backend_raises(self, monkeypatch):
        missing = [n for n in NON_NUMPY if n not in AVAILABLE_NON_NUMPY]
        if not missing:
            pytest.skip("all registry backends installed on this host")
        monkeypatch.setenv(BACKEND_ENV_VAR, missing[0])
        with pytest.raises(BackendUnavailableError):
            default_backend()

    def test_infer_backend(self):
        assert infer_backend(np.zeros(3)).name == "numpy"
        assert infer_backend([1.0, 2.0]).name == "numpy"


# --------------------------------------------------------------------- #
# shared fixture: a small deterministic gradient problem
# --------------------------------------------------------------------- #


def _gradient_problem():
    rng = np.random.default_rng(1234)
    u = rng.normal(size=(6, 40, 3))
    dfr = ModularDFR(InputMask.binary(10, 3, seed=7))
    trace = dfr.run(u, 0.2, 0.3)
    dprr = DPRR()
    feats = dprr.features(trace)
    readout = SoftmaxReadout(feats.shape[1], 4)
    readout.weights = rng.normal(scale=0.01, size=readout.weights.shape)
    readout.bias = rng.normal(scale=0.01, size=readout.bias.shape)
    targets = one_hot(rng.integers(0, 4, size=6), 4)
    return u, dfr, trace, dprr, feats, readout, targets


def _batch_grads(backend, window=3):
    u, dfr, trace, dprr, feats, readout, targets = _gradient_problem()
    engine = BackpropEngine(window=window, dprr=dprr, backend=backend)
    win = trace.final_window(window)
    return engine.batch_gradients(
        win.window_states, win.window_pre_activations, feats, readout,
        targets, 0.2, 0.3, n_steps=trace.n_steps, keep_state_grads=True,
    )


# --------------------------------------------------------------------- #
# NumPy bit-identity (the pre-PR pin)
# --------------------------------------------------------------------- #


class TestNumpyBitIdentity:
    """``REPRO_BACKEND=numpy`` output is bit-identical to pre-shim code.

    The hex literals were captured from the implementation *before* the
    backend shim existed; exact (``==``) comparison pins that the NumPy
    backend performs the same operations in the same order.
    """

    GOLDEN_LOSSES = ['0x1.714451e888be2p+0', '0x1.5c15b252cc385p+0',
                     '0x1.39fa1f1d30d5cp+0', '0x1.4719e32817829p+0',
                     '0x1.334c713d77031p+0', '0x1.590b05b10fae4p+0']
    GOLDEN_D_A = ['0x1.794ffe5cb1252p-3', '0x1.3d5b75077d3cap-3',
                  '-0x1.46af63725e7f3p-4', '-0x1.51aa18b51150ep-3',
                  '-0x1.ad944d5093459p-5', '-0x1.2ba90f4361512p-3']
    GOLDEN_D_B = ['-0x1.3bf2e2ded919fp-9', '0x1.6c35bc75c4233p-4',
                  '0x1.0ea3e131c6b70p-7', '-0x1.ba53cd337b146p-7',
                  '-0x1.4bf28a4be62d1p-6', '-0x1.5910f02ecb486p-6']
    GOLDEN_D_BIAS = ['-0x1.037f64d6a2bf5p-2', '0x1.1862ca884483fp-2',
                     '0x1.e64b4258d27e8p-3', '-0x1.080906de0b03dp-2']
    GOLDEN_STATES_SUM = '0x1.2bdc2e9a5e980p+5'
    GOLDEN_FEATS_SUM = '0x1.87f0e189d36e0p+8'
    GOLDEN_DW_FROB = '0x1.f70613ff9f372p+2'

    @staticmethod
    def _unhex(values):
        return np.array([float.fromhex(v) for v in values])

    def test_golden_forward_and_features(self):
        _, _, trace, _, feats, _, _ = _gradient_problem()
        assert float(trace.states.sum()) == float.fromhex(self.GOLDEN_STATES_SUM)
        assert float(feats.sum()) == float.fromhex(self.GOLDEN_FEATS_SUM)

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_golden_batch_gradients(self, backend, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        g = _batch_grads(backend)
        np.testing.assert_array_equal(g.losses, self._unhex(self.GOLDEN_LOSSES))
        np.testing.assert_array_equal(g.d_A, self._unhex(self.GOLDEN_D_A))
        np.testing.assert_array_equal(g.d_B, self._unhex(self.GOLDEN_D_B))
        np.testing.assert_array_equal(g.d_bias, self._unhex(self.GOLDEN_D_BIAS))
        assert float(np.sqrt((g.d_weights ** 2).sum())) == \
            float.fromhex(self.GOLDEN_DW_FROB)

    def test_streaming_matches_full_trace_backend_routed(self):
        rng = np.random.default_rng(5)
        u = rng.normal(size=(4, 20, 2))
        dfr = ModularDFR(InputMask.binary(6, 2, seed=1), nonlinearity="tanh")
        sr = dfr.run_streaming(u, 0.2, 0.3, window=2)
        tr = dfr.run(u, 0.2, 0.3)
        # the streaming sweep computes its masked drive per time step so its
        # bits are chunk-invariant (the serving contract); the full-trace
        # sweep keeps the one-shot GEMM, so the two agree only to last-ulp
        # tolerance, not necessarily bit for bit
        np.testing.assert_allclose(sr.window_states,
                                   tr.states[:, -3:], rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(DPRR().features(sr), DPRR().features(tr),
                                   rtol=1e-12, atol=1e-14)

    def test_trainer_backend_knob_is_noop_for_numpy(self):
        data = make_toy_dataset(n_classes=3, n_channels=2, length=20,
                                n_train=24, n_test=6, noise=0.25, seed=11)
        results = []
        for backend in (None, "numpy"):
            config = TrainerConfig(epochs=3, batch_size=8, backend=backend)
            trainer = BackpropTrainer(ModularDFR(InputMask.binary(6, 2, seed=0)),
                                      n_classes=3, config=config, seed=0)
            results.append(trainer.fit(data.u_train, data.y_train))
        r0, r1 = results
        assert r0.A == r1.A and r0.B == r1.B
        np.testing.assert_array_equal(r0.readout.weights, r1.readout.weights)
        assert [h.mean_loss for h in r0.history] == \
            [h.mean_loss for h in r1.history]

    def test_extractor_backend_knob_is_noop_for_numpy(self):
        rng = np.random.default_rng(3)
        u = rng.normal(size=(9, 18, 2))
        ext_default = DFRFeatureExtractor(n_nodes=5, seed=0).fit(u)
        ext_numpy = DFRFeatureExtractor(n_nodes=5, backend="numpy",
                                        seed=0).fit(u)
        f0, d0 = ext_default.features(u, 0.2, 0.3)
        f1, d1 = ext_numpy.features(u, 0.2, 0.3)
        np.testing.assert_array_equal(f0, f1)
        np.testing.assert_array_equal(d0, d1)
        assert ext_numpy.snapshot().backend == "numpy"
        assert ext_numpy.snapshot().build().backend.name == "numpy"

    def test_backend_executor_bit_identical_to_serial(self):
        data = make_toy_dataset(n_classes=2, n_channels=1, length=15,
                                n_train=16, n_test=8, noise=0.3, seed=2)
        ext = DFRFeatureExtractor(n_nodes=4, seed=0).fit(data.u_train)
        context = EvaluationContext.from_data(
            ext.snapshot(), data.u_train, data.y_train,
            data.u_test, data.y_test, base_seed=0,
        )
        candidates = [Candidate(index=i, A=a, B=b, seed=7)
                      for i, (a, b) in enumerate([(0.1, 0.1), (0.3, 0.2)])]
        serial = SerialExecutor().run(context, candidates).evaluations()
        routed = BackendExecutor("numpy").run(context, candidates).evaluations()
        assert serial == routed

    def test_backend_executor_rejects_missing_backend_eagerly(self):
        missing = [n for n in NON_NUMPY if n not in AVAILABLE_NON_NUMPY]
        if not missing:
            pytest.skip("all registry backends installed on this host")
        with pytest.raises(BackendUnavailableError):
            BackendExecutor(missing[0])


# --------------------------------------------------------------------- #
# op-level and gradient parity for every installed non-NumPy backend
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", NON_NUMPY)
class TestBackendParity:
    """Each installed accelerator backend must match NumPy; others skip."""

    def test_first_order_filter_matches_scipy(self, name, rng):
        xb = _require(name)
        ref = resolve_backend("numpy")
        x = rng.normal(size=(5, 12))
        zi = rng.normal(size=(5, 1))
        for coef in (0.0, 0.3, 0.95):
            got = xb.to_numpy(xb.first_order_filter(
                xb.asarray(x), coef, xb.asarray(zi)))
            want = ref.first_order_filter(x, coef, zi)
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-14)

    def test_first_order_filter_stacked_matches_scipy(self, name, rng):
        xb = _require(name)
        ref = resolve_backend("numpy")
        x = rng.normal(size=(3, 5, 12))
        zi = rng.normal(size=(3, 5, 1))
        coefs = np.array([0.0, 0.3, 0.95])
        got = xb.to_numpy(xb.first_order_filter_stacked(
            xb.asarray(x), coefs, xb.asarray(zi)))
        want = ref.first_order_filter_stacked(x, coefs, zi)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-14)
        # stacked rows must equal the scalar filter of that coefficient
        for k, coef in enumerate(coefs):
            np.testing.assert_allclose(
                got[k],
                xb.to_numpy(xb.first_order_filter(
                    xb.asarray(x[k]), float(coef), xb.asarray(zi[k]))),
                rtol=1e-12, atol=1e-14)
        # the minimal documented shape — (K, n), no sample axis — must
        # return (K, n) like the NumPy reference, not a mis-broadcast
        x2 = rng.normal(size=(3, 12))
        zi2 = rng.normal(size=(3, 1))
        got2 = xb.to_numpy(xb.first_order_filter_stacked(
            xb.asarray(x2), coefs, xb.asarray(zi2)))
        want2 = ref.first_order_filter_stacked(x2, coefs, zi2)
        assert got2.shape == want2.shape == (3, 12)
        np.testing.assert_allclose(got2, want2, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("nonlinearity", ["identity", "tanh"])
    def test_stacked_forward_parity(self, name, nonlinearity, rng):
        xb = _require(name)
        u = rng.normal(size=(4, 15, 2))
        dfr = ModularDFR(InputMask.binary(6, 2, seed=0),
                         nonlinearity=nonlinearity)
        a_vec = np.array([0.1, 0.25, 0.05])
        b_vec = np.array([0.3, 0.02, 0.2])
        ref = dfr.run(u, a_vec, b_vec)
        got = dfr.run(u, a_vec, b_vec, backend=xb)
        assert got.stacked
        np.testing.assert_allclose(xb.to_numpy(got.states), ref.states,
                                   rtol=1e-10, atol=1e-12)
        np.testing.assert_array_equal(got.diverged, ref.diverged)

    def test_structural_ops_roundtrip(self, name, rng):
        xb = _require(name)
        a = rng.normal(size=(4, 6))
        ta = xb.asarray(a)
        np.testing.assert_array_equal(xb.to_numpy(xb.flip(ta, -1)), a[:, ::-1])
        np.testing.assert_array_equal(
            xb.to_numpy(xb.take(ta, [2, 0], axis=0)), a[[2, 0]])
        np.testing.assert_array_equal(
            xb.to_numpy(xb.concatenate([ta, ta], axis=1)),
            np.concatenate([a, a], axis=1))
        np.testing.assert_allclose(
            xb.to_numpy(xb.einsum("ij,ij->i", ta, ta)),
            np.einsum("ij,ij->i", a, a), rtol=1e-12)
        np.testing.assert_allclose(
            xb.to_numpy(xb.sum(ta, axis=1)), a.sum(axis=1), rtol=1e-12)
        np.testing.assert_allclose(
            xb.to_numpy(xb.max(ta, axis=-1, keepdims=True)),
            a.max(axis=-1, keepdims=True), rtol=1e-12)

    def test_shape_functions_match(self, name, rng):
        xb = _require(name)
        s = rng.normal(scale=2.0, size=(3, 50))
        ts = xb.asarray(s)
        for factory in NONLINEARITIES.values():
            nl = factory()
            np.testing.assert_allclose(
                xb.to_numpy(xb.phi(nl, ts)), nl.phi(s),
                rtol=1e-12, atol=1e-14, err_msg=f"phi[{nl.name}]")
            np.testing.assert_allclose(
                xb.to_numpy(xb.dphi(nl, ts)), nl.dphi(s),
                rtol=1e-12, atol=1e-14, err_msg=f"dphi[{nl.name}]")

    def test_unknown_shape_function_roundtrips(self, name):
        xb = _require(name)

        class Cubic(Nonlinearity):
            name = "cubic-test"

            def phi(self, s):
                return np.asarray(s) ** 3

            def dphi(self, s):
                return 3.0 * np.asarray(s) ** 2

        s = np.linspace(-1, 1, 7)
        np.testing.assert_allclose(
            xb.to_numpy(xb.phi(Cubic(), xb.asarray(s))), s ** 3, rtol=1e-12)

    @pytest.mark.parametrize("nonlinearity", ["identity", "tanh"])
    def test_forward_parity(self, name, nonlinearity, rng):
        xb = _require(name)
        u = rng.normal(size=(4, 25, 2))
        dfr = ModularDFR(InputMask.binary(8, 2, seed=0),
                         nonlinearity=nonlinearity)
        ref = dfr.run(u, 0.2, 0.3)
        got = dfr.run(u, 0.2, 0.3, backend=xb)
        np.testing.assert_allclose(xb.to_numpy(got.states), ref.states,
                                   rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(xb.to_numpy(got.pre_activations),
                                   ref.pre_activations, rtol=1e-10, atol=1e-12)
        np.testing.assert_array_equal(got.diverged, ref.diverged)

    @pytest.mark.parametrize("window", [1, 3])
    def test_gradient_parity(self, name, window):
        _require(name)
        ref = _batch_grads("numpy", window=window)
        got = _batch_grads(name, window=window)
        for field in ("losses", "probs", "d_A", "d_B",
                      "d_weights", "d_bias", "state_grads"):
            want = getattr(ref, field)
            have = getattr(got, field)
            assert isinstance(have, np.ndarray)  # engine outputs are NumPy
            np.testing.assert_allclose(
                have, want, rtol=1e-9, atol=1e-12, err_msg=field)

    def test_trainer_parity(self, name):
        _require(name)
        data = make_toy_dataset(n_classes=3, n_channels=2, length=20,
                                n_train=24, n_test=6, noise=0.25, seed=11)
        results = {}
        for backend in ("numpy", name):
            config = TrainerConfig(epochs=3, batch_size=8, backend=backend)
            trainer = BackpropTrainer(ModularDFR(InputMask.binary(6, 2, seed=0)),
                                      n_classes=3, config=config, seed=0)
            results[backend] = trainer.fit(data.u_train, data.y_train)
        assert results[name].A == pytest.approx(results["numpy"].A, rel=1e-7)
        assert results[name].B == pytest.approx(results["numpy"].B, rel=1e-7)
        np.testing.assert_allclose(results[name].readout.weights,
                                   results["numpy"].readout.weights,
                                   rtol=1e-6, atol=1e-9)
