"""Equivalence tests across the three DFR substrates.

Pins the chain the paper builds on: the analog Mackey-Glass DDE under a
zero-order hold integrates exactly to the classic digital DFR (paper Eq. 8),
which in turn is the modular DFR with (A, B) = (eta (1 - e^-theta), e^-theta)
and a Mackey-Glass shape (paper Sec. 2.3).
"""

import numpy as np
import pytest

from repro.reservoir.analog import AnalogMGDFR
from repro.reservoir.digital import DigitalMGDFR, modular_params_from_mg
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.nonlinearity import MackeyGlass
from repro.reservoir.reference import naive_digital_mg_forward

MG = dict(eta=0.7, gamma=0.08, theta=0.25, p=2.0)


@pytest.fixture
def setup(rng):
    mask = InputMask.binary(6, 2, seed=rng)
    u = rng.normal(size=(3, 12, 2))
    return mask, u


def test_digital_matches_naive_eq8(setup):
    mask, u = setup
    digital = DigitalMGDFR(mask, **MG)
    ref = naive_digital_mg_forward(
        u, mask.matrix, MG["eta"], MG["theta"], MG["gamma"], MG["p"]
    )
    np.testing.assert_allclose(digital.run(u).states, ref, rtol=1e-12, atol=1e-12)


def test_digital_equals_equivalent_modular(setup):
    mask, u = setup
    digital = DigitalMGDFR(mask, **MG)
    a_eq, b_eq = modular_params_from_mg(MG["eta"], MG["theta"])
    modular = ModularDFR(
        InputMask(MG["gamma"] * mask.matrix), nonlinearity=MackeyGlass(p=MG["p"])
    )
    np.testing.assert_allclose(
        digital.run(u).states, modular.run(u, a_eq, b_eq).states, rtol=1e-12
    )


def test_modular_param_map():
    a_eq, b_eq = modular_params_from_mg(eta=2.0, theta=np.log(2.0))
    assert b_eq == pytest.approx(0.5)
    assert a_eq == pytest.approx(1.0)


@pytest.mark.parametrize("substeps", [1, 3, 10])
def test_analog_node_hold_exact_equals_digital_any_substeps(setup, substeps):
    """Exact integrator + per-node hold reproduces Eq. 8 independent of dt."""
    mask, u = setup
    digital = DigitalMGDFR(mask, **MG)
    analog = AnalogMGDFR(
        mask, substeps=substeps, integrator="exact", hold="node", **MG
    )
    np.testing.assert_allclose(
        analog.run(u), digital.run(u).states, rtol=1e-10, atol=1e-12
    )


def test_analog_euler_converges_to_exact(setup):
    mask, u = setup
    exact = AnalogMGDFR(mask, substeps=1, integrator="exact", hold="node", **MG).run(u)
    errs = []
    for substeps in (2, 8, 32):
        euler = AnalogMGDFR(
            mask, substeps=substeps, integrator="euler", hold="node", **MG
        ).run(u)
        errs.append(np.max(np.abs(euler - exact)))
    assert errs[0] > errs[1] > errs[2]
    assert errs[2] < 1e-2


def test_analog_substep_hold_converges_to_node_hold_at_coarse_limit(setup):
    """With one substep per node, the two hold modes see the same delayed
    sample and must agree exactly."""
    mask, u = setup
    node = AnalogMGDFR(mask, substeps=1, integrator="exact", hold="node", **MG).run(u)
    sub = AnalogMGDFR(mask, substeps=1, integrator="exact", hold="substep", **MG).run(u)
    np.testing.assert_allclose(node, sub, rtol=1e-12)


def test_analog_substep_hold_differs_then_stays_bounded(setup):
    mask, u = setup
    fine = AnalogMGDFR(mask, substeps=16, integrator="exact", hold="substep", **MG)
    out = fine.run(u)
    assert np.all(np.isfinite(out))
    # MG shape is bounded by 1, so |x| <= eta in steady state
    assert np.max(np.abs(out)) <= MG["eta"] + 1e-9


def test_analog_tau(setup):
    mask, _ = setup
    analog = AnalogMGDFR(mask, **MG)
    assert analog.tau == pytest.approx(mask.n_nodes * MG["theta"])


def test_analog_validations(setup):
    mask, _ = setup
    with pytest.raises(ValueError):
        AnalogMGDFR(mask, substeps=0, **MG)
    with pytest.raises(ValueError):
        AnalogMGDFR(mask, integrator="rk4", **MG)
    with pytest.raises(ValueError):
        AnalogMGDFR(mask, hold="forever", **MG)
    with pytest.raises(ValueError):
        # Euler with dt >= 1 is rejected
        AnalogMGDFR(mask, eta=0.5, gamma=0.1, theta=2.0, substeps=1,
                    integrator="euler")


def test_digital_equivalent_params_property(setup):
    mask, _ = setup
    digital = DigitalMGDFR(mask, **MG)
    a_eq, b_eq = digital.equivalent_modular_params
    assert a_eq == pytest.approx(MG["eta"] * (1 - np.exp(-MG["theta"])))
    assert b_eq == pytest.approx(np.exp(-MG["theta"]))
