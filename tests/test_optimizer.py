"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.core.optimizer import (
    Adam,
    ConstantSchedule,
    MomentumSGD,
    SGD,
    StepSchedule,
    clip_gradients,
    get_optimizer,
    paper_output_schedule,
    paper_reservoir_schedule,
)


class TestSchedules:
    def test_paper_reservoir_schedule_values(self):
        """Sec. 4: start at 1, x0.1 at epochs 5, 10, 15, 20."""
        sched = paper_reservoir_schedule()
        expected = {1: 1.0, 4: 1.0, 5: 0.1, 9: 0.1, 10: 0.01, 14: 0.01,
                    15: 1e-3, 19: 1e-3, 20: 1e-4, 25: 1e-4}
        for epoch, lr in expected.items():
            assert sched.lr_at(epoch) == pytest.approx(lr)

    def test_paper_output_schedule_values(self):
        """Sec. 4: output layer decays at epochs 10, 15, 20 only."""
        sched = paper_output_schedule()
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(1e-3)

    def test_constant_schedule(self):
        sched = ConstantSchedule(0.5)
        assert sched.lr_at(1) == sched.lr_at(100) == 0.5

    def test_step_schedule_validation(self):
        with pytest.raises(ValueError):
            StepSchedule(0.0, (5,))
        with pytest.raises(ValueError):
            StepSchedule(1.0, (5, 3))  # not increasing
        with pytest.raises(ValueError):
            StepSchedule(1.0, (0,))  # epochs are 1-indexed
        with pytest.raises(ValueError):
            StepSchedule(1.0, (5,), gamma=0.0)
        with pytest.raises(ValueError):
            StepSchedule(1.0, (5,)).lr_at(0)

    def test_vectorized_epochs_match_scalar_lookups(self):
        """Per-candidate schedule positions: array lr_at == scalar lr_at."""
        sched = paper_reservoir_schedule()
        epochs = np.array([1, 4, 5, 10, 19, 25])
        lrs = sched.lr_at(epochs)
        assert lrs.shape == epochs.shape
        for e, lr in zip(epochs, lrs):
            assert lr == sched.lr_at(int(e))  # bitwise, not approx
        with pytest.raises(ValueError):
            sched.lr_at(np.array([1, 0]))
        const = ConstantSchedule(0.5)
        np.testing.assert_array_equal(const.lr_at(epochs),
                                      np.full(epochs.shape, 0.5))


class TestClipGradients:
    def test_no_clip_below_threshold(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        norm = clip_gradients(grads, 10.0)
        assert norm == pytest.approx(5.0)
        assert grads["a"][0] == 3.0

    def test_clips_to_max_norm(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        clip_gradients(grads, 1.0)
        total = np.sqrt(grads["a"][0] ** 2 + grads["b"][0] ** 2)
        assert total == pytest.approx(1.0)
        # direction preserved
        assert grads["a"][0] / grads["b"][0] == pytest.approx(0.75)

    def test_none_disables(self):
        grads = {"a": np.array([100.0])}
        clip_gradients(grads, None)
        assert grads["a"][0] == 100.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients({"a": np.array([1.0])}, -1.0)
        with pytest.raises(ValueError):
            clip_gradients({"a": np.array([[1.0]])}, -1.0, stacked=True)

    def test_stacked_returns_per_candidate_norms(self):
        """Regression: stacked grads yield (K,) norms, not one global norm.

        A global norm over the whole stack would both report the wrong
        magnitude and couple the candidates' clips; each row must see
        exactly the scalar-path arithmetic of its own gradients.
        """
        rng = np.random.default_rng(0)
        stacked = {
            "A": rng.normal(size=4),
            "W": rng.normal(size=(4, 3, 5)) * 3.0,
        }
        # np.array(...) keeps scalar rows as (mutable) 0-d arrays, the form
        # the trainer feeds the scalar path
        per_row = [{name: np.array(g[k]) for name, g in stacked.items()}
                   for k in range(4)]
        norms = clip_gradients(stacked, 2.0, stacked=True)
        assert norms.shape == (4,)
        for k in range(4):
            ref_norm = clip_gradients(per_row[k], 2.0)
            assert norms[k] == ref_norm  # bitwise
            for name in stacked:
                np.testing.assert_array_equal(stacked[name][k],
                                              per_row[k][name])

    def test_stacked_clips_only_oversized_rows(self):
        grads = {"a": np.array([[3.0, 4.0], [0.3, 0.4]])}
        norms = clip_gradients(grads, 1.0, stacked=True)
        np.testing.assert_allclose(norms, [5.0, 0.5])
        np.testing.assert_allclose(np.linalg.norm(grads["a"][0]), 1.0)
        np.testing.assert_array_equal(grads["a"][1], [0.3, 0.4])  # untouched

    def test_stacked_none_disables(self):
        grads = {"a": np.array([[100.0], [1.0]])}
        norms = clip_gradients(grads, None, stacked=True)
        np.testing.assert_array_equal(norms, [100.0, 1.0])
        assert grads["a"][0, 0] == 100.0

    def test_stacked_rejects_scalar_grads(self):
        with pytest.raises(ValueError, match="candidate axis"):
            clip_gradients({"a": np.array(1.0)}, 1.0, stacked=True)


class TestOptimizers:
    def _params(self):
        return {"w": np.array([1.0, 2.0]), "s": np.array(0.5)}

    def test_sgd_step(self):
        params = self._params()
        grads = {"w": np.array([0.1, -0.1]), "s": np.array(0.2)}
        SGD().step(params, grads, {"w": 1.0, "s": 0.5})
        np.testing.assert_allclose(params["w"], [0.9, 2.1])
        assert params["s"] == pytest.approx(0.4)

    def test_momentum_accumulates(self):
        params = {"w": np.array([0.0])}
        grads = {"w": np.array([1.0])}
        opt = MomentumSGD(momentum=0.5)
        opt.step(params, grads, {"w": 1.0})   # v = -1    -> w = -1
        opt.step(params, grads, {"w": 1.0})   # v = -1.5  -> w = -2.5
        assert params["w"][0] == pytest.approx(-2.5)
        opt.reset()
        opt.step(params, grads, {"w": 1.0})
        assert params["w"][0] == pytest.approx(-3.5)

    def test_adam_first_step_is_lr_sized(self):
        params = {"w": np.array([0.0])}
        grads = {"w": np.array([7.0])}
        Adam().step(params, grads, {"w": 0.1})
        # bias-corrected first step magnitude ~ lr regardless of grad scale
        assert params["w"][0] == pytest.approx(-0.1, rel=1e-6)

    def test_optimizers_reduce_quadratic_loss(self):
        for opt in (SGD(), MomentumSGD(), Adam()):
            params = {"w": np.array([5.0, -3.0])}
            for _ in range(200):
                grads = {"w": 2 * params["w"]}
                opt.step(params, grads, {"w": 0.05})
            assert np.linalg.norm(params["w"]) < 0.5, repr(opt)

    def test_get_optimizer(self):
        assert isinstance(get_optimizer("sgd"), SGD)
        assert isinstance(get_optimizer("momentum"), MomentumSGD)
        assert isinstance(get_optimizer("adam"), Adam)
        inst = Adam()
        assert get_optimizer(inst) is inst
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")
        with pytest.raises(TypeError):
            get_optimizer(3.14)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.5)
        with pytest.raises(ValueError):
            ConstantSchedule(-1.0)


class TestStackedOptimizers:
    """Stacked (K, ...) optimizer state == K independent scalar optimizers.

    This is the invariant the population trainer rests on: row ``k`` of a
    stacked optimizer must be bit-identical to an independent instance
    driving that candidate alone — through masked steps (a member skipping
    a minibatch) and through ``take_rows`` compaction (retirement).
    """

    K = 3

    def _stacked_params(self, rng):
        return {
            "A": rng.normal(size=self.K),
            "W": rng.normal(size=(self.K, 2, 4)),
        }

    def _grad_stream(self, seed, n_steps):
        rng = np.random.default_rng(seed)
        return [{"A": rng.normal(size=self.K),
                 "W": rng.normal(size=(self.K, 2, 4))}
                for _ in range(n_steps)]

    @pytest.mark.parametrize("make_opt", [SGD, MomentumSGD, Adam],
                             ids=["sgd", "momentum", "adam"])
    def test_rows_match_independent_instances(self, make_opt):
        rng = np.random.default_rng(1)
        stacked_params = self._stacked_params(rng)
        solo_params = [{name: np.array(p[k])  # 0-d arrays stay mutable
                        for name, p in stacked_params.items()}
                       for k in range(self.K)]
        stacked = make_opt()
        stacked.reset(n_rows=self.K)
        solos = [make_opt() for _ in range(self.K)]
        for opt in solos:
            opt.reset()
        # per-candidate learning rates exercise the row broadcast
        lr_vec = np.array([1.0, 0.5, 0.1])
        for grads in self._grad_stream(2, 8):
            stacked.step(stacked_params, grads,
                         {"A": lr_vec, "W": lr_vec * 0.3})
            for k, opt in enumerate(solos):
                opt.step(solo_params[k],
                         {name: g[k].copy() for name, g in grads.items()},
                         {"A": float(lr_vec[k]), "W": float(lr_vec[k] * 0.3)})
        for k in range(self.K):
            for name in stacked_params:
                np.testing.assert_array_equal(stacked_params[name][k],
                                              solo_params[k][name])

    @pytest.mark.parametrize("make_opt", [SGD, MomentumSGD, Adam],
                             ids=["sgd", "momentum", "adam"])
    def test_masked_rows_stay_untouched(self, make_opt):
        """A masked-out row neither moves nor advances its state.

        For Adam this pins the per-row step count: the skipping member's
        bias correction must stay one step behind, exactly like an
        independent instance that was never stepped.
        """
        rng = np.random.default_rng(3)
        stacked_params = self._stacked_params(rng)
        solo_params = [{name: np.array(p[k])  # 0-d arrays stay mutable
                        for name, p in stacked_params.items()}
                       for k in range(self.K)]
        stacked = make_opt()
        stacked.reset(n_rows=self.K)
        solos = [make_opt() for _ in range(self.K)]
        mask_stream = [np.array([True, True, True]),
                       np.array([True, False, True]),
                       np.array([False, False, True]),
                       np.array([True, True, True])]
        for grads, mask in zip(self._grad_stream(4, 4), mask_stream):
            stacked.step(stacked_params, grads, {"A": 0.5, "W": 0.1},
                         mask=mask)
            for k, opt in enumerate(solos):
                if mask[k]:
                    opt.step(solo_params[k],
                             {name: g[k].copy()
                              for name, g in grads.items()},
                             {"A": 0.5, "W": 0.1})
        for k in range(self.K):
            for name in stacked_params:
                np.testing.assert_array_equal(stacked_params[name][k],
                                              solo_params[k][name])

    @pytest.mark.parametrize("make_opt", [SGD, MomentumSGD, Adam],
                             ids=["sgd", "momentum", "adam"])
    def test_take_rows_reindexes_state(self, make_opt):
        """Retirement compaction: surviving rows keep their trajectories."""
        rng = np.random.default_rng(5)
        stacked_params = self._stacked_params(rng)
        solo_params = [{name: np.array(p[k])  # 0-d arrays stay mutable
                        for name, p in stacked_params.items()}
                       for k in range(self.K)]
        stacked = make_opt()
        stacked.reset(n_rows=self.K)
        solos = [make_opt() for _ in range(self.K)]
        stream = self._grad_stream(6, 6)
        for grads in stream[:3]:
            stacked.step(stacked_params, grads, {"A": 0.5, "W": 0.1})
            for k, opt in enumerate(solos):
                opt.step(solo_params[k],
                         {name: g[k].copy() for name, g in grads.items()},
                         {"A": 0.5, "W": 0.1})
        # retire the middle candidate; rows 0 and 2 survive
        keep = np.array([0, 2])
        stacked_params = {name: p[keep] for name, p in stacked_params.items()}
        stacked.take_rows(keep)
        for grads in stream[3:]:
            kept_grads = {name: g[keep] for name, g in grads.items()}
            stacked.step(stacked_params, kept_grads, {"A": 0.5, "W": 0.1})
            for pos, k in enumerate(keep):
                solos[k].step(
                    solo_params[k],
                    {name: g[pos].copy() for name, g in kept_grads.items()},
                    {"A": 0.5, "W": 0.1},
                )
        for pos, k in enumerate(keep):
            for name in stacked_params:
                np.testing.assert_array_equal(stacked_params[name][pos],
                                              solo_params[k][name])

    @pytest.mark.parametrize("make_opt", [SGD, MomentumSGD, Adam],
                             ids=["sgd", "momentum", "adam"])
    def test_mask_requires_stacked_mode(self, make_opt):
        # in scalar mode a mask would boolean-index the first *parameter*
        # axis (a silent misupdate), so every optimizer rejects it
        opt = make_opt()
        opt.reset()
        with pytest.raises(ValueError, match="stacked"):
            opt.step({"w": np.array([0.0])}, {"w": np.array([1.0])},
                     {"w": 0.1}, mask=np.array([True]))

    @pytest.mark.parametrize("make_opt", [SGD, MomentumSGD, Adam],
                             ids=["sgd", "momentum", "adam"])
    def test_mask_must_be_boolean(self, make_opt):
        # an integer index array would silently corrupt Adam's per-row
        # step counts (t += mask adds the index *values*), so every
        # optimizer rejects non-boolean masks
        opt = make_opt()
        opt.reset(n_rows=2)
        with pytest.raises(ValueError, match="boolean"):
            opt.step({"w": np.zeros(2)}, {"w": np.ones(2)},
                     {"w": 0.1}, mask=np.array([0, 1]))
