"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.core.optimizer import (
    Adam,
    ConstantSchedule,
    MomentumSGD,
    SGD,
    StepSchedule,
    clip_gradients,
    get_optimizer,
    paper_output_schedule,
    paper_reservoir_schedule,
)


class TestSchedules:
    def test_paper_reservoir_schedule_values(self):
        """Sec. 4: start at 1, x0.1 at epochs 5, 10, 15, 20."""
        sched = paper_reservoir_schedule()
        expected = {1: 1.0, 4: 1.0, 5: 0.1, 9: 0.1, 10: 0.01, 14: 0.01,
                    15: 1e-3, 19: 1e-3, 20: 1e-4, 25: 1e-4}
        for epoch, lr in expected.items():
            assert sched.lr_at(epoch) == pytest.approx(lr)

    def test_paper_output_schedule_values(self):
        """Sec. 4: output layer decays at epochs 10, 15, 20 only."""
        sched = paper_output_schedule()
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(1e-3)

    def test_constant_schedule(self):
        sched = ConstantSchedule(0.5)
        assert sched.lr_at(1) == sched.lr_at(100) == 0.5

    def test_step_schedule_validation(self):
        with pytest.raises(ValueError):
            StepSchedule(0.0, (5,))
        with pytest.raises(ValueError):
            StepSchedule(1.0, (5, 3))  # not increasing
        with pytest.raises(ValueError):
            StepSchedule(1.0, (0,))  # epochs are 1-indexed
        with pytest.raises(ValueError):
            StepSchedule(1.0, (5,), gamma=0.0)
        with pytest.raises(ValueError):
            StepSchedule(1.0, (5,)).lr_at(0)


class TestClipGradients:
    def test_no_clip_below_threshold(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        norm = clip_gradients(grads, 10.0)
        assert norm == pytest.approx(5.0)
        assert grads["a"][0] == 3.0

    def test_clips_to_max_norm(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        clip_gradients(grads, 1.0)
        total = np.sqrt(grads["a"][0] ** 2 + grads["b"][0] ** 2)
        assert total == pytest.approx(1.0)
        # direction preserved
        assert grads["a"][0] / grads["b"][0] == pytest.approx(0.75)

    def test_none_disables(self):
        grads = {"a": np.array([100.0])}
        clip_gradients(grads, None)
        assert grads["a"][0] == 100.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients({"a": np.array([1.0])}, -1.0)


class TestOptimizers:
    def _params(self):
        return {"w": np.array([1.0, 2.0]), "s": np.array(0.5)}

    def test_sgd_step(self):
        params = self._params()
        grads = {"w": np.array([0.1, -0.1]), "s": np.array(0.2)}
        SGD().step(params, grads, {"w": 1.0, "s": 0.5})
        np.testing.assert_allclose(params["w"], [0.9, 2.1])
        assert params["s"] == pytest.approx(0.4)

    def test_momentum_accumulates(self):
        params = {"w": np.array([0.0])}
        grads = {"w": np.array([1.0])}
        opt = MomentumSGD(momentum=0.5)
        opt.step(params, grads, {"w": 1.0})   # v = -1    -> w = -1
        opt.step(params, grads, {"w": 1.0})   # v = -1.5  -> w = -2.5
        assert params["w"][0] == pytest.approx(-2.5)
        opt.reset()
        opt.step(params, grads, {"w": 1.0})
        assert params["w"][0] == pytest.approx(-3.5)

    def test_adam_first_step_is_lr_sized(self):
        params = {"w": np.array([0.0])}
        grads = {"w": np.array([7.0])}
        Adam().step(params, grads, {"w": 0.1})
        # bias-corrected first step magnitude ~ lr regardless of grad scale
        assert params["w"][0] == pytest.approx(-0.1, rel=1e-6)

    def test_optimizers_reduce_quadratic_loss(self):
        for opt in (SGD(), MomentumSGD(), Adam()):
            params = {"w": np.array([5.0, -3.0])}
            for _ in range(200):
                grads = {"w": 2 * params["w"]}
                opt.step(params, grads, {"w": 0.05})
            assert np.linalg.norm(params["w"]) < 0.5, repr(opt)

    def test_get_optimizer(self):
        assert isinstance(get_optimizer("sgd"), SGD)
        assert isinstance(get_optimizer("momentum"), MomentumSGD)
        assert isinstance(get_optimizer("adam"), Adam)
        inst = Adam()
        assert get_optimizer(inst) is inst
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")
        with pytest.raises(TypeError):
            get_optimizer(3.14)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.5)
        with pytest.raises(ValueError):
            ConstantSchedule(-1.0)
