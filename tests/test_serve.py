"""Tests for the streaming inference engine (repro.serve).

The load-bearing contract: on the NumPy backend, a continuously batched
engine is *bit-identical* to a per-session serial engine replaying the
same chunks — batching trades latency for throughput, never correctness.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import DFRFeatureExtractor
from repro.data.registry import GeneratorSpec, generate, make_spec
from repro.readout.ridge import RidgeModel, fit_ridge
from repro.serve import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    SERVE_DEADLINE_ENV,
    SERVE_IDLE_TTL_ENV,
    SERVE_MAX_BATCH_ENV,
    SERVE_MAX_WAIT_ENV,
    DeadlineScheduler,
    ServableModel,
    ServeEngine,
    load_model,
    poisson_trace,
    replay,
    resolve_deadline_ms,
    spec_trace,
    resolve_max_batch,
    resolve_max_wait_ms,
    save_model,
)


@pytest.fixture(scope="module")
def trained():
    """A small fitted pipeline: extractor, (A, B), ridge readout."""
    rng = np.random.default_rng(0)
    u = rng.standard_normal((40, 32, 2))
    y = rng.integers(0, 3, 40)
    ext = DFRFeatureExtractor(n_nodes=8, seed=1).fit(u)
    A, B = 0.4, 0.5
    feats, _ = ext.features(u, A, B)
    ridge = fit_ridge(feats, y, 1e-2)
    return ext, A, B, ridge


def _model(trained, name="m0", A=None, B=None, readout=True):
    ext, a0, b0, ridge = trained
    return ServableModel(
        name=name, A=a0 if A is None else A, B=b0 if B is None else B,
        config=ext.snapshot(), readout=ridge if readout else None,
    )


# --------------------------------------------------------------------- #
# persistence
# --------------------------------------------------------------------- #


class TestModelStore:
    def test_save_load_round_trip_is_exact(self, trained, tmp_path):
        model = _model(trained)
        path = save_model(model, str(tmp_path / "m.json"))
        back = load_model(path)
        assert back.name == model.name
        assert back.A == model.A and back.B == model.B
        assert back.fingerprint() == model.fingerprint()
        assert np.array_equal(
            np.asarray(back.config.mask_matrix),
            np.asarray(model.config.mask_matrix),
        )
        assert np.array_equal(back.readout.coef, model.readout.coef)
        # the reloaded pipeline scores bit-identically
        rng = np.random.default_rng(9)
        u = rng.standard_normal((3, 16, 2))
        f_a, _ = model.config.build().features(u, model.A, model.B)
        f_b, _ = back.config.build().features(u, back.A, back.B)
        assert np.array_equal(f_a, f_b)
        assert np.array_equal(
            model.readout.scores(f_a), back.readout.scores(f_b)
        )

    def test_readout_optional(self, trained, tmp_path):
        model = _model(trained, readout=False)
        back = load_model(save_model(model, str(tmp_path / "m.json")))
        assert back.readout is None

    def test_envelope_is_strict(self, trained, tmp_path):
        model = _model(trained)
        path = save_model(model, str(tmp_path / "m.json"))
        with open(path) as fh:
            doc = json.load(fh)

        bad = dict(doc)
        bad["extra"] = 1
        with pytest.raises(ValueError, match="unknown keys"):
            ServableModel.from_dict(bad)

        bad = {k: v for k, v in doc.items() if k != "A"}
        with pytest.raises(ValueError, match="missing keys"):
            ServableModel.from_dict(bad)

        bad = dict(doc)
        bad["format_version"] = 99
        with pytest.raises(ValueError, match="format_version"):
            ServableModel.from_dict(bad)

        bad = dict(doc)
        bad["format"] = "something-else"
        with pytest.raises(ValueError, match="not a repro-dfr-model"):
            ServableModel.from_dict(bad)

    def test_embedded_config_schema_is_strict(self, trained, tmp_path):
        model = _model(trained)
        path = save_model(model, str(tmp_path / "m.json"))
        with open(path) as fh:
            doc = json.load(fh)
        doc["config"]["version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            ServableModel.from_dict(doc)

    def test_ridge_model_dict_round_trip(self, trained):
        _, _, _, ridge = trained
        back = RidgeModel.from_dict(
            json.loads(json.dumps(ridge.to_dict()))
        )
        f = np.random.default_rng(0).standard_normal((5, ridge.coef.shape[0]))
        assert np.array_equal(back.scores(f), ridge.scores(f))
        with pytest.raises(ValueError, match="unknown keys"):
            RidgeModel.from_dict({**ridge.to_dict(), "bonus": 1})

    def test_nonfinite_params_rejected(self, trained):
        ext, _, _, _ = trained
        with pytest.raises(ValueError, match="finite"):
            ServableModel(name="bad", A=np.nan, B=0.5, config=ext.snapshot())

    def test_fingerprint_ignores_parameters_and_backend(self, trained):
        # same pipeline, different (A, B) / backend prefs -> same sweep
        a = _model(trained, A=0.2, B=0.7)
        b = _model(trained, A=0.9, B=0.1)
        assert a.fingerprint() == b.fingerprint()
        ext, _, _, _ = trained
        cfg = ext.snapshot()
        cfg.dtype = "float32"
        c = ServableModel(name="c", A=0.2, B=0.7, config=cfg)
        assert c.fingerprint() == a.fingerprint()


# --------------------------------------------------------------------- #
# engine semantics
# --------------------------------------------------------------------- #


class TestEngineScheduling:
    def test_submit_computes_nothing_until_tick(self, trained):
        engine = ServeEngine(max_batch=8)
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))
        assert engine.pop_results() == []
        engine.tick()
        results = engine.pop_results()
        assert len(results) == 1
        assert results[0].session_id == sid and results[0].seq == 0

    def test_fifo_order_and_requeue(self, trained):
        # two chunks on one session: only the head goes per tick, the
        # session re-enters the queue behind the others
        engine = ServeEngine(max_batch=8)
        engine.deploy(_model(trained))
        s1, s2 = engine.open_session("m0"), engine.open_session("m0")
        rng = np.random.default_rng(0)
        engine.submit(s1, rng.standard_normal((4, 2)))
        engine.submit(s1, rng.standard_normal((4, 2)))
        engine.submit(s2, rng.standard_normal((4, 2)))
        r1 = engine.tick()
        assert r1.processed == 2  # one chunk per session
        r2 = engine.tick()
        assert r2.processed == 1  # s1's second chunk
        seqs = [(r.session_id, r.seq) for r in engine.pop_results()]
        assert seqs == [(s1, 0), (s2, 0), (s1, 1)]

    def test_max_batch_bounds_a_tick(self, trained):
        engine = ServeEngine(max_batch=2)
        engine.deploy(_model(trained))
        sids = [engine.open_session("m0") for _ in range(5)]
        for sid in sids:
            engine.submit(sid, np.zeros((4, 2)))
        assert engine.tick().processed == 2
        assert engine.tick().processed == 2
        assert engine.tick().processed == 1

    def test_max_wait_defers_partial_batches(self, trained):
        t = [0.0]
        engine = ServeEngine(max_batch=4, max_wait_ms=50.0,
                             clock=lambda: t[0])
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))
        report = engine.tick()
        assert report.deferred and report.processed == 0
        t[0] = 0.010  # 10 ms: still inside the wait budget
        assert engine.tick().deferred
        t[0] = 0.051  # deadline passed: the partial batch goes
        report = engine.tick()
        assert not report.deferred and report.processed == 1

    def test_full_batch_is_never_deferred(self, trained):
        t = [0.0]
        engine = ServeEngine(max_batch=2, max_wait_ms=1e6,
                             clock=lambda: t[0])
        engine.deploy(_model(trained))
        for _ in range(2):
            sid = engine.open_session("m0")
            engine.submit(sid, np.zeros((4, 2)))
        report = engine.tick()
        assert report.processed == 2 and not report.deferred

    def test_force_overrides_deferral(self, trained):
        engine = ServeEngine(max_batch=4, max_wait_ms=1e6)
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))
        assert engine.tick().deferred
        assert engine.tick(force=True).processed == 1

    def test_submit_validation(self, trained):
        engine = ServeEngine(max_batch=4, window=3)
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        with pytest.raises(ValueError, match="channels"):
            engine.submit(sid, np.zeros((4, 5)))
        with pytest.raises(ValueError, match="window"):
            engine.submit(sid, np.zeros((2, 2)))  # shorter than window
        with pytest.raises(ValueError, match="\\(T, C\\)"):
            engine.submit(sid, np.zeros(4))
        with pytest.raises(KeyError):
            engine.submit("nope", np.zeros((4, 2)))

    def test_lifecycle_errors(self, trained):
        engine = ServeEngine()
        model = _model(trained)
        engine.deploy(model)
        with pytest.raises(ValueError, match="already deployed"):
            engine.deploy(model)
        with pytest.raises(KeyError):
            engine.open_session("ghost")
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))
        with pytest.raises(RuntimeError, match="pending"):
            engine.close_session(sid)
        engine.close_session(sid, discard=True)
        with pytest.raises(KeyError):
            engine.submit(sid, np.zeros((4, 2)))

    def test_occupancy_accounting(self, trained):
        engine = ServeEngine(max_batch=4)
        engine.deploy(_model(trained))
        for _ in range(2):
            sid = engine.open_session("m0")
            engine.submit(sid, np.zeros((4, 2)))
        report = engine.tick()
        assert report.sweeps == 1
        assert report.occupancy == pytest.approx(0.5)
        assert engine.stats()["mean_occupancy"] == pytest.approx(0.5)

    def test_env_knob_resolution(self, monkeypatch):
        assert resolve_max_batch() == DEFAULT_MAX_BATCH
        assert resolve_max_wait_ms() == DEFAULT_MAX_WAIT_MS
        monkeypatch.setenv(SERVE_MAX_BATCH_ENV, "7")
        monkeypatch.setenv(SERVE_MAX_WAIT_ENV, "12.5")
        assert resolve_max_batch() == 7
        assert resolve_max_wait_ms() == 12.5
        engine = ServeEngine()
        assert engine.max_batch == 7 and engine.max_wait_ms == 12.5
        assert resolve_max_batch(3) == 3  # explicit beats env
        monkeypatch.setenv(SERVE_MAX_BATCH_ENV, "zero")
        with pytest.raises(ValueError, match=SERVE_MAX_BATCH_ENV):
            resolve_max_batch()
        monkeypatch.setenv(SERVE_MAX_WAIT_ENV, "soon")
        with pytest.raises(ValueError, match=SERVE_MAX_WAIT_ENV):
            resolve_max_wait_ms()
        with pytest.raises(ValueError):
            resolve_max_batch(0)
        with pytest.raises(ValueError):
            resolve_max_wait_ms(-1.0)

    def test_threaded_submit_while_ticking(self, trained):
        # submits racing ticks from another thread neither crash nor lose
        # chunks
        engine = ServeEngine(max_batch=8)
        engine.deploy(_model(trained))
        sids = [engine.open_session("m0") for _ in range(4)]
        rng = np.random.default_rng(0)
        chunks = rng.standard_normal((4, 6, 4, 2))
        stop = threading.Event()

        def ticker():
            while not stop.is_set():
                engine.tick()

        t = threading.Thread(target=ticker)
        t.start()
        try:
            for c in range(6):
                for i, sid in enumerate(sids):
                    engine.submit(sid, chunks[i, c])
        finally:
            stop.set()
            t.join()
        engine.drain()
        results = engine.pop_results()
        assert len(results) == 24
        for sid in sids:
            seqs = [r.seq for r in results if r.session_id == sid]
            assert seqs == sorted(seqs) == list(range(6))


# --------------------------------------------------------------------- #
# correctness: batched == serial == offline
# --------------------------------------------------------------------- #


def _run_engine(models, assignments, chunk_plan, max_batch, window=1):
    """Push a fixed chunk plan through an engine; return results by stream."""
    engine = ServeEngine(max_batch=max_batch, window=window)
    for model in models:
        engine.deploy(model)
    sids = [engine.open_session(name) for name in assignments]
    for round_chunks in chunk_plan:
        for i, chunk in enumerate(round_chunks):
            engine.submit(sids[i], chunk)
    engine.drain()
    by_stream = {}
    for r in engine.pop_results():
        by_stream.setdefault(sids.index(r.session_id), []).append(r)
    return by_stream


class TestBatchedEqualsSerial:
    def test_single_model_bitwise(self, trained):
        rng = np.random.default_rng(7)
        streams = 6
        chunk_plan = [
            [rng.standard_normal((8, 2)) for _ in range(streams)]
            for _ in range(3)
        ]
        models = [_model(trained)]
        names = ["m0"] * streams
        serial = _run_engine(models, names, chunk_plan, max_batch=1)
        batched = _run_engine(models, names, chunk_plan, max_batch=64)
        for i in range(streams):
            for r_s, r_b in zip(serial[i], batched[i]):
                assert r_s.seq == r_b.seq
                assert np.array_equal(r_s.features, r_b.features)
                assert np.array_equal(r_s.scores, r_b.scores)
                assert r_s.label == r_b.label
                assert r_s.n_steps == r_b.n_steps

    def test_heterogeneous_models_bitwise(self, trained):
        # three models sharing the pipeline: candidate-axis packing must
        # give every stream exactly its own model's numbers
        rng = np.random.default_rng(8)
        models = [
            _model(trained, name="ma", A=0.3, B=0.6),
            _model(trained, name="mb", A=0.7, B=0.2),
            _model(trained, name="mc", A=0.5, B=0.5),
        ]
        streams = 9
        names = [models[i % 3].name for i in range(streams)]
        chunk_plan = [
            [rng.standard_normal((8, 2)) for _ in range(streams)]
            for _ in range(2)
        ]
        serial = _run_engine(models, names, chunk_plan, max_batch=1)
        batched = _run_engine(models, names, chunk_plan, max_batch=64)
        for i in range(streams):
            for r_s, r_b in zip(serial[i], batched[i]):
                assert r_b.model_name == names[i]
                assert np.array_equal(r_s.features, r_b.features)
                assert np.array_equal(r_s.scores, r_b.scores)
        # the batched run actually fused models onto the candidate axis
        assert any(r.batch_models == 3
                   for rs in batched.values() for r in rs)

    def test_matches_offline_pipeline(self, trained):
        # the engine's cumulative features converge on the one-shot
        # offline extractor (per-step drive vs one-shot GEMM: tight
        # tolerance, not bits)
        ext, A, B, ridge = trained
        rng = np.random.default_rng(9)
        streams_u = rng.standard_normal((4, 24, 2))
        chunk_plan = [
            [streams_u[i, c * 8:(c + 1) * 8] for i in range(4)]
            for c in range(3)
        ]
        out = _run_engine([_model(trained)], ["m0"] * 4, chunk_plan,
                          max_batch=16)
        f_off, _ = ext.features(streams_u, A, B)
        for i in range(4):
            final = max(out[i], key=lambda r: r.seq)
            assert final.n_steps == 24
            np.testing.assert_allclose(
                final.features, f_off[i], rtol=1e-12, atol=1e-13
            )
            np.testing.assert_allclose(
                final.scores, ridge.scores(f_off[i][None])[0],
                rtol=1e-12, atol=1e-13,
            )

    def test_chunking_pattern_is_irrelevant(self, trained):
        # same stream cut 8+8+8 vs 4+12+8: identical final state bits
        rng = np.random.default_rng(10)
        u = rng.standard_normal((24, 2))
        outs = []
        for cuts in ((8, 16), (4, 16)):
            engine = ServeEngine(max_batch=4)
            engine.deploy(_model(trained))
            sid = engine.open_session("m0")
            prev = 0
            for stop in (*cuts, 24):
                engine.submit(sid, u[prev:stop])
                prev = stop
            engine.drain()
            outs.append(max(engine.pop_results(), key=lambda r: r.seq))
        assert np.array_equal(outs[0].features, outs[1].features)
        assert outs[0].n_steps == outs[1].n_steps == 24

    def test_different_pipelines_never_share_a_sweep(self, trained):
        # a second model with its own mask gets its own bucket
        rng = np.random.default_rng(11)
        other_ext = DFRFeatureExtractor(n_nodes=8, seed=99).fit(
            rng.standard_normal((10, 16, 2)))
        other = ServableModel(name="other", A=0.4, B=0.5,
                              config=other_ext.snapshot())
        model = _model(trained)
        assert other.fingerprint() != model.fingerprint()
        engine = ServeEngine(max_batch=8)
        engine.deploy(model)
        engine.deploy(other)
        s1 = engine.open_session("m0")
        s2 = engine.open_session("other")
        chunk = rng.standard_normal((6, 2))
        engine.submit(s1, chunk)
        engine.submit(s2, chunk)
        report = engine.tick()
        assert report.processed == 2 and report.sweeps == 2
        results = {r.session_id: r for r in engine.pop_results()}
        assert results[s1].batch_models == results[s2].batch_models == 1
        assert not np.array_equal(results[s1].features, results[s2].features)


# --------------------------------------------------------------------- #
# traffic replay
# --------------------------------------------------------------------- #


class TestReplay:
    def test_trace_is_deterministic(self):
        a = poisson_trace(["m0"], n_sessions=4, chunks_per_session=3,
                          chunk_len=8, n_channels=2, seed=5)
        b = poisson_trace(["m0"], n_sessions=4, chunks_per_session=3,
                          chunk_len=8, n_channels=2, seed=5)
        assert len(a.events) == len(b.events) == 12
        for ea, eb in zip(a.events, b.events):
            assert ea.t == eb.t and ea.stream == eb.stream
            assert np.array_equal(ea.data, eb.data)
        c = poisson_trace(["m0"], n_sessions=4, chunks_per_session=3,
                          chunk_len=8, n_channels=2, seed=6)
        assert any(not np.array_equal(ea.data, ec.data)
                   for ea, ec in zip(a.events, c.events))

    def test_trace_arrivals_are_ordered_per_stream(self):
        trace = poisson_trace(["m0"], n_sessions=3, chunks_per_session=5,
                              chunk_len=4, n_channels=1, seed=1)
        per_stream = {}
        for event in trace.events:
            per_stream.setdefault(event.stream, []).append(event)
        for events in per_stream.values():
            assert [e.seq for e in events] == sorted(e.seq for e in events)
            ts = [e.t for e in events]
            assert ts == sorted(ts)

    def test_replay_outputs_identical_across_engine_configs(self, trained):
        trace = poisson_trace(["m0"], n_sessions=6, chunks_per_session=3,
                              chunk_len=8, n_channels=2, seed=3)

        def outputs(max_batch):
            engine = ServeEngine(max_batch=max_batch)
            engine.deploy(_model(trained))
            report = replay(engine, trace)
            return {(r.session_id, r.seq): r for r in report.results}

        serial, batched = outputs(1), outputs(32)
        assert set(serial) == set(batched) and len(serial) == 18
        for key in serial:
            assert np.array_equal(serial[key].features,
                                  batched[key].features)
            assert np.array_equal(serial[key].scores, batched[key].scores)

    def test_spec_trace_payloads_match_eager_generation(self):
        spec = make_spec("narma", seed=3, n_steps=64, order=5)
        trace = spec_trace(["m0"], spec, n_sessions=2, chunks_per_session=4,
                           chunk_len=16, seed=9)
        again = spec_trace(["m0"], spec, n_sessions=2, chunks_per_session=4,
                           chunk_len=16, seed=9)
        assert len(trace.events) == 8
        for ea, eb in zip(trace.events, again.events):
            assert ea.t == eb.t
            np.testing.assert_array_equal(ea.data, eb.data)
        # stream s replays the spec regenerated with seed spec.seed + s,
        # bit-identical to eager generation
        for stream in range(2):
            chunks = sorted((e for e in trace.events if e.stream == stream),
                            key=lambda e: e.seq)
            replayed = np.concatenate([e.data[:, 0] for e in chunks])
            eager = generate(GeneratorSpec("narma", dict(spec.params),
                                           seed=spec.seed + stream))["u"]
            np.testing.assert_array_equal(replayed, eager)

    def test_spec_trace_validation(self):
        series = make_spec("narma", seed=0, n_steps=64, order=5)
        with pytest.raises(ValueError, match="series-kind"):
            spec_trace(["m0"], make_spec("harmonic", seed=0), n_sessions=1,
                       chunks_per_session=1, chunk_len=4)
        with pytest.raises(ValueError, match="ran dry"):
            spec_trace(["m0"], series, n_sessions=1, chunks_per_session=99,
                       chunk_len=16)

    def test_spec_trace_replays_through_engine(self, trained):
        spec = make_spec("eeg_pink", seed=1, n_steps=32, n_channels=2)
        trace = spec_trace(["m0"], spec, n_sessions=3, chunks_per_session=2,
                           chunk_len=16, seed=2)
        assert trace.events[0].data.shape == (16, 2)
        engine = ServeEngine(max_batch=8)
        engine.deploy(_model(trained))
        report = replay(engine, trace)
        assert report.n_chunks == 6

    def test_replay_report_accounting(self, trained):
        engine = ServeEngine(max_batch=16)
        engine.deploy(_model(trained))
        trace = poisson_trace(["m0"], n_sessions=5, chunks_per_session=2,
                              chunk_len=8, n_channels=2, seed=4)
        report = replay(engine, trace)
        assert report.n_sessions == 5
        assert report.n_chunks == 10
        assert report.wall_s > 0
        assert report.sessions_per_sec > 0
        assert 0 < report.mean_occupancy <= 1
        assert report.p99_ms >= report.p50_ms >= 0
        d = report.to_dict()
        assert "results" not in d and d["n_chunks"] == 10
        # every session was closed on the way out
        assert engine._sessions == {}


# --------------------------------------------------------------------- #
# deadline scheduling (PR 9)
# --------------------------------------------------------------------- #


class TestDeadlineScheduler:
    """Unit pins on the EDF scheduler itself (no engine, no clock)."""

    def test_edf_order_within_a_bucket(self):
        sched = DeadlineScheduler()
        key = ("fp", 8)
        sched.enqueue("a", key, 3.0)
        sched.enqueue("b", key, 1.0)
        sched.enqueue("c", key, 2.0)
        plan, held = sched.select(0.0, force=True, max_batch=8)
        assert plan == [(key, ["b", "c", "a"])]
        assert not held and len(sched) == 0

    def test_fifo_among_equal_deadlines(self):
        sched = DeadlineScheduler()
        key = ("fp", 8)
        for sid in ("a", "b", "c"):
            sched.enqueue(sid, key, 5.0)
        plan, _ = sched.select(10.0, force=False, max_batch=8)
        assert plan == [(key, ["a", "b", "c"])]

    def test_not_due_until_deadline_minus_margin(self):
        sched = DeadlineScheduler()
        key = ("fp", 8)
        sched.enqueue("a", key, 1.0)
        plan, held = sched.select(0.5, force=False, max_batch=8)
        assert plan == [] and held
        plan, held = sched.select(0.5, force=False, max_batch=8,
                                  margin_s=0.6)
        assert plan == [(key, ["a"])] and not held

    def test_full_bucket_fires_regardless_of_deadline(self):
        sched = DeadlineScheduler()
        key = ("fp", 8)
        sched.enqueue("a", key, 1e9)
        sched.enqueue("b", key, 1e9)
        plan, _ = sched.select(0.0, force=False, max_batch=2)
        assert plan == [(key, ["a", "b"])]

    def test_max_batch_overflow_is_held(self):
        sched = DeadlineScheduler()
        key = ("fp", 8)
        for i in range(5):
            sched.enqueue(f"s{i}", key, float(i))
        plan, held = sched.select(100.0, force=False, max_batch=2)
        assert plan == [(key, ["s0", "s1"])] and held
        assert len(sched) == 3

    def test_buckets_fire_independently(self):
        sched = DeadlineScheduler()
        sched.enqueue("a", ("fp", 8), 1.0)
        sched.enqueue("b", ("fp", 16), 50.0)
        plan, held = sched.select(2.0, force=False, max_batch=8)
        assert plan == [(("fp", 8), ["a"])] and held
        assert "b" in sched and "a" not in sched

    def test_double_enqueue_rejected_and_remove(self):
        sched = DeadlineScheduler()
        sched.enqueue("a", ("fp", 8), 1.0)
        with pytest.raises(RuntimeError, match="already scheduled"):
            sched.enqueue("a", ("fp", 8), 2.0)
        sched.remove("a")
        sched.remove("a")  # idempotent
        assert sched.next_deadline() is None
        sched.enqueue("a", ("fp", 8), 4.0)  # re-enqueue after removal works
        assert sched.next_deadline() == 4.0

    def test_observe_sweep_ewma(self):
        sched = DeadlineScheduler()
        assert sched.sweep_ewma_s == 0.0
        sched.observe_sweep(0.010)
        assert sched.sweep_ewma_s == pytest.approx(0.010)
        sched.observe_sweep(0.020, alpha=0.5)
        assert sched.sweep_ewma_s == pytest.approx(0.015)


class TestDeadlineEngine:
    def test_head_deadline_fires_partial_batch_edf_first(self, trained):
        # s2's chunk arrives later but with the tighter budget; when it
        # expires the bucket fires as a partial batch, s2 first (EDF)
        t = [0.0]
        engine = ServeEngine(max_batch=8, deadline_ms=100.0,
                             clock=lambda: t[0])
        engine.deploy(_model(trained))
        s1 = engine.open_session("m0")
        s2 = engine.open_session("m0")
        engine.submit(s1, np.zeros((4, 2)))
        t[0] = 0.002
        engine.submit(s2, np.zeros((4, 2)), deadline_ms=10.0)
        t[0] = 0.005  # nobody due yet
        assert engine.tick().deferred
        t[0] = 0.0125  # s2's deadline (2 + 10 ms) passed; s1 has 87 ms left
        report = engine.tick()
        assert report.processed == 2 and not report.deferred
        results = engine.pop_results()
        assert [r.session_id for r in results] == [s2, s1]
        assert results[0].deadline == pytest.approx(0.012)
        assert results[1].deadline == pytest.approx(0.100)

    def test_session_default_and_submit_override(self, trained):
        t = [0.0]
        engine = ServeEngine(max_batch=8, deadline_ms=100.0,
                             clock=lambda: t[0])
        engine.deploy(_model(trained))
        sid = engine.open_session("m0", deadline_ms=40.0)
        engine.submit(sid, np.zeros((4, 2)))  # session default: 40 ms
        engine.tick(force=True)
        engine.submit(sid, np.zeros((4, 2)), deadline_ms=7.0)
        engine.tick(force=True)
        first, second = engine.pop_results()
        assert first.deadline == pytest.approx(0.040)
        assert second.deadline == pytest.approx(0.007)

    def test_violations_and_slack_accounting(self, trained):
        t = [0.0]
        engine = ServeEngine(max_batch=8, clock=lambda: t[0])
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)), deadline_ms=10.0)
        t[0] = 0.030  # way past the deadline before anything ticks
        report = engine.tick()
        assert report.processed == 1 and report.violations == 1
        assert report.min_slack_ms == pytest.approx(-20.0)
        (res,) = engine.pop_results()
        assert res.violated and res.slack_ms == pytest.approx(-20.0)
        stats = engine.stats()
        assert stats["violations"] == 1 and stats["deadline_chunks"] == 1
        assert stats["min_slack_ms"] == pytest.approx(-20.0)

    def test_zero_budget_chunks_are_exempt(self, trained):
        t = [0.0]
        engine = ServeEngine(max_batch=8, clock=lambda: t[0])
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))  # default budget 0
        t[0] = 123.0
        engine.tick()
        (res,) = engine.pop_results()
        assert res.deadline is None and res.slack_ms is None
        assert not res.violated
        stats = engine.stats()
        assert stats["violations"] == 0 and stats["deadline_chunks"] == 0

    def test_deadline_env_and_legacy_alias(self, trained, monkeypatch):
        monkeypatch.setenv(SERVE_DEADLINE_ENV, "25")
        engine = ServeEngine()
        assert engine.deadline_ms == 25.0
        assert engine.max_wait_ms == 25.0  # compatibility alias
        # explicit deadline beats the env; deadline beats legacy max_wait
        assert ServeEngine(deadline_ms=5.0, max_wait_ms=99.0).deadline_ms == 5.0
        monkeypatch.delenv(SERVE_DEADLINE_ENV)
        assert ServeEngine(max_wait_ms=12.0).deadline_ms == 12.0
        with pytest.raises(ValueError, match="deadline_ms"):
            resolve_deadline_ms(-1.0)
        monkeypatch.setenv(SERVE_DEADLINE_ENV, "never")
        with pytest.raises(ValueError, match=SERVE_DEADLINE_ENV):
            resolve_deadline_ms()

    def test_slack_margin_validation(self, trained):
        engine = ServeEngine(slack_margin_ms="auto")
        assert engine.margin_s == 0.0  # EWMA starts cold
        assert ServeEngine(slack_margin_ms=4.0).margin_s == pytest.approx(
            0.004)
        with pytest.raises(ValueError, match="slack_margin_ms"):
            ServeEngine(slack_margin_ms=-1.0)

    def test_fixed_margin_fires_early(self, trained):
        t = [0.0]
        engine = ServeEngine(max_batch=8, deadline_ms=50.0,
                             slack_margin_ms=20.0, clock=lambda: t[0])
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))
        t[0] = 0.029  # before deadline - margin
        assert engine.tick().deferred
        t[0] = 0.031  # inside the margin window: fire early, meet deadline
        report = engine.tick()
        assert report.processed == 1 and report.violations == 0
        assert engine.pop_results()[0].slack_ms > 0


# --------------------------------------------------------------------- #
# eviction + checkpoint/restore (PR 9)
# --------------------------------------------------------------------- #


class TestCheckpointRestore:
    def _submit_drain(self, engine, sid, chunk):
        engine.submit(sid, chunk)
        engine.drain()

    def test_round_trip_is_bit_exact_through_json(self, trained):
        rng = np.random.default_rng(11)
        c1, c2 = rng.standard_normal((2, 8, 2))
        engine = ServeEngine(max_batch=4)
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        self._submit_drain(engine, sid, c1)
        engine.pop_results()
        doc = json.loads(json.dumps(engine.checkpoint_session(sid)))
        engine.close_session(sid)
        assert engine.restore_session(doc) == sid
        self._submit_drain(engine, sid, c2)
        (resumed,) = engine.pop_results()

        control = ServeEngine(max_batch=4)
        control.deploy(_model(trained))
        cid = control.open_session("m0")
        self._submit_drain(control, cid, c1)
        self._submit_drain(control, cid, c2)
        straight = control.pop_results()[-1]
        assert resumed.features.tobytes() == straight.features.tobytes()
        assert resumed.scores.tobytes() == straight.scores.tobytes()
        assert resumed.n_steps == straight.n_steps
        assert resumed.seq == straight.seq

    def test_checkpoint_refuses_pending(self, trained):
        engine = ServeEngine()
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))
        with pytest.raises(RuntimeError, match="pending"):
            engine.checkpoint_session(sid)

    def test_restore_envelope_is_strict(self, trained):
        engine = ServeEngine()
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        self._submit_drain(engine, sid, np.zeros((4, 2)))
        doc = engine.checkpoint_session(sid)
        engine.close_session(sid)
        with pytest.raises(ValueError, match="unknown keys"):
            engine.restore_session({**doc, "extra": 1})
        with pytest.raises(ValueError, match="missing keys"):
            engine.restore_session(
                {k: v for k, v in doc.items() if k != "n_steps"})
        with pytest.raises(ValueError, match="format"):
            engine.restore_session({**doc, "format": "other"})
        with pytest.raises(ValueError, match="format_version"):
            engine.restore_session({**doc, "format_version": 99})
        with pytest.raises(ValueError, match="fingerprint"):
            engine.restore_session({**doc, "fingerprint": "deadbeef"})
        with pytest.raises(ValueError, match="window"):
            engine.restore_session({**doc, "window": 3})
        with pytest.raises(KeyError, match="ghost"):
            engine.restore_session({**doc, "model_name": "ghost"})
        engine.restore_session(doc)
        with pytest.raises(ValueError, match="already open"):
            engine.restore_session(doc)

    def test_idle_ttl_evicts_and_submit_restores(self, trained):
        rng = np.random.default_rng(3)
        c1, c2 = rng.standard_normal((2, 8, 2))
        t = [0.0]
        engine = ServeEngine(max_batch=4, idle_ttl_ms=100.0,
                             clock=lambda: t[0])
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        self._submit_drain(engine, sid, c1)
        engine.pop_results()
        t[0] = 0.05
        assert engine.tick().evicted == 0  # still inside the TTL
        t[0] = 0.25
        report = engine.tick()
        assert report.evicted == 1
        assert engine.evicted_sessions() == [sid]
        assert sid not in engine.sessions()
        # a submit to the evicted id transparently restores the session
        self._submit_drain(engine, sid, c2)
        (resumed,) = engine.pop_results()
        stats = engine.stats()
        assert stats["evictions"] == 1 and stats["restores"] == 1

        control = ServeEngine(max_batch=4)
        control.deploy(_model(trained))
        cid = control.open_session("m0")
        self._submit_drain(control, cid, c1)
        self._submit_drain(control, cid, c2)
        straight = control.pop_results()[-1]
        assert resumed.features.tobytes() == straight.features.tobytes()
        assert resumed.seq == straight.seq == 1

    def test_idle_ttl_env_knob(self, monkeypatch):
        monkeypatch.setenv(SERVE_IDLE_TTL_ENV, "250")
        assert ServeEngine().idle_ttl_ms == 250.0
        monkeypatch.setenv(SERVE_IDLE_TTL_ENV, "forever")
        with pytest.raises(ValueError, match=SERVE_IDLE_TTL_ENV):
            ServeEngine()

    def test_close_discards_eviction_checkpoint(self, trained):
        t = [0.0]
        engine = ServeEngine(idle_ttl_ms=10.0, clock=lambda: t[0])
        engine.deploy(_model(trained))
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((4, 2)))
        engine.drain()
        t[0] = 1.0
        engine.tick()
        assert engine.evicted_sessions() == [sid]
        engine.close_session(sid)
        assert engine.evicted_sessions() == []


# --------------------------------------------------------------------- #
# virtual-clock replay (PR 9)
# --------------------------------------------------------------------- #


class TestVirtualReplay:
    def test_virtual_replay_takes_no_real_time(self, trained):
        engine = ServeEngine(max_batch=8, deadline_ms=100.0)
        engine.deploy(_model(trained))
        # ~8 virtual seconds of traffic (rate 0.5 Hz per stream)
        trace = poisson_trace(["m0"], n_sessions=2, chunks_per_session=2,
                              chunk_len=8, n_channels=2, rate_hz=0.5,
                              seed=9)
        start = time.perf_counter()
        report = replay(engine, trace, time_scale=1.0, clock="virtual")
        elapsed = time.perf_counter() - start
        assert report.clock == "virtual"
        assert report.n_chunks == 4
        assert report.wall_s > 1.0       # virtual seconds elapsed...
        assert elapsed < report.wall_s   # ...but not real ones

    def test_virtual_replay_is_deterministic(self, trained):
        trace = poisson_trace(["m0"], n_sessions=4, chunks_per_session=3,
                              chunk_len=8, n_channels=2, seed=5)

        def run():
            engine = ServeEngine(max_batch=4, deadline_ms=20.0)
            engine.deploy(_model(trained))
            return replay(engine, trace, time_scale=1.0, clock="virtual")

        a, b = run(), run()
        stamps = lambda rep: [(r.session_id, r.seq, r.arrival, r.completed,
                               r.deadline) for r in rep.results]
        assert stamps(a) == stamps(b)
        assert a.p99_ms == b.p99_ms and a.violations == b.violations

    def test_virtual_outputs_match_wall_replay_bitwise(self, trained):
        trace = poisson_trace(["m0"], n_sessions=4, chunks_per_session=3,
                              chunk_len=8, n_channels=2, seed=6)
        virt = ServeEngine(max_batch=4, deadline_ms=15.0)
        virt.deploy(_model(trained))
        vrep = replay(virt, trace, time_scale=1.0, clock="virtual")
        wall = ServeEngine(max_batch=4)
        wall.deploy(_model(trained))
        wrep = replay(wall, trace)
        bits = lambda rep: {
            (r.session_id, r.seq): (r.features.tobytes(),
                                    r.scores.tobytes(), r.label)
            for r in rep.results
        }
        assert bits(vrep) == bits(wrep)

    def test_virtual_deadline_mechanics(self, trained):
        # with budgets wider than the arrival gaps, the deadline holds
        # batch chunks up: fewer sweeps than chunks, no violations
        engine = ServeEngine(max_batch=16, deadline_ms=200.0)
        engine.deploy(_model(trained))
        trace = poisson_trace(["m0"], n_sessions=8, chunks_per_session=2,
                              chunk_len=8, n_channels=2, rate_hz=200.0,
                              seed=7)
        report = replay(engine, trace, time_scale=1.0, clock="virtual")
        assert report.deadline_chunks == report.n_chunks == 16
        assert report.violations == 0
        assert report.min_slack_ms is not None and report.min_slack_ms >= 0
        assert report.sweeps < report.n_chunks
