"""Algebraic invariants of the DFR stack (hypothesis property tests).

These pin structural facts that the paper's analysis relies on implicitly:
the identity-shape reservoir is a *linear* system (superposition and scale
equivariance), the DPRR is exactly quadratic in the input scale, and the
closed-form spectral radius predicts the empirical growth rate of the
zero-input dynamics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.stability import one_step_matrix, spectral_radius

params = dict(
    a_val=st.floats(0.02, 0.5),
    b_val=st.floats(0.02, 0.5),
    seed=st.integers(0, 10_000),
)


def _dfr(seed, n_nodes=5, n_channels=2):
    return ModularDFR(InputMask.uniform(n_nodes, n_channels, seed=seed))


@settings(max_examples=25, deadline=None)
@given(**params)
def test_identity_reservoir_superposition(a_val, b_val, seed):
    """x(u1 + u2) == x(u1) + x(u2) for the identity shape."""
    rng = np.random.default_rng(seed)
    dfr = _dfr(seed)
    u1 = rng.normal(size=(1, 12, 2))
    u2 = rng.normal(size=(1, 12, 2))
    lhs = dfr.run(u1 + u2, a_val, b_val).states
    rhs = dfr.run(u1, a_val, b_val).states + dfr.run(u2, a_val, b_val).states
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(scale=st.floats(-3.0, 3.0), **params)
def test_identity_reservoir_scale_equivariance(scale, a_val, b_val, seed):
    """x(c * u) == c * x(u) for the identity shape."""
    rng = np.random.default_rng(seed)
    dfr = _dfr(seed)
    u = rng.normal(size=(1, 10, 2))
    lhs = dfr.run(scale * u, a_val, b_val).states
    rhs = scale * dfr.run(u, a_val, b_val).states
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(scale=st.floats(0.1, 3.0), **params)
def test_dprr_is_quadratic_in_input_scale(scale, a_val, b_val, seed):
    """The lag-product block scales as c^2, the sum block as c.

    This is the structural reason the ridge regularizer beta interacts with
    A (DESIGN.md Sec. 3): feature magnitude carries parameter information.
    """
    rng = np.random.default_rng(seed)
    dfr = _dfr(seed, n_nodes=4)
    dprr = DPRR(normalize=None)
    u = rng.normal(size=(1, 9, 2))
    base = dprr.features(dfr.run(u, a_val, b_val))[0]
    scaled = dprr.features(dfr.run(scale * u, a_val, b_val))[0]
    nx = 4
    np.testing.assert_allclose(
        scaled[: nx * nx], scale**2 * base[: nx * nx], rtol=1e-8, atol=1e-10
    )
    np.testing.assert_allclose(
        scaled[nx * nx:], scale * base[nx * nx:], rtol=1e-8, atol=1e-10
    )


@settings(max_examples=15, deadline=None)
@given(**params)
def test_spectral_radius_predicts_zero_input_decay(a_val, b_val, seed):
    """Iterating the one-step matrix must match simulating the reservoir
    with the input switched off — the closed form is the real dynamics."""
    rng = np.random.default_rng(seed)
    nx = 4
    dfr = ModularDFR(InputMask.uniform(nx, 1, seed=seed))
    u = np.zeros((1, 25, 1))
    u[0, 0, 0] = 1.0  # one kick, then free evolution
    trace = dfr.run(u, a_val, b_val)
    mat = one_step_matrix(a_val, b_val, nx)
    predicted = trace.states[0, 1]
    for k in range(2, 26):
        predicted = mat @ predicted
        np.testing.assert_allclose(
            trace.states[0, k], predicted, rtol=1e-8, atol=1e-12
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mask_sign_flip_flips_states(seed):
    """Negating the mask negates the (identity-shape) states, leaving the
    DPRR lag products invariant — masks are sign-symmetric features."""
    rng = np.random.default_rng(seed)
    mask = InputMask.binary(4, 2, seed=seed)
    u = rng.normal(size=(1, 8, 2))
    pos = ModularDFR(mask).run(u, 0.3, 0.2)
    neg = ModularDFR(InputMask(-mask.matrix)).run(u, 0.3, 0.2)
    np.testing.assert_allclose(neg.states, -pos.states, rtol=1e-10)
    dprr = DPRR(normalize=None)
    nx = 4
    np.testing.assert_allclose(
        dprr.features(neg)[0][: nx * nx],
        dprr.features(pos)[0][: nx * nx],
        rtol=1e-9,
    )


def test_time_shift_of_padded_input_shifts_states():
    """Zero-padding at the front delays the response verbatim (time
    invariance of the reservoir)."""
    rng = np.random.default_rng(0)
    dfr = _dfr(1, n_nodes=3, n_channels=1)
    u = rng.normal(size=(1, 10, 1))
    padded = np.concatenate([np.zeros((1, 5, 1)), u], axis=1)
    direct = dfr.run(u, 0.3, 0.25).states[0, 1:]
    shifted = dfr.run(padded, 0.3, 0.25).states[0, 6:]
    np.testing.assert_allclose(shifted, direct, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("nonlinearity", ["tanh", "mackey-glass"])
def test_bounded_shapes_never_diverge(nonlinearity):
    """For bounded phi, |x| <= A * sup|phi| / (1 - B) for B < 1 — no (A, B)
    in the unit box can diverge."""
    rng = np.random.default_rng(3)
    dfr = ModularDFR(InputMask.binary(6, 1, seed=0),
                     nonlinearity=nonlinearity)
    u = rng.normal(size=(1, 300, 1)) * 10
    for a_val, b_val in [(0.9, 0.9), (0.56, 0.56), (0.99, 0.5)]:
        trace = dfr.run(u, a_val, b_val)
        assert not trace.diverged[0]
        bound = a_val / (1 - b_val) + 1e-9
        assert np.abs(trace.states).max() <= bound