"""Tests for the regression benchmarks (NARMA-10, Mackey-Glass series)."""

import numpy as np
import pytest

from repro.data.regression import mackey_glass_series, narma, narma10
from repro.readout.metrics import nrmse
from repro.readout.ridge import RidgeRegressor, fit_ridge_regressor
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR


class TestNarma10:
    def test_shapes_and_finiteness(self):
        u, y = narma10(500, seed=0)
        assert u.shape == y.shape == (500,)
        assert np.all(np.isfinite(u)) and np.all(np.isfinite(y))

    def test_input_range(self):
        u, _ = narma10(1000, seed=0)
        assert u.min() >= 0.0 and u.max() <= 0.5

    def test_reproducible(self):
        u1, y1 = narma10(100, seed=3)
        u2, y2 = narma10(100, seed=3)
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_array_equal(y1, y2)

    def test_target_depends_on_input_history(self):
        """NARMA-10 has order-10 memory: same final input, different history
        -> different target."""
        u1, y1 = narma10(50, seed=1)
        u2, y2 = narma10(50, seed=2)
        assert not np.allclose(y1, y2)

    def test_validation(self):
        with pytest.raises(ValueError):
            narma10(0)
        with pytest.raises(ValueError):
            narma10(100, washout=5)

    def test_reservoir_beats_trivial_baseline(self):
        """A DFR with the standard quadratic-augmented readout must clearly
        beat predicting the mean (NRMSE << 1)."""
        train_u, train_y = narma10(1500, seed=0)
        test_u, test_y = narma10(800, seed=1)
        dfr = ModularDFR(InputMask.binary(50, 1, seed=0))

        def features(u):
            states = dfr.run(u[np.newaxis, :, np.newaxis], 0.45, 0.5).states[0, 1:]
            return np.concatenate([states, states**2, u[:, np.newaxis]], axis=1)

        model = fit_ridge_regressor(features(train_u), train_y, beta=1e-9)
        assert nrmse(test_y, model.predict(features(test_u))) < 0.7


class TestNarmaGeneral:
    """The parametric NARMA-N family behind the registered generator."""

    def test_narma10_is_order_10(self):
        """``narma10`` must stay bit-identical to its historical output,
        i.e. exactly ``narma(order=10, washout=50)``."""
        u_named, y_named = narma10(300, seed=7)
        u_gen, y_gen = narma(300, order=10, seed=7, washout=50)
        np.testing.assert_array_equal(u_named, u_gen)
        np.testing.assert_array_equal(y_named, y_gen)

    @pytest.mark.parametrize("order", [2, 5, 10, 20])
    def test_orders_produce_finite_series(self, order):
        u, y = narma(400, order=order, seed=0)
        assert u.shape == y.shape == (400,)
        assert np.all(np.isfinite(u)) and np.all(np.isfinite(y))

    def test_orders_differ(self):
        _, y5 = narma(200, order=5, seed=0)
        _, y15 = narma(200, order=15, seed=0)
        assert not np.allclose(y5, y15)

    def test_default_washout_scales_with_order(self):
        # order 30 needs a longer transient than the classic 50 steps
        u, y = narma(100, order=30, seed=0)
        assert u.shape == (100,)

    def test_validation(self):
        with pytest.raises(ValueError):
            narma(0)
        with pytest.raises(ValueError):
            narma(100, order=0)
        with pytest.raises(ValueError, match="washout must cover"):
            narma(100, order=20, washout=10)


class TestMackeyGlassSeries:
    def test_shape_and_range(self):
        x = mackey_glass_series(800, seed=0)
        assert x.shape == (800,)
        assert np.all(np.isfinite(x))
        # MG with these parameters stays in a bounded band around ~1
        assert 0.1 < x.min() and x.max() < 2.0

    def test_chaotic_regime_is_aperiodic(self):
        x = mackey_glass_series(1000, tau=17.0, seed=0)
        # autocorrelation at large lag decays well below 1
        x0 = x - x.mean()
        ac = np.correlate(x0, x0, mode="full")[len(x0) - 1:]
        ac /= ac[0]
        assert np.abs(ac[400]) < 0.9

    def test_variance_nontrivial(self):
        x = mackey_glass_series(1000, seed=0)
        assert x.std() > 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            mackey_glass_series(0)
        with pytest.raises(ValueError):
            mackey_glass_series(100, tau=-1.0)


class TestRidgeRegressor:
    def test_recovers_linear_map(self, rng):
        x = rng.normal(size=(200, 6))
        w = rng.normal(size=(6, 2))
        y = x @ w + 3.0
        model = fit_ridge_regressor(x, y, beta=1e-10)
        pred = model.predict(x)
        np.testing.assert_allclose(pred, y, atol=1e-6)

    def test_1d_targets_squeeze(self, rng):
        x = rng.normal(size=(50, 3))
        y = x @ rng.normal(size=3)
        model = fit_ridge_regressor(x, y, beta=1e-8)
        assert model.predict(x).shape == (50,)

    def test_regularization_shrinks(self, rng):
        x = rng.normal(size=(60, 4))
        y = x @ rng.normal(size=(4, 1))
        light = fit_ridge_regressor(x, y, beta=1e-8)
        heavy = fit_ridge_regressor(x, y, beta=1e3)
        assert np.linalg.norm(heavy.coef) < np.linalg.norm(light.coef)

    def test_validation(self, rng):
        x = rng.normal(size=(10, 3))
        with pytest.raises(ValueError):
            fit_ridge_regressor(x, np.zeros(9), beta=1e-6)
        with pytest.raises(ValueError):
            fit_ridge_regressor(x, np.zeros(10), beta=0.0)
        x[0, 0] = np.nan
        with pytest.raises(ValueError):
            fit_ridge_regressor(x, np.zeros(10), beta=1e-6)
