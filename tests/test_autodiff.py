"""Tests for the scalar autodiff tape (the gradient oracle itself)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff.scalar import Value

finite = st.floats(-3.0, 3.0, allow_nan=False)
nonzero = st.floats(0.5, 3.0)


def grad_of(f, x0, eps=1e-6):
    return (f(x0 + eps) - f(x0 - eps)) / (2 * eps)


class TestPrimitives:
    def test_add_mul(self):
        a, b = Value(2.0), Value(3.0)
        out = a * b + a
        out.backward()
        assert out.data == 8.0
        assert a.grad == 4.0  # b + 1
        assert b.grad == 2.0

    def test_sub_div_pow(self):
        a, b = Value(5.0), Value(2.0)
        out = (a - b) / b + a**2
        out.backward()
        assert out.data == pytest.approx(1.5 + 25.0)
        assert a.grad == pytest.approx(1 / 2 + 10.0)
        assert b.grad == pytest.approx(-5.0 / 4)

    def test_scalar_mixing(self):
        a = Value(3.0)
        out = 2.0 * a + 1.0 - a / 2.0 + (4.0 - a)
        out.backward()
        assert out.data == pytest.approx(6 + 1 - 1.5 + 1)
        assert a.grad == pytest.approx(2.0 - 0.5 - 1.0)

    def test_pow_rejects_value_exponent(self):
        with pytest.raises(TypeError):
            Value(2.0) ** Value(3.0)

    @pytest.mark.parametrize(
        "name,fn,ref",
        [
            ("tanh", lambda v: v.tanh(), math.tanh),
            ("sin", lambda v: v.sin(), math.sin),
            ("exp", lambda v: v.exp(), math.exp),
            ("abs", lambda v: v.abs(), abs),
        ],
    )
    def test_unary_values_and_grads(self, name, fn, ref):
        for x0 in (-1.3, 0.4, 2.2):
            v = Value(x0)
            out = fn(v)
            out.backward()
            assert out.data == pytest.approx(ref(x0))
            assert v.grad == pytest.approx(grad_of(ref, x0), rel=1e-4, abs=1e-7)

    def test_log(self):
        v = Value(2.5)
        out = v.log()
        out.backward()
        assert out.data == pytest.approx(math.log(2.5))
        assert v.grad == pytest.approx(0.4)


class TestGraphs:
    def test_value_reused_twice_accumulates(self):
        a = Value(3.0)
        out = a * a + a * 2.0
        out.backward()
        assert a.grad == pytest.approx(2 * 3.0 + 2.0)

    def test_deep_chain_does_not_hit_recursion_limit(self):
        v = Value(0.5)
        out = v
        for _ in range(5000):
            out = out * 1.0001 + 0.0
        out.backward()
        assert v.grad == pytest.approx(1.0001**5000, rel=1e-9)

    def test_diamond_graph(self):
        x = Value(1.5)
        a = x * 2.0
        b = x + 1.0
        out = a * b
        out.backward()
        # d/dx [2x (x+1)] = 4x + 2
        assert x.grad == pytest.approx(4 * 1.5 + 2)

    @settings(max_examples=40, deadline=None)
    @given(x0=finite, y0=nonzero)
    def test_property_rational_function(self, x0, y0):
        def f(x, y):
            return (x * y + x**2) / (y + 4.0)

        xv, yv = Value(x0), Value(y0)
        out = (xv * yv + xv**2) / (yv + 4.0)
        out.backward()
        assert xv.grad == pytest.approx(
            grad_of(lambda t: f(t, y0), x0), rel=1e-4, abs=1e-6
        )
        assert yv.grad == pytest.approx(
            grad_of(lambda t: f(x0, t), y0), rel=1e-4, abs=1e-6
        )

    def test_mackey_glass_composition(self):
        """The MG shape as composed on the tape matches its closed form."""
        p = 2.0
        for s0 in (-1.7, 0.3, 2.1):
            v = Value(s0)
            out = v / (v.abs() ** p + 1.0)
            out.backward()
            a = abs(s0) ** p
            expected = (1 + (1 - p) * a) / (1 + a) ** 2
            assert v.grad == pytest.approx(expected, rel=1e-9)
