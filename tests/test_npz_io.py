"""Tests for Bianchi-format npz import/export."""

import numpy as np
import pytest

from repro.data.loaders import make_toy_dataset
from repro.data.npz_io import load_npz_dataset, save_npz_dataset


@pytest.fixture
def toy():
    return make_toy_dataset(n_classes=3, n_channels=2, length=12,
                            n_train=15, n_test=9, seed=0)


def test_round_trip(tmp_path, toy):
    path = str(tmp_path / "toy.npz")
    save_npz_dataset(path, toy)
    loaded = load_npz_dataset(path)
    np.testing.assert_array_equal(loaded.u_train, toy.u_train)
    np.testing.assert_array_equal(loaded.y_train, toy.y_train)
    np.testing.assert_array_equal(loaded.u_test, toy.u_test)
    np.testing.assert_array_equal(loaded.y_test, toy.y_test)
    assert loaded.n_classes == 3
    assert loaded.spec.family == "npz"


def test_one_based_labels_are_shifted(tmp_path, toy):
    path = str(tmp_path / "toy1.npz")
    save_npz_dataset(path, toy, one_based=True)
    loaded = load_npz_dataset(path)
    np.testing.assert_array_equal(loaded.y_train, toy.y_train)
    assert loaded.y_train.min() == 0


def test_key_override_and_default(tmp_path, toy):
    path = str(tmp_path / "mydata.npz")
    save_npz_dataset(path, toy)
    assert load_npz_dataset(path).key == "MYDATA"
    assert load_npz_dataset(path, key="CUSTOM").key == "CUSTOM"


def test_label_column_shape_tolerated(tmp_path, toy):
    """Some distributions store labels as (N, 1) floats; both must load."""
    path = str(tmp_path / "floaty.npz")
    np.savez(
        path,
        X=toy.u_train,
        Y=toy.y_train.astype(np.float64)[:, np.newaxis],
        Xte=toy.u_test,
        Yte=toy.y_test.astype(np.float64)[:, np.newaxis],
    )
    loaded = load_npz_dataset(path)
    np.testing.assert_array_equal(loaded.y_train, toy.y_train)


def test_missing_keys_rejected(tmp_path, toy):
    path = str(tmp_path / "broken.npz")
    np.savez(path, X=toy.u_train, Y=toy.y_train)
    with pytest.raises(ValueError, match="missing keys"):
        load_npz_dataset(path)


def test_shape_mismatch_rejected(tmp_path, toy):
    path = str(tmp_path / "mismatch.npz")
    np.savez(
        path,
        X=toy.u_train,
        Y=toy.y_train[:, np.newaxis],
        Xte=toy.u_test[:, :5, :],   # different T
        Yte=toy.y_test[:, np.newaxis],
    )
    with pytest.raises(ValueError, match="disagree"):
        load_npz_dataset(path)


def test_loaded_dataset_runs_through_pipeline(tmp_path, toy):
    from repro.core.pipeline import DFRClassifier
    from repro.core.trainer import TrainerConfig

    path = str(tmp_path / "pipe.npz")
    save_npz_dataset(path, toy)
    data = load_npz_dataset(path)
    clf = DFRClassifier(n_nodes=5, seed=0, config=TrainerConfig(epochs=2))
    clf.fit(data.u_train, data.y_train)
    preds = clf.predict(data.u_test)
    assert preds.shape == (9,)
