"""Tests for the nonlinearity library: values, derivatives, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reservoir.nonlinearity import (
    NONLINEARITIES,
    Identity,
    MackeyGlass,
    SaturatingLinear,
    Sine,
    Tanh,
    get_nonlinearity,
)

ALL_SHAPES = [Identity(), Tanh(), Sine(), Sine(omega=2.5),
              MackeyGlass(), MackeyGlass(p=3.0), SaturatingLinear(),
              SaturatingLinear(limit=0.5)]


@pytest.mark.parametrize("nonl", ALL_SHAPES, ids=repr)
def test_derivative_matches_finite_difference(nonl):
    rng = np.random.default_rng(0)
    s = rng.uniform(-3.0, 3.0, size=200)
    # keep clear of the non-differentiable kinks of the piecewise shapes
    if isinstance(nonl, SaturatingLinear):
        s = s[np.abs(np.abs(s) - nonl.limit) > 1e-3]
    if isinstance(nonl, MackeyGlass):
        s = s[np.abs(s) > 1e-3]
    eps = 1e-6
    numeric = (nonl.phi(s + eps) - nonl.phi(s - eps)) / (2 * eps)
    np.testing.assert_allclose(nonl.dphi(s), numeric, rtol=1e-5, atol=1e-7)


@pytest.mark.parametrize("nonl", ALL_SHAPES, ids=repr)
def test_phi_preserves_shape_and_dtype(nonl):
    s = np.zeros((3, 4))
    assert nonl.phi(s).shape == (3, 4)
    assert nonl.dphi(s).shape == (3, 4)


def test_identity_is_identity():
    s = np.linspace(-5, 5, 11)
    np.testing.assert_array_equal(Identity().phi(s), s)
    np.testing.assert_array_equal(Identity().dphi(s), np.ones_like(s))


def test_mackey_glass_matches_textbook_for_positive_inputs():
    p = 2.0
    s = np.linspace(0.01, 4.0, 50)
    np.testing.assert_allclose(MackeyGlass(p).phi(s), s / (1 + s**p))


def test_mackey_glass_is_odd_symmetric():
    mg = MackeyGlass(p=2.0)
    s = np.linspace(0.1, 3.0, 20)
    np.testing.assert_allclose(mg.phi(-s), -mg.phi(s))


def test_mackey_glass_is_bounded():
    mg = MackeyGlass(p=2.0)
    s = np.linspace(-100, 100, 1001)
    assert np.all(np.abs(mg.phi(s)) <= 1.0)


@given(st.floats(-50, 50, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_bounded_flags_are_honest(s):
    for nonl in ALL_SHAPES:
        if nonl.bounded:
            assert abs(float(nonl.phi(np.array(s)))) <= max(
                1.0, getattr(nonl, "limit", 1.0)
            )


def test_saturating_linear_clips():
    sat = SaturatingLinear(limit=0.5)
    np.testing.assert_array_equal(
        sat.phi(np.array([-2.0, 0.2, 2.0])), np.array([-0.5, 0.2, 0.5])
    )
    np.testing.assert_array_equal(
        sat.dphi(np.array([-2.0, 0.2, 2.0])), np.array([0.0, 1.0, 0.0])
    )


def test_registry_round_trip():
    for name in NONLINEARITIES:
        assert get_nonlinearity(name).name == name


def test_get_nonlinearity_passthrough():
    inst = MackeyGlass(p=4.0)
    assert get_nonlinearity(inst) is inst


def test_get_nonlinearity_rejects_unknown():
    with pytest.raises(ValueError, match="unknown nonlinearity"):
        get_nonlinearity("relu6")
    with pytest.raises(TypeError):
        get_nonlinearity(42)


def test_invalid_constructor_args_rejected():
    with pytest.raises(ValueError):
        MackeyGlass(p=0.5)
    with pytest.raises(ValueError):
        Sine(omega=0.0)
    with pytest.raises(ValueError):
        SaturatingLinear(limit=-1.0)


def test_equality_and_hash():
    assert MackeyGlass(p=2.0) == MackeyGlass(p=2.0)
    assert MackeyGlass(p=2.0) != MackeyGlass(p=3.0)
    assert Identity() == Identity()
    assert hash(Sine(omega=1.5)) == hash(Sine(omega=1.5))
