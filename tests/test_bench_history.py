"""Unit tests for ``tools/bench_history.py`` (trajectory persistence).

The tool lives outside the installed package, so it is loaded straight
from its file.  Focus: ``load_history`` must treat a missing, empty, or
whitespace-only history file as "no entries yet" (a freshly ``touch``-ed
file used to crash with a ``JSONDecodeError``), fail cleanly on garbage,
and ``--check`` must pass vacuously when nothing comparable exists.
"""

import importlib.util
import json
from pathlib import Path

import pytest

TOOL_PATH = Path(__file__).resolve().parent.parent / "tools" / "bench_history.py"


@pytest.fixture(scope="module")
def bench_history():
    spec = importlib.util.spec_from_file_location("bench_history_tool",
                                                  TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLoadHistory:
    def test_missing_file_is_empty(self, bench_history, tmp_path):
        assert bench_history.load_history(tmp_path / "nope.json") == []

    def test_empty_file_is_empty(self, bench_history, tmp_path):
        path = tmp_path / "hist.json"
        path.touch()
        assert bench_history.load_history(path) == []

    def test_whitespace_file_is_empty(self, bench_history, tmp_path):
        path = tmp_path / "hist.json"
        path.write_text("  \n\t\n")
        assert bench_history.load_history(path) == []

    def test_invalid_json_exits_cleanly(self, bench_history, tmp_path):
        path = tmp_path / "hist.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            bench_history.load_history(path)

    def test_non_list_rejected(self, bench_history, tmp_path):
        path = tmp_path / "hist.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="JSON list"):
            bench_history.load_history(path)

    def test_round_trip(self, bench_history, tmp_path):
        path = tmp_path / "hist.json"
        entries = [{"suite": "training", "benchmarks": {}}]
        path.write_text(json.dumps(entries))
        assert bench_history.load_history(path) == entries

    def test_committed_history_loads(self, bench_history):
        history = bench_history.load_history()
        assert isinstance(history, list)


class TestCheckRegressions:
    def _entry(self, bench_history, suite="training", **benchmarks):
        return {
            "suite": suite,
            "machine": {"hostname": "x"},
            "backends": ["numpy"],
            "dtype": "float64",
            "backend_env": "numpy",
            "benchmarks": {
                name: {"min_seconds": seconds}
                for name, seconds in benchmarks.items()
            },
        }

    def test_empty_history_passes_vacuously(self, bench_history, capsys):
        entry = self._entry(bench_history, bench=1.0)
        assert bench_history.check_regressions([], entry, 0.5) == []
        assert "nothing to regress against" in capsys.readouterr().out

    def test_incomparable_suite_skipped(self, bench_history):
        old = self._entry(bench_history, suite="serve", bench=0.1)
        new = self._entry(bench_history, suite="matrix", bench=10.0)
        assert bench_history.check_regressions([old], new, 0.5) == []

    def test_regression_detected(self, bench_history):
        old = self._entry(bench_history, bench=0.1)
        old["git_sha"] = "abc1234"
        new = self._entry(bench_history, bench=10.0)
        flagged = bench_history.check_regressions([old], new, 0.5)
        assert len(flagged) == 1 and "bench" in flagged[0]

    def test_faster_run_passes(self, bench_history):
        old = self._entry(bench_history, bench=10.0)
        new = self._entry(bench_history, bench=0.1)
        assert bench_history.check_regressions([old], new, 0.5) == []


class TestMatrixSuiteCondense:
    def test_suite_choices_include_matrix(self, bench_history):
        with pytest.raises(SystemExit):
            bench_history.main(["--suite", "nonsense"])

    def test_build_entry_tags_suite(self, bench_history):
        entry = bench_history.build_entry({}, suite="matrix")
        assert entry["suite"] == "matrix"
        old = dict(entry, benchmarks={})
        assert bench_history.comparable(old, entry)
        assert not bench_history.comparable(
            dict(old, suite="serve"), entry
        )
