"""Tests for the DPRR and baseline representations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.representation.baselines import LastState, MeanState, SubsampledStates
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.reference import naive_dprr


def _random_trace(rng, n=3, t_len=9, nx=5):
    states = rng.normal(size=(n, t_len + 1, nx))
    states[:, 0] = 0.0  # convention: zero initial state
    return states


def test_vectorized_matches_naive_reference(rng):
    states = _random_trace(rng)
    np.testing.assert_allclose(
        DPRR(normalize=None).features(states), naive_dprr(states), rtol=1e-12
    )


def test_normalized_matches_naive_reference(rng):
    states = _random_trace(rng, t_len=7)
    np.testing.assert_allclose(
        DPRR(normalize="length").features(states),
        naive_dprr(states, normalize="length"),
        rtol=1e-12,
    )


@settings(max_examples=20, deadline=None)
@given(
    t_len=st.integers(1, 8),
    nx=st.integers(1, 6),
    seed=st.integers(0, 9999),
)
def test_vectorized_matches_naive_property(t_len, nx, seed):
    rng = np.random.default_rng(seed)
    states = rng.normal(size=(2, t_len + 1, nx))
    states[:, 0] = 0.0
    np.testing.assert_allclose(
        DPRR(normalize=None).features(states), naive_dprr(states), rtol=1e-10
    )


def test_feature_layout_matches_paper_indexing(rng):
    """Entry (i-1)N_x + j must be sum_k x(k)_i x(k-1)_j (paper Eq. 18)."""
    states = _random_trace(rng, n=1, t_len=5, nx=4)
    feats = DPRR(normalize=None).features(states)[0]
    nx = 4
    i, j = 2, 1  # zero-based node indices
    expected = sum(
        states[0, k, i] * states[0, k - 1, j] for k in range(1, 6)
    )
    assert feats[i * nx + j] == pytest.approx(expected)
    # Eq. 19 tail block
    expected_sum = states[0, 1:, i].sum()
    assert feats[nx * nx + i] == pytest.approx(expected_sum)


def test_n_features():
    assert DPRR.n_features(30) == 930  # the paper's N_x = 30 case
    assert DPRR.n_features(1) == 2


def test_scale():
    assert DPRR(normalize=None).scale(100) == 1.0
    assert DPRR(normalize="length").scale(100) == pytest.approx(0.01)


def test_accepts_trace_object(rng):
    mask = InputMask.uniform(4, 2, seed=rng)
    dfr = ModularDFR(mask)
    trace = dfr.run(rng.normal(size=(2, 8, 2)), 0.3, 0.2)
    feats = DPRR().features(trace)
    assert feats.shape == (2, 20)
    np.testing.assert_allclose(feats, DPRR().features(trace.states))


def test_sliced_streaming_result_without_sums_is_rejected(rng):
    mask = InputMask.uniform(4, 2, seed=rng)
    dfr = ModularDFR(mask)
    trace = dfr.run(rng.normal(size=(2, 8, 2)), 0.3, 0.2)
    sliced = trace.final_window(2)
    with pytest.raises(ValueError, match="no DPRR accumulators"):
        DPRR().features(sliced)


def test_invalid_normalize_rejected():
    with pytest.raises(ValueError):
        DPRR(normalize="bogus")


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        DPRR().features(np.zeros((3, 5)))
    with pytest.raises(ValueError):
        DPRR().features(np.zeros((2, 1, 3)))  # zero time steps


def test_zero_states_give_zero_features():
    feats = DPRR(normalize=None).features(np.zeros((2, 6, 3)))
    np.testing.assert_array_equal(feats, 0.0)


class TestBaselines:
    def test_last_state(self, rng):
        states = _random_trace(rng)
        np.testing.assert_array_equal(
            LastState().features(states), states[:, -1, :]
        )
        assert LastState.n_features(7) == 7

    def test_mean_state_excludes_initial_row(self, rng):
        states = _random_trace(rng)
        np.testing.assert_allclose(
            MeanState().features(states), states[:, 1:, :].mean(axis=1)
        )

    def test_subsampled_includes_final_state(self, rng):
        states = _random_trace(rng, t_len=20, nx=3)
        feats = SubsampledStates(n_points=4).features(states)
        assert feats.shape == (3, 12)
        np.testing.assert_array_equal(feats[:, -3:], states[:, -1, :])

    def test_subsampled_pads_short_series(self, rng):
        states = _random_trace(rng, t_len=2, nx=3)
        feats = SubsampledStates(n_points=5).features(states)
        assert feats.shape == (3, 15)
        # padding repeats the final state
        np.testing.assert_array_equal(feats[:, -3:], states[:, -1, :])

    def test_subsampled_rejects_bad_count(self):
        with pytest.raises(ValueError):
            SubsampledStates(n_points=0)
