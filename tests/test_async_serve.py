"""Tests for the asyncio serving layer and device-resident carries.

Two contracts beyond the synchronous engine's:

* the async front door adds no numerics — per-session result streams are
  bit-identical to a synchronous ``ServeEngine`` fed the same chunks, no
  matter how submits interleave across asyncio tasks and plain threads;
* between ticks, session state stays backend-native: the only host
  transfers in steady-state serving are the *declared* result boundaries
  (asserted structurally via the ``TransferStats`` counters on the
  backend seam, with an instrumented NumPy backend and, when available,
  real torch).

``pytest-asyncio`` is not a dependency; coroutines run via
``asyncio.run`` inside plain test functions.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.backend import TransferStats, resolve_backend
from repro.backend.numpy_backend import NumpyBackend
from repro.core.pipeline import DFRFeatureExtractor
from repro.readout.ridge import fit_ridge
from repro.serve import (
    AsyncServeEngine,
    ServableModel,
    ServeEngine,
    poisson_trace,
    replay,
    replay_async,
)


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    u = rng.standard_normal((40, 32, 2))
    y = rng.integers(0, 3, 40)
    ext = DFRFeatureExtractor(n_nodes=8, seed=1).fit(u)
    A, B = 0.4, 0.5
    feats, _ = ext.features(u, A, B)
    ridge = fit_ridge(feats, y, 1e-2)
    return ext, A, B, ridge


def _model(trained, name="m0"):
    ext, A, B, ridge = trained
    return ServableModel(name=name, A=A, B=B, config=ext.snapshot(),
                         readout=ridge)


def _sync_reference(trained, streams):
    """Chunk-by-chunk results from a serial synchronous engine."""
    engine = ServeEngine(max_batch=1)
    engine.deploy(_model(trained))
    sids = [engine.open_session("m0") for _ in streams]
    for sid, chunks in zip(sids, streams):
        for chunk in chunks:
            engine.submit(sid, chunk)
            engine.drain()
    by_key = {}
    for r in engine.pop_results():
        by_key[(sids.index(r.session_id), r.seq)] = r
    return by_key


def _bits(result):
    return (result.features.tobytes(), result.scores.tobytes(),
            result.label, result.diverged, result.n_steps)


# --------------------------------------------------------------------- #
# async == sync, bit for bit
# --------------------------------------------------------------------- #


class TestAsyncBitIdentity:
    def test_async_results_match_sync_engine(self, trained):
        rng = np.random.default_rng(1)
        streams = rng.standard_normal((3, 4, 8, 2))  # 3 sessions x 4 chunks
        reference = _sync_reference(trained, streams)

        async def go():
            async with AsyncServeEngine(max_batch=4,
                                        tick_interval_ms=5.0) as eng:
                eng.deploy(_model(trained))
                sessions = [await eng.open_session("m0") for _ in range(3)]
                futures = {}
                for seq in range(4):
                    for i, sess in enumerate(sessions):
                        futures[(i, seq)] = await sess.submit(
                            streams[i, seq])
                return {k: await f for k, f in futures.items()}

        results = asyncio.run(go())
        assert set(results) == set(reference)
        for key, res in results.items():
            assert _bits(res) == _bits(reference[key]), key

    def test_replay_async_matches_sync_replay(self, trained):
        trace = poisson_trace(["m0"], n_sessions=4, chunks_per_session=3,
                              chunk_len=8, n_channels=2, seed=3)
        sync_engine = ServeEngine(max_batch=4)
        sync_engine.deploy(_model(trained))
        sync_rep = replay(sync_engine, trace)

        async def go():
            async with AsyncServeEngine(max_batch=4, deadline_ms=20.0,
                                        slack_margin_ms=5.0) as eng:
                eng.deploy(_model(trained))
                return await replay_async(eng, trace, time_scale=0.0)

        async_rep = asyncio.run(go())
        assert async_rep.clock == "async"
        assert async_rep.n_chunks == sync_rep.n_chunks == 12
        bits = lambda rep: {(r.session_id, r.seq): _bits(r)
                            for r in rep.results}
        assert bits(async_rep) == bits(sync_rep)


# --------------------------------------------------------------------- #
# concurrency stress: tasks + threads against the background loop
# --------------------------------------------------------------------- #


class TestAsyncConcurrency:
    def test_tasks_and_threads_submit_concurrently(self, trained):
        n_sessions, n_chunks = 6, 5
        rng = np.random.default_rng(2)
        streams = rng.standard_normal((n_sessions, n_chunks, 8, 2))
        reference = _sync_reference(trained, streams)

        async def go():
            async with AsyncServeEngine(max_batch=8,
                                        tick_interval_ms=2.0) as eng:
                eng.deploy(_model(trained))
                sessions = [await eng.open_session("m0")
                            for _ in range(n_sessions)]
                loop = asyncio.get_running_loop()
                results: dict = {}

                async def drive(i):
                    # submits interleave with other tasks and the ticker
                    for seq in range(n_chunks):
                        fut = await sessions[i].submit(streams[i, seq])
                        results[(i, seq)] = await fut

                async def collect(i, seq, fut):
                    results[(i, seq)] = await asyncio.wrap_future(fut)

                def threaded_driver(i):
                    # a plain thread talking to the loop like an RPC
                    # handler would
                    futs = []
                    for seq in range(n_chunks):
                        cf = asyncio.run_coroutine_threadsafe(
                            sessions[i].submit(streams[i, seq]), loop)
                        futs.append((seq, cf.result()))
                    return i, futs

                task_ids = range(0, n_sessions // 2)
                thread_ids = range(n_sessions // 2, n_sessions)
                threads = [
                    loop.run_in_executor(None, threaded_driver, i)
                    for i in thread_ids
                ]
                await asyncio.gather(*(drive(i) for i in task_ids))
                for done in await asyncio.gather(*threads):
                    i, futs = done
                    await asyncio.gather(*(collect(i, seq, fut)
                                           for seq, fut in futs))
                return results

        results = asyncio.run(go())
        # no lost or duplicated chunks, and bit-identity end to end
        assert set(results) == {(i, s) for i in range(n_sessions)
                                for s in range(n_chunks)}
        for key, res in results.items():
            assert _bits(res) == _bits(reference[key]), key

    def test_context_exit_drains_pending_futures(self, trained):
        async def go():
            async with AsyncServeEngine(max_batch=4, deadline_ms=1e6,
                                        tick_interval_ms=1e3) as eng:
                # a huge deadline and a slow heartbeat: only the drain on
                # exit can resolve these futures
                eng.deploy(_model(trained))
                sess = await eng.open_session("m0")
                futs = [await sess.submit(np.zeros((8, 2)))
                        for _ in range(3)]
                return futs
        futs = asyncio.run(go())
        assert all(f.done() and not f.cancelled() for f in futs)
        assert [f.result().seq for f in futs] == [0, 1, 2]

    def test_sweep_failure_fails_waiting_futures(self, trained):
        async def go():
            async with AsyncServeEngine(max_batch=4,
                                        tick_interval_ms=2.0) as eng:
                eng.deploy(_model(trained))
                sess = await eng.open_session("m0")
                original = eng.engine.tick

                def boom(*, force=False):
                    raise RuntimeError("sweep exploded")

                eng.engine.tick = boom
                fut = await sess.submit(np.zeros((8, 2)))
                with pytest.raises(RuntimeError, match="sweep exploded"):
                    await fut
                eng.engine.tick = original
        asyncio.run(go())

    def test_submit_requires_running_engine(self, trained):
        eng = AsyncServeEngine(max_batch=2)
        eng.deploy(_model(trained))

        async def go():
            sid = eng.engine.open_session("m0")
            with pytest.raises(RuntimeError, match="not running"):
                await eng.submit(sid, np.zeros((8, 2)))
        asyncio.run(go())


# --------------------------------------------------------------------- #
# device residency: no undeclared host transfers between ticks
# --------------------------------------------------------------------- #


class CountingNumpy(NumpyBackend):
    """NumPy backend that counts seam crossings like a device backend.

    On real NumPy both directions are free, so the stock backend counts
    nothing; this subclass counts every ``to_numpy`` as a would-be
    device-to-host transfer, making the engine's residency discipline
    assertable without torch or CuPy installed.
    """

    def asarray(self, a, dtype=None):
        if isinstance(a, np.ndarray):
            self.transfers.to_device += 1
        return super().asarray(a, dtype)

    def to_numpy(self, a):
        self.transfers.to_host += 1
        return super().to_numpy(a)


class TestCarryResidency:
    def _drive(self, backend, n_ticks=4):
        """Serve several resumed chunks; return the transfer counters."""
        rng = np.random.default_rng(0)
        u = rng.standard_normal((40, 32, 2))
        y = rng.integers(0, 3, 40)
        ext = DFRFeatureExtractor(n_nodes=8, seed=1).fit(u)
        feats, _ = ext.features(u, 0.4, 0.5)
        ridge = fit_ridge(feats, y, 1e-2)
        model = ServableModel(name="m0", A=0.4, B=0.5,
                              config=ext.snapshot(), readout=ridge)
        engine = ServeEngine(max_batch=4, backend=backend)
        engine.deploy(model)
        sids = [engine.open_session("m0") for _ in range(3)]
        engine.backend.transfers.reset()
        for _ in range(n_ticks):
            for sid in sids:
                engine.submit(sid, rng.standard_normal((8, 2)))
            engine.drain()
        results = engine.pop_results()
        assert len(results) == n_ticks * len(sids)
        assert all(r.scores is not None for r in results)
        return engine.backend.transfers

    def test_numpy_structural_no_host_transfers_between_ticks(self):
        counting = CountingNumpy()
        transfers = self._drive(counting)
        # every device->host crossing went through a declared boundary
        # (features/scores/divergence); the carry hot path never did
        assert transfers.to_host == 0
        assert transfers.boundary_to_host > 0

    def test_torch_carries_stay_resident(self):
        pytest.importorskip("torch")
        transfers = self._drive("torch")
        assert transfers.to_host == 0
        assert transfers.boundary_to_host > 0
        # uploads happen (chunk inputs, parameter scalars), but they are
        # input boundaries, not per-tick state round-trips
        assert transfers.to_device > 0

    def test_transfer_stats_api(self):
        stats = TransferStats()
        stats.to_device += 2
        stats.boundary_to_host += 1
        assert stats.as_dict() == {"to_device": 2, "to_host": 0,
                                   "boundary_to_host": 1}
        stats.reset()
        assert stats.as_dict() == {"to_device": 0, "to_host": 0,
                                   "boundary_to_host": 0}

    def test_counting_backend_resolves_as_instance(self):
        counting = CountingNumpy()
        assert resolve_backend(counting) is counting
