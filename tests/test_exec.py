"""Tests for the unified candidate-execution layer (repro.exec)."""

import pickle

import numpy as np
import pytest

import repro.exec.context as exec_context
from repro.core.pipeline import DFRFeatureExtractor, FixedParamsEvaluation
from repro.data.loaders import make_toy_dataset
from repro.exec import (
    Candidate,
    EvaluationContext,
    MultiprocessExecutor,
    SerialExecutor,
    derive_candidate_seed,
    derive_candidate_seeds,
    make_executor,
    resolve_workers,
)


@pytest.fixture(scope="module")
def setup():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=20,
                            n_train=30, n_test=30, noise=0.3, seed=7)
    ext = DFRFeatureExtractor(n_nodes=5, seed=0).fit(data.u_train)
    return data, ext


def _context(data, ext, **kwargs):
    return EvaluationContext(
        extractor=ext.snapshot(),
        u_train=data.u_train, y_train=data.y_train,
        u_test=data.u_test, y_test=data.y_test,
        n_classes=3, **kwargs,
    )


def _candidates(n, seed=123):
    rng = np.random.default_rng(0)
    return [
        Candidate(index=i, A=float(10.0 ** rng.uniform(-3, -1)),
                  B=float(10.0 ** rng.uniform(-2, -1)), seed=seed)
        for i in range(n)
    ]


class TestSeeding:
    def test_pure_in_base_and_index(self):
        assert derive_candidate_seed(42, 3) == derive_candidate_seed(42, 3)

    def test_distinct_across_indices_and_bases(self):
        seeds = derive_candidate_seeds(42, 50)
        assert len(set(seeds)) == 50
        assert derive_candidate_seed(42, 0) != derive_candidate_seed(43, 0)

    def test_vector_form_matches_scalar(self):
        assert derive_candidate_seeds(7, 4) == [
            derive_candidate_seed(7, i) for i in range(4)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_candidate_seed(0, -1)
        with pytest.raises(ValueError):
            derive_candidate_seeds(0, -1)


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_invalid_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers(None) == 1

    def test_clamped_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_make_executor_kinds(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(2), MultiprocessExecutor)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        ex = make_executor(None)
        assert isinstance(ex, MultiprocessExecutor)
        assert ex.workers == 2


class TestSerialExecutor:
    def test_results_in_candidate_order_with_timing(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(4)
        report = SerialExecutor().run(context, candidates)
        assert [r.candidate.index for r in report.results] == [0, 1, 2, 3]
        assert all(r.ok for r in report.results)
        assert report.wall_seconds > 0
        assert report.compute_seconds > 0
        assert all(r.compute_seconds > 0 for r in report.results)
        evs = report.evaluations()
        assert [ev.A for ev in evs] == [c.A for c in candidates]

    def test_failure_is_isolated(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(3)
        candidates[1] = Candidate(index=1, A=float("nan"), B=0.1, seed=0)
        report = SerialExecutor().run(context, candidates)
        assert report.n_failed == 1
        assert report.results[0].ok and report.results[2].ok
        bad = report.results[1]
        assert bad.evaluation is None
        assert "ValueError" in bad.error
        evs = report.evaluations()
        assert evs[1].diverged
        assert evs[1].val_loss == float("inf")
        assert evs[1].val_accuracy == 0.0
        assert evs[1].error == bad.error
        assert evs[0] == report.results[0].evaluation


class TestMultiprocessExecutor:
    def test_bit_identical_to_serial(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(6)
        serial = SerialExecutor().run(context, candidates).evaluations()
        parallel = MultiprocessExecutor(2).run(context, candidates).evaluations()
        assert serial == parallel

    def test_identical_across_worker_counts_and_chunking(self, setup):
        data, ext = setup
        # no explicit candidate seeds: the executor derives them from
        # base_seed via spawn-key splitting, so the evaluations must not
        # depend on worker count or chunk size
        context = _context(data, ext, base_seed=99)
        candidates = [
            Candidate(index=i, A=0.05 * (i + 1), B=0.02 * (i + 1))
            for i in range(5)
        ]
        reference = SerialExecutor().run(context, candidates).evaluations()
        for executor in (MultiprocessExecutor(2),
                         MultiprocessExecutor(3, chunksize=1)):
            assert executor.run(context, candidates).evaluations() == reference

    def test_worker_failure_does_not_kill_submission(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(4)
        candidates[2] = Candidate(index=2, A=float("nan"), B=0.1, seed=0)
        report = MultiprocessExecutor(2).run(context, candidates)
        assert report.n_failed == 1
        assert [r.ok for r in report.results] == [True, True, False, True]
        assert "ValueError" in report.results[2].error

    def test_single_candidate_skips_pool(self, setup):
        data, ext = setup
        context = _context(data, ext)
        serial = SerialExecutor().run(context, _candidates(1)).evaluations()
        parallel = MultiprocessExecutor(4).run(context, _candidates(1)).evaluations()
        assert serial == parallel

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(2, chunksize=0)

    def test_pool_reused_for_same_context(self, setup):
        data, ext = setup
        context = _context(data, ext)
        executor = MultiprocessExecutor(2)
        try:
            executor.run(context, _candidates(3))
            pool = executor._pool
            assert pool is not None
            executor.run(context, _candidates(2))
            assert executor._pool is pool
            # a fresh context replaces the pool (workers hold the old data)
            executor.run(_context(data, ext), _candidates(2))
            assert executor._pool is not pool
        finally:
            executor.close()
        assert executor._pool is None


class TestTwoLevelFusion:
    """multiprocess+vectorized: process sharding over fused worker blocks."""

    def test_bit_identical_to_serial(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(7)
        serial = SerialExecutor().run(context, candidates).evaluations()
        executor = MultiprocessExecutor(2, vectorized_block_size=3)
        try:
            report = executor.run(context, candidates)
        finally:
            executor.close()
        assert report.evaluations() == serial
        assert [r.candidate.index for r in report.results] == list(range(7))

    def test_derived_seeds_match_serial(self, setup):
        data, ext = setup
        context = _context(data, ext, base_seed=99)
        candidates = [
            Candidate(index=i, A=0.05 * (i + 1), B=0.02 * (i + 1))
            for i in range(5)
        ]
        reference = SerialExecutor().run(context, candidates).evaluations()
        executor = MultiprocessExecutor(2, vectorized_block_size=2)
        try:
            assert executor.run(context, candidates).evaluations() == reference
        finally:
            executor.close()

    def test_row_failure_isolated_inside_worker_block(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(6)
        candidates[2] = Candidate(index=2, A=float("nan"), B=0.1, seed=0)
        serial = SerialExecutor().run(context, candidates)
        executor = MultiprocessExecutor(2, vectorized_block_size=3)
        try:
            report = executor.run(context, candidates)
        finally:
            executor.close()
        assert report.n_failed == 1
        assert [r.ok for r in report.results] == [r.ok for r in serial.results]
        assert report.evaluations() == serial.evaluations()

    def test_prefers_batch_even_with_one_worker(self):
        # a single fused worker still gains candidate-axis fusion from a
        # batch submission, so speculative callers feed it eagerly
        executor = MultiprocessExecutor(1, vectorized_block_size=4)
        assert executor.prefers_batch
        assert not MultiprocessExecutor(1).prefers_batch

    def test_kind_resolution_and_make_executor(self, monkeypatch):
        from repro.exec import (
            resolve_candidate_block_size,
            resolve_executor_kind,
        )

        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert (resolve_executor_kind("multiprocess+vectorized")
                == "multiprocess+vectorized")
        # the reversed spelling is accepted as the same composition
        assert (resolve_executor_kind("vectorized+multiprocess")
                == "multiprocess+vectorized")
        monkeypatch.setenv("REPRO_EXECUTOR", "multiprocess+vectorized")
        assert resolve_executor_kind(None) == "multiprocess+vectorized"
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_CANDIDATE_BLOCK_SIZE", "5")
        executor = make_executor(None)
        assert isinstance(executor, MultiprocessExecutor)
        assert executor.workers == 2
        assert executor.vectorized_block_size == 5
        assert resolve_candidate_block_size(None) == 5

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(2, vectorized_block_size=0)


class TestEvaluationContext:
    def test_pickle_drops_rebuilt_extractor(self, setup):
        data, ext = setup
        context = _context(data, ext)
        context.evaluate(_candidates(1)[0])  # force the lazy rebuild
        assert context._built is not None
        clone = pickle.loads(pickle.dumps(context))
        assert clone._built is None
        # and the clone still evaluates identically
        cand = _candidates(1)[0]
        assert clone.evaluate(cand) == context.evaluate(cand)

    def test_accepts_live_extractor(self, setup):
        data, ext = setup
        context = EvaluationContext(
            extractor=ext,  # live extractor is snapshot in __post_init__
            u_train=data.u_train, y_train=data.y_train,
            u_test=data.u_test, y_test=data.y_test, n_classes=3,
        )
        cand = _candidates(1)[0]
        assert context.evaluate(cand) == _context(data, ext).evaluate(cand)

    def test_candidate_seed_precedence(self, setup):
        data, ext = setup
        context = _context(data, ext, base_seed=5)
        assert context.candidate_seed(Candidate(index=2, A=0.1, B=0.1, seed=77)) == 77
        assert context.candidate_seed(
            Candidate(index=2, A=0.1, B=0.1)
        ) == derive_candidate_seed(5, 2)
        no_base = _context(data, ext)
        assert no_base.candidate_seed(Candidate(index=2, A=0.1, B=0.1)) is None


class TestSnapshotRoundtrip:
    def test_rebuilt_extractor_matches_live(self, setup):
        data, ext = setup
        rebuilt = ext.snapshot().build()
        f_live, d_live = ext.features(data.u_test, 0.1, 0.05)
        f_new, d_new = rebuilt.features(data.u_test, 0.1, 0.05)
        np.testing.assert_array_equal(f_live, f_new)
        np.testing.assert_array_equal(d_live, d_new)

    def test_unfitted_extractor_rejected(self):
        with pytest.raises(RuntimeError):
            DFRFeatureExtractor(n_nodes=4, seed=0).snapshot()


class TestFailedEvaluation:
    def test_sentinel_ranks_last(self):
        failed = FixedParamsEvaluation.failed(0.1, 0.2, error="boom")
        assert failed.diverged
        assert failed.val_loss == float("inf")
        assert failed.val_accuracy == 0.0
        assert failed.test_accuracy == 0.0
        assert np.isnan(failed.beta)
        assert failed.error == "boom"

    def test_identical_sentinels_compare_equal_despite_nan_beta(self):
        a = FixedParamsEvaluation.failed(0.1, 0.2, error="boom")
        b = FixedParamsEvaluation.failed(0.1, 0.2, error="boom")
        assert a == b  # nan beta must not poison bit-identity checks
        assert a != FixedParamsEvaluation.failed(0.1, 0.3, error="boom")
        assert a != "not an evaluation"


class TestSearchFaultTolerance:
    def test_grid_search_survives_raising_evaluation(self, setup, monkeypatch):
        from repro.core.grid_search import GridSearch

        data, ext = setup
        real = exec_context.evaluate_fixed_params
        calls = {"n": 0}

        def flaky(extractor, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("injected worker failure")
            return real(extractor, *args, **kwargs)

        monkeypatch.setattr(exec_context, "evaluate_fixed_params", flaky)
        # pin to serial: with a process pool (e.g. REPRO_WORKERS set) each
        # worker would fork its own copy of the `calls` counter and the
        # injection would fire once per worker instead of once overall
        gs = GridSearch(ext, seed=0, executor=SerialExecutor())
        level = gs.run_level(data.u_train, data.y_train,
                             data.u_test, data.y_test, 2, n_classes=3)
        assert level.n_points == 4
        failed = [ev for ev in level.evaluations if ev.error is not None]
        assert len(failed) == 1
        assert "injected worker failure" in failed[0].error
        # the winner is one of the healthy points
        assert level.best.error is None
