"""Tests for input mask generation and application."""

import numpy as np
import pytest

from repro.reservoir.masking import InputMask, binary_mask, uniform_mask


def test_binary_mask_values_are_pm_gamma():
    m = binary_mask(16, 3, gamma=0.25, seed=7)
    assert m.shape == (16, 3)
    assert set(np.unique(m)) <= {-0.25, 0.25}


def test_binary_mask_uses_both_signs():
    m = binary_mask(64, 4, seed=0)
    assert (m > 0).any() and (m < 0).any()


def test_uniform_mask_range():
    m = uniform_mask(100, 2, gamma=0.5, seed=1)
    assert m.min() >= -0.5 and m.max() <= 0.5


def test_masks_are_reproducible_by_seed():
    np.testing.assert_array_equal(binary_mask(8, 2, seed=3), binary_mask(8, 2, seed=3))
    assert not np.array_equal(binary_mask(8, 2, seed=3), binary_mask(8, 2, seed=4))


def test_apply_matches_matrix_product():
    mask = InputMask.uniform(5, 3, seed=0)
    u = np.random.default_rng(1).normal(size=(4, 10, 3))
    j = mask.apply(u)
    assert j.shape == (4, 10, 5)
    np.testing.assert_allclose(j[2, 7], mask.matrix @ u[2, 7])


def test_apply_single_sample():
    mask = InputMask.binary(6, 2, seed=0)
    u = np.ones((9, 2))
    assert mask.apply(u).shape == (9, 6)


def test_apply_rejects_wrong_channel_count():
    mask = InputMask.binary(6, 2, seed=0)
    with pytest.raises(ValueError, match="channels"):
        mask.apply(np.ones((3, 9, 4)))


def test_mask_univariate_case_is_paper_vector_mask():
    # with C = 1 the mask degenerates to the paper's mask vector m: j = m u(k)
    mask = InputMask.binary(10, 1, seed=5)
    u = np.full((1, 3, 1), 2.0)
    j = mask.apply(u)
    np.testing.assert_allclose(j[0, 0], 2.0 * mask.matrix[:, 0])


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        binary_mask(0, 1)
    with pytest.raises(ValueError):
        uniform_mask(4, 0)
    with pytest.raises(ValueError):
        binary_mask(4, 1, gamma=-1.0)
    with pytest.raises(ValueError):
        InputMask(np.ones((2, 2, 2)))
    with pytest.raises(ValueError):
        InputMask(np.array([[np.inf, 0.0]]))
