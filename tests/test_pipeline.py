"""End-to-end tests for DFRClassifier and the shared evaluation protocol."""

import numpy as np
import pytest

from repro.core.pipeline import (
    DFRClassifier,
    DFRFeatureExtractor,
    evaluate_fixed_params,
)
from repro.core.trainer import TrainerConfig
from repro.data.loaders import make_toy_dataset


@pytest.fixture(scope="module")
def toy():
    return make_toy_dataset(n_classes=3, n_channels=2, length=30,
                            n_train=45, n_test=45, noise=0.25, seed=7)


@pytest.fixture(scope="module")
def fitted(toy):
    clf = DFRClassifier(n_nodes=8, seed=0)
    clf.fit(toy.u_train, toy.y_train)
    return clf


class TestDFRClassifier:
    def test_learns_toy_problem(self, toy, fitted):
        assert fitted.score(toy.u_test, toy.y_test) > 0.6

    def test_beats_untrained_parameters(self, toy, fitted):
        ext = DFRFeatureExtractor(n_nodes=8, seed=0).fit(toy.u_train)
        untrained = evaluate_fixed_params(
            ext, toy.u_train, toy.y_train, toy.u_test, toy.y_test,
            0.01, 0.01, seed=1,
        )
        assert fitted.score(toy.u_test, toy.y_test) >= untrained.test_accuracy

    def test_fitted_attributes(self, fitted):
        assert fitted.A_ is not None and fitted.B_ is not None
        assert fitted.beta_ in (1e-6, 1e-4, 1e-2, 1.0)
        assert fitted.n_classes_ == 3
        assert len(fitted.training_.history) == TrainerConfig().epochs

    def test_predict_shapes(self, toy, fitted):
        preds = fitted.predict(toy.u_test)
        assert preds.shape == (45,)
        probs = fitted.predict_proba(toy.u_test)
        assert probs.shape == (45, 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        np.testing.assert_array_equal(preds, probs.argmax(axis=1))

    def test_unfitted_prediction_rejected(self):
        clf = DFRClassifier(n_nodes=4, seed=0)
        with pytest.raises(RuntimeError, match="fitted"):
            clf.predict(np.zeros((1, 5, 2)))

    def test_reproducible_under_seed(self, toy):
        a1 = DFRClassifier(n_nodes=6, seed=3).fit(toy.u_train, toy.y_train)
        a2 = DFRClassifier(n_nodes=6, seed=3).fit(toy.u_train, toy.y_train)
        assert a1.A_ == a2.A_ and a1.beta_ == a2.beta_
        np.testing.assert_array_equal(
            a1.predict(toy.u_test), a2.predict(toy.u_test)
        )

    def test_custom_config_is_used(self, toy):
        config = TrainerConfig(epochs=2)
        clf = DFRClassifier(n_nodes=6, config=config, seed=0)
        clf.fit(toy.u_train, toy.y_train)
        assert len(clf.training_.history) == 2


class TestClassifierCandidateEvaluation:
    def test_evaluate_candidates_matches_protocol(self, toy, fitted):
        params = [(0.05, 0.02), (0.1, 0.05)]
        evs = fitted.evaluate_candidates(
            toy.u_train, toy.y_train, toy.u_test, toy.y_test, params, seed=3,
        )
        assert [(ev.A, ev.B) for ev in evs] == params
        reference = evaluate_fixed_params(
            fitted.extractor, toy.u_train, toy.y_train, toy.u_test, toy.y_test,
            0.05, 0.02, n_classes=fitted.n_classes_,
            seed=int(np.random.default_rng(3).integers(2**31 - 1)),
        )
        assert evs[0] == reference

    def test_workers_knob_is_bit_identical(self, toy, fitted):
        params = [(0.05, 0.02), (0.1, 0.05), (0.02, 0.1)]
        serial = fitted.evaluate_candidates(
            toy.u_train, toy.y_train, toy.u_test, toy.y_test, params, seed=3)
        fitted.workers = 2
        try:
            parallel = fitted.evaluate_candidates(
                toy.u_train, toy.y_train, toy.u_test, toy.y_test, params, seed=3)
        finally:
            fitted.workers = None
        assert serial == parallel

    def test_requires_fit(self, toy):
        clf = DFRClassifier(n_nodes=4, seed=0)
        with pytest.raises(RuntimeError):
            clf.evaluate_candidates(toy.u_train, toy.y_train,
                                    toy.u_test, toy.y_test, [(0.1, 0.1)])


class TestFeatureExtractor:
    def test_feature_shape(self, toy):
        ext = DFRFeatureExtractor(n_nodes=8, seed=0).fit(toy.u_train)
        feats, diverged = ext.features(toy.u_test, 0.1, 0.1)
        assert feats.shape == (45, 8 * 9)
        assert diverged.shape == (45,)
        assert not diverged.any()

    def test_unfitted_rejected(self):
        ext = DFRFeatureExtractor(n_nodes=4)
        with pytest.raises(RuntimeError, match="fitted"):
            ext.features(np.zeros((1, 5, 2)), 0.1, 0.1)

    def test_standardization_is_fit_on_train_only(self, toy):
        ext = DFRFeatureExtractor(n_nodes=4, seed=0).fit(toy.u_train)
        mean_before = ext.standardizer.mean_.copy()
        ext.features(toy.u_test * 100, 0.1, 0.1)
        np.testing.assert_array_equal(ext.standardizer.mean_, mean_before)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DFRFeatureExtractor(n_nodes=0)
        with pytest.raises(ValueError):
            DFRFeatureExtractor(mask_kind="magic")


class TestEvaluateFixedParams:
    def test_diverged_params_reported_not_raised(self, toy):
        ext = DFRFeatureExtractor(n_nodes=6, seed=0).fit(toy.u_train)
        ev = evaluate_fixed_params(
            ext, toy.u_train, toy.y_train, toy.u_test, toy.y_test,
            5.0, 5.0, seed=1,  # wildly unstable for the identity shape
        )
        assert ev.diverged
        assert ev.test_accuracy == 0.0
        assert ev.val_loss == float("inf")

    def test_returns_consistent_selection(self, toy):
        ext = DFRFeatureExtractor(n_nodes=6, seed=0).fit(toy.u_train)
        ev = evaluate_fixed_params(
            ext, toy.u_train, toy.y_train, toy.u_test, toy.y_test,
            0.1, 0.2, seed=1,
        )
        assert not ev.diverged
        assert ev.beta in (1e-6, 1e-4, 1e-2, 1.0)
        assert 0.0 <= ev.test_accuracy <= 1.0
        assert ev.A == 0.1 and ev.B == 0.2


class TestExtractorConfigSchema:
    """Versioned, strict dict round trip of the extractor snapshot."""

    @staticmethod
    def _config():
        rng = np.random.default_rng(0)
        ext = DFRFeatureExtractor(
            n_nodes=6, nonlinearity="sine", mask_gamma=0.2, seed=1
        ).fit(rng.standard_normal((8, 12, 2)))
        return ext.snapshot()

    def test_json_round_trip_is_exact(self):
        import json

        from repro.core.pipeline import CONFIG_SCHEMA_VERSION, ExtractorConfig

        cfg = self._config()
        data = json.loads(json.dumps(cfg.to_dict()))
        assert data["version"] == CONFIG_SCHEMA_VERSION
        back = ExtractorConfig.from_dict(data)
        assert np.array_equal(back.mask_matrix, cfg.mask_matrix)
        assert np.array_equal(back.mean, cfg.mean)
        assert np.array_equal(back.std, cfg.std)
        assert back.nonlinearity == cfg.nonlinearity
        assert back.normalize == cfg.normalize
        assert back.mask_kind == cfg.mask_kind
        assert back.mask_gamma == cfg.mask_gamma
        # the rebuilt extractor produces bit-identical features
        rng = np.random.default_rng(5)
        u = rng.standard_normal((4, 12, 2))
        f_orig, _ = cfg.build().features(u, 0.4, 0.5)
        f_back, _ = back.build().features(u, 0.4, 0.5)
        assert np.array_equal(f_orig, f_back)

    def test_unknown_keys_rejected(self):
        from repro.core.pipeline import ExtractorConfig

        data = self._config().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown keys.*surprise"):
            ExtractorConfig.from_dict(data)

    def test_missing_keys_rejected(self):
        from repro.core.pipeline import ExtractorConfig

        data = self._config().to_dict()
        del data["std"]
        with pytest.raises(ValueError, match="missing keys.*std"):
            ExtractorConfig.from_dict(data)

    def test_future_version_rejected(self):
        from repro.core.pipeline import ExtractorConfig

        data = self._config().to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            ExtractorConfig.from_dict(data)

    def test_unknown_nonlinearity_rejected(self):
        from repro.core.pipeline import ExtractorConfig

        data = self._config().to_dict()
        data["nonlinearity"] = {"name": "warp-drive", "params": {}}
        with pytest.raises(ValueError, match="warp-drive"):
            ExtractorConfig.from_dict(data)

    def test_nonlinearity_params_survive(self):
        from repro.core.pipeline import ExtractorConfig

        data = self._config().to_dict()
        assert data["nonlinearity"] == {"name": "sine", "params": {"omega": 1.0}}
        data["nonlinearity"]["params"]["omega"] = 2.5
        back = ExtractorConfig.from_dict(data)
        assert back.nonlinearity.omega == 2.5

    def test_non_dict_rejected(self):
        from repro.core.pipeline import ExtractorConfig

        with pytest.raises(TypeError):
            ExtractorConfig.from_dict([1, 2, 3])
