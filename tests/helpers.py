"""Shared helpers for gradient and end-to-end tests."""

from __future__ import annotations

import numpy as np
from repro.readout.softmax import SoftmaxReadout, cross_entropy, softmax
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.nonlinearity import get_nonlinearity


def small_instance(
    rng,
    *,
    n_nodes=4,
    n_channels=2,
    n_steps=6,
    n_classes=3,
    nonlinearity="identity",
    zero_readout=False,
):
    """Build a random small DFR instance for gradient/differential tests.

    Returns a dict with the input sample, mask, reservoir, readout, and
    random (A, B) drawn from a stable range.
    """
    mask = InputMask.uniform(n_nodes, n_channels, seed=rng)
    dfr = ModularDFR(mask, nonlinearity=nonlinearity)
    u = rng.normal(size=(n_steps, n_channels))
    a_val = float(rng.uniform(0.05, 0.4))
    b_val = float(rng.uniform(0.05, 0.4))
    n_features = DPRR.n_features(n_nodes)
    readout = SoftmaxReadout(n_features, n_classes)
    if not zero_readout:
        readout.weights = rng.normal(scale=0.3, size=(n_classes, n_features))
        readout.bias = rng.normal(scale=0.1, size=n_classes)
    target = np.zeros(n_classes)
    target[int(rng.integers(n_classes))] = 1.0
    return {
        "u": u,
        "mask": mask,
        "dfr": dfr,
        "A": a_val,
        "B": b_val,
        "readout": readout,
        "target": target,
        "nonlinearity": nonlinearity,
    }


def end_to_end_loss(u, mask, A, B, weights, bias, target_onehot,
                    nonlinearity="identity", normalize="length"):
    """Loss of the full stack as a plain function of the parameters.

    Used by finite-difference gradient checks: it shares the *forward* code
    with production but involves none of the analytic backward code.
    """
    dfr = ModularDFR(mask, nonlinearity=get_nonlinearity(nonlinearity))
    trace = dfr.run(u, A, B)
    feats = DPRR(normalize=normalize).features(trace)[0]
    z = weights @ feats + bias
    probs = softmax(z)
    return float(cross_entropy(probs[np.newaxis],
                               np.asarray(target_onehot)[np.newaxis])[0])


def central_difference(func, x0, eps=1e-6):
    """Central finite difference of a scalar function at ``x0``."""
    return (func(x0 + eps) - func(x0 - eps)) / (2.0 * eps)
