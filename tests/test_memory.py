"""Storage accounting: the paper's Table 2, reproduced EXACTLY.

These are the strongest paper-number tests in the suite: the formulas of
repro.memory.accounting must regenerate every naive/simplified/reduction
value of Table 2 from the dataset metadata, bit for bit.
"""

import numpy as np
import pytest

from repro.data.metadata import DATASETS, N_X_PAPER, PAPER_TABLE2
from repro.memory.accounting import (
    StorageBreakdown,
    dataset_storage_row,
    naive_storage,
    reduction_percent,
    truncated_storage,
)


@pytest.mark.parametrize("key", list(DATASETS))
def test_table2_rows_reproduce_exactly(key):
    spec = DATASETS[key]
    row = dataset_storage_row(spec)
    naive, simplified, reduction = PAPER_TABLE2[key]
    assert row["naive"] == naive, f"{key}: naive storage mismatch"
    assert row["simplified"] == simplified, f"{key}: simplified storage mismatch"
    assert row["reduction_percent"] == reduction, f"{key}: reduction mismatch"


def test_paper_example_from_section_3_4():
    """Sec. 3.4: T=500, N_x=30, 3 classes -> ~80% total memory reduction."""
    naive = naive_storage(500, 30, 3)
    reduced = truncated_storage(30, 3)
    assert reduction_percent(naive.total, reduced.total) == pytest.approx(80, abs=2)


def test_state_memory_reduction_below_2_percent_for_long_series():
    """Sec. 3.4: for T > 100 the reservoir-state storage drops below 2%."""
    for t_len in (101, 500, 1917):
        naive = naive_storage(t_len, 30, 2)
        reduced = truncated_storage(30, 2)
        assert reduced.reservoir_states / naive.reservoir_states < 0.02


def test_breakdown_components():
    b = naive_storage(10, 4, 3)
    assert b.reservoir_states == 11 * 4
    assert b.representation == 4 * 5
    assert b.readout == 3 * (4 * 5 + 1)
    assert b.total == 44 + 20 + 63
    assert isinstance(b, StorageBreakdown)


def test_truncated_window_scaling():
    base = truncated_storage(30, 2, window=1)
    wider = truncated_storage(30, 2, window=4)
    assert wider.reservoir_states - base.reservoir_states == 3 * 30
    assert wider.representation == base.representation
    assert wider.readout == base.readout


def test_truncated_equals_naive_at_window_T():
    naive = naive_storage(57, 30, 5)
    reduced = truncated_storage(30, 5, window=57)
    assert reduced.total == naive.total


def test_reduction_percent_rounding():
    assert reduction_percent(13030, 10300) == 21   # ARAB: 20.95 -> 21
    assert reduction_percent(93455, 89435) == 4    # AUS: 4.30 -> 4
    assert reduction_percent(100, 100) == 0


def test_validation():
    with pytest.raises(ValueError):
        naive_storage(0, 30, 2)
    with pytest.raises(ValueError):
        naive_storage(10, 0, 2)
    with pytest.raises(ValueError):
        truncated_storage(30, 0)
    with pytest.raises(ValueError):
        truncated_storage(30, 2, window=0)
    with pytest.raises(ValueError):
        reduction_percent(0, 1)


def test_metadata_consistency_with_inversion():
    """The (T, N_y) metadata must invert Table 2 under the formulas — i.e.
    the derivation chain paper -> metadata -> Table 2 is self-consistent."""
    for key, spec in DATASETS.items():
        naive, simplified, _ = PAPER_TABLE2[key]
        n_r = N_X_PAPER * (N_X_PAPER + 1)
        readout = spec.n_classes * (n_r + 1)
        assert naive - simplified == (spec.length - 1) * N_X_PAPER, key
        assert simplified == 2 * N_X_PAPER + n_r + readout, key
