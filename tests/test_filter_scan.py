"""Scan-kernel, filter-routing, LRU-cache and mixed-precision tests.

The log-depth associative scan of :mod:`repro.backend.scan` is the
device backends' long-chain replacement for the Toeplitz matmul; it is
backend-generic, so these tests exercise the *identical* arithmetic on
plain NumPy arrays and pin it against the exact SciPy ``lfilter``
reference across chain lengths, coefficient regimes (including the
marginally-stable ``c -> 1`` corner) and non-zero initial conditions.
Device-backend routing (``REPRO_FILTER_IMPL`` / ``REPRO_SCAN_CROSSOVER``)
and the float32 precision knob are covered alongside, with torch-gated
cases skipping cleanly when the library is absent.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.signal import lfilter

from repro.backend import (
    BackendUnavailableError,
    NumpyBackend,
    resolve_backend,
    with_dtype,
)
from repro.backend.scan import (
    DEFAULT_SCAN_CROSSOVER,
    FILTER_IMPL_ENV_VAR,
    SCAN_CROSSOVER_ENV_VAR,
    LRUCache,
    first_order_scan,
    first_order_scan_stacked,
    resolve_filter_impl,
    scan_crossover,
    use_scan,
)

XB = NumpyBackend()

#: chain lengths spanning both sides of the auto crossover, up to the
#: series-length regime the scan exists for
CHAIN_LENGTHS = (64, 1024, 8192)
#: decaying, strongly-damped, marginally-stable and integrating chains
COEFS = (0.0, 0.5, 0.999999, 1.0)


def _require(name):
    """Resolve a non-NumPy backend or skip the test cleanly."""
    try:
        return resolve_backend(name)
    except BackendUnavailableError as exc:
        pytest.skip(f"backend {name!r} not installed: {exc}")


def _lfilter_ref(x, coef, zi):
    y, _ = lfilter([1.0], np.array([1.0, -coef]), x, axis=-1, zi=zi)
    return y


# --------------------------------------------------------------------- #
# scan vs exact lfilter (NumPy arrays, backend-generic arithmetic)
# --------------------------------------------------------------------- #


class TestScanParity:
    @pytest.mark.parametrize("n", CHAIN_LENGTHS)
    @pytest.mark.parametrize("coef", COEFS)
    def test_scalar_chain_matches_lfilter(self, n, coef):
        gen = np.random.default_rng(n)
        x = gen.normal(size=(3, n))
        zi = gen.normal(size=(3, 1))
        got = first_order_scan(XB, x, coef, zi)
        want = _lfilter_ref(x, coef, zi)
        # c = 1 integrates ~n samples, so compare relative to magnitude
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("n", CHAIN_LENGTHS)
    def test_stacked_chain_matches_per_candidate_lfilter(self, n):
        gen = np.random.default_rng(n + 1)
        coefs = np.array(COEFS)
        k = coefs.shape[0]
        x = gen.normal(size=(k, 2, n))
        zi = gen.normal(size=(k, 2, 1))
        got = first_order_scan_stacked(XB, x, coefs, zi)
        for i, coef in enumerate(coefs):
            np.testing.assert_allclose(
                got[i], _lfilter_ref(x[i], coef, zi[i]),
                rtol=1e-10, atol=1e-10)

    def test_stacked_accepts_bare_2d_input(self):
        gen = np.random.default_rng(7)
        coefs = np.array([0.2, 0.8])
        x = gen.normal(size=(2, 300))
        zi = gen.normal(size=(2, 1))
        got = first_order_scan_stacked(XB, x, coefs, zi)
        for i, coef in enumerate(coefs):
            np.testing.assert_allclose(
                got[i], _lfilter_ref(x[i], coef, zi[i]),
                rtol=1e-10, atol=1e-10)

    def test_zero_zi_and_length_one_chain(self):
        x = np.array([[2.5]])
        assert first_order_scan(XB, x, 0.9, np.zeros((1, 1)))[0, 0] == 2.5
        # zi folds into sample 0: y_0 = x_0 + zi exactly
        got = first_order_scan(XB, x, 0.9, np.array([[1.5]]))
        assert got[0, 0] == 4.0

    def test_divergent_coef_overflows_without_raising(self):
        # |c| > 1 chains overflow to inf on long series, exactly like the
        # Toeplitz powers; the hot path's errstate silences the warning
        x = np.ones((1, 4096))
        with np.errstate(over="ignore", invalid="ignore"):
            y = first_order_scan(XB, x, 1.5, np.zeros((1, 1)))
        assert np.isinf(y[0, -1])


# --------------------------------------------------------------------- #
# implementation routing knobs
# --------------------------------------------------------------------- #


class TestFilterRouting:
    def test_default_is_auto_with_crossover(self, monkeypatch):
        monkeypatch.delenv(FILTER_IMPL_ENV_VAR, raising=False)
        monkeypatch.delenv(SCAN_CROSSOVER_ENV_VAR, raising=False)
        assert resolve_filter_impl() == "auto"
        assert scan_crossover() == DEFAULT_SCAN_CROSSOVER
        assert not use_scan(DEFAULT_SCAN_CROSSOVER - 1)
        assert use_scan(DEFAULT_SCAN_CROSSOVER)

    def test_pinned_impl_wins_over_length(self, monkeypatch):
        monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "scan")
        assert use_scan(2)
        monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "toeplitz")
        assert not use_scan(10**6)

    def test_crossover_override(self, monkeypatch):
        monkeypatch.delenv(FILTER_IMPL_ENV_VAR, raising=False)
        monkeypatch.setenv(SCAN_CROSSOVER_ENV_VAR, "32")
        assert use_scan(32)
        assert not use_scan(31)

    def test_invalid_values_raise(self, monkeypatch):
        monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "fft")
        with pytest.raises(ValueError, match="REPRO_FILTER_IMPL"):
            resolve_filter_impl()
        monkeypatch.delenv(FILTER_IMPL_ENV_VAR)
        monkeypatch.setenv(SCAN_CROSSOVER_ENV_VAR, "zero")
        with pytest.raises(ValueError, match="REPRO_SCAN_CROSSOVER"):
            scan_crossover()
        monkeypatch.setenv(SCAN_CROSSOVER_ENV_VAR, "0")
        with pytest.raises(ValueError, match=">= 1"):
            scan_crossover()

    def test_numpy_backend_ignores_the_pin(self, monkeypatch):
        # the NumPy reference keeps its exact lfilter under any pin — the
        # scan is a device-backend selection only (bit-pins stay intact)
        gen = np.random.default_rng(3)
        x = gen.normal(size=(2, 400))
        zi = gen.normal(size=(2, 1))
        base = XB.first_order_filter(x, 0.7, zi)
        monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "scan")
        pinned = XB.first_order_filter(x, 0.7, zi)
        np.testing.assert_array_equal(base, pinned)


# --------------------------------------------------------------------- #
# torch routing (skips when the library is absent)
# --------------------------------------------------------------------- #


class TestTorchScanRouting:
    def test_scan_matches_toeplitz_below_and_above_crossover(
            self, monkeypatch):
        xb = _require("torch")
        gen = np.random.default_rng(11)
        for n in (64, 1024):
            x = xb.asarray(gen.normal(size=(3, n)))
            zi = xb.asarray(gen.normal(size=(3, 1)))
            monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "toeplitz")
            y_toep = xb.to_numpy(xb.first_order_filter(x, 0.9, zi))
            monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "scan")
            y_scan = xb.to_numpy(xb.first_order_filter(x, 0.9, zi))
            np.testing.assert_allclose(y_scan, y_toep,
                                       rtol=1e-12, atol=1e-12)

    def test_stacked_scan_matches_numpy_reference(self, monkeypatch):
        xb = _require("torch")
        gen = np.random.default_rng(12)
        coefs = np.array([0.1, 0.5, 0.999999])
        x = gen.normal(size=(3, 2, 1024))
        zi = gen.normal(size=(3, 2, 1))
        want = XB.first_order_filter_stacked(x, coefs, zi)
        monkeypatch.setenv(FILTER_IMPL_ENV_VAR, "scan")
        got = xb.to_numpy(xb.first_order_filter_stacked(
            xb.asarray(x), coefs, xb.asarray(zi)))
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)

    def test_auto_routes_by_length(self, monkeypatch):
        xb = _require("torch")
        monkeypatch.delenv(FILTER_IMPL_ENV_VAR, raising=False)
        monkeypatch.setenv(SCAN_CROSSOVER_ENV_VAR, "256")
        gen = np.random.default_rng(13)
        # below the crossover the Toeplitz cache gains an entry; above it
        # the scan path allocates no matrix
        before = len(xb._toeplitz_cache)
        x = xb.asarray(gen.normal(size=(2, 300)))
        xb.first_order_filter(x, 0.42424242, xb.asarray(np.zeros((2, 1))))
        assert len(xb._toeplitz_cache) == before

        x = xb.asarray(gen.normal(size=(2, 100)))
        xb.first_order_filter(x, 0.42424242, xb.asarray(np.zeros((2, 1))))
        assert len(xb._toeplitz_cache) == before + 1


# --------------------------------------------------------------------- #
# LRU cache (the Toeplitz working-set fix)
# --------------------------------------------------------------------- #


class TestLRUCache:
    def test_eviction_drops_only_the_oldest(self):
        cache = LRUCache(maxsize=64)
        for i in range(64):
            cache.put(i, i * 10)
        cache.put(64, 640)  # 65th insert
        assert len(cache) == 64
        assert 0 not in cache  # only the stalest entry left
        for i in range(1, 65):
            assert cache.get(i) == i * 10

    def test_get_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_overwrite_refreshes_without_evicting(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        cache.put("c", 3)
        assert "b" not in cache and cache.get("a") == 10

    def test_miss_returns_none_and_maxsize_validates(self):
        cache = LRUCache(maxsize=1)
        assert cache.get("missing") is None
        with pytest.raises(ValueError, match="maxsize"):
            LRUCache(maxsize=0)

    def test_keys_in_recency_order(self):
        cache = LRUCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_torch_toeplitz_cache_is_lru(self):
        xb = _require("torch")
        assert isinstance(xb._toeplitz_cache, LRUCache)
        assert xb._toeplitz_cache.maxsize == 64

    def test_concurrent_access_is_safe(self):
        # the serving engine may tick from one thread while REPRO_WORKERS
        # extraction hammers the same cache from others; unsynchronized
        # OrderedDict mutation corrupts the recency list or raises
        import threading

        cache = LRUCache(maxsize=16)
        errors = []
        barrier = threading.Barrier(4)

        def worker(tid):
            rng = np.random.default_rng(tid)
            barrier.wait()
            try:
                for i in range(2000):
                    key = int(rng.integers(0, 64))
                    value = cache.get(key)
                    if value is not None:
                        assert value == key * 3
                    cache.put(key, key * 3)
                    if i % 500 == 0:
                        cache.keys()
                        len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        # the cache must still behave: a fresh put/get cycle works
        cache.put("post", 42)
        assert cache.get("post") == 42


# --------------------------------------------------------------------- #
# mixed precision (dtype knob and spec grammar)
# --------------------------------------------------------------------- #


class TestMixedPrecision:
    def test_spec_grammar_and_caching(self):
        xb32 = resolve_backend("numpy@float32")
        assert xb32.dtype_name == "float32"
        assert xb32 is resolve_backend("numpy@float32")
        assert xb32 is resolve_backend("numpy", dtype="float32")
        # default-dtype specs keep resolving to the shared singleton
        assert resolve_backend("numpy@float64") is resolve_backend("numpy")
        assert resolve_backend(None, dtype="float64") is \
            resolve_backend("numpy")
        with pytest.raises(ValueError, match="dtype"):
            resolve_backend("numpy@float16")

    def test_with_dtype_helper(self):
        assert with_dtype("numpy", "float32") == "numpy@float32"
        assert with_dtype("torch:cuda:0@float64", "float32") == \
            "torch:cuda:0@float32"
        assert with_dtype("numpy@float32", "float64") == "numpy"
        assert with_dtype(None, "float32") == "numpy@float32"
        assert with_dtype(resolve_backend("numpy"), "float32") == \
            "numpy@float32"
        with pytest.raises(ValueError, match="dtype"):
            with_dtype("numpy", "int8")

    def test_repro_dtype_env(self, monkeypatch):
        from repro.backend import default_backend

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        assert default_backend().dtype_name == "float32"
        monkeypatch.setenv("REPRO_DTYPE", "float16")
        with pytest.raises(ValueError, match="REPRO_DTYPE"):
            default_backend()

    def test_float32_arrays_stay_float32(self):
        xb32 = resolve_backend("numpy@float32")
        assert xb32.zeros((2, 2)).dtype == np.float32
        assert xb32.asarray(np.ones(3)).dtype == np.float32
        y = xb32.first_order_filter(
            xb32.asarray(np.random.default_rng(0).normal(size=(2, 50))),
            0.5, xb32.zeros((2, 1)))
        assert y.dtype == np.float32

    def test_float64_default_untouched(self):
        # the bit-pinned reference: float64 mode never converts
        xb = resolve_backend("numpy")
        a = np.arange(4.0)
        assert xb.asarray(a) is a

    def test_float32_scan_stays_float32(self):
        xb32 = resolve_backend("numpy@float32")
        gen = np.random.default_rng(5)
        x = xb32.asarray(gen.normal(size=(2, 3, 512)))
        zi = xb32.zeros((2, 3, 1))
        y = first_order_scan_stacked(xb32, x, np.array([0.3, 0.8]), zi)
        assert y.dtype == np.float32

    def test_float32_features_match_float64_within_tolerance(self):
        # the documented tolerance contract (docs/ARCHITECTURE.md):
        # features rtol ~1e-3 against the float64 reference
        from repro.core.pipeline import DFRFeatureExtractor

        gen = np.random.default_rng(21)
        u = gen.normal(size=(12, 40, 3))
        f64 = DFRFeatureExtractor(n_nodes=10, seed=0).fit(u)
        f32 = DFRFeatureExtractor(n_nodes=10, seed=0, dtype="float32").fit(u)
        feats64, div64 = f64.features(u, 0.2, 0.3)
        feats32, div32 = f32.features(u, 0.2, 0.3)
        assert feats32.dtype == np.float32
        assert not div64.any() and not div32.any()
        scale = np.abs(feats64).max()
        np.testing.assert_allclose(feats32, feats64, rtol=1e-3,
                                   atol=1e-3 * scale)

    def test_float32_gradients_match_float64_within_tolerance(self):
        # gradients accumulate more rounding: rtol ~1e-2 on the scalar
        # parameter gradients (the quantities SGD consumes)
        from repro.core.backprop import BackpropEngine
        from repro.readout.softmax import SoftmaxReadout, one_hot
        from repro.representation.dprr import DPRR
        from repro.reservoir.masking import InputMask
        from repro.reservoir.modular import ModularDFR

        gen = np.random.default_rng(22)
        u = gen.normal(size=(8, 30, 2))
        dfr = ModularDFR(InputMask.binary(10, 2, seed=0))
        trace = dfr.run(u, 0.2, 0.3)
        dprr = DPRR()
        feats = dprr.features(trace)
        readout = SoftmaxReadout(feats.shape[1], 3)
        readout.weights = gen.normal(scale=0.01, size=readout.weights.shape)
        targets = one_hot(gen.integers(0, 3, size=8), 3)
        win = trace.final_window(1)

        def grads(dtype):
            engine = BackpropEngine(window=1, dprr=dprr, backend="numpy",
                                    dtype=dtype)
            return engine.batch_gradients(
                win.window_states, win.window_pre_activations, feats,
                readout, targets, 0.2, 0.3, n_steps=trace.n_steps)

        g64 = grads(None)
        g32 = grads("float32")
        np.testing.assert_allclose(g32.d_A, g64.d_A, rtol=1e-2, atol=1e-5)
        np.testing.assert_allclose(g32.d_B, g64.d_B, rtol=1e-2, atol=1e-5)
        np.testing.assert_allclose(g32.losses, g64.losses,
                                   rtol=1e-3, atol=1e-5)

    def test_trainer_config_validates_dtype(self):
        from repro.core.trainer import TrainerConfig

        assert TrainerConfig(dtype="float32").dtype == "float32"
        with pytest.raises(ValueError, match="dtype"):
            TrainerConfig(dtype="bf16")

    def test_extractor_config_roundtrips_dtype(self):
        from repro.core.pipeline import DFRFeatureExtractor

        gen = np.random.default_rng(23)
        u = gen.normal(size=(6, 20, 2))
        ext = DFRFeatureExtractor(n_nodes=6, seed=0, dtype="float32").fit(u)
        rebuilt = ext.snapshot().build()
        assert rebuilt.dtype == "float32"
        assert rebuilt.backend.dtype_name == "float32"
        f_a, _ = ext.features(u, 0.2, 0.3)
        f_b, _ = rebuilt.features(u, 0.2, 0.3)
        np.testing.assert_array_equal(f_a, f_b)
