"""Tests for the softmax/cross-entropy output layer (paper Sec. 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.readout.softmax import (
    SoftmaxReadout,
    cross_entropy,
    one_hot,
    softmax,
)


def test_softmax_rows_sum_to_one(rng):
    z = rng.normal(size=(7, 4)) * 10
    p = softmax(z)
    np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-12)
    assert np.all(p >= 0)


def test_softmax_is_shift_invariant(rng):
    z = rng.normal(size=(3, 5))
    np.testing.assert_allclose(softmax(z), softmax(z + 123.0), rtol=1e-10)


def test_softmax_extreme_logits_stable():
    p = softmax(np.array([[1e4, 0.0, -1e4]]))
    assert np.all(np.isfinite(p))
    assert p[0, 0] == pytest.approx(1.0)


def test_cross_entropy_perfect_prediction_is_zero():
    probs = np.array([[0.0, 1.0, 0.0]])
    targets = np.array([[0.0, 1.0, 0.0]])
    assert cross_entropy(probs, targets)[0] == pytest.approx(0.0)


def test_cross_entropy_wrong_confident_prediction_is_large_but_finite():
    probs = np.array([[1.0, 0.0]])
    targets = np.array([[0.0, 1.0]])
    loss = cross_entropy(probs, targets)[0]
    assert np.isfinite(loss) and loss > 100


def test_one_hot_round_trip():
    labels = np.array([0, 2, 1, 2])
    enc = one_hot(labels, 3)
    assert enc.shape == (4, 3)
    np.testing.assert_array_equal(enc.argmax(axis=1), labels)
    np.testing.assert_array_equal(enc.sum(axis=1), 1.0)


def test_one_hot_rejects_out_of_range():
    with pytest.raises(ValueError):
        one_hot(np.array([0, 3]), 3)
    with pytest.raises(ValueError):
        one_hot(np.array([-1]), 3)


class TestSoftmaxReadout:
    def test_zero_init_predicts_uniform(self):
        readout = SoftmaxReadout(10, 4)
        p = readout.predict_proba(np.random.default_rng(0).normal(size=(3, 10)))
        np.testing.assert_allclose(p, 0.25, rtol=1e-12)

    def test_gradients_match_finite_difference(self, rng):
        readout = SoftmaxReadout(6, 3)
        readout.weights = rng.normal(size=(3, 6))
        readout.bias = rng.normal(size=3)
        r = rng.normal(size=6)
        d = one_hot(np.array([1]), 3)[0]
        out = readout.loss_and_grads(r, d)

        eps = 1e-6

        def loss_at(w, b):
            tmp = SoftmaxReadout(6, 3)
            tmp.weights, tmp.bias = w, b
            return tmp.loss_and_grads(r, d).loss

        # spot-check several weight entries and all bias entries
        for (i, j) in [(0, 0), (1, 3), (2, 5)]:
            w_plus = readout.weights.copy()
            w_plus[i, j] += eps
            w_minus = readout.weights.copy()
            w_minus[i, j] -= eps
            num = (loss_at(w_plus, readout.bias) - loss_at(w_minus, readout.bias)) / (
                2 * eps
            )
            assert out.d_weights[i, j] == pytest.approx(num, rel=1e-5, abs=1e-8)
        for i in range(3):
            b_plus = readout.bias.copy()
            b_plus[i] += eps
            b_minus = readout.bias.copy()
            b_minus[i] -= eps
            num = (loss_at(readout.weights, b_plus)
                   - loss_at(readout.weights, b_minus)) / (2 * eps)
            assert out.d_bias[i] == pytest.approx(num, rel=1e-5, abs=1e-8)

    def test_feature_gradient_matches_finite_difference(self, rng):
        readout = SoftmaxReadout(5, 3)
        readout.weights = rng.normal(size=(3, 5))
        r = rng.normal(size=5)
        d = one_hot(np.array([2]), 3)[0]
        out = readout.loss_and_grads(r, d)
        eps = 1e-6
        for i in range(5):
            r_plus = r.copy()
            r_plus[i] += eps
            r_minus = r.copy()
            r_minus[i] -= eps
            num = (
                readout.loss_and_grads(r_plus, d).loss
                - readout.loss_and_grads(r_minus, d).loss
            ) / (2 * eps)
            assert out.d_features[i] == pytest.approx(num, rel=1e-5, abs=1e-8)

    def test_delta_is_probs_minus_target(self, rng):
        """Paper Eq. 16: the backpropagated output error is y - d."""
        readout = SoftmaxReadout(4, 3)
        readout.weights = rng.normal(size=(3, 4))
        r = rng.normal(size=4)
        d = one_hot(np.array([0]), 3)[0]
        out = readout.loss_and_grads(r, d)
        np.testing.assert_allclose(out.d_bias, out.probs - d, rtol=1e-12)

    def test_shape_validation(self):
        readout = SoftmaxReadout(4, 3)
        with pytest.raises(ValueError):
            readout.loss_and_grads(np.zeros(5), np.zeros(3))
        with pytest.raises(ValueError):
            readout.loss_and_grads(np.zeros(4), np.zeros(2))
        with pytest.raises(ValueError):
            SoftmaxReadout(0, 3)
        with pytest.raises(ValueError):
            SoftmaxReadout(4, 1)

    def test_predict_argmax(self, rng):
        readout = SoftmaxReadout(4, 3)
        readout.weights = rng.normal(size=(3, 4))
        feats = rng.normal(size=(10, 4))
        np.testing.assert_array_equal(
            readout.predict(feats), readout.predict_proba(feats).argmax(axis=1)
        )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gradient_of_loss_wrt_logits_is_probs_minus_target(seed):
    rng = np.random.default_rng(seed)
    z = rng.normal(size=4)
    d = np.zeros(4)
    d[rng.integers(4)] = 1.0

    def loss(z_val):
        return float(cross_entropy(softmax(z_val[np.newaxis]), d[np.newaxis])[0])

    grads = softmax(z[np.newaxis])[0] - d
    eps = 1e-6
    for i in range(4):
        z_p = z.copy()
        z_p[i] += eps
        z_m = z.copy()
        z_m[i] -= eps
        assert grads[i] == pytest.approx((loss(z_p) - loss(z_m)) / (2 * eps),
                                         rel=1e-4, abs=1e-7)
