"""Chaos tests: fault injection, supervision, backpressure, shedding.

The acceptance contract of the fault-tolerance layer is *bit-identity
under recovery*: a seeded :class:`~repro.faults.FaultPlan` that kills
workers, raises in sweeps, or corrupts fused rows must leave the final
search outcome and every replayed chunk result byte-identical to the
fault-free NumPy run — retries, re-dispatches and fallbacks visible only
in the counters.  No injected fault may hang an engine or leak a future.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.core.pipeline import DFRFeatureExtractor
from repro.data.loaders import make_toy_dataset
from repro.exec import (
    Candidate,
    EvaluationContext,
    MultiprocessExecutor,
    SerialExecutor,
    VectorizedExecutor,
)
from repro.faults import (
    FAULT_PLAN_ENV,
    PLAN_FORMAT,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    clear_fault_plan,
    install_fault_plan,
)
from repro.readout.ridge import fit_ridge
from repro.serve import (
    AsyncServeEngine,
    Backpressure,
    Overloaded,
    ServableModel,
    ServeEngine,
    VirtualClock,
    poisson_trace,
    replay,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    """No plan leaks into (or out of) any test."""
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture(scope="module")
def setup():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=20,
                            n_train=30, n_test=30, noise=0.3, seed=7)
    ext = DFRFeatureExtractor(n_nodes=5, seed=0).fit(data.u_train)
    return data, ext


def _context(data, ext, **kwargs):
    return EvaluationContext(
        extractor=ext.snapshot(),
        u_train=data.u_train, y_train=data.y_train,
        u_test=data.u_test, y_test=data.y_test,
        n_classes=3, **kwargs,
    )


def _candidates(n, seed=123):
    rng = np.random.default_rng(0)
    return [
        Candidate(index=i, A=float(10.0 ** rng.uniform(-3, -1)),
                  B=float(10.0 ** rng.uniform(-2, -1)), seed=seed)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def served_model():
    rng = np.random.default_rng(0)
    u = rng.standard_normal((40, 32, 2))
    y = rng.integers(0, 3, 40)
    ext = DFRFeatureExtractor(n_nodes=8, seed=1).fit(u)
    A, B = 0.4, 0.5
    feats, _ = ext.features(u, A, B)
    ridge = fit_ridge(feats, y, 1e-2)
    return ServableModel(name="m0", A=A, B=B, config=ext.snapshot(),
                         readout=ridge)


# --------------------------------------------------------------------- #
# plan envelope + environment resolution
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(faults=[
            FaultSpec(kind="kill_worker", at=2, times=2),
            FaultSpec(kind="delay_tick", at=0, times=3, delay_ms=5.0),
        ], seed=9)
        back = FaultPlan.from_json(plan.to_json())
        assert back.seed == 9
        assert back.faults == plan.faults
        assert json.loads(plan.to_json())["format"] == PLAN_FORMAT

    def test_envelope_is_strict(self):
        doc = FaultPlan(faults=[FaultSpec(kind="raise_sweep", at=0)]).to_dict()
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({**doc, "extra": 1})
        with pytest.raises(ValueError, match="missing"):
            FaultPlan.from_dict({k: v for k, v in doc.items()
                                 if k != "seed"})
        with pytest.raises(ValueError, match="format"):
            FaultPlan.from_dict({**doc, "format": "other"})
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict({**doc, "format_version": 99})

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meteor_strike", at=0)
        with pytest.raises(ValueError, match="'at'"):
            FaultSpec(kind="kill_worker", at=-1)
        with pytest.raises(ValueError, match="'times'"):
            FaultSpec(kind="kill_worker", at=0, times=0)
        with pytest.raises(ValueError, match="delay_ms"):
            FaultSpec(kind="kill_worker", at=0, delay_ms=3.0)
        with pytest.raises(ValueError, match="unknown"):
            FaultSpec.from_dict({"kind": "kill_worker", "at": 0, "x": 1})

    def test_install_exports_env_and_clear_scrubs(self, monkeypatch):
        import os
        plan = install_fault_plan(
            FaultPlan(faults=[FaultSpec(kind="raise_sweep", at=1)]))
        assert active_fault_plan() is plan
        assert FaultPlan.from_json(os.environ[FAULT_PLAN_ENV]).faults == \
            plan.faults
        clear_fault_plan()
        assert active_fault_plan() is None
        assert FAULT_PLAN_ENV not in os.environ

    def test_env_accepts_inline_json_and_path(self, monkeypatch, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="delay_tick", at=2,
                                           delay_ms=1.0)])
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert active_fault_plan().faults == plan.faults
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert active_fault_plan().faults == plan.faults

    def test_hooks_are_noops_without_plan(self):
        from repro import faults
        faults.on_worker_candidate(0, 0)
        assert faults.should_corrupt_row(0) is False
        faults.maybe_raise_sweep(0)
        assert faults.tick_delay_s(0) == 0.0

    def test_sweep_and_tick_windows(self):
        plan = FaultPlan(faults=[
            FaultSpec(kind="raise_sweep", at=2, times=2),
            FaultSpec(kind="delay_tick", at=1, times=1, delay_ms=7.0),
        ])
        plan.maybe_raise_sweep(1)
        with pytest.raises(FaultInjected):
            plan.maybe_raise_sweep(2)
        with pytest.raises(FaultInjected):
            plan.maybe_raise_sweep(3)
        plan.maybe_raise_sweep(4)
        assert plan.tick_delay_s(0) == 0.0
        assert plan.tick_delay_s(1) == pytest.approx(0.007)


# --------------------------------------------------------------------- #
# executor supervision: kill, retry, poison, corrupt
# --------------------------------------------------------------------- #


class TestExecutorChaos:
    def test_worker_kill_recovers_bit_identically(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(5)
        serial = SerialExecutor().run(context, candidates).evaluations()
        install_fault_plan(FaultPlan(faults=[
            FaultSpec(kind="kill_worker", at=1, times=2)]))
        with MultiprocessExecutor(2, chunksize=1, max_retries=3,
                                  backoff_ms=1.0) as ex:
            report = ex.run(context, candidates)
        assert all(r.ok for r in report.results)
        assert report.redispatches >= 1
        assert report.evaluations() == serial

    def test_transient_raise_retries_bit_identically(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(4)
        serial = SerialExecutor().run(context, candidates).evaluations()
        install_fault_plan(FaultPlan(faults=[
            FaultSpec(kind="raise_candidate", at=3, times=1)]))
        with MultiprocessExecutor(2, chunksize=1, max_retries=3,
                                  backoff_ms=1.0) as ex:
            report = ex.run(context, candidates)
        assert all(r.ok for r in report.results)
        assert report.retries >= 1
        assert report.redispatches == 0
        assert report.evaluations() == serial

    def test_poisoned_candidate_fails_alone(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(5)
        serial = SerialExecutor().run(context, candidates).evaluations()
        install_fault_plan(FaultPlan(faults=[
            FaultSpec(kind="kill_worker", at=1, times=99)]))
        with MultiprocessExecutor(2, chunksize=1, max_retries=2,
                                  backoff_ms=1.0) as ex:
            report = ex.run(context, candidates)
        failed = [r.candidate.index for r in report.results if not r.ok]
        assert failed == [1]
        evs = report.evaluations()
        assert evs[1].diverged and evs[1].val_loss == float("inf")
        for i in (0, 2, 3, 4):
            assert evs[i] == serial[i]

    def test_corrupt_row_rescored_bit_identically(self, setup):
        data, ext = setup
        context = _context(data, ext)
        candidates = _candidates(5)
        serial = SerialExecutor().run(context, candidates).evaluations()
        install_fault_plan(FaultPlan(faults=[
            FaultSpec(kind="corrupt_row", at=2, times=1)]))
        report = VectorizedExecutor(block_size=3).run(context, candidates)
        assert all(r.ok for r in report.results)
        assert report.evaluations() == serial

    def test_context_manager_closes_pool(self, setup):
        data, ext = setup
        context = _context(data, ext)
        with MultiprocessExecutor(2) as ex:
            ex.run(context, _candidates(3))
            assert ex._pool is not None
        assert ex._pool is None


# --------------------------------------------------------------------- #
# serve engine: sweep retry, serial fallback, shedding, backpressure
# --------------------------------------------------------------------- #


def _chaos_replay(model, fault_plan=None, **engine_kw):
    trace = poisson_trace(["m0"], n_sessions=4, chunks_per_session=5,
                          chunk_len=16, n_channels=2, rate_hz=500.0, seed=7)
    engine = ServeEngine(max_batch=4, deadline_ms=50.0, **engine_kw)
    engine.deploy(model)
    rep = replay(engine, trace, time_scale=1.0, clock="virtual",
                 fault_plan=fault_plan)
    return rep, engine.stats()


def _by_key(report):
    return {(r.session_id, r.seq): r for r in report.results}


class TestServeChaos:
    def test_sweep_fault_recovers_bit_identically(self, served_model):
        clean, _ = _chaos_replay(served_model)
        plan = FaultPlan(faults=[
            FaultSpec(kind="raise_sweep", at=2, times=1),
            FaultSpec(kind="delay_tick", at=1, times=1, delay_ms=5.0),
        ])
        faulted, stats = _chaos_replay(served_model, fault_plan=plan)
        assert active_fault_plan() is None  # replay cleared it
        assert stats["sweep_retries"] >= 1
        assert stats["failed_chunks"] == 0
        ck, fk = _by_key(clean), _by_key(faulted)
        assert set(ck) == set(fk)
        for key, c in ck.items():
            f = fk[key]
            assert c.features.tobytes() == f.features.tobytes()
            assert c.scores.tobytes() == f.scores.tobytes()
            assert c.label == f.label and c.n_steps == f.n_steps

    def test_double_sweep_fault_falls_back_serial(self, served_model):
        clean, _ = _chaos_replay(served_model)
        # times=2 exhausts the single fused retry; the serial fallback's
        # per-session attempts (fresh ordinals) recover every chunk
        plan = FaultPlan(faults=[
            FaultSpec(kind="raise_sweep", at=0, times=2)])
        faulted, stats = _chaos_replay(served_model, fault_plan=plan)
        assert stats["serial_fallbacks"] >= 1
        assert stats["failed_chunks"] == 0
        ck, fk = _by_key(clean), _by_key(faulted)
        assert set(ck) == set(fk)
        for key, c in ck.items():
            assert c.features.tobytes() == fk[key].features.tobytes()

    def test_persistent_sweep_failure_fails_chunks_without_hanging(
            self, served_model):
        plan = FaultPlan(faults=[
            FaultSpec(kind="raise_sweep", at=0, times=10_000)])
        faulted, stats = _chaos_replay(served_model, fault_plan=plan)
        assert stats["failed_chunks"] == faulted.n_chunks == 20
        assert all(not r.ok and not r.shed for r in faulted.results)
        assert all("sweep failed" in r.error for r in faulted.results)

    def test_shedding_drops_hopeless_chunks(self, served_model):
        rng = np.random.default_rng(5)
        engine = ServeEngine(max_batch=4, deadline_ms=10.0,
                             shed_after_ms=100.0)
        engine.deploy(served_model)
        vclock = VirtualClock()
        engine.set_clock(vclock)
        sid = engine.open_session("m0")
        engine.submit(sid, rng.standard_normal((16, 2)))
        engine.submit(sid, rng.standard_normal((16, 2)))
        vclock.advance(5.0)  # both hopelessly past their deadlines
        report = engine.tick()
        assert report.shed == 2
        results = engine.pop_results()
        assert [r.shed for r in results] == [True, True]
        assert all("Overloaded" in r.error for r in results)
        # the stream continues cleanly after the gap
        engine.submit(sid, rng.standard_normal((16, 2)))
        engine.drain()
        (scored,) = engine.pop_results()
        assert scored.ok and scored.seq == 2
        assert engine.stats()["shed"] == 2

    def test_chunks_without_deadline_are_never_shed(self, served_model):
        engine = ServeEngine(max_batch=4, deadline_ms=0.0,
                             shed_after_ms=1.0)
        engine.deploy(served_model)
        vclock = VirtualClock()
        engine.set_clock(vclock)
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((16, 2)))
        vclock.advance(60.0)
        report = engine.tick(force=True)
        assert report.shed == 0 and report.processed == 1

    def test_sync_backpressure_bounds_the_queue(self, served_model):
        engine = ServeEngine(max_batch=4, max_pending=2)
        engine.deploy(served_model)
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((16, 2)))
        engine.submit(sid, np.zeros((16, 2)))
        with pytest.raises(Backpressure, match="max_pending"):
            engine.submit(sid, np.zeros((16, 2)))
        assert engine.stats()["backpressure"] == 1
        engine.drain()
        engine.submit(sid, np.zeros((16, 2)))  # space again after drain

    def test_engine_wide_backpressure(self, served_model):
        engine = ServeEngine(max_batch=4, max_pending_total=2)
        engine.deploy(served_model)
        s1 = engine.open_session("m0")
        s2 = engine.open_session("m0")
        engine.submit(s1, np.zeros((16, 2)))
        engine.submit(s2, np.zeros((16, 2)))
        with pytest.raises(Backpressure, match="max_pending_total"):
            engine.submit(s1, np.zeros((16, 2)))

    def test_max_pending_env_knob(self, served_model, monkeypatch):
        from repro.serve import SERVE_MAX_PENDING_ENV
        monkeypatch.setenv(SERVE_MAX_PENDING_ENV, "3")
        assert ServeEngine().max_pending == 3
        monkeypatch.setenv(SERVE_MAX_PENDING_ENV, "lots")
        with pytest.raises(ValueError, match=SERVE_MAX_PENDING_ENV):
            ServeEngine()

    def test_virtual_delay_tick_takes_no_real_time(self, served_model):
        import time as _time
        plan = FaultPlan(faults=[
            FaultSpec(kind="delay_tick", at=0, times=50, delay_ms=500.0)])
        t0 = _time.perf_counter()
        faulted, _ = _chaos_replay(served_model, fault_plan=plan)
        assert _time.perf_counter() - t0 < 10.0  # 25 s of injected delay
        assert faulted.n_chunks == 20


# --------------------------------------------------------------------- #
# async engine: awaitable backpressure, exception futures
# --------------------------------------------------------------------- #


class TestAsyncChaos:
    def test_submit_awaits_backpressure_and_all_resolve(self, served_model):
        async def run():
            async with AsyncServeEngine(max_batch=2, max_pending=1,
                                        tick_interval_ms=5.0) as eng:
                eng.deploy(served_model)
                sess = await eng.open_session("m0")
                rng = np.random.default_rng(1)
                futures = [await sess.submit(rng.standard_normal((16, 2)))
                           for _ in range(6)]
                results = await asyncio.gather(*futures)
                stats = eng.stats()
                await sess.close()
                return results, stats

        results, stats = asyncio.run(run())
        assert [r.seq for r in results] == list(range(6))
        assert all(r.ok for r in results)
        assert stats["backpressure_waits"] >= 1

    def test_failed_chunk_resolves_future_with_error(self, served_model):
        async def run():
            install_fault_plan(FaultPlan(faults=[
                FaultSpec(kind="raise_sweep", at=0, times=10_000)]))
            try:
                async with AsyncServeEngine(max_batch=2, sweep_retries=0,
                                            tick_interval_ms=5.0) as eng:
                    eng.deploy(served_model)
                    sess = await eng.open_session("m0")
                    fut = await sess.submit(np.zeros((16, 2)))
                    with pytest.raises(RuntimeError, match="sweep failed"):
                        await fut
                    await sess.close()
            finally:
                clear_fault_plan()

        asyncio.run(run())

    def test_shed_chunk_resolves_future_with_overloaded(self, served_model):
        async def run():
            # engine time is test-driven: the chunk is due at t=0.001 and
            # the clock jumps straight past deadline+grace, so the next
            # background tick must shed it (never serve it)
            t = [0.0]
            engine = ServeEngine(max_batch=2, deadline_ms=1.0,
                                 shed_after_ms=1.0, clock=lambda: t[0])
            async with AsyncServeEngine(engine,
                                        tick_interval_ms=5.0) as eng:
                eng.deploy(served_model)
                sess = await eng.open_session("m0")
                fut = await sess.submit(np.zeros((16, 2)))
                t[0] = 10.0
                with pytest.raises(Overloaded):
                    await fut
                await sess.close()

        asyncio.run(run())


# --------------------------------------------------------------------- #
# eviction races + actionable errors (satellites)
# --------------------------------------------------------------------- #


class TestEvictionRobustness:
    def test_submit_after_checkpoint_discard_names_the_remedy(
            self, served_model):
        t = [0.0]
        engine = ServeEngine(idle_ttl_ms=10.0, clock=lambda: t[0])
        engine.deploy(served_model)
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((16, 2)))
        engine.drain()
        engine.pop_results()
        t[0] = 1.0
        engine.tick()
        assert engine.evicted_sessions() == [sid]
        engine.close_session(sid)  # discards the parked checkpoint
        with pytest.raises(KeyError) as err:
            engine.submit(sid, np.zeros((16, 2)))
        message = str(err.value)
        assert "restore_session" in message
        assert "idle_ttl_ms" in message

    def test_closed_session_error_names_reopen_paths(self, served_model):
        engine = ServeEngine()
        engine.deploy(served_model)
        sid = engine.open_session("m0")
        engine.close_session(sid)
        with pytest.raises(KeyError, match="open_session"):
            engine.submit(sid, np.zeros((16, 2)))

    def test_checkpoint_restore_races_idle_ttl(self, served_model):
        """Submits racing TTL eviction: no chunk lost, no double restore."""
        n_chunks = 30
        engine = ServeEngine(max_batch=2, idle_ttl_ms=0.05)
        engine.deploy(served_model)
        sid = engine.open_session("m0")
        rng = np.random.default_rng(2)
        chunks = rng.standard_normal((n_chunks, 16, 2))
        errors = []
        stop = threading.Event()

        def ticker():
            # aggressive eviction pressure: every tick may checkpoint the
            # session out between one submit and the next
            while not stop.is_set():
                try:
                    engine.tick(force=True)
                except Exception as exc:  # pragma: no cover - the failure
                    errors.append(exc)
                    return

        thread = threading.Thread(target=ticker)
        thread.start()
        try:
            for chunk in chunks:
                # submit() transparently restores an evicted session
                engine.submit(sid, chunk)
        finally:
            stop.set()
            thread.join()
        assert not errors
        engine.drain()
        results = engine.pop_results()
        assert len(results) == n_chunks
        assert sorted(r.seq for r in results) == list(range(n_chunks))
        assert all(r.ok for r in results)
        stats = engine.stats()
        assert stats["restores"] == stats["evictions"] >= 0

    def test_restore_while_open_is_rejected(self, served_model):
        engine = ServeEngine()
        engine.deploy(served_model)
        sid = engine.open_session("m0")
        engine.submit(sid, np.zeros((16, 2)))
        engine.drain()
        engine.pop_results()
        doc = engine.checkpoint_session(sid)
        with pytest.raises(ValueError, match="already open"):
            engine.restore_session(doc)
