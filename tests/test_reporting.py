"""Tests for the bench reporting helpers."""

import numpy as np
import pytest

from repro.bench.reporting import ascii_heatmap, format_paper_comparison, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "-+-" in lines[1]
        assert "1.000" in lines[2]
        assert "2.500" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestAsciiHeatmap:
    def test_values_rendered(self):
        mat = np.array([[0.1, 0.9], [0.5, 0.3]])
        text = ascii_heatmap(mat, row_labels=["r0", "r1"],
                             col_labels=["c0", "c1"])
        assert "0.100" in text and "0.900" in text
        assert "r0" in text and "c1" in text

    def test_mark(self):
        mat = np.array([[0.1, 0.9]])
        text = ascii_heatmap(mat, row_labels=["r"], col_labels=["a", "b"],
                             mark=(0, 1))
        assert "0.900*" in text

    def test_nan_rendering(self):
        mat = np.array([[np.nan, 1.0]])
        text = ascii_heatmap(mat, row_labels=["r"], col_labels=["a", "b"])
        assert "----" in text

    def test_constant_matrix_does_not_crash(self):
        mat = np.full((2, 2), 0.5)
        text = ascii_heatmap(mat, row_labels=["a", "b"], col_labels=["c", "d"])
        assert "0.500" in text

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(3), row_labels=["a"], col_labels=["b"])


class TestPaperComparison:
    def test_interleaving(self):
        text = format_paper_comparison(
            ["ds", "acc"],
            [["X", 0.9]],
            [["X", 0.85]],
        )
        assert "0.900 (0.850)" in text
