"""Tests for the black-box (A, B, beta) search baselines."""

import numpy as np
import pytest

from repro.core.hyperopt import RandomSearch, SimulatedAnnealing
from repro.core.pipeline import DFRFeatureExtractor
from repro.data.loaders import make_toy_dataset


@pytest.fixture(scope="module")
def setup():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=25,
                            n_train=45, n_test=45, noise=0.3, seed=11)
    ext = DFRFeatureExtractor(n_nodes=6, seed=0).fit(data.u_train)
    return data, ext


class TestRandomSearch:
    def test_finds_reasonable_point(self, setup):
        data, ext = setup
        rs = RandomSearch(ext, seed=0)
        out = rs.search(data.u_train, data.y_train, data.u_test, data.y_test,
                        n_samples=12, n_classes=3)
        assert out.n_evaluations == 12
        assert out.best.test_accuracy > 0.5
        assert out.total_seconds > 0

    def test_samples_stay_in_box(self, setup):
        data, ext = setup
        rs = RandomSearch(ext, seed=1)
        out = rs.search(data.u_train, data.y_train, data.u_test, data.y_test,
                        n_samples=20, n_classes=3)
        for ev in out.evaluations:
            assert 10**-3.75 <= ev.A <= 10**-0.25
            assert 10**-2.75 <= ev.B <= 10**-0.25

    def test_best_is_incumbent_maximum(self, setup):
        data, ext = setup
        out = RandomSearch(ext, seed=2).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_samples=10, n_classes=3,
        )
        assert out.best.val_accuracy == max(
            ev.val_accuracy for ev in out.evaluations
        )

    def test_deterministic_under_seed(self, setup):
        data, ext = setup
        o1 = RandomSearch(ext, seed=3).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_samples=5, n_classes=3)
        o2 = RandomSearch(ext, seed=3).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_samples=5, n_classes=3)
        assert [e.A for e in o1.evaluations] == [e.A for e in o2.evaluations]

    def test_validation(self, setup):
        data, ext = setup
        with pytest.raises(ValueError):
            RandomSearch(ext).search(data.u_train, data.y_train,
                                     data.u_test, data.y_test, n_samples=0)


class TestSimulatedAnnealing:
    def test_walk_improves_or_matches_start(self, setup):
        data, ext = setup
        sa = SimulatedAnnealing(ext, seed=0)
        out = sa.search(data.u_train, data.y_train, data.u_test, data.y_test,
                        n_steps=10, n_classes=3)
        start = out.evaluations[0]
        assert out.best.val_accuracy >= start.val_accuracy
        assert out.n_evaluations == 11  # start + n_steps

    def test_proposals_respect_box(self, setup):
        data, ext = setup
        out = SimulatedAnnealing(ext, seed=4).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_steps=15, n_classes=3)
        for ev in out.evaluations:
            assert 10**-3.76 <= ev.A <= 10**-0.24
            assert 10**-2.76 <= ev.B <= 10**-0.24

    def test_validation(self, setup):
        data, ext = setup
        sa = SimulatedAnnealing(ext, seed=0)
        with pytest.raises(ValueError):
            sa.search(data.u_train, data.y_train, data.u_test, data.y_test,
                      n_steps=0)
        with pytest.raises(ValueError):
            sa.search(data.u_train, data.y_train, data.u_test, data.y_test,
                      n_steps=5, cooling=1.5)
