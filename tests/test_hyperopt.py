"""Tests for the black-box (A, B, beta) search baselines."""

import numpy as np
import pytest

from repro.core.hyperopt import RandomSearch, SimulatedAnnealing
from repro.core.pipeline import DFRFeatureExtractor
from repro.data.loaders import make_toy_dataset


@pytest.fixture(scope="module")
def setup():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=25,
                            n_train=45, n_test=45, noise=0.3, seed=11)
    ext = DFRFeatureExtractor(n_nodes=6, seed=0).fit(data.u_train)
    return data, ext


class TestRandomSearch:
    def test_finds_reasonable_point(self, setup):
        data, ext = setup
        rs = RandomSearch(ext, seed=0)
        out = rs.search(data.u_train, data.y_train, data.u_test, data.y_test,
                        n_samples=12, n_classes=3)
        assert out.n_evaluations == 12
        assert out.best.test_accuracy > 0.5
        assert out.total_seconds > 0

    def test_samples_stay_in_box(self, setup):
        data, ext = setup
        rs = RandomSearch(ext, seed=1)
        out = rs.search(data.u_train, data.y_train, data.u_test, data.y_test,
                        n_samples=20, n_classes=3)
        for ev in out.evaluations:
            assert 10**-3.75 <= ev.A <= 10**-0.25
            assert 10**-2.75 <= ev.B <= 10**-0.25

    def test_best_is_incumbent_maximum(self, setup):
        data, ext = setup
        out = RandomSearch(ext, seed=2).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_samples=10, n_classes=3,
        )
        assert out.best.val_accuracy == max(
            ev.val_accuracy for ev in out.evaluations
        )

    def test_deterministic_under_seed(self, setup):
        data, ext = setup
        o1 = RandomSearch(ext, seed=3).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_samples=5, n_classes=3)
        o2 = RandomSearch(ext, seed=3).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_samples=5, n_classes=3)
        assert [e.A for e in o1.evaluations] == [e.A for e in o2.evaluations]

    def test_validation(self, setup):
        data, ext = setup
        with pytest.raises(ValueError):
            RandomSearch(ext).search(data.u_train, data.y_train,
                                     data.u_test, data.y_test, n_samples=0)


class TestParallelRandomSearch:
    def test_bit_identical_at_4_workers(self, setup):
        data, ext = setup
        kwargs = dict(n_samples=8, n_classes=3)
        serial = RandomSearch(ext, seed=5).search(
            data.u_train, data.y_train, data.u_test, data.y_test, **kwargs)
        parallel = RandomSearch(ext, seed=5, workers=4).search(
            data.u_train, data.y_train, data.u_test, data.y_test, **kwargs)
        assert serial.evaluations == parallel.evaluations
        assert serial.best == parallel.best

    def test_compute_seconds_recorded(self, setup):
        data, ext = setup
        # pinned serial: the wall >= compute invariant only holds without
        # worker parallelism (REPRO_WORKERS in CI would otherwise flip it)
        out = RandomSearch(ext, seed=0, workers=1).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_samples=4, n_classes=3)
        assert out.compute_seconds > 0
        assert out.total_seconds >= out.compute_seconds * 0.99
        assert out.n_wasted == 0


class TestSimulatedAnnealing:
    def test_walk_improves_or_matches_start(self, setup):
        data, ext = setup
        sa = SimulatedAnnealing(ext, seed=0)
        out = sa.search(data.u_train, data.y_train, data.u_test, data.y_test,
                        n_steps=10, n_classes=3)
        start = out.evaluations[0]
        assert out.best.val_accuracy >= start.val_accuracy
        assert out.n_evaluations == 11  # start + n_steps

    def test_proposals_respect_box(self, setup):
        data, ext = setup
        out = SimulatedAnnealing(ext, seed=4).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_steps=15, n_classes=3)
        for ev in out.evaluations:
            assert 10**-3.76 <= ev.A <= 10**-0.24
            assert 10**-2.76 <= ev.B <= 10**-0.24

    def test_validation(self, setup):
        data, ext = setup
        sa = SimulatedAnnealing(ext, seed=0)
        with pytest.raises(ValueError):
            sa.search(data.u_train, data.y_train, data.u_test, data.y_test,
                      n_steps=0)
        with pytest.raises(ValueError):
            sa.search(data.u_train, data.y_train, data.u_test, data.y_test,
                      n_steps=5, cooling=1.5)
        with pytest.raises(ValueError):
            sa.search(data.u_train, data.y_train, data.u_test, data.y_test,
                      n_steps=5, speculative=0)


class TestSpeculativeAnnealing:
    def test_speculative_one_matches_serial_trajectory(self, setup):
        data, ext = setup
        kwargs = dict(n_steps=8, n_classes=3)
        plain = SimulatedAnnealing(ext, seed=9).search(
            data.u_train, data.y_train, data.u_test, data.y_test, **kwargs)
        explicit = SimulatedAnnealing(ext, seed=9, workers=2).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            speculative=1, **kwargs)
        assert plain.evaluations == explicit.evaluations
        assert plain.best == explicit.best
        assert explicit.n_wasted == 0

    def test_speculative_batch_consumes_full_budget(self, setup):
        data, ext = setup
        out = SimulatedAnnealing(ext, seed=2).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_steps=10, speculative=4, n_classes=3)
        # exactly 1 (start) + n_steps consumed decisions are recorded;
        # wasted speculative evaluations are counted separately
        assert out.n_evaluations == 11
        assert out.n_wasted >= 0
        assert out.best.val_accuracy >= out.evaluations[0].val_accuracy

    def test_serial_executor_evaluates_speculation_lazily(self, setup):
        data, ext = setup
        # a serial executor has no concurrency to buy, so speculative mode
        # must not discard any evaluations — and the consumed trajectory
        # matches the eagerly-evaluated parallel run of the same seed.
        # (pinned to an explicit SerialExecutor: REPRO_EXECUTOR in CI may
        # force an eager executor kind for default-constructed searches)
        from repro.exec import SerialExecutor

        serial = SimulatedAnnealing(ext, seed=2, executor=SerialExecutor()).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_steps=10, speculative=4, n_classes=3)
        assert serial.n_wasted == 0
        eager = SimulatedAnnealing(ext, seed=2, workers=2).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_steps=10, speculative=4, n_classes=3)
        assert serial.evaluations == eager.evaluations
        assert serial.best == eager.best

    def test_speculative_proposals_respect_box(self, setup):
        data, ext = setup
        out = SimulatedAnnealing(ext, seed=4, workers=2).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_steps=9, speculative=3, n_classes=3)
        for ev in out.evaluations:
            assert 10**-3.76 <= ev.A <= 10**-0.24
            assert 10**-2.76 <= ev.B <= 10**-0.24


class _CountingExecutor:
    """Wrap an executor, counting how many candidates it really evaluates."""

    def __init__(self, inner):
        self.inner = inner
        self.n_submitted = 0

    @property
    def workers(self):
        return self.inner.workers

    @property
    def prefers_batch(self):
        return self.inner.prefers_batch

    def run(self, context, candidates):
        self.n_submitted += len(candidates)
        return self.inner.run(context, candidates)


class TestSpeculativeWasteAccounting:
    """n_wasted counts proposals actually evaluated-then-discarded, per
    executor: lazily-fed executors never waste, eagerly-fed ones report
    exactly (evaluated - consumed)."""

    def _search(self, setup, executor, **kwargs):
        data, ext = setup
        counting = _CountingExecutor(executor)
        out = SimulatedAnnealing(ext, seed=2, executor=counting).search(
            data.u_train, data.y_train, data.u_test, data.y_test,
            n_steps=10, speculative=4, n_classes=3, **kwargs)
        return out, counting

    def test_serial_is_lazy_and_waste_free(self, setup):
        from repro.exec import SerialExecutor

        out, counting = self._search(setup, SerialExecutor())
        assert out.n_wasted == 0
        # everything submitted was consumed into the trajectory
        assert counting.n_submitted == out.n_evaluations

    def test_vectorized_is_eager_and_counts_real_waste(self, setup):
        from repro.exec import VectorizedExecutor

        executor = VectorizedExecutor(block_size=4)
        assert executor.prefers_batch
        out, counting = self._search(setup, executor)
        # eager speculation: whole batches were really evaluated, and the
        # discarded tail is exactly the submitted-minus-consumed difference
        assert counting.n_submitted == out.n_evaluations + out.n_wasted
        assert out.n_wasted > 0

    def test_vectorized_trajectory_matches_serial(self, setup):
        from repro.exec import SerialExecutor, VectorizedExecutor

        serial, _ = self._search(setup, SerialExecutor())
        fused, _ = self._search(setup, VectorizedExecutor(block_size=4))
        # lazy vs eager changes only what is computed, never the trajectory
        assert fused.evaluations == serial.evaluations
        assert fused.best == serial.best

    def test_multiprocess_single_worker_stays_lazy(self, setup):
        from repro.exec import MultiprocessExecutor

        executor = MultiprocessExecutor(1)
        try:
            assert not executor.prefers_batch
            out, counting = self._search(setup, executor)
            assert out.n_wasted == 0
            assert counting.n_submitted == out.n_evaluations
        finally:
            executor.close()
