"""Determinism harness for the parametric generator registry.

Three contracts are pinned here:

* **Spec determinism** (property-based): the same ``(name, params, seed)``
  is bitwise-reproducible, different seeds differ, and specs round-trip
  through the strict versioned envelope.
* **Parity**: the five legacy classification families are bit-identical
  to the pre-refactor ``generate_family`` path (hex-golden digests), and
  ``narma``/``mackey_glass`` match their :mod:`repro.data.regression`
  functions.
* **Streaming**: ``generate_chunks`` concatenates bit-identically to
  eager ``generate`` for every registered family at chunk lengths
  {1, 7, 64}.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.loaders import load_dataset
from repro.data.regression import mackey_glass_series, narma
from repro.data.registry import (
    GeneratorSpec,
    concat_chunks,
    dataset_from_spec,
    generate,
    generate_chunks,
    generator_kind,
    get_generator,
    make_spec,
    registered_generators,
    spec_for_dataset,
)

#: small-but-nontrivial parameters per generator, used by the sweep tests
SMALL_PARAMS = {
    "harmonic": dict(n_classes=2, n_channels=2, length=16, n_train=8,
                     n_test=8),
    "motion": dict(n_classes=2, n_channels=2, length=16, n_train=8,
                   n_test=8),
    "beat": dict(n_classes=2, n_channels=2, length=16, n_train=8, n_test=8),
    "regime": dict(n_classes=2, n_channels=2, length=16, n_train=8,
                   n_test=8),
    "burst": dict(n_classes=2, n_channels=2, length=16, n_train=8,
                  n_test=8),
    "narma": dict(n_steps=200, order=10),
    "mackey_glass": dict(n_steps=100),
    "eeg_pink": dict(n_steps=128, n_channels=2),
    "am_fm": dict(n_steps=128, n_channels=2),
    "drift": dict(base={"name": "eeg_pink", "params": {"n_steps": 128,
                                                       "n_channels": 2}},
                  gain_depth=0.4),
}

#: sha256 of the seed-42 SMALL_PARAMS output of each generator (see
#: ``digest`` below).  These pin today's bitstreams: a digest change means
#: served datasets changed, which must be a deliberate, versioned event.
GOLDEN = {
    "harmonic": "13cd3d32aae6ad29032aeaf55edd1f76b0e1a42ccc24c00a2cd0dd347b755e3c",
    "motion": "b4fdf28814ee7c14846fcb550fba8f32070a205f0fd875c08da110c98f3528ba",
    "beat": "d0380f6f3e4a86e0fcee504fd11598e752df221405efe7e10b1d74933d38ccc8",
    "regime": "519281b9cf77b8e6d8c0c50c86ca49424b9d858ee20b86efcd6e80b76f64fbca",
    "burst": "576dd1a3cdda7bdf07fded12d606fac9fd384a7f9cb542a49cc2271c32127728",
    "narma": "4c38d12f0dd5dbb1d3e8d6f0cfaab56e5993d70fb116d9fcdab02543390e6e6b",
    "mackey_glass": "32eae7b644854484c102bac430b72215232db660acb2885a062d5e8d4c07fa21",
    "eeg_pink": "dcad85ba67dee207f41fe93d73a3019e041dc33f69867030128ba5d6cb813235",
    "am_fm": "41d4e4bba99e79d99c2015ad00c9af9a2f293b5ba0e3e49c46734940c4c66519",
}

ALL_NAMES = sorted(SMALL_PARAMS)


def small_spec(name, seed=42):
    return make_spec(name, seed=seed, **SMALL_PARAMS[name])


def digest(arrays):
    """Order-independent sha256 over dtype, shape, and raw bytes."""
    h = hashlib.sha256()
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def assert_same_arrays(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


class TestRegistry:
    def test_all_expected_generators_registered(self):
        assert set(ALL_NAMES) <= set(registered_generators())

    def test_unknown_generator_rejected(self):
        with pytest.raises(KeyError):
            get_generator("no_such_family")
        with pytest.raises(KeyError):
            make_spec("no_such_family")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown param"):
            make_spec("harmonic", wavelength=3)

    def test_kinds(self):
        for fam in ("harmonic", "motion", "beat", "regime", "burst"):
            assert generator_kind(small_spec(fam)) == "classification"
        for name in ("narma", "mackey_glass", "eeg_pink", "am_fm"):
            assert generator_kind(small_spec(name)) == "series"
        # drift inherits its base's kind
        assert generator_kind(small_spec("drift")) == "series"
        over_classes = make_spec(
            "drift",
            base={"name": "harmonic",
                  "params": SMALL_PARAMS["harmonic"]},
        )
        assert generator_kind(over_classes) == "classification"


class TestSpecEnvelope:
    def test_round_trip(self):
        spec = small_spec("drift", seed=9)
        clone = GeneratorSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert_same_arrays(generate(clone), generate(spec))

    def test_round_trip_is_json_safe(self):
        import json

        spec = small_spec("narma", seed=5)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert GeneratorSpec.from_dict(wire) == spec

    def test_rejects_wrong_format(self):
        payload = small_spec("narma").to_dict()
        payload["format"] = "repro-model"
        with pytest.raises(ValueError, match="format"):
            GeneratorSpec.from_dict(payload)

    def test_rejects_wrong_version(self):
        payload = small_spec("narma").to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            GeneratorSpec.from_dict(payload)

    def test_rejects_unknown_and_missing_keys(self):
        payload = small_spec("narma").to_dict()
        extra = dict(payload, comment="hi")
        with pytest.raises(ValueError, match="unknown"):
            GeneratorSpec.from_dict(extra)
        for key in ("name", "params", "seed"):
            broken = {k: v for k, v in payload.items() if k != key}
            with pytest.raises(ValueError, match="missing"):
                GeneratorSpec.from_dict(broken)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           name=st.sampled_from(ALL_NAMES))
    def test_envelope_round_trip_property(self, seed, name):
        spec = small_spec(name, seed=seed)
        assert GeneratorSpec.from_dict(spec.to_dict()) == spec


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           name=st.sampled_from(("narma", "eeg_pink", "am_fm", "beat")))
    def test_same_spec_same_bits(self, seed, name):
        spec = small_spec(name, seed=seed)
        assert_same_arrays(generate(spec), generate(spec))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 2),
           name=st.sampled_from(("narma", "eeg_pink", "am_fm", "harmonic")))
    def test_different_seed_different_bits(self, seed, name):
        a = generate(small_spec(name, seed=seed))
        b = generate(small_spec(name, seed=seed + 1))
        assert any(
            not np.array_equal(a[k], b[k])
            for k in a
            if np.issubdtype(np.asarray(a[k]).dtype, np.floating)
        )

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_golden_digest(self, name):
        if name == "drift":
            pytest.skip("composite wrapper; bases are pinned individually")
        assert digest(generate(small_spec(name))) == GOLDEN[name]


class TestStreaming:
    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("chunk_len", (1, 7, 64))
    def test_chunks_equal_eager(self, name, chunk_len):
        spec = small_spec(name)
        eager = generate(spec)
        chunked = concat_chunks(generate_chunks(spec, chunk_len))
        assert_same_arrays(eager, chunked)

    def test_chunk_len_validated(self):
        with pytest.raises(ValueError):
            list(generate_chunks(small_spec("narma"), 0))

    def test_chunk_sizes(self):
        spec = small_spec("eeg_pink")  # 128 steps
        chunks = list(generate_chunks(spec, 48))
        assert [c["u"].shape[0] for c in chunks] == [48, 48, 32]


class TestLegacyParity:
    @pytest.mark.parametrize("key", ("LIB", "JPVOW", "CHAR"))
    def test_spec_for_dataset_matches_load_dataset(self, key):
        ds = load_dataset(key, size_profile="bench", seed=0)
        arrays = generate(spec_for_dataset(key, size_profile="bench",
                                           seed=0))
        np.testing.assert_array_equal(arrays["u_train"], ds.u_train)
        np.testing.assert_array_equal(arrays["y_train"], ds.y_train)
        np.testing.assert_array_equal(arrays["u_test"], ds.u_test)
        np.testing.assert_array_equal(arrays["y_test"], ds.y_test)

    def test_narma_matches_regression_module(self):
        u, y = narma(200, order=10, seed=42)
        arrays = generate(make_spec("narma", seed=42, n_steps=200, order=10))
        np.testing.assert_array_equal(arrays["u"], u)
        np.testing.assert_array_equal(arrays["y"], y)

    def test_mackey_glass_matches_regression_module(self):
        x = mackey_glass_series(100, seed=42)
        arrays = generate(make_spec("mackey_glass", seed=42, n_steps=100))
        np.testing.assert_array_equal(arrays["x"], x)

    def test_dataset_from_spec(self):
        spec = small_spec("harmonic")
        ds = dataset_from_spec(spec)
        assert ds.n_classes == 2
        assert ds.u_train.shape == (8, 16, 2)
        arrays = generate(spec)
        np.testing.assert_array_equal(ds.u_train, arrays["u_train"])

    def test_dataset_from_spec_rejects_series(self):
        with pytest.raises(ValueError, match="classification"):
            dataset_from_spec(small_spec("narma"))


class TestDriftWrapper:
    def test_wraps_base_signal(self):
        base = make_spec("eeg_pink", seed=3, n_steps=128, n_channels=2)
        flat = make_spec(
            "drift", seed=3,
            base={"name": "eeg_pink", "params": {"n_steps": 128,
                                                 "n_channels": 2}},
            gain_depth=0.0, offset_depth=0.0,
        )
        np.testing.assert_array_equal(generate(flat)["u"],
                                      generate(base)["u"])

    def test_nonzero_drift_changes_signal(self):
        base = make_spec("eeg_pink", seed=3, n_steps=128, n_channels=2)
        drifted = make_spec(
            "drift", seed=3,
            base={"name": "eeg_pink", "params": {"n_steps": 128,
                                                 "n_channels": 2}},
            gain_depth=0.5,
        )
        assert not np.array_equal(generate(drifted)["u"],
                                  generate(base)["u"])

    def test_drift_over_classification_keeps_labels(self):
        base_params = SMALL_PARAMS["harmonic"]
        plain = make_spec("harmonic", seed=7, **base_params)
        drifted = make_spec(
            "drift", seed=7,
            base={"name": "harmonic", "params": dict(base_params)},
            gain_depth=0.3,
        )
        a, b = generate(plain), generate(drifted)
        np.testing.assert_array_equal(a["y_train"], b["y_train"])
        np.testing.assert_array_equal(a["y_test"], b["y_test"])
        assert not np.array_equal(a["u_train"], b["u_train"])

    def test_base_dict_validated(self):
        with pytest.raises(ValueError):
            generate(make_spec("drift", base={"params": {}}))
        with pytest.raises(ValueError):
            generate(make_spec("drift", base={"name": "eeg_pink",
                                              "typo": 1}))
