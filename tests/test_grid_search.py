"""Tests for the grid-search baseline and the recursive zoom variant."""

import numpy as np
import pytest

from repro.core.grid_search import (
    PAPER_A_RANGE,
    PAPER_B_RANGE,
    GridSearch,
    RecursiveGridSearch,
    grid_values,
)
from repro.core.pipeline import DFRFeatureExtractor
from repro.data.loaders import make_toy_dataset


@pytest.fixture(scope="module")
def setup():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=25,
                            n_train=45, n_test=45, noise=0.3, seed=11)
    ext = DFRFeatureExtractor(n_nodes=6, seed=0).fit(data.u_train)
    return data, ext


class TestGridValues:
    def test_single_division_is_geometric_midpoint(self):
        vals = grid_values(-3.0, -1.0, 1)
        assert vals.shape == (1,)
        assert vals[0] == pytest.approx(10.0**-2.0)

    def test_two_divisions_are_section_midpoints(self):
        vals = grid_values(-2.0, 0.0, 2)
        np.testing.assert_allclose(vals, [10**-1.5, 10**-0.5])

    def test_values_lie_inside_range(self):
        vals = grid_values(*PAPER_A_RANGE, 8)
        assert np.all(vals > 10 ** PAPER_A_RANGE[0])
        assert np.all(vals < 10 ** PAPER_A_RANGE[1])
        assert vals.shape == (8,)
        assert np.all(np.diff(vals) > 0)

    def test_log_spacing(self):
        vals = grid_values(-3.0, 0.0, 3)
        ratios = vals[1:] / vals[:-1]
        np.testing.assert_allclose(ratios, ratios[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_values(-1.0, -2.0, 3)
        with pytest.raises(ValueError):
            grid_values(-2.0, -1.0, 0)


class TestGridSearch:
    def test_level_evaluates_d_squared_points(self, setup):
        data, ext = setup
        gs = GridSearch(ext, seed=0)
        level = gs.run_level(data.u_train, data.y_train,
                             data.u_test, data.y_test, 3)
        assert level.n_points == 9
        assert level.divisions == 3
        assert level.elapsed_seconds > 0
        mat = level.accuracy_matrix()
        assert mat.shape == (3, 3)
        assert np.all(np.isfinite(mat))

    def test_best_has_max_val_accuracy(self, setup):
        data, ext = setup
        gs = GridSearch(ext, seed=0)
        level = gs.run_level(data.u_train, data.y_train,
                             data.u_test, data.y_test, 3)
        assert level.best.val_accuracy == max(
            ev.val_accuracy for ev in level.evaluations
        )

    def test_search_until_accumulates(self, setup):
        data, ext = setup
        gs = GridSearch(ext, seed=0)
        out = gs.search_until(data.u_train, data.y_train,
                              data.u_test, data.y_test,
                              target_accuracy=2.0,  # unreachable
                              max_divisions=3)
        assert not out.reached
        assert out.divisions == 3
        assert out.total_points == 1 + 4 + 9
        assert out.total_seconds >= sum(l.elapsed_seconds for l in out.levels) * 0.99
        assert len(out.levels) == 3

    def test_search_until_stops_at_target(self, setup):
        data, ext = setup
        gs = GridSearch(ext, seed=0)
        out = gs.search_until(data.u_train, data.y_train,
                              data.u_test, data.y_test,
                              target_accuracy=0.0,
                              max_divisions=5)
        assert out.reached
        assert out.divisions == 1
        assert out.total_points == 1

    def test_max_divisions_validation(self, setup):
        data, ext = setup
        gs = GridSearch(ext, seed=0)
        with pytest.raises(ValueError):
            gs.search_until(data.u_train, data.y_train,
                            data.u_test, data.y_test, 0.9, max_divisions=0)


class TestParallelGridSearch:
    """Serial and multiprocess execution must be bit-identical."""

    def test_run_level_bit_identical_at_4_workers(self, setup):
        data, ext = setup
        serial = GridSearch(ext, seed=0).run_level(
            data.u_train, data.y_train, data.u_test, data.y_test, 3)
        parallel = GridSearch(ext, seed=0, workers=4).run_level(
            data.u_train, data.y_train, data.u_test, data.y_test, 3)
        assert serial.evaluations == parallel.evaluations
        assert serial.best == parallel.best

    def test_search_until_bit_identical_outcome(self, setup):
        data, ext = setup
        kwargs = dict(target_accuracy=2.0, max_divisions=3)
        s = GridSearch(ext, seed=4).search_until(
            data.u_train, data.y_train, data.u_test, data.y_test, **kwargs)
        p = GridSearch(ext, seed=4, workers=2).search_until(
            data.u_train, data.y_train, data.u_test, data.y_test, **kwargs)
        assert s.best == p.best
        assert [l.evaluations for l in s.levels] == [l.evaluations for l in p.levels]

    def test_level_records_both_timing_views(self, setup):
        data, ext = setup
        level = GridSearch(ext, seed=0, workers=2).run_level(
            data.u_train, data.y_train, data.u_test, data.y_test, 2)
        # elapsed is submission wall-clock, compute sums per-candidate work;
        # both are positive and compute is the sum over 4 real evaluations
        assert level.elapsed_seconds > 0
        assert level.compute_seconds > 0

    def test_search_until_accumulates_compute_seconds(self, setup):
        data, ext = setup
        # pinned serial: only there does wall-clock dominate summed compute
        # (REPRO_WORKERS in CI would otherwise flip this to multiprocess,
        # where pool-startup wall time vs per-worker compute is load-dependent)
        out = GridSearch(ext, seed=0, workers=1).search_until(
            data.u_train, data.y_train, data.u_test, data.y_test,
            target_accuracy=2.0, max_divisions=2)
        assert out.total_compute_seconds == pytest.approx(
            sum(l.compute_seconds for l in out.levels))
        # serially, wall-clock dominates summed compute
        assert out.total_seconds >= out.total_compute_seconds * 0.99

    def test_recursive_zoom_bit_identical(self, setup):
        data, ext = setup
        serial = RecursiveGridSearch(ext, divisions=3, seed=0).run(
            data.u_train, data.y_train, data.u_test, data.y_test, n_levels=2)
        parallel = RecursiveGridSearch(ext, divisions=3, seed=0, workers=2).run(
            data.u_train, data.y_train, data.u_test, data.y_test, n_levels=2)
        for lvl_s, lvl_p in zip(serial, parallel):
            assert lvl_s.best == lvl_p.best
            assert lvl_s.best_index == lvl_p.best_index
            np.testing.assert_array_equal(lvl_s.accuracy_matrix,
                                          lvl_p.accuracy_matrix)


class TestRecursiveGridSearch:
    def test_levels_zoom_into_best_cell(self, setup):
        data, ext = setup
        rgs = RecursiveGridSearch(ext, divisions=3, seed=0)
        levels = rgs.run(data.u_train, data.y_train,
                         data.u_test, data.y_test, n_levels=2)
        assert len(levels) == 2
        lvl1, lvl2 = levels
        assert lvl1.a_box == PAPER_A_RANGE
        assert lvl1.b_box == PAPER_B_RANGE
        # level 2's box is one level-1 section
        width1 = (PAPER_A_RANGE[1] - PAPER_A_RANGE[0]) / 3
        assert (lvl2.a_box[1] - lvl2.a_box[0]) == pytest.approx(width1)
        # and it contains the level-1 winner
        best_a = np.log10(lvl1.best.A)
        assert lvl2.a_box[0] <= best_a <= lvl2.a_box[1]

    def test_matrices_have_level_shape(self, setup):
        data, ext = setup
        rgs = RecursiveGridSearch(ext, divisions=3, seed=0)
        levels = rgs.run(data.u_train, data.y_train,
                         data.u_test, data.y_test, n_levels=1)
        assert levels[0].accuracy_matrix.shape == (3, 3)
        assert levels[0].val_loss_matrix.shape == (3, 3)
        assert levels[0].val_accuracy_matrix.shape == (3, 3)
        bi, bj = levels[0].best_index
        assert levels[0].val_accuracy_matrix[bi, bj] == levels[0].val_accuracy_matrix.max()

    def test_validation(self, setup):
        _, ext = setup
        with pytest.raises(ValueError):
            RecursiveGridSearch(ext, divisions=1)
        rgs = RecursiveGridSearch(ext, divisions=2)
        with pytest.raises(ValueError):
            rgs.run(None, None, None, None, n_levels=0)
