"""Tests for the ridge readout and beta model selection."""

import numpy as np
import pytest

from repro.readout.ridge import (
    PAPER_BETAS,
    fit_ridge,
    fit_ridge_sweep,
    select_beta,
)


def _separable_problem(rng, n=60, n_features=8, n_classes=3, scale=3.0):
    """Gaussian blobs: linearly separable when scale is large."""
    y = rng.integers(0, n_classes, size=n)
    centers = rng.normal(size=(n_classes, n_features)) * scale
    x = centers[y] + rng.normal(size=(n, n_features))
    return x, y


def test_fit_ridge_learns_separable_blobs(rng):
    x, y = _separable_problem(rng)
    model = fit_ridge(x, y, beta=1e-4)
    assert model.accuracy(x, y) >= 0.95


def test_predictions_generalize(rng):
    x, y = _separable_problem(rng, n=200)
    model = fit_ridge(x[:100], y[:100], beta=1e-2)
    assert model.accuracy(x[100:], y[100:]) >= 0.9


def test_small_beta_approaches_least_squares(rng):
    """As beta -> 0 on a well-conditioned problem, ridge -> OLS."""
    x = rng.normal(size=(100, 5))
    w_true = rng.normal(size=(5, 2))
    scores = x @ w_true
    y = scores.argmax(axis=1)
    m_small = fit_ridge(x, y, beta=1e-10)
    m_tiny = fit_ridge(x, y, beta=1e-12)
    np.testing.assert_allclose(m_small.coef, m_tiny.coef, rtol=1e-3, atol=1e-6)


def test_heavier_beta_shrinks_coefficients(rng):
    x, y = _separable_problem(rng)
    sweep = fit_ridge_sweep(x, y, [1e-6, 1e2])
    assert np.linalg.norm(sweep[1e2].coef) < np.linalg.norm(sweep[1e-6].coef)


def test_sweep_matches_individual_fits(rng):
    x, y = _separable_problem(rng)
    sweep = fit_ridge_sweep(x, y, PAPER_BETAS)
    for beta in PAPER_BETAS:
        single = fit_ridge(x, y, beta)
        np.testing.assert_allclose(sweep[beta].coef, single.coef, rtol=1e-10)


def test_rank_deficient_features_are_handled(rng):
    """More features than samples (the DPRR regime: N_r=930 >> N)."""
    x = rng.normal(size=(20, 50))
    y = rng.integers(0, 2, size=20)
    model = fit_ridge(x, y, beta=1e-2)
    assert np.all(np.isfinite(model.coef))
    assert model.accuracy(x, y) >= 0.5


def test_constant_feature_does_not_blow_up(rng):
    x, y = _separable_problem(rng)
    x[:, 0] = 5.0  # zero variance
    model = fit_ridge(x, y, beta=1e-4)
    assert np.all(np.isfinite(model.coef))


def test_scores_shape_and_intercept(rng):
    x, y = _separable_problem(rng, n_classes=4)
    model = fit_ridge(x, y, beta=1e-2)
    assert model.scores(x).shape == (60, 4)
    # one-hot regression scores should average to the class priors
    np.testing.assert_allclose(
        model.scores(x).mean(axis=0),
        np.bincount(y, minlength=4) / len(y),
        atol=0.05,
    )


def test_nonfinite_features_rejected(rng):
    x, y = _separable_problem(rng)
    x[0, 0] = np.inf
    with pytest.raises(ValueError, match="non-finite"):
        fit_ridge(x, y, beta=1e-2)


def test_nonpositive_beta_rejected(rng):
    x, y = _separable_problem(rng)
    with pytest.raises(ValueError):
        fit_ridge(x, y, beta=0.0)
    with pytest.raises(ValueError):
        fit_ridge(x, y, beta=-1.0)


class TestSelectBeta:
    def test_selects_regularized_model_when_overfitting(self, rng):
        # high-dimensional noise + weak signal: tiny beta overfits badly
        n, n_features = 40, 200
        y = rng.integers(0, 2, size=n)
        x = rng.normal(size=(n, n_features))
        x[:, 0] += 0.5 * (2 * y - 1)
        sel = select_beta(x, y, betas=PAPER_BETAS, seed=0)
        assert sel.best_beta >= 1e-4

    def test_selection_returns_all_candidates(self, rng):
        x, y = _separable_problem(rng)
        sel = select_beta(x, y, betas=PAPER_BETAS, seed=0)
        assert set(sel.val_losses) == set(PAPER_BETAS)
        assert set(sel.val_accuracies) == set(PAPER_BETAS)
        assert sel.best_val_loss == sel.val_losses[sel.best_beta]

    def test_final_model_is_refit_on_all_data(self, rng):
        x, y = _separable_problem(rng)
        sel = select_beta(x, y, betas=[1e-2], seed=0)
        direct = fit_ridge(x, y, beta=1e-2)
        np.testing.assert_allclose(sel.best_model.coef, direct.coef, rtol=1e-10)

    def test_tiny_dataset_fallback(self, rng):
        # every class has a single sample -> empty holdout -> fallback
        x = rng.normal(size=(3, 5))
        y = np.array([0, 1, 2])
        sel = select_beta(x, y, betas=PAPER_BETAS, seed=0)
        assert sel.best_beta in PAPER_BETAS

    def test_deterministic_under_seed(self, rng):
        x, y = _separable_problem(rng)
        s1 = select_beta(x, y, seed=7)
        s2 = select_beta(x, y, seed=7)
        assert s1.best_beta == s2.best_beta
        assert s1.val_losses == s2.val_losses
