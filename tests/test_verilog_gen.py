"""Tests for the Verilog generator and its bit-exact golden model."""

import numpy as np
import pytest

from repro.hardware.fixed_point import QFormat
from repro.hardware.verilog_gen import (
    generate,
    generate_dfr_module,
    generate_testbench,
    golden_fixed_states,
)

Q = QFormat(3, 8)


class TestModuleGeneration:
    def test_structure(self):
        src = generate_dfr_module(30, 0.3, 0.25, Q)
        assert "module modular_dfr" in src
        assert "parameter integer WIDTH = 12" in src
        assert "parameter integer N_NODES = 30" in src
        assert "endmodule" in src
        assert "COEFF_A" in src and "COEFF_B" in src
        assert ">>> FRAC" in src  # truncating fixed-point products

    def test_coefficients_encoded(self):
        # A = 0.25 in Q3.8 -> 0x040
        src = generate_dfr_module(4, 0.25, 0.5, Q)
        assert "12'h040" in src   # A
        assert "12'h080" in src   # B

    def test_negative_coefficient_twos_complement(self):
        src = generate_dfr_module(4, -0.25, 0.5, Q)
        assert "12'hfc0" in src   # -0.25 -> two's complement of 0x040

    def test_custom_module_name(self):
        src = generate_dfr_module(4, 0.1, 0.1, Q, module_name="my_dfr")
        assert "module my_dfr" in src

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_dfr_module(0, 0.1, 0.1, Q)


class TestGoldenModel:
    def test_zero_drive_stays_zero(self):
        out = golden_fixed_states([0] * 12, 77, 33, 4, 12, 8)
        assert out == [0] * 12

    def test_single_impulse_response(self):
        # one-node chain: x[t] = (A*(j + x[t-1]_as_delay...)) — with n=1 the
        # delay line has depth 1 so x[t-1] plays both roles
        a_fixed = 1 << 8  # A = 1.0
        b_fixed = 0
        out = golden_fixed_states([256, 0, 0], a_fixed, b_fixed, 1, 12, 8)
        # x0 = (256*256)>>8 = 256; x1 = A*(0 + 256) = 256; persists
        assert out[0] == 256
        assert out[1] == 256

    def test_truncation_floors_toward_minus_infinity(self):
        # A = 0.5, drive = 1 LSB: product = 1*128 = 128 >> 8 = 0 (floor)
        out = golden_fixed_states([1, 0], 128, 0, 2, 12, 8)
        assert out[0] == 0
        # negative drive: -1 * 128 = -128 >> 8 = -1 (floors, not to zero)
        out = golden_fixed_states([-1, 0], 128, 0, 2, 12, 8)
        assert out[0] == -1

    def test_wraparound_at_width(self):
        # saturating behavior is NOT modeled: the RTL wraps, so must we
        big = (1 << 11) - 1  # max positive at width 12
        out = golden_fixed_states([big, big], 1 << 8, 1 << 8, 1, 12, 8)
        assert all(-(1 << 11) <= v < (1 << 11) for v in out)

    def test_matches_float_model_when_exact(self):
        """With A = 1 and B = 0 every product is exact (no truncation), so
        the golden model must equal the float recurrence exactly."""
        n_nodes, width, frac = 3, 12, 8
        rng = np.random.default_rng(0)
        drive_fixed = [int(v) for v in rng.integers(-40, 40, size=9)]
        out = golden_fixed_states(drive_fixed, 1 << frac, 0,
                                  n_nodes, width, frac)
        # float reference of x[t] = j[t] + x[t-N] on the flat chain
        line = [0] * n_nodes
        for t, j_val in enumerate(drive_fixed):
            x = j_val + line[-1]
            line = [x] + line[:-1]
            assert out[t] == x


class TestTestbench:
    def test_structure_and_vectors(self):
        rng = np.random.default_rng(1)
        drive = rng.uniform(-1, 1, size=8)
        tb = generate_testbench(4, 0.3, 0.25, Q, drive)
        assert "modular_dfr_tb" in tb
        assert "localparam integer N_VEC = 8" in tb
        assert tb.count("stimulus[") == 8 + 1  # 8 assignments + declaration
        assert "$display" in tb and "$finish" in tb

    def test_drive_length_validation(self):
        with pytest.raises(ValueError):
            generate_testbench(4, 0.3, 0.25, Q, np.ones(7))  # not multiple
        with pytest.raises(ValueError):
            generate_testbench(4, 0.3, 0.25, Q, np.zeros(0))

    def test_generate_and_write(self, tmp_path):
        v = generate(4, 0.3, 0.25, Q, seed=0)
        mod_path, tb_path = v.write(str(tmp_path))
        assert open(mod_path).read() == v.module_source
        assert open(tb_path).read() == v.testbench_source
