"""Tests for the SGD trainer (paper Sec. 4 protocol)."""

import numpy as np
import pytest

from repro.core.trainer import BackpropTrainer, TrainerConfig
from repro.data.loaders import make_toy_dataset
from repro.data.preprocessing import ChannelStandardizer
from repro.readout.softmax import softmax
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR


@pytest.fixture(scope="module")
def toy():
    data = make_toy_dataset(n_classes=3, n_channels=2, length=30,
                            n_train=45, n_test=45, noise=0.25, seed=7)
    std = ChannelStandardizer().fit(data.u_train)
    return data, std.transform(data.u_train), std.transform(data.u_test)


def _trainer(n_nodes=8, seed=0, **config_kwargs):
    mask = InputMask.binary(n_nodes, 2, seed=seed)
    reservoir = ModularDFR(mask)
    config = TrainerConfig(**config_kwargs)
    return BackpropTrainer(reservoir, n_classes=3, config=config, seed=seed)


class TestTrainingDynamics:
    def test_loss_decreases_and_accuracy_improves(self, toy):
        data, u_train, _ = toy
        result = _trainer().fit(u_train, data.y_train)
        first, last = result.history[0], result.history[-1]
        assert last.mean_loss < first.mean_loss
        assert last.accuracy > max(first.accuracy, 0.5)

    def test_parameters_move_from_init(self, toy):
        data, u_train, _ = toy
        result = _trainer().fit(u_train, data.y_train)
        assert result.A != pytest.approx(0.01)
        assert result.B != pytest.approx(0.01)
        assert 1e-6 <= result.A <= 10 ** (-0.25) + 1e-12
        assert 1e-6 <= result.B <= 10 ** (-0.25) + 1e-12

    def test_history_records_schedule(self, toy):
        data, u_train, _ = toy
        result = _trainer(epochs=25).fit(u_train, data.y_train)
        by_epoch = {h.epoch: h for h in result.history}
        assert by_epoch[1].lr_reservoir == pytest.approx(1.0)
        assert by_epoch[5].lr_reservoir == pytest.approx(0.1)
        assert by_epoch[5].lr_output == pytest.approx(1.0)
        assert by_epoch[10].lr_output == pytest.approx(0.1)
        assert by_epoch[25].lr_reservoir == pytest.approx(1e-4)
        assert by_epoch[25].lr_output == pytest.approx(1e-3)
        assert len(result.history) == 25

    def test_deterministic_under_seed(self, toy):
        data, u_train, _ = toy
        r1 = _trainer(seed=5).fit(u_train, data.y_train)
        r2 = _trainer(seed=5).fit(u_train, data.y_train)
        assert r1.A == r2.A and r1.B == r2.B
        np.testing.assert_array_equal(r1.readout.weights, r2.readout.weights)

    def test_different_seeds_differ(self, toy):
        data, u_train, _ = toy
        r1 = _trainer(seed=5).fit(u_train, data.y_train)
        r2 = _trainer(seed=6).fit(u_train, data.y_train)
        assert (r1.A, r1.B) != (r2.A, r2.B)

    def test_trained_readout_beats_chance(self, toy):
        data, u_train, u_test = toy
        result = _trainer().fit(u_train, data.y_train)
        mask_dfr = _trainer(seed=0).reservoir  # same mask as training run
        trace = mask_dfr.run(u_test, result.A, result.B)
        feats = DPRR().features(trace)
        probs = softmax(feats @ result.readout.weights.T + result.readout.bias)
        acc = float((probs.argmax(axis=1) == data.y_test).mean())
        assert acc > 0.5  # 3 classes -> chance is 0.33

    def test_full_bptt_mode_runs(self, toy):
        data, u_train, _ = toy
        result = _trainer(window=None, epochs=3).fit(u_train, data.y_train)
        assert len(result.history) == 3
        assert np.isfinite(result.final_loss)

    def test_wider_window_mode_runs(self, toy):
        data, u_train, _ = toy
        result = _trainer(window=5, epochs=3).fit(u_train, data.y_train)
        assert np.isfinite(result.final_loss)


class TestGuards:
    def test_params_stay_in_bounds_under_adversarial_lr(self, toy):
        data, u_train, _ = toy
        result = _trainer(lr_reservoir=100.0, epochs=3).fit(u_train, data.y_train)
        cfg = TrainerConfig()
        assert cfg.param_min <= result.A <= cfg.param_max
        assert cfg.param_min <= result.B <= cfg.param_max

    def test_divergence_recovery(self):
        """Force the unstable corner: training must recover, not get stuck."""
        rng = np.random.default_rng(0)
        u = rng.normal(size=(12, 60, 1))
        y = rng.integers(0, 2, size=12)
        mask = InputMask.binary(6, 1, seed=0)
        config = TrainerConfig(
            epochs=2, init_A=0.56, init_B=0.56, param_max=0.99
        )
        trainer = BackpropTrainer(ModularDFR(mask), n_classes=2,
                                  config=config, seed=0)
        result = trainer.fit(u, y)
        # some samples may have been skipped, but params must end finite
        # and strictly inside the box
        assert np.isfinite(result.A) and np.isfinite(result.B)
        total_skipped = sum(h.n_skipped for h in result.history)
        if total_skipped:
            assert result.A < 0.56  # pull-back actually happened

    def test_epoch_and_window_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(window=0)
        with pytest.raises(ValueError):
            TrainerConfig(param_min=-1.0)
        with pytest.raises(ValueError):
            TrainerConfig(divergence_shrink=1.5)

    def test_label_out_of_range_rejected(self, toy):
        data, u_train, _ = toy
        trainer = _trainer()
        with pytest.raises(ValueError, match="out of range"):
            trainer.fit(u_train, data.y_train + 10)

    def test_elapsed_time_recorded(self, toy):
        data, u_train, _ = toy
        result = _trainer(epochs=2).fit(u_train, data.y_train)
        assert result.elapsed_seconds > 0
