"""Tests for the echo-state-network baseline reservoir."""

import numpy as np
import pytest

from repro.readout.ridge import select_beta
from repro.representation.dprr import DPRR
from repro.reservoir.esn import EchoStateNetwork


@pytest.fixture
def esn():
    return EchoStateNetwork(20, 2, spectral_radius=0.9, seed=0)


def test_trace_interface(esn, rng):
    u = rng.normal(size=(4, 30, 2))
    trace = esn.run(u)
    assert trace.states.shape == (4, 31, 20)
    assert trace.pre_activations.shape == (4, 30, 20)
    np.testing.assert_array_equal(trace.states[:, 0], 0.0)
    assert not trace.diverged.any()


def test_spectral_radius_is_scaled(esn):
    radius = max(abs(np.linalg.eigvals(esn.w_res)))
    assert radius == pytest.approx(0.9, rel=1e-10)


def test_update_rule_matches_definition(rng):
    esn = EchoStateNetwork(6, 1, leak=0.7, seed=1)
    u = rng.normal(size=(1, 5, 1))
    trace = esn.run(u)
    x = np.zeros(6)
    for k in range(5):
        s = esn.w_in @ u[0, k] + esn.w_res @ x
        x = 0.3 * x + 0.7 * np.tanh(s)
        np.testing.assert_allclose(trace.states[0, k + 1], x, rtol=1e-12)


def test_echo_state_property(rng):
    """Below unit spectral radius, two different initial conditions driven
    by the same input converge (state forgetting)."""
    esn = EchoStateNetwork(15, 1, spectral_radius=0.8, seed=2)
    u = rng.normal(size=(1, 200, 1))
    trace_a = esn.run(u)
    # emulate a different initial condition by prepending noise input
    prefix = rng.normal(size=(1, 50, 1))
    trace_b = esn.run(np.concatenate([prefix, u], axis=1))
    gap = np.abs(trace_a.states[0, -1] - trace_b.states[0, -1]).max()
    assert gap < 1e-3


def test_states_are_bounded(rng):
    esn = EchoStateNetwork(10, 2, spectral_radius=1.5, seed=0)  # even unstable rho
    u = rng.normal(size=(2, 100, 2)) * 10
    trace = esn.run(u)
    assert np.all(np.abs(trace.states) <= 1.0)  # tanh squashing


def test_composes_with_dprr_and_ridge(rng):
    """The ESN slots into the classification stack unchanged."""
    esn = EchoStateNetwork(12, 2, seed=0)
    u = rng.normal(size=(40, 25, 2))
    y = rng.integers(0, 2, size=40)
    u[y == 1] *= 2.0  # amplitude difference -> separable second moments
    feats = DPRR().features(esn.run(u))
    sel = select_beta(feats, y, seed=0)
    assert sel.best_model.accuracy(feats, y) > 0.8


def test_reproducible(rng):
    u = rng.normal(size=(2, 10, 2))
    t1 = EchoStateNetwork(8, 2, seed=5).run(u)
    t2 = EchoStateNetwork(8, 2, seed=5).run(u)
    np.testing.assert_array_equal(t1.states, t2.states)


def test_channel_mismatch_rejected(esn, rng):
    with pytest.raises(ValueError, match="channels"):
        esn.run(rng.normal(size=(1, 5, 3)))


def test_n_recurrent_weights_reflects_density():
    sparse = EchoStateNetwork(30, 1, density=0.1, seed=0)
    dense = EchoStateNetwork(30, 1, density=0.9, seed=0)
    assert sparse.n_recurrent_weights < dense.n_recurrent_weights
    assert dense.n_recurrent_weights <= 30 * 30


def test_validation():
    with pytest.raises(ValueError):
        EchoStateNetwork(0, 1)
    with pytest.raises(ValueError):
        EchoStateNetwork(5, 1, spectral_radius=-1.0)
    with pytest.raises(ValueError):
        EchoStateNetwork(5, 1, leak=0.0)
    with pytest.raises(ValueError):
        EchoStateNetwork(5, 1, density=0.0)
