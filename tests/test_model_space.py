"""Tests for the reservoir model-space representation baseline."""

import numpy as np
import pytest

from repro.representation.model_space import ModelSpace
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR


@pytest.fixture
def trace(rng):
    dfr = ModularDFR(InputMask.binary(5, 2, seed=0))
    return dfr.run(rng.normal(size=(4, 20, 2)), 0.3, 0.3)


def test_state_space_feature_width(trace):
    feats = ModelSpace(target="states").features(trace)
    assert feats.shape == (4, 5 * 6)
    assert ModelSpace(target="states").n_features(5) == 30


def test_input_space_feature_width(trace, rng):
    u = rng.normal(size=(4, 20, 2))
    feats = ModelSpace(target="input").features(trace, u=u)
    assert feats.shape == (4, 2 * 6)
    assert ModelSpace(target="input").n_features(5, n_channels=2) == 12


def test_features_separate_input_dynamics(rng):
    """The representation's actual job: samples whose *input dynamics*
    differ must land in separable regions of model space."""
    dfr = ModularDFR(InputMask.binary(6, 1, seed=0))
    ms = ModelSpace(target="states")
    t_grid = np.arange(80)
    feats = []
    labels = []
    for i in range(30):
        freq = 0.05 if i % 2 == 0 else 0.22  # slow vs fast class
        u = np.sin(2 * np.pi * freq * t_grid + rng.uniform(0, 6.28))
        u = (u + 0.2 * rng.normal(size=80))[np.newaxis, :, np.newaxis]
        feats.append(ms.features(dfr.run(u, 0.3, 0.3))[0])
        labels.append(i % 2)
    feats = np.asarray(feats)
    labels = np.asarray(labels)
    from repro.readout.ridge import fit_ridge

    model = fit_ridge(feats, labels, beta=1e-4)
    assert model.accuracy(feats, labels) >= 0.9


def test_coefficients_converge_to_one_step_matrix(rng):
    """Under full-rank excitation (C = N_x independent channels) the fitted
    one-step model is a consistent estimator of the true linear map: the
    coefficient error must shrink as T grows."""
    from repro.reservoir.stability import one_step_matrix

    dfr = ModularDFR(InputMask.uniform(3, 3, seed=1))
    m_true = one_step_matrix(0.25, 0.3, 3)
    errs = []
    for t_len in (500, 4000, 16000):
        u = rng.normal(size=(1, t_len, 3))
        trace = dfr.run(u, 0.25, 0.3)
        feats = ModelSpace(ridge=1e-10, target="states").features(trace)[0]
        coef = feats.reshape(3, 4)[:, :3]  # strip intercept column
        errs.append(np.abs(coef - m_true).max())
    assert errs[2] < errs[0]
    assert errs[2] < 0.15


def test_validation(trace, rng):
    with pytest.raises(ValueError):
        ModelSpace(ridge=0.0)
    with pytest.raises(ValueError):
        ModelSpace(target="future")
    with pytest.raises(ValueError):
        ModelSpace(target="input").features(trace)  # u missing
    with pytest.raises(ValueError):
        ModelSpace(target="input").features(trace, u=rng.normal(size=(4, 9, 2)))
    with pytest.raises(ValueError):
        ModelSpace().features(np.zeros((2, 2, 3)))  # too short
    with pytest.raises(ValueError):
        ModelSpace(target="input").n_features(5)
