"""Tests for fixed-point simulation and the circuit cost model."""

import numpy as np
import pytest

from repro.hardware.cost_model import (
    CircuitCost,
    dfr_inference_cost,
    dfr_training_memory_bits,
)
from repro.hardware.fixed_point import QFormat, QuantizedModularDFR
from repro.memory.accounting import naive_storage, truncated_storage
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR


class TestQFormat:
    def test_basic_properties(self):
        q = QFormat(3, 4)
        assert q.total_bits == 8
        assert q.resolution == pytest.approx(1 / 16)
        assert q.max_value == pytest.approx(8 - 1 / 16)
        assert q.min_value == -8.0
        assert str(q) == "Q3.4"

    def test_quantize_rounds_to_grid(self):
        q = QFormat(2, 2)  # resolution 0.25
        np.testing.assert_allclose(
            q.quantize(np.array([0.1, 0.13, 0.37, -0.3])),
            [0.0, 0.25, 0.25, -0.25],
        )

    def test_quantize_saturates(self):
        q = QFormat(1, 2)
        assert q.quantize(np.array([100.0]))[0] == q.max_value
        assert q.quantize(np.array([-100.0]))[0] == q.min_value

    def test_grid_values_are_exact(self):
        q = QFormat(4, 8)
        vals = np.arange(-16, 16, q.resolution)
        np.testing.assert_array_equal(q.quantize(vals), vals)

    def test_quantization_error_bounded_by_half_lsb(self, rng):
        q = QFormat(4, 6)
        x = rng.uniform(-10, 10, size=1000)
        assert q.quantization_error(x) <= q.resolution / 2 + 1e-15

    def test_validation(self):
        with pytest.raises(ValueError):
            QFormat(-1, 4)
        with pytest.raises(ValueError):
            QFormat(0, 0)


class TestQuantizedModularDFR:
    def _setup(self, rng, frac_bits):
        mask = InputMask.binary(5, 2, seed=1)
        u = rng.normal(size=(3, 15, 2))
        qdfr = QuantizedModularDFR(mask, QFormat(4, frac_bits))
        fdfr = ModularDFR(mask)
        return u, qdfr, fdfr

    def test_output_lies_on_grid(self, rng):
        u, qdfr, _ = self._setup(rng, 6)
        states = qdfr.run(u, 0.3, 0.2)
        q = qdfr.qformat
        np.testing.assert_array_equal(states, q.quantize(states))

    def test_converges_to_float_with_more_bits(self, rng):
        u, _, fdfr = self._setup(rng, 0)
        ref = fdfr.run(u, 0.3, 0.2).states
        errs = []
        for frac_bits in (4, 8, 16):
            qdfr = QuantizedModularDFR(InputMask.binary(5, 2, seed=1),
                                       QFormat(4, frac_bits))
            states = qdfr.run(u, 0.3, 0.2)
            errs.append(np.max(np.abs(states - ref)))
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-3

    def test_high_precision_matches_float_closely(self, rng):
        mask = InputMask.binary(4, 1, seed=0)
        u = rng.normal(size=(2, 10, 1))
        qdfr = QuantizedModularDFR(mask, QFormat(6, 24))
        fdfr = ModularDFR(mask)
        np.testing.assert_allclose(
            qdfr.run(u, 0.25, 0.25), fdfr.run(u, 0.25, 0.25).states, atol=1e-4
        )

    def test_mask_is_quantized_on_construction(self):
        mask = InputMask(np.array([[0.333]]))
        qdfr = QuantizedModularDFR(mask, QFormat(2, 2))
        assert qdfr.mask.matrix[0, 0] == pytest.approx(0.25)


class TestCostModel:
    def test_paper_scale_counts(self):
        cost = dfr_inference_cost(30, 3, 500, n_channels=1)
        assert cost.multipliers == 2           # the modular DFR's A and B
        assert cost.lut_blocks == 0            # identity shape
        n_r = 30 * 31
        assert cost.memory_words == 30 + n_r + 3 * (n_r + 1)
        assert cost.macs_per_step == 30 * 3 + n_r
        assert cost.macs_per_inference == 500 * cost.macs_per_step + 3 * (n_r + 1)

    def test_nonidentity_adds_lut(self):
        cost = dfr_inference_cost(10, 2, 50, identity_shape=False)
        assert cost.lut_blocks == 1

    def test_memory_bits_scaling(self):
        cost = dfr_inference_cost(10, 2, 50)
        assert cost.memory_bits(16) == 16 * cost.memory_words
        with pytest.raises(ValueError):
            cost.memory_bits(0)

    def test_training_memory_matches_accounting(self):
        full = dfr_training_memory_bits(30, 2, 500, word_bits=16, window=None)
        trunc = dfr_training_memory_bits(30, 2, 500, word_bits=16, window=1)
        assert full == 16 * naive_storage(500, 30, 2).total
        assert trunc == 16 * truncated_storage(30, 2).total
        assert trunc < full

    def test_validation(self):
        with pytest.raises(ValueError):
            dfr_inference_cost(0, 2, 10)
        with pytest.raises(ValueError):
            dfr_training_memory_bits(30, 2, 500, word_bits=0)
