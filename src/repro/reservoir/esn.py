"""Echo-state network (ESN) baseline reservoir.

The DFR is attractive because a *single* physical node plus a delay line
replaces the ESN's ``N_x x N_x`` random coupling matrix (paper Sec. 1–2).
To let users quantify that trade, this module provides the classical ESN of
Jaeger/Lukoševičius — random sparse recurrent weights scaled to a target
spectral radius — behind the same trace interface as
:class:`~repro.reservoir.modular.ModularDFR`, so every representation and
readout in the library composes with it unchanged.

Update rule (leaky-integrator ESN):

.. math::

    x(k) = (1 - \\alpha)\\,x(k-1)
           + \\alpha\\,\\tanh\\bigl(W_{in} u(k) + W\\,x(k-1)\\bigr).
"""

from __future__ import annotations

import numpy as np

from repro.reservoir.modular import ReservoirTrace, _divergence_flags
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import as_batch, check_probability

__all__ = ["EchoStateNetwork"]


class EchoStateNetwork:
    """Classical leaky tanh ESN with the library's trace interface.

    Parameters
    ----------
    n_nodes:
        Reservoir size (state dimension).
    n_channels:
        Input dimension.
    spectral_radius:
        Target spectral radius of the recurrent matrix; values below 1
        give the echo-state property for tanh reservoirs.
    input_scale:
        Scale of the dense random input weights.
    leak:
        Leak rate ``alpha`` in (0, 1]; 1 recovers the non-leaky ESN.
    density:
        Fraction of non-zero recurrent weights.
    seed:
        Seed for the random weight draws.
    """

    def __init__(
        self,
        n_nodes: int,
        n_channels: int,
        *,
        spectral_radius: float = 0.9,
        input_scale: float = 1.0,
        leak: float = 1.0,
        density: float = 0.2,
        seed: SeedLike = None,
    ):
        if n_nodes < 1 or n_channels < 1:
            raise ValueError("n_nodes and n_channels must be >= 1")
        if spectral_radius <= 0:
            raise ValueError(f"spectral_radius must be positive, got {spectral_radius}")
        if not 0.0 < leak <= 1.0:
            raise ValueError(f"leak must lie in (0, 1], got {leak}")
        check_probability(density, name="density")
        if density == 0.0:
            raise ValueError("density must be positive")
        rng = ensure_rng(seed)
        self.n_nodes = int(n_nodes)
        self.n_channels = int(n_channels)
        self.spectral_radius = float(spectral_radius)
        self.leak = float(leak)

        w = rng.normal(size=(n_nodes, n_nodes))
        mask = rng.random((n_nodes, n_nodes)) < density
        np.fill_diagonal(mask, True)  # keep the diagonal so rho > 0 surely
        w = np.where(mask, w, 0.0)
        radius = max(abs(np.linalg.eigvals(w)))
        self.w_res = w * (spectral_radius / radius)
        self.w_in = rng.uniform(-input_scale, input_scale,
                                size=(n_nodes, n_channels))

    def run(self, u: np.ndarray) -> ReservoirTrace:
        """Run the ESN over a batch ``(N, T, C)``; see :class:`ReservoirTrace`.

        ``pre_activations`` holds the tanh argument at each step, in analogy
        to the modular DFR's ``s(k)``.
        """
        u = as_batch(u)
        if u.shape[2] != self.n_channels:
            raise ValueError(
                f"input has {u.shape[2]} channels, ESN expects {self.n_channels}"
            )
        n, t_len, _ = u.shape
        states = np.zeros((n, t_len + 1, self.n_nodes))
        pre = np.empty((n, t_len, self.n_nodes))
        drive = u @ self.w_in.T  # (N, T, n_nodes)
        for k in range(t_len):
            s = drive[:, k, :] + states[:, k, :] @ self.w_res.T
            pre[:, k, :] = s
            states[:, k + 1, :] = (
                (1.0 - self.leak) * states[:, k, :] + self.leak * np.tanh(s)
            )
        diverged = _divergence_flags(states.reshape(n, -1))
        return ReservoirTrace(states=states, pre_activations=pre,
                              diverged=diverged)

    @property
    def n_recurrent_weights(self) -> int:
        """Non-zero recurrent weights — the hardware cost a DFR avoids."""
        return int(np.count_nonzero(self.w_res))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EchoStateNetwork(n_nodes={self.n_nodes}, "
            f"n_channels={self.n_channels}, "
            f"spectral_radius={self.spectral_radius}, leak={self.leak})"
        )
