"""Stability and memory analysis of the modular DFR.

With the identity shape the modular DFR is linear, so its long-run behavior
is governed by the spectral radius of the one-time-step state map — this
module computes that map in closed form, giving:

* :func:`one_step_matrix` / :func:`spectral_radius` — the exact linear
  analysis behind the divergence guards (the trainer's parameter box and
  the grid search's diverged-corner handling);
* :func:`stability_margin` — how far inside/outside the unit circle a
  parameter pair sits;
* :func:`memory_capacity` — the classical short-term-memory capacity of
  Jaeger: how many steps of a random input stream a reservoir can
  reconstruct linearly.  This is the standard figure of merit that makes
  "why do A and B matter?" quantitative.

Derivation of the one-step map
------------------------------
Within step ``k`` the node chain solves the lower-triangular system
``x(k) = A L (j(k) + x(k-1)) + B^n-powers * x(k-1)_{N_x}``, where
``L[n, m] = B^{n-m}`` for ``n >= m``.  The map ``x(k-1) -> x(k)`` at zero
input is therefore ``M = A L + c e_{N_x}^T`` with ``c_n = B^n`` carrying
the cross-step boundary ``x(k)_0 = x(k-1)_{N_x}``.
"""

from __future__ import annotations

import numpy as np

from repro.readout.ridge import fit_ridge_regressor
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "one_step_matrix",
    "spectral_radius",
    "stability_margin",
    "is_stable",
    "memory_capacity",
]


def one_step_matrix(A: float, B: float, n_nodes: int) -> np.ndarray:
    """The exact zero-input state map ``x(k-1) -> x(k)`` (identity shape)."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    n_idx = np.arange(n_nodes)
    # L[n, m] = B^(n-m) for n >= m else 0
    powers = n_idx[:, np.newaxis] - n_idx[np.newaxis, :]
    with np.errstate(over="ignore"):
        lower = np.where(powers >= 0, float(B) ** np.maximum(powers, 0), 0.0)
    mat = float(A) * lower
    # boundary: x(k)_n picks up B^(n+1) * x(k-1)_{N_x}
    mat[:, -1] += float(B) ** (n_idx + 1)
    return mat


def spectral_radius(A: float, B: float, n_nodes: int) -> float:
    """Spectral radius of the one-step map (identity shape)."""
    return float(np.max(np.abs(np.linalg.eigvals(one_step_matrix(A, B, n_nodes)))))


def stability_margin(A: float, B: float, n_nodes: int) -> float:
    """``1 - rho``: positive inside the stable region, negative outside."""
    return 1.0 - spectral_radius(A, B, n_nodes)


def is_stable(A: float, B: float, n_nodes: int) -> bool:
    """True when the zero-input dynamics contract (echo-state property)."""
    return stability_margin(A, B, n_nodes) > 0.0


def memory_capacity(
    reservoir: ModularDFR,
    A: float,
    B: float,
    *,
    max_lag: int = 40,
    n_steps: int = 2000,
    washout: int = 100,
    ridge: float = 1e-9,
    seed: SeedLike = None,
) -> float:
    """Jaeger's linear short-term memory capacity.

    Drives the reservoir with i.i.d. uniform input and, for each lag ``d``,
    fits a ridge readout reconstructing ``u(k-d)`` from ``x(k)``; the
    capacity is the sum over lags of the squared correlation between the
    reconstruction and the truth.  Upper-bounded by the state dimension.

    Only meaningful for single-channel reservoirs (the classical setting).
    """
    if reservoir.n_channels != 1:
        raise ValueError("memory capacity is defined for 1-channel reservoirs")
    if max_lag < 1 or n_steps <= washout + max_lag + 10:
        raise ValueError("need n_steps >> washout + max_lag")
    rng = ensure_rng(seed)
    u = rng.uniform(-0.5, 0.5, size=n_steps)
    trace = reservoir.run(u[np.newaxis, :, np.newaxis], A, B)
    if trace.diverged[0]:
        return 0.0
    states = trace.states[0, 1:, :]  # (T, N_x)
    capacity = 0.0
    for lag in range(1, max_lag + 1):
        x_fit = states[washout:, :]
        target = u[washout - lag: n_steps - lag]
        model = fit_ridge_regressor(x_fit, target, beta=ridge)
        pred = model.predict(x_fit)
        denom = np.var(pred) * np.var(target)
        if denom <= 0:
            continue
        corr = np.cov(pred, target)[0, 1] ** 2 / denom
        capacity += float(corr)
    return capacity
