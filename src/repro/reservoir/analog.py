"""Analog Mackey–Glass DFR: delay-differential-equation substrate.

The analog implementation the paper describes in Sec. 2.1 evolves a single
physical node according to the Mackey–Glass delay differential equation
(paper Eqs. 2–3)

.. math::

    \\dot{x}(t) = -x(t) + \\eta\\, f\\bigl(x(t-\\tau) + \\gamma j(t)\\bigr),
    \\qquad f(z) = \\frac{z}{1 + |z|^p},

where :math:`j(t)` is the masked input held constant over each virtual-node
slot of width ``theta`` and :math:`\\tau = N_x \\theta` is the loop delay.
The reservoir state consists of samples of ``x`` at the virtual-node instants
(paper Eq. 4).

Integration modes
-----------------
``hold="node"``
    ``f`` is frozen over each ``theta`` slot, evaluated with the delayed
    state sampled at the end of the corresponding slot one loop earlier —
    the zero-order-hold assumption under which the exact exponential update
    (paper Eq. 5) composes to the digital DFR of Eq. 8.  With
    ``integrator="exact"`` this reproduces :class:`DigitalMGDFR`
    *bit-exactly, independent of the sub-step count* (pinned by tests).
``hold="substep"``
    ``f`` is re-evaluated at every integrator sub-step using a delay line at
    sub-step resolution — the closest discretized rendering of the true DDE.
    Increasing ``substeps`` converges to the continuous dynamics.

``integrator`` selects the exponential ("exact", exact for frozen ``f``) or
forward-Euler update per sub-step.
"""

from __future__ import annotations

import numpy as np

from repro.reservoir.masking import InputMask
from repro.utils.validation import as_batch, check_positive

__all__ = ["AnalogMGDFR"]


class AnalogMGDFR:
    """Continuous-time Mackey–Glass DFR integrated at sub-node resolution.

    Parameters
    ----------
    mask:
        Fixed input mask; row count = number of virtual nodes ``N_x``.
    eta, gamma, theta, p:
        Mackey–Glass parameters as in :class:`DigitalMGDFR`.
    substeps:
        Integrator sub-steps per virtual-node slot ``theta``.
    integrator:
        ``"exact"`` (exponential update, exact for frozen ``f``) or
        ``"euler"`` (forward Euler).
    hold:
        ``"node"`` or ``"substep"`` — see module docstring.
    """

    def __init__(
        self,
        mask,
        *,
        eta: float = 0.5,
        gamma: float = 0.05,
        theta: float = 0.2,
        p: float = 2.0,
        substeps: int = 1,
        integrator: str = "exact",
        hold: str = "node",
    ):
        if not isinstance(mask, InputMask):
            mask = InputMask(mask)
        check_positive(theta, name="theta")
        if substeps < 1:
            raise ValueError(f"substeps must be >= 1, got {substeps}")
        if integrator not in ("exact", "euler"):
            raise ValueError(f"integrator must be 'exact' or 'euler', got {integrator!r}")
        if hold not in ("node", "substep"):
            raise ValueError(f"hold must be 'node' or 'substep', got {hold!r}")
        if integrator == "euler" and theta / substeps >= 1.0:
            raise ValueError(
                "forward Euler requires sub-step dt < 1 (the MG time constant); "
                f"got dt = {theta / substeps}"
            )
        self.mask = mask
        self.eta = float(eta)
        self.gamma = float(gamma)
        self.theta = float(theta)
        self.p = float(p)
        self.substeps = int(substeps)
        self.integrator = integrator
        self.hold = hold

    @property
    def n_nodes(self) -> int:
        return self.mask.n_nodes

    @property
    def tau(self) -> float:
        """Total loop delay ``tau = N_x * theta``."""
        return self.n_nodes * self.theta

    def _mg(self, z: np.ndarray) -> np.ndarray:
        return z / (1.0 + np.abs(z) ** self.p)

    def run(self, u: np.ndarray) -> np.ndarray:
        """Integrate the DDE over a batch of inputs.

        Parameters
        ----------
        u:
            Input batch ``(N, T, C)`` (or a single ``(T, C)`` sample).

        Returns
        -------
        ndarray of shape ``(N, T+1, N_x)``: the virtual-node samples, with a
        zero initial row — the same trace convention as
        :class:`~repro.reservoir.modular.ReservoirTrace.states`.
        """
        u = as_batch(u)
        j_seq = self.gamma * self.mask.apply(u)  # (N, T, N_x)
        n, t_len, nx = j_seq.shape
        dt = self.theta / self.substeps
        decay = np.exp(-dt)
        rise = 1.0 - decay

        # delay line at sub-step resolution covering exactly tau
        delay_len = nx * self.substeps
        line = np.zeros((n, delay_len))
        states = np.zeros((n, t_len + 1, nx))
        x = np.zeros(n)
        pos = 0  # write cursor into the circular delay line

        for k in range(t_len):
            for node in range(nx):
                drive = j_seq[:, k, node]
                if self.hold == "node":
                    # delayed sample frozen at the end of slot (k-1, node):
                    # that is exactly the value the cursor is about to
                    # overwrite after the *last* sub-step of this slot, i.e.
                    # the oldest entry of the slot's sub-step run.
                    delayed = line[:, (pos + self.substeps - 1) % delay_len]
                    f_val = self.eta * self._mg(delayed + drive)
                for _ in range(self.substeps):
                    if self.hold == "substep":
                        delayed = line[:, pos]
                        f_val = self.eta * self._mg(delayed + drive)
                    if self.integrator == "exact":
                        x = x * decay + rise * f_val
                    else:  # euler
                        x = x + dt * (-x + f_val)
                    line[:, pos] = x
                    pos = (pos + 1) % delay_len
                states[:, k + 1, node] = x
        return states

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AnalogMGDFR(n_nodes={self.n_nodes}, eta={self.eta}, gamma={self.gamma}, "
            f"theta={self.theta}, p={self.p}, substeps={self.substeps}, "
            f"integrator={self.integrator!r}, hold={self.hold!r})"
        )
