"""Classic fully digital Mackey–Glass DFR (paper Sec. 2.1, Eq. 8).

Before the modular DFR, digital DFR implementations replicated the analog
Mackey–Glass element by solving its delay differential equation exactly over
one virtual-node interval ``theta`` under a zero-order hold (paper Eq. 5):

.. math::

    x(k)_n = x(k)_{n-1}\\,e^{-\\theta}
             + (1 - e^{-\\theta})\\,\\eta\\,
               f\\bigl(x(k-1)_n + \\gamma j(k)_n\\bigr),

with :math:`f(z) = z / (1 + |z|^p)`.  The three tunables are
``(eta, gamma, p)`` with ``theta`` fixed by the hardware clock — exactly the
parameterization whose grid search the paper sets out to replace.

This class exists (a) as the historical baseline substrate, and (b) to pin
the modular-DFR equivalence

.. math:: A = \\eta\\,(1 - e^{-\\theta}), \\qquad B = e^{-\\theta},

(with ``gamma`` folded into the mask scale), which reduces the tunable count
from 3 to 2 — the modular-DFR observation the optimization method builds on.
"""

from __future__ import annotations

import numpy as np

from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR, ReservoirTrace
from repro.reservoir.nonlinearity import MackeyGlass
from repro.utils.validation import check_positive

__all__ = ["DigitalMGDFR", "modular_params_from_mg"]


def modular_params_from_mg(eta: float, theta: float) -> tuple:
    """Map classic MG-DFR parameters to modular-DFR ``(A, B)``.

    ``A = eta * (1 - e^{-theta})`` and ``B = e^{-theta}``.
    """
    check_positive(theta, name="theta")
    decay = float(np.exp(-theta))
    return float(eta) * (1.0 - decay), decay


class DigitalMGDFR:
    """Digital Mackey–Glass DFR with the classic ``(eta, gamma, p)`` tuning.

    Parameters
    ----------
    mask:
        Fixed input mask (``InputMask`` or raw matrix).
    eta:
        Feedback gain of the MG element.
    gamma:
        Input scaling applied to the masked drive.
    theta:
        Virtual-node spacing (units of the MG time constant); the total loop
        delay is ``tau = N_x * theta``.
    p:
        MG saturation exponent.
    """

    def __init__(
        self,
        mask,
        *,
        eta: float = 0.5,
        gamma: float = 0.05,
        theta: float = 0.2,
        p: float = 2.0,
    ):
        if not isinstance(mask, InputMask):
            mask = InputMask(mask)
        check_positive(theta, name="theta")
        check_positive(gamma, name="gamma")
        self.mask = mask
        self.eta = float(eta)
        self.gamma = float(gamma)
        self.theta = float(theta)
        self.p = float(p)
        # the equivalent modular DFR: gamma is folded into the mask scale
        a_eq, b_eq = modular_params_from_mg(self.eta, self.theta)
        self._A = a_eq
        self._B = b_eq
        self._modular = ModularDFR(
            InputMask(self.gamma * mask.matrix), nonlinearity=MackeyGlass(p=self.p)
        )

    @property
    def n_nodes(self) -> int:
        return self.mask.n_nodes

    @property
    def equivalent_modular_params(self) -> tuple:
        """The ``(A, B)`` of the equivalent modular DFR."""
        return self._A, self._B

    def run(self, u: np.ndarray) -> ReservoirTrace:
        """Run the digital MG DFR over a batch; see :class:`ReservoirTrace`."""
        return self._modular.run(u, self._A, self._B)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DigitalMGDFR(n_nodes={self.n_nodes}, eta={self.eta}, "
            f"gamma={self.gamma}, theta={self.theta}, p={self.p})"
        )
