"""Reservoir substrates: masking, nonlinearities, and DFR variants."""

from repro.reservoir.analog import AnalogMGDFR
from repro.reservoir.digital import DigitalMGDFR, modular_params_from_mg
from repro.reservoir.esn import EchoStateNetwork
from repro.reservoir.masking import InputMask, binary_mask, uniform_mask
from repro.reservoir.modular import ModularDFR, ReservoirTrace, StreamingResult
from repro.reservoir.stability import (
    is_stable,
    memory_capacity,
    one_step_matrix,
    spectral_radius,
    stability_margin,
)
from repro.reservoir.nonlinearity import (
    NONLINEARITIES,
    Identity,
    MackeyGlass,
    Nonlinearity,
    SaturatingLinear,
    Sine,
    Tanh,
    get_nonlinearity,
)

__all__ = [
    "AnalogMGDFR",
    "DigitalMGDFR",
    "EchoStateNetwork",
    "is_stable",
    "memory_capacity",
    "one_step_matrix",
    "spectral_radius",
    "stability_margin",
    "modular_params_from_mg",
    "InputMask",
    "binary_mask",
    "uniform_mask",
    "ModularDFR",
    "ReservoirTrace",
    "StreamingResult",
    "NONLINEARITIES",
    "Identity",
    "MackeyGlass",
    "Nonlinearity",
    "SaturatingLinear",
    "Sine",
    "Tanh",
    "get_nonlinearity",
]
