"""Naive reference implementations used for differential testing.

These transcribe the paper's equations as directly as possible — explicit
double loops over time steps and virtual nodes, no vectorization tricks.
They are intentionally slow and exist so that the fast production paths
(:mod:`repro.reservoir.modular`, :mod:`repro.representation.dprr`,
:mod:`repro.core.backprop`) can be checked against an independently written
oracle.
"""

from __future__ import annotations

import numpy as np

from repro.reservoir.nonlinearity import Identity, get_nonlinearity
from repro.utils.validation import as_batch

__all__ = [
    "naive_modular_forward",
    "naive_digital_mg_forward",
    "naive_dprr",
    "naive_full_backward",
]


def naive_modular_forward(u, mask_matrix, A, B, nonlinearity=None):
    """Direct transcription of paper Eq. 13 for a batch of inputs.

    Returns ``(states, pre_activations)`` with the same shapes and
    conventions as :class:`repro.reservoir.modular.ReservoirTrace`:
    ``states`` is ``(N, T+1, N_x)`` with a zero initial state, and the
    boundary rule is ``x(k)_0 = x(k-1)_{N_x}``.
    """
    u = as_batch(u)
    phi = (Identity() if nonlinearity is None else get_nonlinearity(nonlinearity)).phi
    mask_matrix = np.asarray(mask_matrix, dtype=np.float64)
    n, t_len, _ = u.shape
    nx = mask_matrix.shape[0]
    states = np.zeros((n, t_len + 1, nx))
    pre = np.zeros((n, t_len, nx))
    for i in range(n):
        for k in range(1, t_len + 1):
            j_k = mask_matrix @ u[i, k - 1]
            for node in range(nx):
                s = j_k[node] + states[i, k - 1, node]
                pre[i, k - 1, node] = s
                if node == 0:
                    x_left = states[i, k - 1, nx - 1]
                else:
                    x_left = states[i, k, node - 1]
                states[i, k, node] = A * float(phi(s)) + B * x_left
    return states, pre


def naive_digital_mg_forward(u, mask_matrix, eta, theta, gamma, p):
    """Direct transcription of the classic digital MG-DFR update (paper Eq. 8).

    .. math::

        x(k)_n = x(k)_{n-1} e^{-\\theta}
                 + (1 - e^{-\\theta})\\,\\eta\\,
                   \\frac{z}{1 + |z|^p},\\quad
        z = x(k-1)_n + \\gamma\\, j(k)_n

    with the same zero initial state and node-chain boundary as the modular
    model.  Equivalent to the modular DFR with ``A = eta * (1 - e^{-theta})``,
    ``B = e^{-theta}`` and a Mackey–Glass shape driven by a ``gamma``-scaled
    mask — the equivalence the modular-DFR paper establishes, pinned by
    tests.
    """
    u = as_batch(u)
    mask_matrix = np.asarray(mask_matrix, dtype=np.float64)
    n, t_len, _ = u.shape
    nx = mask_matrix.shape[0]
    decay = np.exp(-theta)
    gain = eta * (1.0 - decay)
    states = np.zeros((n, t_len + 1, nx))
    for i in range(n):
        for k in range(1, t_len + 1):
            j_k = gamma * (mask_matrix @ u[i, k - 1])
            for node in range(nx):
                z = states[i, k - 1, node] + j_k[node]
                mg = z / (1.0 + abs(z) ** p)
                if node == 0:
                    x_left = states[i, k - 1, nx - 1]
                else:
                    x_left = states[i, k, node - 1]
                states[i, k, node] = x_left * decay + gain * mg
    return states


def naive_dprr(states, normalize=None):
    """Direct transcription of the DPRR definition (paper Eqs. 18–19).

    Parameters
    ----------
    states:
        Full trace ``(N, T+1, N_x)`` including the zero initial state.
    normalize:
        ``None`` for the literal paper sums; ``"length"`` to divide by ``T``.

    Returns
    -------
    ndarray of shape ``(N, N_x * (N_x + 1))`` laid out exactly as the paper
    indexes it: entry ``(i-1) N_x + j`` is :math:`\\sum_k x(k)_i x(k-1)_j`
    and entry ``N_x^2 + i`` is :math:`\\sum_k x(k)_i` (1-based in the paper).
    """
    states = np.asarray(states, dtype=np.float64)
    n, t_plus_1, nx = states.shape
    t_len = t_plus_1 - 1
    out = np.zeros((n, nx * (nx + 1)))
    for sample in range(n):
        for i in range(nx):
            for j in range(nx):
                acc = 0.0
                for k in range(1, t_len + 1):
                    acc += states[sample, k, i] * states[sample, k - 1, j]
                out[sample, i * nx + j] = acc
            acc = 0.0
            for k in range(1, t_len + 1):
                acc += states[sample, k, i]
            out[sample, nx * nx + i] = acc
    if normalize == "length":
        out /= t_len
    elif normalize is not None:
        raise ValueError(f"unknown normalize mode {normalize!r}")
    return out


def naive_full_backward(states, pre, j_drive, A, B, dr, nonlinearity=None):
    """Reference full BPTT through DPRR + reservoir for ONE sample.

    Implements paper Eqs. 23 and 30–32 literally on the flat node chain,
    walking backwards one scalar at a time.

    Parameters
    ----------
    states:
        ``(T+1, N_x)`` trace of one sample.
    pre:
        ``(T, N_x)`` pre-activations ``s(k) = j(k) + x(k-1)``.
    j_drive:
        ``(T, N_x)`` masked drive (unused by the identity shape but kept for
        signature clarity).
    A, B:
        Reservoir parameters.
    dr:
        ``(N_x (N_x+1),)`` gradient of the loss w.r.t. the (possibly
        normalized) DPRR vector.

    Returns
    -------
    (dA, dB, g) where ``g`` is the ``(T, N_x)`` array of dL/dx(k)_n.
    """
    nonl = Identity() if nonlinearity is None else get_nonlinearity(nonlinearity)
    states = np.asarray(states, dtype=np.float64)
    pre = np.asarray(pre, dtype=np.float64)
    t_plus_1, nx = states.shape
    t_len = t_plus_1 - 1
    g_mat = np.asarray(dr[: nx * nx], dtype=np.float64).reshape(nx, nx)
    g_sum = np.asarray(dr[nx * nx:], dtype=np.float64)

    g = np.zeros((t_len + 2, nx))  # rows 1..T used; T+1 stays zero
    for k in range(t_len, 0, -1):
        for node in range(nx - 1, -1, -1):
            # paper Eq. 23 — contribution flowing out of the DPRR layer
            bpv = g_sum[node]
            for jj in range(nx):
                bpv += states[k - 1, jj] * g_mat[node, jj]
            if k < t_len:
                for ii in range(nx):
                    bpv += states[k + 1, ii] * g_mat[ii, node]
            val = bpv
            # paper Eq. 30 — B chain to the next node on the flat chain
            if node == nx - 1:
                if k < t_len:
                    val += B * g[k + 1, 0]
            else:
                val += B * g[k, node + 1]
            # paper Eq. 30 — f' chain to the same node one step later
            if k < t_len:
                val += A * float(nonl.dphi(pre[k, node])) * g[k + 1, node]
            g[k, node] = val

    dA = 0.0
    dB = 0.0
    for k in range(1, t_len + 1):
        for node in range(nx):
            dA += float(nonl.phi(pre[k - 1, node])) * g[k, node]
            if node == 0:
                x_left = states[k - 1, nx - 1]
            else:
                x_left = states[k, node - 1]
            dB += x_left * g[k, node]
    return dA, dB, g[1: t_len + 1]
