"""Input masking for delayed-feedback reservoirs.

In a DFR a single physical nonlinear node emulates ``N_x`` virtual nodes by
time-multiplexing: each input sample ``u(k)`` is *masked* — multiplied by a
fixed, randomly chosen per-node coefficient — before being injected into the
node (paper Sec. 2.1).  For a digital DFR with a ``C``-channel multivariate
input the mask generalizes to a matrix ``M`` of shape ``(N_x, C)`` and the
masked drive is

.. math:: j(k) = M\\,u(k) \\in \\mathbb{R}^{N_x}.

The univariate case of the paper (``j(k) = m\\,u(k)``) is ``C = 1``.

Binary ±gamma masks are the standard digital choice (Appeltant et al. 2011);
uniform masks are included for completeness.  The mask is *fixed* — it is not
trained and not part of the optimized parameter set.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive

__all__ = ["InputMask", "binary_mask", "uniform_mask"]


def binary_mask(
    n_nodes: int, n_channels: int, *, gamma: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """Draw a random binary mask with entries ``+gamma`` or ``-gamma``.

    Parameters
    ----------
    n_nodes:
        Number of virtual nodes ``N_x``.
    n_channels:
        Number of input channels ``C``.
    gamma:
        Input scaling (the paper's ``gamma``); must be positive.
    seed:
        Seed or generator for reproducibility.
    """
    _check_shape(n_nodes, n_channels)
    check_positive(gamma, name="gamma")
    rng = ensure_rng(seed)
    signs = rng.integers(0, 2, size=(n_nodes, n_channels)) * 2 - 1
    return gamma * signs.astype(np.float64)


def uniform_mask(
    n_nodes: int, n_channels: int, *, gamma: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """Draw a random mask with entries uniform in ``[-gamma, gamma]``."""
    _check_shape(n_nodes, n_channels)
    check_positive(gamma, name="gamma")
    rng = ensure_rng(seed)
    return rng.uniform(-gamma, gamma, size=(n_nodes, n_channels))


def _check_shape(n_nodes: int, n_channels: int) -> None:
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")


class InputMask:
    """A fixed masking matrix mapping input samples to virtual-node drives.

    Parameters
    ----------
    matrix:
        Array of shape ``(n_nodes, n_channels)``.

    Examples
    --------
    >>> mask = InputMask.binary(n_nodes=4, n_channels=2, seed=0)
    >>> j = mask.apply(np.ones((10, 5, 2)))   # (N, T, C) -> (N, T, N_x)
    >>> j.shape
    (10, 5, 4)
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"mask matrix must be 2-D, got shape {matrix.shape}")
        if not np.all(np.isfinite(matrix)):
            raise ValueError("mask matrix must be finite")
        self.matrix = matrix

    @classmethod
    def binary(
        cls, n_nodes: int, n_channels: int, *, gamma: float = 1.0, seed: SeedLike = None
    ) -> "InputMask":
        """Create a random ±gamma binary mask (the standard digital choice)."""
        return cls(binary_mask(n_nodes, n_channels, gamma=gamma, seed=seed))

    @classmethod
    def uniform(
        cls, n_nodes: int, n_channels: int, *, gamma: float = 1.0, seed: SeedLike = None
    ) -> "InputMask":
        """Create a random mask with entries uniform in ``[-gamma, gamma]``."""
        return cls(uniform_mask(n_nodes, n_channels, gamma=gamma, seed=seed))

    @property
    def n_nodes(self) -> int:
        """Number of virtual nodes ``N_x``."""
        return self.matrix.shape[0]

    @property
    def n_channels(self) -> int:
        """Number of input channels ``C``."""
        return self.matrix.shape[1]

    def apply(self, u: np.ndarray) -> np.ndarray:
        """Mask a batch of inputs: ``(N, T, C) -> (N, T, N_x)``.

        Also accepts a single sample ``(T, C)`` and returns ``(T, N_x)``.
        """
        u = np.asarray(u, dtype=np.float64)
        if u.ndim not in (2, 3):
            raise ValueError(f"input must be (T, C) or (N, T, C), got {u.shape}")
        if u.shape[-1] != self.n_channels:
            raise ValueError(
                f"input has {u.shape[-1]} channels but mask expects {self.n_channels}"
            )
        return u @ self.matrix.T

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"InputMask(n_nodes={self.n_nodes}, n_channels={self.n_channels})"
