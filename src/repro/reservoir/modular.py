"""The modular DFR reservoir (paper Sec. 2.3, Eq. 13).

Model
-----
With mask drive :math:`j(k) = M u(k)` the reservoir state updates as

.. math::

    x(k)_n = A\\,\\varphi\\bigl(j(k)_n + x(k-1)_n\\bigr) + B\\,x(k)_{n-1},
    \\qquad n = 1, \\dots, N_x,

with :math:`x(0) = 0` and the node-chain boundary
:math:`x(k)_0 \\equiv x(k-1)_{N_x}`: the delay line is continuous in time, so
the "previous node" of node 1 at step ``k`` is the last node of step ``k-1``.
Equivalently, flattening ``t = (k-1) N_x + n`` gives one chain

.. math:: x_t = A\\,\\varphi(j_t + x_{t-N_x}) + B\\,x_{t-1}.

Fast evaluation
---------------
The argument of :math:`\\varphi` only involves states of step ``k-1``, so for
a *fixed* step ``k`` the recursion over ``n`` is linear in the unknowns — a
first-order IIR filter with coefficient ``B`` driven by
``c = A * phi(j(k) + x(k-1))``.  :func:`scipy.signal.lfilter` evaluates that
chain in C for the whole batch at once, so the Python-level loop is only over
the ``T`` time steps, for *any* nonlinearity.

Two execution modes are provided:

* :meth:`ModularDFR.run` stores the full state trace ``(N, T+1, N_x)`` —
  needed for full backpropagation-through-time and convenient for analysis;
* :meth:`ModularDFR.run_streaming` accumulates the DPRR representation online
  and retains only the last ``window + 1`` states, exactly the storage regime
  of the paper's truncated backpropagation (Sec. 3.4).

Candidate axis
--------------
``A``/``B`` may also be length-``K`` vectors: one call then sweeps K
``(A, B)`` candidates over the same input batch in a single fused array
program, and every trace array gains a leading candidate axis
(``(K, N, T+1, N_x)`` states, ``(K, N)`` divergence flags).  The masked
drive is computed once for all candidates, and each candidate's node chain
runs through the backend's stacked first-order filter — on NumPy each row
is bit-identical to a scalar sweep of that candidate (pinned by tests), on
Torch/CuPy the whole stack is one batched matmul.

Array backends
--------------
Both sweeps are pure dense array programs, so they route every array op
through an :class:`~repro.backend.ArrayBackend` (constructor argument or a
per-call ``backend=`` override).  The default is the NumPy reference —
bit-identical to the historical implementation; the environment variable
``REPRO_BACKEND`` is deliberately *not* consulted here so that directly
constructed reservoirs keep the paper-pinned numerics (pipeline entry
points thread their backend in explicitly).  Backends without an
arbitrary-order ``lfilter`` (Torch) skip the identity flat-chain fast path
and compute the same trajectory through the per-step first-order chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.reservoir.masking import InputMask
from repro.reservoir.nonlinearity import Identity, Nonlinearity, get_nonlinearity
from repro.utils.validation import as_batch

__all__ = ["ModularDFR", "ReservoirTrace", "StreamingResult"]

#: states with magnitude above this are treated as numerically diverged
_DIVERGENCE_LIMIT = 1e100


@dataclass
class ReservoirTrace:
    """Full forward trace of a modular DFR run.

    Attributes
    ----------
    states:
        ``(N, T+1, N_x)`` array; ``states[:, 0]`` is the zero initial state
        and ``states[:, k]`` is :math:`x(k)` for ``k = 1..T``.  Candidate-
        stacked runs (vector ``A``/``B``) prepend a candidate axis:
        ``(K, N, T+1, N_x)``.
    pre_activations:
        ``(N, T, N_x)`` (or ``(K, N, T, N_x)``) array of
        :math:`s(k) = j(k) + x(k-1)`, the argument of the nonlinearity at
        each step (needed by backpropagation).
    diverged:
        ``(N,)`` (or ``(K, N)``) boolean array flagging samples whose state
        left the finite range (possible for unbounded nonlinearities at
        large ``A, B``).

    ``states``/``pre_activations`` are arrays of whichever
    :class:`~repro.backend.ArrayBackend` ran the sweep (NumPy by default);
    ``diverged`` is always a NumPy array — it is control flow, not data.
    """

    states: np.ndarray
    pre_activations: np.ndarray
    diverged: np.ndarray

    @property
    def stacked(self) -> bool:
        """Whether a leading candidate axis is present (vector ``A``/``B``)."""
        return self.states.ndim == 4

    @property
    def n_candidates(self) -> Optional[int]:
        """Candidate-axis length ``K``; ``None`` for a scalar-(A, B) trace."""
        return self.states.shape[0] if self.stacked else None

    @property
    def n_samples(self) -> int:
        return self.states.shape[-3]

    @property
    def n_steps(self) -> int:
        """Series length ``T``."""
        return self.states.shape[-2] - 1

    @property
    def n_nodes(self) -> int:
        return self.states.shape[-1]

    def final_window(self, window: int, *, copy: bool = True) -> "StreamingResult":
        """Slice the last ``window`` steps into a :class:`StreamingResult`.

        Useful to run truncated backpropagation from a full trace; the result
        is identical to what :meth:`ModularDFR.run_streaming` produces with
        the same window (tests pin this equivalence).

        With ``copy=False`` the result holds read-only *views* into this
        trace instead of fresh arrays — the trainer's hot loop takes this
        path, since it slices every sample every epoch and never mutates the
        window.
        """
        window = _check_window(window, self.n_steps)
        window_states = self.states[..., -(window + 1):, :]
        window_pre = self.pre_activations[..., -window:, :]
        diverged = self.diverged
        if copy:
            window_states = _copy_array(window_states)
            window_pre = _copy_array(window_pre)
            diverged = diverged.copy()
        elif isinstance(window_states, np.ndarray):
            # NumPy views can be locked; device tensors have no such flag
            window_states.setflags(write=False)
            window_pre.setflags(write=False)
        return StreamingResult(
            window_states=window_states,
            window_pre_activations=window_pre,
            dprr_sums=None,
            diverged=diverged,
            n_steps=self.n_steps,
        )


@dataclass
class StreamingResult:
    """Memory-bounded forward result (paper's truncated-backprop regime).

    Attributes
    ----------
    window_states:
        ``(N, window+1, N_x)`` — states ``x(T-window) .. x(T)``.  Candidate-
        stacked runs prepend a candidate axis (``(K, N, window+1, N_x)``).
    window_pre_activations:
        ``(N, window, N_x)`` (or ``(K, N, window, N_x)``) —
        ``s(T-window+1) .. s(T)``.
    dprr_sums:
        Optional pair ``(P, s)`` with ``P`` of shape ``(N, N_x, N_x)`` holding
        :math:`\\sum_k x(k) x(k-1)^T` and ``s`` of shape ``(N, N_x)`` holding
        :math:`\\sum_k x(k)` — the *unnormalized* DPRR accumulators
        (paper Eqs. 10–11); candidate-stacked runs prepend the candidate
        axis to both.  ``None`` when the result was sliced from a full
        trace rather than streamed.
    diverged:
        ``(N,)`` (or ``(K, N)``) boolean divergence flags.
    n_steps:
        Total series length ``T`` that was consumed.
    """

    window_states: np.ndarray
    window_pre_activations: np.ndarray
    dprr_sums: Optional[tuple]
    diverged: np.ndarray
    n_steps: int

    @property
    def stacked(self) -> bool:
        """Whether a leading candidate axis is present (vector ``A``/``B``)."""
        return self.window_states.ndim == 4

    @property
    def window(self) -> int:
        return self.window_pre_activations.shape[-2]


def _copy_array(a):
    """Same-device deep copy: NumPy/CuPy spell it ``copy()``, Torch ``clone()``."""
    if hasattr(a, "copy"):
        return a.copy()
    return a.clone()


def _check_window(window: int, n_steps: int) -> int:
    window = int(window)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return min(window, n_steps)


class ModularDFR:
    """Modular delayed-feedback reservoir (paper Eq. 13).

    Parameters
    ----------
    mask:
        The fixed :class:`~repro.reservoir.masking.InputMask`; its row count
        defines the number of virtual nodes ``N_x``.
    nonlinearity:
        Shape function :math:`\\varphi` (name or instance); the paper's
        evaluation uses the identity.
    backend:
        :class:`~repro.backend.ArrayBackend` (or spec string) executing the
        sweeps; ``None`` is the NumPy reference.  Overridable per call via
        ``run(..., backend=...)``.

    Examples
    --------
    >>> mask = InputMask.binary(n_nodes=30, n_channels=3, seed=0)
    >>> dfr = ModularDFR(mask)
    >>> trace = dfr.run(np.random.default_rng(0).normal(size=(8, 50, 3)),
    ...                 A=0.1, B=0.05)
    >>> trace.states.shape
    (8, 51, 30)
    """

    def __init__(self, mask: InputMask, nonlinearity=None, *, backend=None):
        if not isinstance(mask, InputMask):
            mask = InputMask(mask)
        self.mask = mask
        self.nonlinearity: Nonlinearity = (
            Identity() if nonlinearity is None else get_nonlinearity(nonlinearity)
        )
        self.backend: ArrayBackend = resolve_backend(backend)

    @property
    def n_nodes(self) -> int:
        """Number of virtual nodes ``N_x``."""
        return self.mask.n_nodes

    @property
    def n_channels(self) -> int:
        """Number of input channels ``C``."""
        return self.mask.n_channels

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #

    def run(self, u: np.ndarray, A, B, *, backend=None) -> ReservoirTrace:
        """Run the reservoir over a batch, keeping the full state trace.

        Parameters
        ----------
        u:
            Input batch ``(N, T, C)`` (a single ``(T, C)`` sample is also
            accepted).
        A, B:
            The two reservoir parameters of the modular DFR.  Scalars run
            one candidate; length-``K`` vectors sweep K candidates over the
            same batch in one fused program, prepending a candidate axis to
            every trace array.
        backend:
            Per-call override of the reservoir's array backend; the trace
            arrays come back device-resident on that backend.

        Returns
        -------
        ReservoirTrace
        """
        u = as_batch(u)
        A, B, n_cand = _check_params(A, B)
        xb = self.backend if backend is None else resolve_backend(backend)
        j = xb.masked_drive(self.mask, u)  # (N, T, N_x)
        n, t_len, nx = j.shape
        nonlinearity = self.nonlinearity
        stacked = n_cand is not None
        lead = (n_cand, n) if stacked else (n,)

        states = xb.zeros(lead + (t_len + 1, nx))
        pre = xb.empty(lead + (t_len, nx))
        with xb.errstate():
            if isinstance(nonlinearity, Identity) and xb.has_general_lfilter:
                # Identity fast path: on the flat chain t = (k-1) N_x + n the
                # whole trajectory solves ONE linear recurrence
                #   x_t = A j_t + B x_{t-1} + A x_{t-N_x},
                # i.e. a single IIR filter over T*N_x samples per series.
                # The filter coefficients depend on the candidate, so a
                # stacked sweep loops candidates here — each iteration is
                # the identical scalar call (bit-identical rows), and the
                # masked drive above is still shared by all of them.
                j_flat = j.reshape(n, t_len * nx)
                for a_val, b_val, out in (
                    zip(A, B, states) if stacked else ((A, B, states),)
                ):
                    a_poly = np.zeros(nx + 1)
                    a_poly[0] = 1.0
                    a_poly[1] -= b_val
                    a_poly[nx] -= a_val
                    x_flat = xb.lfilter_general([a_val], a_poly, j_flat, axis=-1)
                    out[:, 1:, :] = x_flat.reshape(n, t_len, nx)
                pre[:] = j + states[..., :-1, :]
            else:
                a_mul = xb.asarray(A)[:, None, None] if stacked else A
                b_mul = xb.asarray(B)[:, None] if stacked else B
                for k in range(t_len):
                    s, c, zi = xb.fused_filter_prep(
                        nonlinearity, j[:, k, :], states[..., k, :],
                        a_mul, b_mul)
                    pre[..., k, :] = s
                    if stacked:
                        states[..., k + 1, :] = xb.first_order_filter_stacked(
                            c, B, zi)
                    else:
                        states[..., k + 1, :] = xb.first_order_filter(c, B, zi)
        diverged = _divergence_flags(states.reshape(-1, (t_len + 1) * nx), xb)
        return ReservoirTrace(states=states, pre_activations=pre,
                              diverged=diverged.reshape(lead))

    def run_streaming(
        self, u: np.ndarray, A, B, *, window: int = 1,
        backend=None, resume: Optional[StreamingResult] = None,
    ) -> StreamingResult:
        """Run the reservoir keeping only the last ``window + 1`` states.

        The DPRR accumulators (paper Eqs. 10–11, unnormalized) are updated
        online each step, so the peak reservoir-state storage is
        ``(window + 1) * N_x`` values per sample — the storage regime counted
        by :mod:`repro.memory.accounting` and reported in the paper's
        Table 2.  Vector-valued ``A``/``B`` sweep K candidates at once,
        prepending a candidate axis to every result array (peak storage
        scales with K accordingly).

        ``resume`` continues a previous streaming run: pass the
        :class:`StreamingResult` of the preceding chunk (same ``A``/``B``,
        same batch/candidate layout, same ``window``) and this call picks
        up the state ring, pre-activation ring and DPRR accumulators where
        that chunk left them.  Feeding a series chunk by chunk this way is
        bit-identical to one :meth:`run_streaming` call over the
        concatenated series (pinned by tests) — the seam the serving layer
        (:mod:`repro.serve`) builds its per-stream sessions on.  The
        carried arrays are copied, never mutated, so a caller may retain
        the old result.  When resuming, every chunk must be at least
        ``window`` steps long so all chunks agree on the ring width.

        Returns
        -------
        StreamingResult
        """
        u = as_batch(u)
        A, B, n_cand = _check_params(A, B)
        xb = self.backend if backend is None else resolve_backend(backend)
        j = xb.streaming_masked_drive(self.mask, u)
        n, t_len, nx = j.shape
        nonlinearity = self.nonlinearity
        stacked = n_cand is not None
        lead = (n_cand, n) if stacked else (n,)
        a_mul = xb.asarray(A)[:, None, None] if stacked else A
        b_mul = xb.asarray(B)[:, None] if stacked else B

        if resume is None:
            window = _check_window(window, t_len)
            # ring buffer of the last (window + 1) states, logically ordered
            ring = xb.zeros(lead + (window + 1, nx))
            pre_ring = xb.zeros(lead + (window, nx))
            p_acc = xb.zeros(lead + (nx, nx))
            s_acc = xb.zeros(lead + (nx,))
            n_prev = 0
            carried_diverged = None
        else:
            (window, ring, pre_ring, p_acc, s_acc, n_prev,
             carried_diverged) = _resume_state(xb, resume, window, lead,
                                               t_len, nx)
        with xb.errstate():
            for k in range(t_len):
                x_prev = ring[..., -1, :]
                s, c, zi = xb.fused_filter_prep(
                    nonlinearity, j[:, k, :], x_prev, a_mul, b_mul)
                if stacked:
                    x_new = xb.first_order_filter_stacked(c, B, zi)
                else:
                    x_new = xb.first_order_filter(c, B, zi)
                # DPRR accumulation: P += x(k) x(k-1)^T, s += x(k)
                p_acc += x_new[..., :, np.newaxis] * x_prev[..., np.newaxis, :]
                s_acc += x_new
                ring = xb.roll(ring, -1, axis=-2)
                ring[..., -1, :] = x_new
                pre_ring = xb.roll(pre_ring, -1, axis=-2)
                pre_ring[..., -1, :] = s
        diverged = (
            _divergence_flags(ring.reshape(-1, (window + 1) * nx), xb)
            | _divergence_flags(p_acc.reshape(-1, nx * nx), xb)
        ).reshape(lead)
        if carried_diverged is not None:
            diverged = diverged | carried_diverged
        return StreamingResult(
            window_states=ring,
            window_pre_activations=pre_ring,
            dprr_sums=(p_acc, s_acc),
            diverged=diverged,
            n_steps=n_prev + t_len,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ModularDFR(n_nodes={self.n_nodes}, n_channels={self.n_channels}, "
            f"nonlinearity={self.nonlinearity!r})"
        )


def _check_params(A, B) -> tuple:
    """Normalize ``(A, B)`` to scalars or aligned ``(K,)`` vectors.

    Returns ``(A, B, n_candidates)`` where ``n_candidates`` is ``None`` for
    the scalar (single-candidate) case and the common length ``K`` when
    either parameter is a vector (a scalar partner is broadcast to K).
    """
    if np.ndim(A) == 0 and np.ndim(B) == 0:
        A = float(A)
        B = float(B)
        if not np.isfinite(A) or not np.isfinite(B):
            raise ValueError(f"A and B must be finite, got A={A!r}, B={B!r}")
        return A, B, None
    A = np.atleast_1d(np.asarray(A, dtype=np.float64))
    B = np.atleast_1d(np.asarray(B, dtype=np.float64))
    if A.ndim != 1 or B.ndim != 1:
        raise ValueError(
            f"vector A and B must be 1-D candidate lists, got shapes "
            f"{A.shape} and {B.shape}"
        )
    try:
        A, B = np.broadcast_arrays(A, B)
    except ValueError:
        raise ValueError(
            f"A and B candidate vectors must have matching lengths, got "
            f"{A.shape[0]} and {B.shape[0]}"
        ) from None
    A = np.ascontiguousarray(A)
    B = np.ascontiguousarray(B)
    if not (np.isfinite(A).all() and np.isfinite(B).all()):
        raise ValueError("all A and B candidates must be finite")
    return A, B, A.shape[0]


def _resume_state(xb, resume: StreamingResult, window: int, lead: tuple,
                  t_len: int, nx: int):
    """Unpack a carried :class:`StreamingResult` into fresh working state.

    Every carried array is copied onto the executing backend, so the caller
    may keep (or re-use) the old result; accumulator updates never alias it.
    """
    if not isinstance(resume, StreamingResult):
        raise TypeError(
            f"resume must be a StreamingResult from a previous "
            f"run_streaming call, got {type(resume).__name__}"
        )
    if resume.dprr_sums is None:
        raise ValueError(
            "resume result carries no DPRR accumulators (it was sliced from "
            "a full trace); resume only from a run_streaming result"
        )
    window = _check_window(window, t_len + resume.n_steps)
    if resume.window != window:
        raise ValueError(
            f"resume window mismatch: the carried state has window "
            f"{resume.window} but this chunk resolves to {window}; keep "
            f"window <= every chunk length so all chunks agree"
        )
    ring = _copy_array(xb.asarray(resume.window_states))
    expected = tuple(lead) + (window + 1, nx)
    if tuple(ring.shape) != expected:
        raise ValueError(
            f"carried window_states have shape "
            f"{tuple(resume.window_states.shape)}, expected {expected} — a "
            f"resumed chunk must keep the batch/candidate layout of the "
            f"carried stream"
        )
    pre_ring = _copy_array(xb.asarray(resume.window_pre_activations))
    p_acc = _copy_array(xb.asarray(resume.dprr_sums[0]))
    s_acc = _copy_array(xb.asarray(resume.dprr_sums[1]))
    carried_diverged = np.asarray(resume.diverged, dtype=bool)
    return (window, ring, pre_ring, p_acc, s_acc, resume.n_steps,
            carried_diverged)


def _divergence_flags(flat_per_sample, backend=None) -> np.ndarray:
    """Per-sample flag: any non-finite or astronomically large value.

    Always returns a NumPy boolean array, whatever backend produced the
    states — divergence flags are control flow, not hot-path data.
    """
    xb = resolve_backend(backend)
    # over="ignore": the limit itself overflows to inf when cast to a
    # float32 array's dtype, which still compares correctly (non-finite
    # values are caught by the isfinite term)
    with np.errstate(invalid="ignore", over="ignore"):
        bad = ~xb.isfinite(flat_per_sample) | (
            xb.abs(flat_per_sample) > _DIVERGENCE_LIMIT
        )
    # boundary conversion: divergence flags are control flow by contract,
    # so this crossing is booked as boundary_to_host — the serving layer's
    # residency assertion (zero plain to_host per tick) stays clean
    return xb.to_numpy_boundary(xb.any(bad, axis=1)).astype(bool, copy=False)
