"""Nonlinearity library for the modular DFR.

The modular DFR model (Ikeda et al., Eq. 13) writes each virtual-node update
as

.. math::

    x(k)_n = A \\cdot f\\bigl(j(k)_n + x(k-1)_n\\bigr) + B \\cdot x(k)_{n-1},

where the "one-input one-output" block :math:`f` carries a constant
multiplication parameter :math:`A` (paper Sec. 3.3).  We factor that constant
out and implement the *shape* :math:`\\varphi` of the nonlinearity, i.e.
:math:`f(s) = A\\,\\varphi(s)`, because backpropagation needs

* :math:`\\partial f/\\partial s = A\\,\\varphi'(s)` for the state gradient
  (paper Eq. 29), and
* :math:`\\partial f/\\partial A = \\varphi(s)` for the parameter gradient
  (paper Eq. 28).

Each :class:`Nonlinearity` therefore exposes :meth:`phi` and :meth:`dphi`,
both vectorized over numpy arrays.

The paper's evaluation (Sec. 4) uses the identity, :math:`f(x) = A x`.  The
other shapes here demonstrate the modular DFR's design flexibility (its main
selling point) and feed the nonlinearity ablation bench; the Mackey–Glass
shape additionally realizes the classic analog/digital DFR of Appeltant et
al. exactly (see :mod:`repro.reservoir.digital`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Nonlinearity",
    "Identity",
    "Tanh",
    "Sine",
    "MackeyGlass",
    "SaturatingLinear",
    "get_nonlinearity",
    "NONLINEARITIES",
]


class Nonlinearity:
    """Base class: a differentiable one-input, one-output shape function."""

    #: short registry name, overridden by subclasses
    name = "base"

    def phi(self, s: np.ndarray) -> np.ndarray:
        """Evaluate the shape function element-wise."""
        raise NotImplementedError

    def dphi(self, s: np.ndarray) -> np.ndarray:
        """Evaluate the derivative of the shape function element-wise."""
        raise NotImplementedError

    #: True when ``|phi(s)|`` is bounded for all real ``s`` — bounded shapes
    #: cannot diverge no matter how ``A`` and ``B`` are chosen inside (0, 1).
    bounded = False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class Identity(Nonlinearity):
    """The paper's evaluation default: ``f(x) = A x`` (phi is the identity)."""

    name = "identity"

    def phi(self, s: np.ndarray) -> np.ndarray:
        return np.asarray(s, dtype=np.float64)

    def dphi(self, s: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(s, dtype=np.float64))


class Tanh(Nonlinearity):
    """Hyperbolic tangent shape, the standard echo-state-network choice."""

    name = "tanh"
    bounded = True

    def phi(self, s: np.ndarray) -> np.ndarray:
        return np.tanh(s)

    def dphi(self, s: np.ndarray) -> np.ndarray:
        t = np.tanh(s)
        return 1.0 - t * t


class Sine(Nonlinearity):
    """Sinusoidal shape ``phi(s) = sin(omega * s)``.

    Sinusoidal nonlinearities arise in optoelectronic DFRs (Mach–Zehnder
    modulators, Larger et al. 2012).
    """

    name = "sine"
    bounded = True

    def __init__(self, omega: float = 1.0):
        if not np.isfinite(omega) or omega == 0.0:
            raise ValueError(f"omega must be finite and non-zero, got {omega!r}")
        self.omega = float(omega)

    def phi(self, s: np.ndarray) -> np.ndarray:
        return np.sin(self.omega * np.asarray(s, dtype=np.float64))

    def dphi(self, s: np.ndarray) -> np.ndarray:
        return self.omega * np.cos(self.omega * np.asarray(s, dtype=np.float64))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Sine(omega={self.omega})"


class MackeyGlass(Nonlinearity):
    """Mackey–Glass shape ``phi(s) = s / (1 + |s|^p)``.

    The classical Mackey–Glass nonlinearity (paper Eq. 3) is
    ``s / (1 + s^p)``; for non-integer or even ``p`` the textbook form is
    ill-defined (or non-monotone in sign) for negative ``s``, so we use the
    odd-symmetric extension with ``|s|^p``, which coincides with the textbook
    form for ``s >= 0`` and keeps the block a bounded, sign-preserving
    saturation for all real inputs.  This is the behaviour analog DFR
    electronics actually exhibit.
    """

    name = "mackey-glass"
    bounded = True

    def __init__(self, p: float = 2.0):
        if not np.isfinite(p) or p < 1.0:
            raise ValueError(f"p must be finite and >= 1, got {p!r}")
        self.p = float(p)

    def phi(self, s: np.ndarray) -> np.ndarray:
        s = np.asarray(s, dtype=np.float64)
        return s / (1.0 + np.abs(s) ** self.p)

    def dphi(self, s: np.ndarray) -> np.ndarray:
        s = np.asarray(s, dtype=np.float64)
        a = np.abs(s) ** self.p
        denom = (1.0 + a) ** 2
        return (1.0 + (1.0 - self.p) * a) / denom

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MackeyGlass(p={self.p})"


class SaturatingLinear(Nonlinearity):
    """Hard-clipped identity: linear in ``[-limit, limit]``, saturated outside.

    This is the cheapest hardware-friendly bounded block (a comparator pair);
    its derivative is 1 inside the linear region and 0 in saturation.
    """

    name = "sat-linear"
    bounded = True

    def __init__(self, limit: float = 1.0):
        if not np.isfinite(limit) or limit <= 0.0:
            raise ValueError(f"limit must be finite and positive, got {limit!r}")
        self.limit = float(limit)

    def phi(self, s: np.ndarray) -> np.ndarray:
        return np.clip(s, -self.limit, self.limit)

    def dphi(self, s: np.ndarray) -> np.ndarray:
        s = np.asarray(s, dtype=np.float64)
        return (np.abs(s) <= self.limit).astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SaturatingLinear(limit={self.limit})"


#: registry of default-constructed nonlinearities, keyed by name
NONLINEARITIES = {
    Identity.name: Identity,
    Tanh.name: Tanh,
    Sine.name: Sine,
    MackeyGlass.name: MackeyGlass,
    SaturatingLinear.name: SaturatingLinear,
}


def get_nonlinearity(spec) -> Nonlinearity:
    """Resolve ``spec`` into a :class:`Nonlinearity` instance.

    ``spec`` may already be an instance (returned unchanged) or a registry
    name such as ``"identity"`` or ``"mackey-glass"``.
    """
    if isinstance(spec, Nonlinearity):
        return spec
    if isinstance(spec, str):
        try:
            return NONLINEARITIES[spec]()
        except KeyError:
            known = ", ".join(sorted(NONLINEARITIES))
            raise ValueError(f"unknown nonlinearity {spec!r}; known: {known}") from None
    raise TypeError(
        f"nonlinearity must be a Nonlinearity or a name, got {type(spec).__name__}"
    )
