"""Deterministic per-candidate seed derivation for sharded searches.

Parallel candidate evaluation must not let the *scheduling* of work change
any result: a candidate's holdout split (and any other stochastic choice
inside :func:`~repro.core.pipeline.evaluate_fixed_params`) has to depend
only on the search's base seed and the candidate's position in the
submission — never on which worker picks it up, in what order, or how many
workers exist.

The derivation uses :class:`numpy.random.SeedSequence` with the candidate
index as the ``spawn_key``, i.e. the same splitting mechanism
``Generator.spawn`` uses internally: children are statistically independent
of each other and of the parent stream, and the mapping
``(base_seed, index) -> seed`` is a pure function.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["derive_candidate_seed", "derive_candidate_seeds"]


def derive_candidate_seed(base_seed: int, index: int) -> int:
    """Derive the seed for candidate ``index`` from a search-level base seed.

    Pure in ``(base_seed, index)``: the result does not depend on how many
    candidates exist, how they are chunked across workers, or in which
    order they are evaluated.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    ss = np.random.SeedSequence(int(base_seed), spawn_key=(int(index),))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def derive_candidate_seeds(base_seed: int, n: int) -> List[int]:
    """Vector form of :func:`derive_candidate_seed` for indices ``0..n-1``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [derive_candidate_seed(base_seed, i) for i in range(n)]
