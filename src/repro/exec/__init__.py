"""Unified candidate-execution layer for the ``(A, B)`` searches.

Every baseline search in this repo (grid, random, annealing) scores
independent ``(A, B)`` candidates through the identical
:func:`~repro.core.pipeline.evaluate_fixed_params` protocol.  This package
is the single seam those searches submit work through:

* :class:`Candidate` / :class:`EvaluationContext` — a picklable description
  of one point and of everything needed to score it;
* :class:`SerialExecutor` / :class:`MultiprocessExecutor` — in-process and
  process-pool execution with identical (bit-for-bit) results;
* :func:`derive_candidate_seed` — spawn-key seed splitting, so per-candidate
  randomness never depends on worker count or scheduling;
* :func:`make_executor` / :func:`resolve_workers` — the ``workers`` /
  ``REPRO_WORKERS`` knob shared by the classifier, the searches, and the
  ``repro-bench`` CLI.
"""

from repro.exec.context import (
    Candidate,
    CandidateResult,
    EvaluationContext,
    SubmissionReport,
    evaluate_candidate,
)
from repro.exec.executors import (
    WORKERS_ENV_VAR,
    CandidateExecutor,
    MultiprocessExecutor,
    SerialExecutor,
    make_executor,
    resolve_workers,
)
from repro.exec.seeding import derive_candidate_seed, derive_candidate_seeds

__all__ = [
    "Candidate",
    "CandidateResult",
    "EvaluationContext",
    "SubmissionReport",
    "evaluate_candidate",
    "CandidateExecutor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "WORKERS_ENV_VAR",
    "make_executor",
    "resolve_workers",
    "derive_candidate_seed",
    "derive_candidate_seeds",
]
