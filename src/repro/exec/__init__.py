"""Unified candidate-execution layer for the ``(A, B)`` searches.

Every baseline search in this repo (grid, random, annealing) scores
independent ``(A, B)`` candidates through the identical
:func:`~repro.core.pipeline.evaluate_fixed_params` protocol.  This package
is the single seam those searches submit work through:

* :class:`Candidate` / :class:`EvaluationContext` — a picklable description
  of one point and of everything needed to score it;
* :class:`SerialExecutor` / :class:`MultiprocessExecutor` — in-process and
  process-pool execution with identical (bit-for-bit) results;
* :class:`BackendExecutor` — in-process, device-resident evaluation on a
  :mod:`repro.backend` array backend (GPU-scale sweeps through the same
  context/candidate protocol; ``backend="numpy"`` is bit-identical to
  :class:`SerialExecutor`);
* :class:`VectorizedExecutor` — candidate-axis fusion: blocks of K
  candidates run as ONE stacked ``(K, N, ...)`` array program instead of K
  dispatches, bit-identical to :class:`SerialExecutor` on NumPy and fully
  device-resident on an accelerator backend;
* :func:`derive_candidate_seed` — spawn-key seed splitting, so per-candidate
  randomness never depends on worker count or scheduling;
* :func:`make_executor` / :func:`resolve_workers` — the ``workers`` /
  ``REPRO_WORKERS`` knob (plus the ``backend`` spec, the ``REPRO_EXECUTOR``
  kind override, and the ``candidate_block_size`` /
  ``REPRO_CANDIDATE_BLOCK_SIZE`` fusion knob) shared by the classifier,
  the searches, and the ``repro-bench`` CLI.

See ``docs/ARCHITECTURE.md`` for how this seam relates to the
:class:`~repro.backend.ArrayBackend` seam one layer below it.
"""

from repro.exec.context import (
    Candidate,
    CandidateResult,
    EvaluationContext,
    SubmissionReport,
    evaluate_candidate,
)
from repro.exec.executors import (
    BLOCK_SIZE_ENV_VAR,
    DEFAULT_CANDIDATE_BLOCK_SIZE,
    DEFAULT_MAX_RETRIES,
    DEFAULT_RETRY_BACKOFF_MS,
    EXECUTOR_ENV_VAR,
    MAX_RETRIES_ENV_VAR,
    RETRY_BACKOFF_ENV_VAR,
    TASK_TIMEOUT_ENV_VAR,
    WORKERS_ENV_VAR,
    BackendExecutor,
    CandidateExecutor,
    MultiprocessExecutor,
    SerialExecutor,
    VectorizedExecutor,
    make_executor,
    resolve_candidate_block_size,
    resolve_executor_kind,
    resolve_max_retries,
    resolve_retry_backoff_ms,
    resolve_task_timeout_ms,
    resolve_workers,
)
from repro.exec.seeding import derive_candidate_seed, derive_candidate_seeds

__all__ = [
    "Candidate",
    "CandidateResult",
    "EvaluationContext",
    "SubmissionReport",
    "evaluate_candidate",
    "CandidateExecutor",
    "SerialExecutor",
    "BackendExecutor",
    "MultiprocessExecutor",
    "VectorizedExecutor",
    "WORKERS_ENV_VAR",
    "EXECUTOR_ENV_VAR",
    "BLOCK_SIZE_ENV_VAR",
    "MAX_RETRIES_ENV_VAR",
    "RETRY_BACKOFF_ENV_VAR",
    "TASK_TIMEOUT_ENV_VAR",
    "DEFAULT_CANDIDATE_BLOCK_SIZE",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_BACKOFF_MS",
    "make_executor",
    "resolve_executor_kind",
    "resolve_candidate_block_size",
    "resolve_max_retries",
    "resolve_retry_backoff_ms",
    "resolve_task_timeout_ms",
    "resolve_workers",
    "derive_candidate_seed",
    "derive_candidate_seeds",
]
