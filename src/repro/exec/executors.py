"""Pluggable candidate executors: serial, process-pool, backend, vectorized.

Every ``(A, B)`` candidate of the baseline searches (grid, random,
annealing) is an independent reservoir sweep, so there are three natural
scaling axes: candidate-level parallelism across *processes*
(:class:`MultiprocessExecutor`), device-resident evaluation on an
accelerator *array backend* (:class:`BackendExecutor`, backed by
:mod:`repro.backend`), and candidate-axis *vectorization*
(:class:`VectorizedExecutor`), which packs a block of K candidates into
one fused array program — the candidate axis stacked next to the sample
axis — instead of K independent dispatches.
:class:`CandidateExecutor` is the seam all search layers submit through,
so the axes compose with the searches unchanged.

Guarantees shared by all executors:

* **determinism** — results are returned in candidate order, and each
  candidate's evaluation depends only on the context and the candidate
  (explicit or spawn-key-derived seed), never on worker count, block size,
  or schedule;
* **fault isolation** — a candidate whose evaluation raises is returned as
  a failed :class:`~repro.exec.context.CandidateResult` instead of killing
  the submission (row-wise inside a vectorized block);
* **two timing views** — wall-clock of the whole submission plus summed
  per-candidate compute seconds, so realized speedup is measurable.

The two axes also *stack*: ``executor_kind="multiprocess+vectorized"``
shards candidates across worker processes whose workers each evaluate
fused candidate-axis blocks — ``REPRO_WORKERS`` composing with
``REPRO_CANDIDATE_BLOCK_SIZE``.

Worker selection: an explicit ``workers`` argument wins; ``None`` falls
back to the ``REPRO_WORKERS`` environment variable; absent both, execution
is serial.  The ``REPRO_EXECUTOR`` variable force-selects an executor
*kind* (``serial`` / ``vectorized`` / ``multiprocess`` /
``multiprocess+vectorized``) the same way — this is how CI routes the
whole test suite through the multiprocess, vectorized, and two-level
paths — and ``REPRO_CANDIDATE_BLOCK_SIZE`` tunes the fused block size of
the vectorized executor (standalone or inside workers).

Supervision: :class:`MultiprocessExecutor` runs every submission under a
supervision loop — per-dispatch heartbeat, optional per-task timeout
(``REPRO_TASK_TIMEOUT_MS``), dead-worker detection with pool rebuild, and
bounded retry with exponential backoff (``REPRO_MAX_RETRIES`` /
``REPRO_RETRY_BACKOFF_MS``).  Lost or transiently failed work units are
re-dispatched through the same per-candidate seed derivation, so a
recovered run is bit-identical to a fault-free one on NumPy; a unit that
keeps failing resolves to failed :class:`CandidateResult` records (the
``failed()`` sentinel downstream) instead of sinking the search.
"""

from __future__ import annotations

import atexit
import math
import os
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.exec.context import (
    Candidate,
    CandidateResult,
    EvaluationContext,
    SubmissionReport,
    evaluate_candidate,
)
from repro.faults import FaultInjected
from repro import faults

__all__ = [
    "CandidateExecutor",
    "SerialExecutor",
    "BackendExecutor",
    "MultiprocessExecutor",
    "VectorizedExecutor",
    "WORKERS_ENV_VAR",
    "EXECUTOR_ENV_VAR",
    "BLOCK_SIZE_ENV_VAR",
    "MAX_RETRIES_ENV_VAR",
    "RETRY_BACKOFF_ENV_VAR",
    "TASK_TIMEOUT_ENV_VAR",
    "DEFAULT_CANDIDATE_BLOCK_SIZE",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_BACKOFF_MS",
    "resolve_workers",
    "resolve_executor_kind",
    "resolve_candidate_block_size",
    "resolve_max_retries",
    "resolve_retry_backoff_ms",
    "resolve_task_timeout_ms",
    "make_executor",
]

#: environment variable consulted when no explicit worker count is given
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: environment variable force-selecting an executor kind for
#: default-constructed searches ("serial", "vectorized", "multiprocess")
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: environment variable tuning the vectorized executor's fused block size
BLOCK_SIZE_ENV_VAR = "REPRO_CANDIDATE_BLOCK_SIZE"

#: environment variable bounding re-dispatch attempts per work unit
MAX_RETRIES_ENV_VAR = "REPRO_MAX_RETRIES"

#: environment variable tuning the base retry backoff (milliseconds)
RETRY_BACKOFF_ENV_VAR = "REPRO_RETRY_BACKOFF_MS"

#: environment variable enabling a per-task timeout (milliseconds, 0 = off)
TASK_TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT_MS"

#: default bounded-retry budget per work unit before the failed() sentinel
DEFAULT_MAX_RETRIES = 3

#: default base backoff between re-dispatches (doubles per attempt)
DEFAULT_RETRY_BACKOFF_MS = 10.0

#: default candidates per fused block: large enough to amortize the shared
#: standardize/mask phase, small enough that a block's stacked trace
#: (K x N x (T+1) x N_x doubles) stays comfortably in memory
DEFAULT_CANDIDATE_BLOCK_SIZE = 16

_EXECUTOR_KINDS = ("serial", "vectorized", "multiprocess",
                   "multiprocess+vectorized")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count (>= 1).

    Explicit ``workers`` wins; ``None`` consults ``REPRO_WORKERS``; an
    unset/invalid variable means serial.  Values below 1 clamp to 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(1, int(workers))


def resolve_executor_kind(kind: Optional[str] = None) -> Optional[str]:
    """Resolve an executor-kind override (explicit wins over the env).

    ``None`` consults ``REPRO_EXECUTOR``; unset/empty means no override
    (the default ``workers``/``backend`` resolution applies).  Anything
    other than ``serial``, ``vectorized`` or ``multiprocess`` raises.
    """
    if kind is None:
        kind = os.environ.get(EXECUTOR_ENV_VAR, "").strip() or None
        if kind is None:
            return None
    kind = str(kind).strip().lower()
    # "vectorized+multiprocess" is accepted as the same composition
    if kind == "vectorized+multiprocess":
        kind = "multiprocess+vectorized"
    if kind not in _EXECUTOR_KINDS:
        raise ValueError(
            f"executor kind must be one of {_EXECUTOR_KINDS}, got {kind!r}"
        )
    return kind


def resolve_candidate_block_size(block_size: Optional[int] = None) -> int:
    """Resolve the vectorized executor's fused block size (>= 1).

    Explicit ``block_size`` wins; ``None`` consults
    ``REPRO_CANDIDATE_BLOCK_SIZE``; absent/invalid both, the default of
    ``DEFAULT_CANDIDATE_BLOCK_SIZE`` applies.
    """
    if block_size is None:
        raw = os.environ.get(BLOCK_SIZE_ENV_VAR, "").strip()
        try:
            block_size = int(raw) if raw else DEFAULT_CANDIDATE_BLOCK_SIZE
        except ValueError:
            block_size = DEFAULT_CANDIDATE_BLOCK_SIZE
        # env values are best-effort fleet-wide hints: anything invalid
        # (non-numeric or < 1) falls back to the default rather than
        # raising in every default-constructed search
        return block_size if block_size >= 1 else DEFAULT_CANDIDATE_BLOCK_SIZE
    block_size = int(block_size)
    if block_size < 1:
        raise ValueError(f"candidate block size must be >= 1, got {block_size}")
    return block_size


def _resolve_env_number(raw: str, default: float) -> float:
    try:
        value = float(raw) if raw.strip() else default
    except ValueError:
        return default
    return value if value >= 0 else default


def resolve_max_retries(max_retries: Optional[int] = None) -> int:
    """Resolve the bounded-retry budget per work unit (>= 0).

    Explicit ``max_retries`` wins; ``None`` consults ``REPRO_MAX_RETRIES``;
    absent/invalid both, ``DEFAULT_MAX_RETRIES`` applies.  ``0`` disables
    retries (a lost unit fails immediately).
    """
    if max_retries is None:
        return int(_resolve_env_number(
            os.environ.get(MAX_RETRIES_ENV_VAR, ""), DEFAULT_MAX_RETRIES))
    max_retries = int(max_retries)
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    return max_retries


def resolve_retry_backoff_ms(backoff_ms: Optional[float] = None) -> float:
    """Resolve the base retry backoff in milliseconds (>= 0)."""
    if backoff_ms is None:
        return _resolve_env_number(
            os.environ.get(RETRY_BACKOFF_ENV_VAR, ""), DEFAULT_RETRY_BACKOFF_MS)
    backoff_ms = float(backoff_ms)
    if not (backoff_ms >= 0):
        raise ValueError(f"backoff_ms must be >= 0, got {backoff_ms}")
    return backoff_ms


def resolve_task_timeout_ms(timeout_ms: Optional[float] = None) -> float:
    """Resolve the per-task timeout in milliseconds (0 disables it)."""
    if timeout_ms is None:
        return _resolve_env_number(
            os.environ.get(TASK_TIMEOUT_ENV_VAR, ""), 0.0)
    timeout_ms = float(timeout_ms)
    if not (timeout_ms >= 0):
        raise ValueError(f"timeout_ms must be >= 0, got {timeout_ms}")
    return timeout_ms


class CandidateExecutor:
    """Protocol: map an :class:`EvaluationContext` over candidates.

    Implementations must return one :class:`CandidateResult` per candidate,
    in submission order, and must not propagate per-candidate exceptions.
    """

    #: effective worker count (1 for serial executors)
    workers: int = 1
    #: array-backend spec stamped onto submitted contexts (None: untouched)
    backend_spec: Optional[str] = None
    #: whether submitting a whole batch at once buys this executor anything
    #: (process-level overlap, or candidate-axis fusion).  Speculative
    #: annealing keys its lazy-vs-eager decision on this: executors that
    #: evaluate candidates one by one anyway (serial, backend) are handed
    #: proposals lazily so nothing is wasted, while batch-preferring
    #: executors receive the whole speculative batch eagerly and the
    #: discarded tail is counted as real (wasted) evaluations.
    prefers_batch: bool = False

    def _apply_backend(self, context: EvaluationContext) -> EvaluationContext:
        """Stamp :attr:`backend_spec` onto ``context`` (cached per source).

        The retargeted copy is cached by source-context identity so that
        repeated submissions of one context — annealing rounds, the levels
        of a recursive grid — keep hitting the same object (extractor reuse
        in-process, pool reuse across processes).
        """
        if self.backend_spec is None or context.backend == self.backend_spec:
            return context
        if getattr(self, "_retarget_source", None) is not context:
            self._retargeted = replace(context, backend=self.backend_spec)
            self._retarget_source = context
        return self._retargeted

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (worker processes); idempotent."""

    def __enter__(self) -> "CandidateExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(workers={self.workers})"


# Executors holding worker pools register here so an interrupted search
# (KeyboardInterrupt, sys.exit mid-run) cannot leak worker processes: the
# atexit sweep closes whatever is still alive at interpreter shutdown.
_LIVE_EXECUTORS: "weakref.WeakSet[CandidateExecutor]" = weakref.WeakSet()


@atexit.register
def _close_live_executors() -> None:
    for executor in list(_LIVE_EXECUTORS):
        try:
            executor.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def _run_serially(context: EvaluationContext,
                  candidates: Sequence[Candidate]) -> List[CandidateResult]:
    return [evaluate_candidate(context, c) for c in candidates]


class SerialExecutor(CandidateExecutor):
    """In-process sequential evaluation (the reference implementation)."""

    workers = 1

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        results = _run_serially(context, candidates)
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
        )


class BackendExecutor(CandidateExecutor):
    """In-process evaluation on a chosen array backend (device-resident).

    Candidates are scored sequentially in this process, but every reservoir
    sweep and DPRR contraction of every candidate runs on the given
    :mod:`repro.backend` backend — this is the execution mode for a single
    accelerator, where one GPU evaluating dense batched sweeps replaces a
    pool of CPU workers.  The override travels as a *spec string* on the
    submission context, so it composes with the searches unchanged and
    (being picklable) also survives a trip into worker processes.

    Parameters
    ----------
    backend:
        Backend spec (``"torch"``, ``"torch:cuda:1"``, ``"cupy"``,
        ``"numpy"``); ``None`` defers to ``REPRO_BACKEND``.  The spec is
        resolved eagerly, so requesting an uninstalled backend fails at
        construction time, not mid-search.

    With ``backend="numpy"`` this is bit-identical to
    :class:`SerialExecutor` (pinned by ``tests/test_backend.py``).
    """

    workers = 1

    def __init__(self, backend: Optional[str] = None):
        from repro.backend import BACKEND_ENV_VAR, resolve_backend

        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
        #: spec applied to submitted contexts; None means no override
        self.backend_spec = backend
        #: resolved backend (eager, so a missing library fails here)
        self.backend = resolve_backend(backend)

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        results = _run_serially(self._apply_backend(context), candidates)
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BackendExecutor(backend={self.backend.name!r})"


class VectorizedExecutor(CandidateExecutor):
    """Fuse blocks of K candidates into one stacked array program.

    Candidates are chunked into blocks of ``block_size`` and each block is
    evaluated by a *single* reservoir/DPRR sweep with the candidate axis
    stacked in front of the sample axis
    (:meth:`~repro.exec.context.EvaluationContext.evaluate_block`): the
    standardizer, the mask drive, and every batched contraction are shared
    by the whole block instead of being redone per candidate, and on an
    accelerator backend the block is one resident ``(K, N, ...)`` program
    instead of K kernel dispatches.  On the NumPy backend results are
    bit-identical to :class:`SerialExecutor` (pinned by tests).

    Fault isolation is row-wise, and every failure funnels through the
    ordinary serial path so failure *records* match serial execution bit
    for bit: a candidate with non-finite parameters is scored serially up
    front, a candidate whose per-candidate scoring raises inside the block
    is re-scored serially (its row only — a deterministic failure
    reproduces the exact serial record, a transient one recovers), and a
    block whose fused sweep fails outright falls back to serial evaluation
    of all its candidates.

    Parameters
    ----------
    block_size:
        Candidates fused per sweep; ``None`` resolves through
        ``REPRO_CANDIDATE_BLOCK_SIZE`` (default
        ``DEFAULT_CANDIDATE_BLOCK_SIZE``).  Peak trace memory scales
        linearly with the block size.
    backend:
        Optional array-backend spec stamped onto submitted contexts
        (resolved eagerly, so an uninstalled backend fails at construction
        time); ``None`` leaves the context's own backend in place.
    """

    workers = 1
    prefers_batch = True

    def __init__(self, block_size: Optional[int] = None,
                 backend: Optional[str] = None):
        self.block_size = resolve_candidate_block_size(block_size)
        self.backend_spec = backend
        if backend is not None:
            from repro.backend import resolve_backend

            resolve_backend(backend)

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        context = self._apply_backend(context)
        results: List[Optional[CandidateResult]] = [None] * len(candidates)
        fusable = []
        for pos, candidate in enumerate(candidates):
            if math.isfinite(candidate.A) and math.isfinite(candidate.B):
                fusable.append((pos, candidate))
            else:
                # non-finite parameters would poison the whole stacked
                # sweep; score them serially so they fail exactly as they
                # would under the serial executor
                results[pos] = evaluate_candidate(context, candidate)
        for lo in range(0, len(fusable), self.block_size):
            chunk = fusable[lo:lo + self.block_size]
            block = [candidate for _, candidate in chunk]
            t0 = time.perf_counter()
            try:
                evaluations = context.evaluate_block(block)
            except Exception:
                # a failed fused sweep must not cost any results: evaluate
                # the block's candidates the ordinary serial way instead
                for pos, candidate in chunk:
                    results[pos] = evaluate_candidate(context, candidate)
                continue
            per_candidate = (time.perf_counter() - t0) / len(chunk)
            for (pos, candidate), evaluation in zip(chunk, evaluations):
                if faults.should_corrupt_row(candidate.index):
                    # injected corruption: the fused row cannot be trusted,
                    # so recover it through the same serial re-score path a
                    # genuinely bad row takes — bit-identical by design
                    results[pos] = evaluate_candidate(context, candidate)
                elif evaluation.error is not None:
                    # a row whose scoring raised inside the block is
                    # re-scored through the ordinary serial path: a
                    # deterministic failure reproduces the exact serial
                    # failure record (traceback and all, keeping the
                    # bit-parity invariant for failures too), a transient
                    # one simply recovers
                    results[pos] = evaluate_candidate(context, candidate)
                else:
                    results[pos] = CandidateResult(
                        candidate=candidate, evaluation=evaluation,
                        compute_seconds=per_candidate,
                    )
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"VectorizedExecutor(block_size={self.block_size})"


# module-level worker state: the context is shipped once per worker via the
# pool initializer instead of once per candidate
_WORKER_CONTEXT: Optional[EvaluationContext] = None
#: in-worker vectorized executor for two-level fusion (None: plain mapping)
_WORKER_VECTORIZED: Optional["VectorizedExecutor"] = None


def _init_worker(context: EvaluationContext,
                 vectorized_block_size: Optional[int] = None) -> None:
    global _WORKER_CONTEXT, _WORKER_VECTORIZED
    _WORKER_CONTEXT = context
    _WORKER_VECTORIZED = (
        None if vectorized_block_size is None
        else VectorizedExecutor(block_size=vectorized_block_size)
    )


def _worker_evaluate_many(task) -> List[CandidateResult]:
    """Evaluate one dispatch group of candidates in a worker process.

    ``task`` is ``(candidates, attempt)``: the attempt number travels with
    the group so the fault seam — consulted per candidate *before*
    evaluation — stops firing once a re-dispatched group has outlived a
    fault's ``times`` budget.  Ordinary evaluation failures are captured
    by :func:`evaluate_candidate` (data, not infrastructure); only
    injected/transient faults propagate out of this wrapper.
    """
    candidates, attempt = task
    out = []
    for candidate in candidates:
        faults.on_worker_candidate(candidate.index, attempt)
        out.append(evaluate_candidate(_WORKER_CONTEXT, candidate))
    return out


def _worker_evaluate_block(task) -> List[CandidateResult]:
    """Two-level fusion: one worker dispatch evaluates a fused block.

    The in-worker :class:`VectorizedExecutor` runs the block as one stacked
    candidate-axis sweep against the worker-resident context; its row-wise
    fault isolation means a bad candidate fails alone here exactly as it
    would in-process.  ``task`` is ``(candidates, attempt)`` exactly as in
    :func:`_worker_evaluate_many`.
    """
    candidates, attempt = task
    for candidate in candidates:
        faults.on_worker_candidate(candidate.index, attempt)
    return list(_WORKER_VECTORIZED.run(_WORKER_CONTEXT, candidates).results)


class MultiprocessExecutor(CandidateExecutor):
    """Shard candidates across a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    workers:
        Process count; ``None`` resolves through ``REPRO_WORKERS``.
    chunksize:
        Candidates per dispatch *group*; ``None`` picks
        ``ceil(n / (4 * workers))`` — small enough to balance load, large
        enough to amortize IPC.  The group is both the IPC unit and the
        retry / re-dispatch unit of the supervision loop.  Under two-level
        fusion the group is one fused *block* (the block is already the
        IPC granularity).
    vectorized_block_size:
        Two-level fusion (``executor_kind="multiprocess+vectorized"``):
        when set, each worker evaluates its share as fused
        :class:`VectorizedExecutor` blocks of this many candidates —
        process sharding across cores *and* candidate-axis fusion within
        each process (``REPRO_WORKERS`` composes with
        ``REPRO_CANDIDATE_BLOCK_SIZE``).  Results stay bit-identical to
        serial execution on NumPy: both levels preserve candidate order
        and the vectorized level is itself bit-identical to serial.
        ``None`` (default) maps plain per-candidate evaluation.
    max_retries:
        Bounded retry budget per dispatch group; ``None`` resolves through
        ``REPRO_MAX_RETRIES`` (default ``DEFAULT_MAX_RETRIES``).  A group
        still failing after the budget resolves to failed
        :class:`CandidateResult` records — the ``failed()`` sentinel
        downstream — instead of sinking (or hanging) the search.
    backoff_ms:
        Base pause before a re-dispatch, doubling per attempt (capped at
        1 s); ``None`` resolves through ``REPRO_RETRY_BACKOFF_MS``.
    task_timeout_ms:
        Per-dispatch-group timeout; ``None`` resolves through
        ``REPRO_TASK_TIMEOUT_MS``, ``0`` (the default) disables it.  An
        overdue group's worker processes are terminated — wedged-worker
        recovery — and the group re-dispatches like any other lost unit.
    heartbeat_ms:
        Supervision wake interval while dispatches are in flight (only
        consulted when a task timeout is set).

    The context (data arrays + extractor config) is pickled once per worker
    through the pool initializer; each candidate then costs only a few
    floats of IPC.  The pool persists across :meth:`run` calls that submit
    the *same* context object (e.g. every speculative-annealing round, or
    all levels of one ``search_until``), so repeated submissions pay the
    process spawn and context transfer once.  Submitting a different
    context replaces the pool.  Single-candidate submissions with no live
    pool are evaluated in-process.

    **Supervision.**  Every dispatch group is submitted as a future and
    watched with a heartbeat.  A hard worker crash breaks the pool: all
    in-flight groups are marked lost, the pool is rebuilt, and the lost
    groups re-dispatch (``SubmissionReport.redispatches``).  A transient
    in-worker failure — :class:`~repro.faults.FaultInjected` from the
    fault seam, or any unexpected wrapper exception — retries the same
    way (``SubmissionReport.retries``), with exponential backoff between
    waves.  Because per-candidate seeds derive from the context and
    candidate index alone (never from scheduling), a re-dispatched group
    reproduces exactly what the lost worker would have produced, so a
    recovered run is bit-identical to a fault-free one on NumPy.
    Ordinary evaluation errors are *results* (captured by
    :func:`evaluate_candidate`) and are never retried.

    The executor is a context manager (``with MultiprocessExecutor(...)``)
    and registers with an atexit sweep, so interrupted searches don't
    leak worker processes; call :meth:`close` to release them
    deterministically.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 vectorized_block_size: Optional[int] = None,
                 max_retries: Optional[int] = None,
                 backoff_ms: Optional[float] = None,
                 task_timeout_ms: Optional[float] = None,
                 heartbeat_ms: float = 200.0):
        self.workers = resolve_workers(workers)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        if vectorized_block_size is not None and vectorized_block_size < 1:
            raise ValueError(
                f"vectorized_block_size must be >= 1, got {vectorized_block_size}"
            )
        self.vectorized_block_size = vectorized_block_size
        self.max_retries = resolve_max_retries(max_retries)
        self.backoff_ms = resolve_retry_backoff_ms(backoff_ms)
        self.task_timeout_ms = resolve_task_timeout_ms(task_timeout_ms)
        self.heartbeat_ms = max(float(heartbeat_ms), 1.0)
        #: lifetime supervision counters, summed across submissions
        self.total_retries = 0
        self.total_redispatches = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_context: Optional[EvaluationContext] = None
        _LIVE_EXECUTORS.add(self)

    @property
    def prefers_batch(self) -> bool:
        # with a single worker there is no overlap to buy, so speculative
        # callers should hand candidates over lazily, exactly like serial —
        # unless the workers fuse blocks, where a batch buys candidate-axis
        # fusion even on one process
        return self.workers > 1 or self.vectorized_block_size is not None

    def _chunksize(self, n_candidates: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-n_candidates // (4 * self.workers)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_context = None

    def _get_pool(self, context: EvaluationContext) -> ProcessPoolExecutor:
        if self._pool is None or self._pool_context is not context:
            self.close()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(context, self.vectorized_block_size),
            )
            self._pool_context = context
        return self._pool

    def _terminate_workers(self) -> bool:
        """Hard-kill the pool's worker processes (wedged-task recovery).

        Termination surfaces as a broken pool, which the supervision loop
        already knows how to recover from.  Returns False when no worker
        processes could be found to kill.
        """
        processes = getattr(self._pool, "_processes", None)
        if not processes:
            return False
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass
        return True

    def _backoff_s(self, attempt: int) -> float:
        if self.backoff_ms <= 0:
            return 0.0
        return min(self.backoff_ms * (2.0 ** max(attempt - 1, 0)), 1000.0) / 1e3

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        context = self._apply_backend(context)
        reusable = self._pool is not None and self._pool_context is context
        if len(candidates) < 2 and not reusable:
            results = _run_serially(context, candidates)
            return SubmissionReport(
                results=results, wall_seconds=time.perf_counter() - start,
            )
        if self.vectorized_block_size is not None:
            group_size = self.vectorized_block_size
            worker_fn = _worker_evaluate_block
        else:
            group_size = self._chunksize(len(candidates))
            worker_fn = _worker_evaluate_many
        groups = [(lo, list(candidates[lo:lo + group_size]))
                  for lo in range(0, len(candidates), group_size)]
        results: List[Optional[CandidateResult]] = [None] * len(candidates)
        # attempts charge the bounded retry budget and only grow on
        # *attributed* failures; requeues drive backoff and travel to the
        # workers so the fault seam sees every re-dispatch
        attempts: Dict[int, int] = {gi: 0 for gi in range(len(groups))}
        requeues: Dict[int, int] = {gi: 0 for gi in range(len(groups))}
        last_error: Dict[int, str] = {}
        retries = redispatches = 0
        pending: Dict[object, tuple] = {}  # future -> (group idx, t0)
        ready: List[int] = list(range(len(groups)))
        # after a pool break the culprit is unknowable (every in-flight
        # future fails at once), so nobody is charged and re-dispatch runs
        # in probe mode — one group in flight at a time — where a repeat
        # break is attributable to the single running group.  A poisoned
        # group therefore exhausts ITS budget without draining anyone
        # else's, and collateral groups always recover.
        probe = False

        def record(gi: int, group_results: List[CandidateResult]) -> None:
            lo = groups[gi][0]
            for offset, result in enumerate(group_results):
                results[lo + offset] = result

        def give_up(gi: int) -> None:
            for offset, candidate in enumerate(groups[gi][1]):
                results[groups[gi][0] + offset] = CandidateResult(
                    candidate=candidate, evaluation=None,
                    error=last_error.get(gi, "worker lost"),
                )

        timeout_s = (self.task_timeout_ms / 1e3
                     if self.task_timeout_ms > 0 else None)
        while ready or pending:
            while ready and (not probe or not pending):
                gi = ready.pop(0)
                if attempts[gi] > self.max_retries:
                    give_up(gi)
                    continue
                if requeues[gi] > 0:
                    backoff = self._backoff_s(requeues[gi])
                    if backoff > 0:
                        time.sleep(backoff)
                pool = self._get_pool(context)
                fut = pool.submit(
                    worker_fn, (groups[gi][1], requeues[gi]))
                pending[fut] = (gi, time.monotonic())
                if probe:
                    break
            if not pending:
                continue
            beat = self.heartbeat_ms / 1e3 if timeout_s is not None else None
            done, _ = wait(set(pending), timeout=beat,
                           return_when=FIRST_COMPLETED)
            if not done and timeout_s is not None:
                now = time.monotonic()
                overdue = [(f, gi) for f, (gi, t0) in pending.items()
                           if now - t0 > timeout_s]
                if overdue:
                    # a hung task is attributable by its own stopwatch:
                    # charge it, then kill the workers — the break is
                    # handled below as an ordinary lost-worker event
                    for _f, gi in overdue:
                        attempts[gi] += 1
                        last_error[gi] = (
                            f"task timed out after {self.task_timeout_ms:g} ms"
                        )
                    if not self._terminate_workers():
                        # pathological fallback (no reachable worker
                        # handles): abandon the overdue futures so the
                        # loop cannot spin forever
                        for fut, gi in overdue:
                            pending.pop(fut)
                            give_up(gi)
                continue
            lost: List[int] = []
            transient: List[int] = []
            broken = False
            for fut in done:
                gi, _t0 = pending.pop(fut)
                try:
                    record(gi, fut.result())
                except BrokenProcessPool as exc:
                    broken = True
                    lost.append(gi)
                    last_error.setdefault(gi, f"worker lost: {exc!r}")
                except Exception as exc:
                    transient.append(gi)
                    attempts[gi] += 1  # attributed: its own future raised
                    last_error[gi] = f"{type(exc).__name__}: {exc}"
            if broken:
                # the pool is unusable: every other in-flight group is
                # lost too (harvest any that finished first), rebuild
                for fut, (gi, _t0) in list(pending.items()):
                    harvested = False
                    if fut.done():
                        try:
                            record(gi, fut.result())
                            harvested = True
                        except Exception as exc:
                            last_error.setdefault(
                                gi, f"worker lost: {exc!r}")
                    else:
                        last_error.setdefault(
                            gi, "worker lost: pool broke mid-flight")
                    if not harvested:
                        lost.append(gi)
                pending.clear()
                self.close()
                if probe and len(lost) == 1:
                    # single-flight probe: the break IS this group's fault
                    attempts[lost[0]] += 1
                probe = True
            for gi in lost:
                redispatches += 1
                requeues[gi] += 1
                ready.append(gi)
            for gi in transient:
                retries += 1
                requeues[gi] += 1
                ready.append(gi)
        self.total_retries += retries
        self.total_redispatches += redispatches
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
            retries=retries, redispatches=redispatches,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        if self.vectorized_block_size is not None:
            return (f"MultiprocessExecutor(workers={self.workers}, "
                    f"vectorized_block_size={self.vectorized_block_size})")
        return f"MultiprocessExecutor(workers={self.workers})"


def make_executor(workers: Optional[int] = None,
                  chunksize: Optional[int] = None,
                  backend: Optional[str] = None,
                  kind: Optional[str] = None,
                  candidate_block_size: Optional[int] = None,
                  ) -> CandidateExecutor:
    """Build the executor for an effective worker count (and backend).

    An executor ``kind`` — explicit, or forced fleet-wide through the
    ``REPRO_EXECUTOR`` environment variable — wins outright:
    ``"vectorized"`` yields a :class:`VectorizedExecutor` (block size from
    ``candidate_block_size`` / ``REPRO_CANDIDATE_BLOCK_SIZE``),
    ``"multiprocess"`` a :class:`MultiprocessExecutor`,
    ``"multiprocess+vectorized"`` the two-level composition — process
    sharding across ``REPRO_WORKERS`` workers, each evaluating fused
    candidate-axis blocks of ``REPRO_CANDIDATE_BLOCK_SIZE`` — and
    ``"serial"`` the plain serial path.  Without a kind override,
    ``resolve_workers(workers) == 1`` yields a :class:`SerialExecutor` —
    or a :class:`BackendExecutor` when an explicit ``backend`` spec is
    given; anything larger a :class:`MultiprocessExecutor` (workers then
    inherit the backend override through the pickled context).
    """
    kind = resolve_executor_kind(kind)
    n = resolve_workers(workers)
    if kind == "vectorized":
        return VectorizedExecutor(candidate_block_size, backend=backend)
    if kind == "serial" or (kind is None and n == 1):
        if backend is not None:
            return BackendExecutor(backend)
        return SerialExecutor()
    block = (resolve_candidate_block_size(candidate_block_size)
             if kind == "multiprocess+vectorized" else None)
    executor = MultiprocessExecutor(n, chunksize=chunksize,
                                    vectorized_block_size=block)
    if backend is not None:
        from repro.backend import resolve_backend

        resolve_backend(backend)  # fail fast on an uninstalled backend
        executor.backend_spec = backend
    return executor
