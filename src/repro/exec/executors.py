"""Pluggable candidate executors: serial, process-pool, backend, vectorized.

Every ``(A, B)`` candidate of the baseline searches (grid, random,
annealing) is an independent reservoir sweep, so there are three natural
scaling axes: candidate-level parallelism across *processes*
(:class:`MultiprocessExecutor`), device-resident evaluation on an
accelerator *array backend* (:class:`BackendExecutor`, backed by
:mod:`repro.backend`), and candidate-axis *vectorization*
(:class:`VectorizedExecutor`), which packs a block of K candidates into
one fused array program — the candidate axis stacked next to the sample
axis — instead of K independent dispatches.
:class:`CandidateExecutor` is the seam all search layers submit through,
so the axes compose with the searches unchanged.

Guarantees shared by all executors:

* **determinism** — results are returned in candidate order, and each
  candidate's evaluation depends only on the context and the candidate
  (explicit or spawn-key-derived seed), never on worker count, block size,
  or schedule;
* **fault isolation** — a candidate whose evaluation raises is returned as
  a failed :class:`~repro.exec.context.CandidateResult` instead of killing
  the submission (row-wise inside a vectorized block);
* **two timing views** — wall-clock of the whole submission plus summed
  per-candidate compute seconds, so realized speedup is measurable.

The two axes also *stack*: ``executor_kind="multiprocess+vectorized"``
shards candidates across worker processes whose workers each evaluate
fused candidate-axis blocks — ``REPRO_WORKERS`` composing with
``REPRO_CANDIDATE_BLOCK_SIZE``.

Worker selection: an explicit ``workers`` argument wins; ``None`` falls
back to the ``REPRO_WORKERS`` environment variable; absent both, execution
is serial.  The ``REPRO_EXECUTOR`` variable force-selects an executor
*kind* (``serial`` / ``vectorized`` / ``multiprocess`` /
``multiprocess+vectorized``) the same way — this is how CI routes the
whole test suite through the multiprocess, vectorized, and two-level
paths — and ``REPRO_CANDIDATE_BLOCK_SIZE`` tunes the fused block size of
the vectorized executor (standalone or inside workers).
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.exec.context import (
    Candidate,
    CandidateResult,
    EvaluationContext,
    SubmissionReport,
    evaluate_candidate,
)

__all__ = [
    "CandidateExecutor",
    "SerialExecutor",
    "BackendExecutor",
    "MultiprocessExecutor",
    "VectorizedExecutor",
    "WORKERS_ENV_VAR",
    "EXECUTOR_ENV_VAR",
    "BLOCK_SIZE_ENV_VAR",
    "DEFAULT_CANDIDATE_BLOCK_SIZE",
    "resolve_workers",
    "resolve_executor_kind",
    "resolve_candidate_block_size",
    "make_executor",
]

#: environment variable consulted when no explicit worker count is given
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: environment variable force-selecting an executor kind for
#: default-constructed searches ("serial", "vectorized", "multiprocess")
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: environment variable tuning the vectorized executor's fused block size
BLOCK_SIZE_ENV_VAR = "REPRO_CANDIDATE_BLOCK_SIZE"

#: default candidates per fused block: large enough to amortize the shared
#: standardize/mask phase, small enough that a block's stacked trace
#: (K x N x (T+1) x N_x doubles) stays comfortably in memory
DEFAULT_CANDIDATE_BLOCK_SIZE = 16

_EXECUTOR_KINDS = ("serial", "vectorized", "multiprocess",
                   "multiprocess+vectorized")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count (>= 1).

    Explicit ``workers`` wins; ``None`` consults ``REPRO_WORKERS``; an
    unset/invalid variable means serial.  Values below 1 clamp to 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(1, int(workers))


def resolve_executor_kind(kind: Optional[str] = None) -> Optional[str]:
    """Resolve an executor-kind override (explicit wins over the env).

    ``None`` consults ``REPRO_EXECUTOR``; unset/empty means no override
    (the default ``workers``/``backend`` resolution applies).  Anything
    other than ``serial``, ``vectorized`` or ``multiprocess`` raises.
    """
    if kind is None:
        kind = os.environ.get(EXECUTOR_ENV_VAR, "").strip() or None
        if kind is None:
            return None
    kind = str(kind).strip().lower()
    # "vectorized+multiprocess" is accepted as the same composition
    if kind == "vectorized+multiprocess":
        kind = "multiprocess+vectorized"
    if kind not in _EXECUTOR_KINDS:
        raise ValueError(
            f"executor kind must be one of {_EXECUTOR_KINDS}, got {kind!r}"
        )
    return kind


def resolve_candidate_block_size(block_size: Optional[int] = None) -> int:
    """Resolve the vectorized executor's fused block size (>= 1).

    Explicit ``block_size`` wins; ``None`` consults
    ``REPRO_CANDIDATE_BLOCK_SIZE``; absent/invalid both, the default of
    ``DEFAULT_CANDIDATE_BLOCK_SIZE`` applies.
    """
    if block_size is None:
        raw = os.environ.get(BLOCK_SIZE_ENV_VAR, "").strip()
        try:
            block_size = int(raw) if raw else DEFAULT_CANDIDATE_BLOCK_SIZE
        except ValueError:
            block_size = DEFAULT_CANDIDATE_BLOCK_SIZE
        # env values are best-effort fleet-wide hints: anything invalid
        # (non-numeric or < 1) falls back to the default rather than
        # raising in every default-constructed search
        return block_size if block_size >= 1 else DEFAULT_CANDIDATE_BLOCK_SIZE
    block_size = int(block_size)
    if block_size < 1:
        raise ValueError(f"candidate block size must be >= 1, got {block_size}")
    return block_size


class CandidateExecutor:
    """Protocol: map an :class:`EvaluationContext` over candidates.

    Implementations must return one :class:`CandidateResult` per candidate,
    in submission order, and must not propagate per-candidate exceptions.
    """

    #: effective worker count (1 for serial executors)
    workers: int = 1
    #: array-backend spec stamped onto submitted contexts (None: untouched)
    backend_spec: Optional[str] = None
    #: whether submitting a whole batch at once buys this executor anything
    #: (process-level overlap, or candidate-axis fusion).  Speculative
    #: annealing keys its lazy-vs-eager decision on this: executors that
    #: evaluate candidates one by one anyway (serial, backend) are handed
    #: proposals lazily so nothing is wasted, while batch-preferring
    #: executors receive the whole speculative batch eagerly and the
    #: discarded tail is counted as real (wasted) evaluations.
    prefers_batch: bool = False

    def _apply_backend(self, context: EvaluationContext) -> EvaluationContext:
        """Stamp :attr:`backend_spec` onto ``context`` (cached per source).

        The retargeted copy is cached by source-context identity so that
        repeated submissions of one context — annealing rounds, the levels
        of a recursive grid — keep hitting the same object (extractor reuse
        in-process, pool reuse across processes).
        """
        if self.backend_spec is None or context.backend == self.backend_spec:
            return context
        if getattr(self, "_retarget_source", None) is not context:
            self._retargeted = replace(context, backend=self.backend_spec)
            self._retarget_source = context
        return self._retargeted

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (worker processes); idempotent."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(workers={self.workers})"


def _run_serially(context: EvaluationContext,
                  candidates: Sequence[Candidate]) -> List[CandidateResult]:
    return [evaluate_candidate(context, c) for c in candidates]


class SerialExecutor(CandidateExecutor):
    """In-process sequential evaluation (the reference implementation)."""

    workers = 1

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        results = _run_serially(context, candidates)
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
        )


class BackendExecutor(CandidateExecutor):
    """In-process evaluation on a chosen array backend (device-resident).

    Candidates are scored sequentially in this process, but every reservoir
    sweep and DPRR contraction of every candidate runs on the given
    :mod:`repro.backend` backend — this is the execution mode for a single
    accelerator, where one GPU evaluating dense batched sweeps replaces a
    pool of CPU workers.  The override travels as a *spec string* on the
    submission context, so it composes with the searches unchanged and
    (being picklable) also survives a trip into worker processes.

    Parameters
    ----------
    backend:
        Backend spec (``"torch"``, ``"torch:cuda:1"``, ``"cupy"``,
        ``"numpy"``); ``None`` defers to ``REPRO_BACKEND``.  The spec is
        resolved eagerly, so requesting an uninstalled backend fails at
        construction time, not mid-search.

    With ``backend="numpy"`` this is bit-identical to
    :class:`SerialExecutor` (pinned by ``tests/test_backend.py``).
    """

    workers = 1

    def __init__(self, backend: Optional[str] = None):
        from repro.backend import BACKEND_ENV_VAR, resolve_backend

        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
        #: spec applied to submitted contexts; None means no override
        self.backend_spec = backend
        #: resolved backend (eager, so a missing library fails here)
        self.backend = resolve_backend(backend)

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        results = _run_serially(self._apply_backend(context), candidates)
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BackendExecutor(backend={self.backend.name!r})"


class VectorizedExecutor(CandidateExecutor):
    """Fuse blocks of K candidates into one stacked array program.

    Candidates are chunked into blocks of ``block_size`` and each block is
    evaluated by a *single* reservoir/DPRR sweep with the candidate axis
    stacked in front of the sample axis
    (:meth:`~repro.exec.context.EvaluationContext.evaluate_block`): the
    standardizer, the mask drive, and every batched contraction are shared
    by the whole block instead of being redone per candidate, and on an
    accelerator backend the block is one resident ``(K, N, ...)`` program
    instead of K kernel dispatches.  On the NumPy backend results are
    bit-identical to :class:`SerialExecutor` (pinned by tests).

    Fault isolation is row-wise, and every failure funnels through the
    ordinary serial path so failure *records* match serial execution bit
    for bit: a candidate with non-finite parameters is scored serially up
    front, a candidate whose per-candidate scoring raises inside the block
    is re-scored serially (its row only — a deterministic failure
    reproduces the exact serial record, a transient one recovers), and a
    block whose fused sweep fails outright falls back to serial evaluation
    of all its candidates.

    Parameters
    ----------
    block_size:
        Candidates fused per sweep; ``None`` resolves through
        ``REPRO_CANDIDATE_BLOCK_SIZE`` (default
        ``DEFAULT_CANDIDATE_BLOCK_SIZE``).  Peak trace memory scales
        linearly with the block size.
    backend:
        Optional array-backend spec stamped onto submitted contexts
        (resolved eagerly, so an uninstalled backend fails at construction
        time); ``None`` leaves the context's own backend in place.
    """

    workers = 1
    prefers_batch = True

    def __init__(self, block_size: Optional[int] = None,
                 backend: Optional[str] = None):
        self.block_size = resolve_candidate_block_size(block_size)
        self.backend_spec = backend
        if backend is not None:
            from repro.backend import resolve_backend

            resolve_backend(backend)

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        context = self._apply_backend(context)
        results: List[Optional[CandidateResult]] = [None] * len(candidates)
        fusable = []
        for pos, candidate in enumerate(candidates):
            if math.isfinite(candidate.A) and math.isfinite(candidate.B):
                fusable.append((pos, candidate))
            else:
                # non-finite parameters would poison the whole stacked
                # sweep; score them serially so they fail exactly as they
                # would under the serial executor
                results[pos] = evaluate_candidate(context, candidate)
        for lo in range(0, len(fusable), self.block_size):
            chunk = fusable[lo:lo + self.block_size]
            block = [candidate for _, candidate in chunk]
            t0 = time.perf_counter()
            try:
                evaluations = context.evaluate_block(block)
            except Exception:
                # a failed fused sweep must not cost any results: evaluate
                # the block's candidates the ordinary serial way instead
                for pos, candidate in chunk:
                    results[pos] = evaluate_candidate(context, candidate)
                continue
            per_candidate = (time.perf_counter() - t0) / len(chunk)
            for (pos, candidate), evaluation in zip(chunk, evaluations):
                if evaluation.error is not None:
                    # a row whose scoring raised inside the block is
                    # re-scored through the ordinary serial path: a
                    # deterministic failure reproduces the exact serial
                    # failure record (traceback and all, keeping the
                    # bit-parity invariant for failures too), a transient
                    # one simply recovers
                    results[pos] = evaluate_candidate(context, candidate)
                else:
                    results[pos] = CandidateResult(
                        candidate=candidate, evaluation=evaluation,
                        compute_seconds=per_candidate,
                    )
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"VectorizedExecutor(block_size={self.block_size})"


# module-level worker state: the context is shipped once per worker via the
# pool initializer instead of once per candidate
_WORKER_CONTEXT: Optional[EvaluationContext] = None
#: in-worker vectorized executor for two-level fusion (None: plain mapping)
_WORKER_VECTORIZED: Optional["VectorizedExecutor"] = None


def _init_worker(context: EvaluationContext,
                 vectorized_block_size: Optional[int] = None) -> None:
    global _WORKER_CONTEXT, _WORKER_VECTORIZED
    _WORKER_CONTEXT = context
    _WORKER_VECTORIZED = (
        None if vectorized_block_size is None
        else VectorizedExecutor(block_size=vectorized_block_size)
    )


def _worker_evaluate(candidate: Candidate) -> CandidateResult:
    return evaluate_candidate(_WORKER_CONTEXT, candidate)


def _worker_evaluate_block(candidates: Sequence[Candidate]
                           ) -> List[CandidateResult]:
    """Two-level fusion: one worker dispatch evaluates a fused block.

    The in-worker :class:`VectorizedExecutor` runs the block as one stacked
    candidate-axis sweep against the worker-resident context; its row-wise
    fault isolation means a bad candidate fails alone here exactly as it
    would in-process.
    """
    return list(_WORKER_VECTORIZED.run(_WORKER_CONTEXT, candidates).results)


class MultiprocessExecutor(CandidateExecutor):
    """Shard candidates across a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    workers:
        Process count; ``None`` resolves through ``REPRO_WORKERS``.
    chunksize:
        Work units handed to a worker per dispatch; ``None`` picks
        ``ceil(n / (4 * workers))`` — small enough to balance load, large
        enough to amortize IPC.  The unit is one candidate in the plain
        mapping and one fused *block* under two-level fusion (where the
        block is already the IPC granularity).
    vectorized_block_size:
        Two-level fusion (``executor_kind="multiprocess+vectorized"``):
        when set, each worker evaluates its share as fused
        :class:`VectorizedExecutor` blocks of this many candidates —
        process sharding across cores *and* candidate-axis fusion within
        each process (``REPRO_WORKERS`` composes with
        ``REPRO_CANDIDATE_BLOCK_SIZE``).  Results stay bit-identical to
        serial execution on NumPy: both levels preserve candidate order
        and the vectorized level is itself bit-identical to serial.
        ``None`` (default) maps plain per-candidate evaluation.

    The context (data arrays + extractor config) is pickled once per worker
    through the pool initializer; each candidate then costs only a few
    floats of IPC.  The pool persists across :meth:`run` calls that submit
    the *same* context object (e.g. every speculative-annealing round, or
    all levels of one ``search_until``), so repeated submissions pay the
    process spawn and context transfer once.  Submitting a different
    context replaces the pool.  Single-candidate submissions with no live
    pool are evaluated in-process, and a broken pool (hard worker crash)
    falls back to serial evaluation of the same candidates — results are
    identical by construction, only slower.

    An unreferenced executor's pool is torn down by the interpreter
    (``ProcessPoolExecutor`` workers shut down once their executor is
    garbage collected); call :meth:`close` to release the processes
    deterministically.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 vectorized_block_size: Optional[int] = None):
        self.workers = resolve_workers(workers)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        if vectorized_block_size is not None and vectorized_block_size < 1:
            raise ValueError(
                f"vectorized_block_size must be >= 1, got {vectorized_block_size}"
            )
        self.vectorized_block_size = vectorized_block_size
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_context: Optional[EvaluationContext] = None

    @property
    def prefers_batch(self) -> bool:
        # with a single worker there is no overlap to buy, so speculative
        # callers should hand candidates over lazily, exactly like serial —
        # unless the workers fuse blocks, where a batch buys candidate-axis
        # fusion even on one process
        return self.workers > 1 or self.vectorized_block_size is not None

    def _chunksize(self, n_candidates: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-n_candidates // (4 * self.workers)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_context = None

    def _get_pool(self, context: EvaluationContext) -> ProcessPoolExecutor:
        if self._pool is None or self._pool_context is not context:
            self.close()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(context, self.vectorized_block_size),
            )
            self._pool_context = context
        return self._pool

    def run(self, context: EvaluationContext,
            candidates: Sequence[Candidate]) -> SubmissionReport:
        start = time.perf_counter()
        context = self._apply_backend(context)
        reusable = self._pool is not None and self._pool_context is context
        if len(candidates) < 2 and not reusable:
            results = _run_serially(context, candidates)
        elif self.vectorized_block_size is not None:
            # two-level fusion: ship fused blocks to workers; the block is
            # both the IPC unit and the candidate-axis fusion unit, and
            # flattening in block order preserves candidate order
            blocks = [
                list(candidates[lo:lo + self.vectorized_block_size])
                for lo in range(0, len(candidates), self.vectorized_block_size)
            ]
            try:
                nested = list(self._get_pool(context).map(
                    _worker_evaluate_block,
                    blocks,
                    # chunksize counts blocks here (the dispatch unit)
                    chunksize=self._chunksize(len(blocks)),
                ))
                results = [r for block in nested for r in block]
            except BrokenProcessPool:
                self.close()
                results = _run_serially(context, candidates)
        else:
            try:
                results = list(self._get_pool(context).map(
                    _worker_evaluate,
                    candidates,
                    chunksize=self._chunksize(len(candidates)),
                ))
            except BrokenProcessPool:
                self.close()
                results = _run_serially(context, candidates)
        return SubmissionReport(
            results=results, wall_seconds=time.perf_counter() - start,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        if self.vectorized_block_size is not None:
            return (f"MultiprocessExecutor(workers={self.workers}, "
                    f"vectorized_block_size={self.vectorized_block_size})")
        return f"MultiprocessExecutor(workers={self.workers})"


def make_executor(workers: Optional[int] = None,
                  chunksize: Optional[int] = None,
                  backend: Optional[str] = None,
                  kind: Optional[str] = None,
                  candidate_block_size: Optional[int] = None,
                  ) -> CandidateExecutor:
    """Build the executor for an effective worker count (and backend).

    An executor ``kind`` — explicit, or forced fleet-wide through the
    ``REPRO_EXECUTOR`` environment variable — wins outright:
    ``"vectorized"`` yields a :class:`VectorizedExecutor` (block size from
    ``candidate_block_size`` / ``REPRO_CANDIDATE_BLOCK_SIZE``),
    ``"multiprocess"`` a :class:`MultiprocessExecutor`,
    ``"multiprocess+vectorized"`` the two-level composition — process
    sharding across ``REPRO_WORKERS`` workers, each evaluating fused
    candidate-axis blocks of ``REPRO_CANDIDATE_BLOCK_SIZE`` — and
    ``"serial"`` the plain serial path.  Without a kind override,
    ``resolve_workers(workers) == 1`` yields a :class:`SerialExecutor` —
    or a :class:`BackendExecutor` when an explicit ``backend`` spec is
    given; anything larger a :class:`MultiprocessExecutor` (workers then
    inherit the backend override through the pickled context).
    """
    kind = resolve_executor_kind(kind)
    n = resolve_workers(workers)
    if kind == "vectorized":
        return VectorizedExecutor(candidate_block_size, backend=backend)
    if kind == "serial" or (kind is None and n == 1):
        if backend is not None:
            return BackendExecutor(backend)
        return SerialExecutor()
    block = (resolve_candidate_block_size(candidate_block_size)
             if kind == "multiprocess+vectorized" else None)
    executor = MultiprocessExecutor(n, chunksize=chunksize,
                                    vectorized_block_size=block)
    if backend is not None:
        from repro.backend import resolve_backend

        resolve_backend(backend)  # fail fast on an uninstalled backend
        executor.backend_spec = backend
    return executor
