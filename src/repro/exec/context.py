"""Candidate tasks and the picklable evaluation context.

The execution layer separates *what* a search evaluates from *where* it
runs.  A search builds one :class:`EvaluationContext` per submission — the
dataset arrays, an :class:`~repro.core.pipeline.ExtractorConfig` snapshot of
the feature pipeline, the scoring protocol, and optionally an array-backend
spec — plus a list of lightweight :class:`Candidate` records.  Executors
(serial, multiprocess, or array-backend) then map
:func:`evaluate_candidate` over the candidates; because the context is a
plain picklable bundle and the per-candidate seed is a pure function of the
candidate, the results are bit-identical no matter how the work is sharded.

Failure semantics: :func:`evaluate_candidate` never raises — a candidate
whose evaluation throws becomes a failed :class:`CandidateResult` whose
traceback rides along in ``error``, and
:meth:`SubmissionReport.evaluations` maps it to the
:meth:`~repro.core.pipeline.FixedParamsEvaluation.failed` sentinel that the
shared selection rule (:mod:`repro.core.selection`) ranks strictly last.
One bad ``(A, B)`` point therefore never kills a sweep.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import (
    DFRFeatureExtractor,
    ExtractorConfig,
    FixedParamsEvaluation,
    evaluate_fixed_params,
    evaluate_fixed_params_block,
)
from repro.exec.seeding import derive_candidate_seed
from repro.readout.ridge import PAPER_BETAS
from repro.utils.validation import as_batch, ensure_1d_labels

__all__ = [
    "Candidate",
    "CandidateResult",
    "SubmissionReport",
    "EvaluationContext",
    "evaluate_candidate",
]


@dataclass
class Candidate:
    """One ``(A, B)`` point submitted for evaluation.

    ``seed`` is the holdout-split seed for this candidate; when ``None``,
    the executor derives it from the context's ``base_seed`` and the
    candidate ``index`` (spawn-key splitting), so the value never depends
    on worker count or scheduling order.
    """

    index: int
    A: float
    B: float
    seed: Optional[int] = None


@dataclass
class CandidateResult:
    """Outcome of one candidate: an evaluation or a captured failure."""

    candidate: Candidate
    evaluation: Optional[FixedParamsEvaluation]
    error: Optional[str] = None
    compute_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SubmissionReport:
    """All results of one submission, with the two timing views.

    ``wall_seconds`` is the elapsed wall-clock of the whole submission (what
    a user waits for — under parallel execution this is *less* than the work
    done); ``compute_seconds`` sums the per-candidate evaluation times
    across workers (the work actually performed).  Their ratio is the
    realized speedup.
    """

    results: List[CandidateResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: work units re-submitted after a transient in-worker failure
    retries: int = 0
    #: work units re-submitted after a lost worker (broken pool / timeout)
    redispatches: int = 0

    @property
    def compute_seconds(self) -> float:
        return sum(r.compute_seconds for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def evaluations(self) -> List[FixedParamsEvaluation]:
        """Evaluations in candidate order; failures become sentinel records.

        A candidate whose worker raised is mapped to
        :meth:`~repro.core.pipeline.FixedParamsEvaluation.failed` (infinite
        loss, zero accuracy, the captured traceback in ``error``) so the
        search that submitted it keeps running and ranks it last.
        """
        out = []
        for r in self.results:
            if r.ok:
                out.append(r.evaluation)
            else:
                out.append(FixedParamsEvaluation.failed(
                    r.candidate.A, r.candidate.B, error=r.error,
                ))
        return out


@dataclass
class EvaluationContext:
    """Everything a worker needs to score candidates, in picklable form.

    The feature pipeline travels as an :class:`ExtractorConfig` (small
    arrays and scalars) rather than a live extractor; each process rebuilds
    the extractor once per submission and reuses it for all its candidates.
    """

    extractor: ExtractorConfig
    u_train: np.ndarray
    y_train: np.ndarray
    u_test: np.ndarray
    y_test: np.ndarray
    betas: Tuple[float, ...] = PAPER_BETAS
    val_fraction: float = 0.2
    n_classes: Optional[int] = None
    feature_batch_size: Optional[int] = None
    #: fallback entropy for candidates submitted without an explicit seed
    base_seed: Optional[int] = None
    #: array-backend spec overriding the extractor's own for this
    #: submission (how :class:`~repro.exec.BackendExecutor` re-targets
    #: evaluation); None keeps the snapshot's backend
    backend: Optional[str] = None

    def __post_init__(self):
        if isinstance(self.extractor, DFRFeatureExtractor):
            self.extractor = self.extractor.snapshot()
        self._built: Optional[DFRFeatureExtractor] = None

    @classmethod
    def from_data(
        cls,
        extractor,
        u_train: np.ndarray,
        y_train: np.ndarray,
        u_test: np.ndarray,
        y_test: np.ndarray,
        *,
        betas: Sequence[float] = PAPER_BETAS,
        val_fraction: float = 0.2,
        n_classes: Optional[int] = None,
        feature_batch_size: Optional[int] = None,
        base_seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> "EvaluationContext":
        """Build a context from raw search inputs (the one canonical path).

        Normalizes the data shapes and snapshots a live extractor; every
        search layer constructs its submission context through here.
        """
        return cls(
            extractor=extractor,
            u_train=as_batch(u_train),
            y_train=ensure_1d_labels(y_train),
            u_test=as_batch(u_test),
            y_test=ensure_1d_labels(y_test),
            betas=tuple(betas),
            val_fraction=float(val_fraction),
            n_classes=n_classes,
            feature_batch_size=feature_batch_size,
            base_seed=base_seed,
            backend=backend,
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_built"] = None  # never ship the rebuilt extractor
        return state

    def _get_extractor(self) -> DFRFeatureExtractor:
        if self._built is None:
            self._built = self.extractor.build()
            if self.backend is not None:
                self._built.set_backend(self.backend)
        return self._built

    def candidate_seed(self, candidate: Candidate) -> Optional[int]:
        """The split seed for ``candidate`` (explicit, derived, or None)."""
        if candidate.seed is not None:
            return int(candidate.seed)
        if self.base_seed is not None:
            return derive_candidate_seed(self.base_seed, candidate.index)
        return None

    def evaluate(self, candidate: Candidate) -> FixedParamsEvaluation:
        """Score one candidate through the shared fixed-params protocol."""
        return evaluate_fixed_params(
            self._get_extractor(),
            self.u_train, self.y_train, self.u_test, self.y_test,
            candidate.A, candidate.B,
            betas=self.betas,
            val_fraction=self.val_fraction,
            n_classes=self.n_classes,
            feature_batch_size=self.feature_batch_size,
            seed=self.candidate_seed(candidate),
        )

    def evaluate_block(
        self, candidates: Sequence[Candidate]
    ) -> List[FixedParamsEvaluation]:
        """Score a block of candidates through ONE fused reservoir sweep.

        The candidate axis is stacked in front of the sample axis, so the
        whole block pays a single standardize/mask/reservoir/DPRR program
        (see :func:`~repro.core.pipeline.evaluate_fixed_params_block`);
        per-candidate seeds follow the same explicit/derived precedence as
        :meth:`evaluate`.  Results come back in candidate order; a
        candidate whose scoring fails yields the
        :meth:`~repro.core.pipeline.FixedParamsEvaluation.failed` sentinel
        for its row only.
        """
        return evaluate_fixed_params_block(
            self._get_extractor(),
            self.u_train, self.y_train, self.u_test, self.y_test,
            [c.A for c in candidates], [c.B for c in candidates],
            betas=self.betas,
            val_fraction=self.val_fraction,
            n_classes=self.n_classes,
            feature_batch_size=self.feature_batch_size,
            seeds=[self.candidate_seed(c) for c in candidates],
        )


def evaluate_candidate(context: EvaluationContext,
                       candidate: Candidate) -> CandidateResult:
    """Evaluate one candidate, timing it and capturing any exception.

    This single function is the compute path of *every* executor — serial
    and worker processes alike — which is what makes serial and parallel
    execution bit-identical.  An exception marks the candidate failed
    without propagating, so one bad point never kills a whole search.
    """
    start = time.perf_counter()
    try:
        evaluation = context.evaluate(candidate)
        return CandidateResult(
            candidate=candidate,
            evaluation=evaluation,
            compute_seconds=time.perf_counter() - start,
        )
    except Exception:
        return CandidateResult(
            candidate=candidate,
            evaluation=None,
            error=traceback.format_exc(limit=10),
            compute_seconds=time.perf_counter() - start,
        )
