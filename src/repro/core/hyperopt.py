"""Alternative hyperparameter optimizers for the (A, B, beta) search.

The paper argues grid search is the *de facto* DFR tuning method and
replaces it with backpropagation.  Besides the paper's single gradient run
(:class:`~repro.core.trainer.BackpropTrainer` inside the classifier), the
library ships the black-box baselines a practitioner would reach for — and
a population form of the paper's own method:

* :class:`RandomSearch` — log-uniform sampling of the paper's search box
  (Bergstra & Bengio's argument: beats grids of the same budget when the
  landscape's effective dimensionality is low);
* :class:`SimulatedAnnealing` — local log-space perturbations with a
  geometric temperature schedule; a cheap trajectory-based baseline that,
  unlike recursive grid zooming, can escape a misleading basin;
* :class:`PopulationDescent` — the fifth search: K restarts of the paper's
  BP+GD descended *concurrently* through the candidate-axis-vectorized
  engine (:mod:`repro.core.population`), then scored as one batch through
  the shared execution layer — multi-start robustness at roughly the cost
  of one fused run.

All of them operate through the identical
:func:`~repro.core.pipeline.evaluate_fixed_params` protocol used by the
grid search and by the classifier, so results are directly comparable, and
all submit their candidates through the shared execution layer
(:mod:`repro.exec`).  Random search fans its whole sample budget out in one
submission; annealing is inherently sequential, but its speculative mode
(``speculative > 1``) proposes a batch of candidates from the current point
each round, evaluates them concurrently, and accepts the first of them by
Metropolis order — trading some wasted evaluations for wall-clock when
workers are available.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grid_search import PAPER_A_RANGE, PAPER_B_RANGE
from repro.core.pipeline import DFRFeatureExtractor, FixedParamsEvaluation
from repro.core.population import (
    MemberResult,
    PopulationResult,
    chunked_population_fit,
    draw_starting_points,
    resolve_population,
)
from repro.core.selection import best_evaluation, better_evaluation
from repro.core.trainer import TrainerConfig
from repro.exec import (
    Candidate,
    CandidateExecutor,
    EvaluationContext,
    make_executor,
    resolve_candidate_block_size,
)
from repro.readout.ridge import PAPER_BETAS
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "SearchOutcome",
    "RandomSearch",
    "SimulatedAnnealing",
    "DescentOutcome",
    "PopulationDescent",
]


@dataclass
class SearchOutcome:
    """Result of a black-box (A, B, beta) search.

    ``total_seconds`` is the wall-clock of the whole search (including
    executor overhead); ``compute_seconds`` sums the per-candidate
    evaluation times across workers, so speedup under parallel execution is
    measurable.  ``n_wasted`` counts speculative annealing proposals that
    were evaluated but discarded because an earlier proposal of the same
    batch was accepted — real evaluations paid for, so it is per-executor:
    lazily-fed executors (serial) never waste any, eagerly-fed ones
    (multiprocess, vectorized) report the actual discarded count.
    """

    best: FixedParamsEvaluation
    evaluations: List[FixedParamsEvaluation] = field(default_factory=list)
    total_seconds: float = 0.0
    compute_seconds: float = 0.0
    n_wasted: int = 0

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)


class _BlackBoxSearch:
    """Shared plumbing: the evaluation context, executor, and search box."""

    def __init__(
        self,
        extractor: DFRFeatureExtractor,
        *,
        a_range: Tuple[float, float] = PAPER_A_RANGE,
        b_range: Tuple[float, float] = PAPER_B_RANGE,
        betas: Sequence[float] = PAPER_BETAS,
        val_fraction: float = 0.2,
        feature_batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        executor_kind: Optional[str] = None,
        candidate_block_size: Optional[int] = None,
        executor: Optional[CandidateExecutor] = None,
        seed: SeedLike = None,
    ):
        self.extractor = extractor
        self.a_range = tuple(a_range)
        self.b_range = tuple(b_range)
        self.betas = tuple(betas)
        self.val_fraction = float(val_fraction)
        #: chunk size for the per-candidate reservoir sweeps; bounds peak
        #: trace memory on large datasets without changing any score
        self.feature_batch_size = feature_batch_size
        #: array-backend spec the search was built with (descent threads it
        #: into its trainer config; the executor already carries it)
        self.backend = backend
        #: candidates fused per sweep (descent also chunks its fused
        #: *training* stacks by this; None defers to the env default)
        self.candidate_block_size = candidate_block_size
        self.executor = (executor if executor is not None
                         else make_executor(workers, backend=backend,
                                            kind=executor_kind,
                                            candidate_block_size=candidate_block_size))
        self._rng = ensure_rng(seed)

    def _make_context(self, u_train, y_train, u_test, y_test, n_classes,
                      base_seed: Optional[int] = None) -> EvaluationContext:
        return EvaluationContext.from_data(
            self.extractor.snapshot(),
            u_train, y_train, u_test, y_test,
            betas=self.betas,
            val_fraction=self.val_fraction,
            n_classes=n_classes,
            feature_batch_size=self.feature_batch_size,
            base_seed=base_seed,
        )


class RandomSearch(_BlackBoxSearch):
    """Log-uniform random sampling over the paper's search box."""

    def search(
        self, u_train, y_train, u_test, y_test, *, n_samples: int = 25,
        n_classes: Optional[int] = None,
    ) -> SearchOutcome:
        """Draw ``n_samples`` points and return the incumbent best.

        All points are drawn up front (the draw order matches the historical
        serial implementation) and submitted as one batch, so the whole
        sample budget fans out across workers.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        start = time.perf_counter()
        split_seed = int(self._rng.integers(2**31 - 1))
        candidates = []
        for i in range(n_samples):
            log_a = self._rng.uniform(*self.a_range)
            log_b = self._rng.uniform(*self.b_range)
            candidates.append(Candidate(
                index=i, A=float(10.0**log_a), B=float(10.0**log_b),
                seed=split_seed,
            ))
        context = self._make_context(u_train, y_train, u_test, y_test, n_classes)
        report = self.executor.run(context, candidates)
        evaluations = report.evaluations()
        best = None
        for ev in evaluations:
            if better_evaluation(ev, best):
                best = ev
        return SearchOutcome(
            best=best,
            evaluations=evaluations,
            total_seconds=time.perf_counter() - start,
            compute_seconds=report.compute_seconds,
        )


class SimulatedAnnealing(_BlackBoxSearch):
    """Annealed local search in log-parameter space.

    Proposals perturb ``(log A, log B)`` with Gaussian steps whose scale
    and acceptance temperature decay geometrically; acceptance uses the
    validation-loss criterion (lower is better), with the usual Metropolis
    rule for uphill moves.
    """

    def search(
        self, u_train, y_train, u_test, y_test, *, n_steps: int = 30,
        initial_temperature: float = 0.5, cooling: float = 0.9,
        step_scale: float = 0.5, speculative: int = 1,
        n_classes: Optional[int] = None,
    ) -> SearchOutcome:
        """Run ``n_steps`` of annealing from the center of the box.

        ``speculative`` proposes that many candidates per round, all from
        the current point, with the step scale and Metropolis temperature
        each proposal *would* have seen serially.  The batch is evaluated
        concurrently, then scanned in proposal order: the first accepted
        proposal ends the round and later (now invalid) evaluations of the
        batch are discarded as waste.  ``speculative=1`` reproduces the
        serial trajectory exactly; larger values change the trajectory only
        through which proposals are drawn, never the acceptance rule.

        With an executor that evaluates candidates one at a time anyway
        (serial, or a single-worker pool) up-front evaluation of the batch
        would be pure waste, so proposals are then evaluated lazily one by
        one during the scan — same trajectory, no discarded work, and
        ``n_wasted`` stays 0.  Batch-preferring executors (multiprocess
        with real workers, vectorized candidate fusion) evaluate the whole
        batch eagerly; the proposals invalidated by an earlier acceptance
        were then genuinely computed, and ``n_wasted`` counts exactly
        those.
        """
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must lie in (0, 1), got {cooling}")
        if speculative < 1:
            raise ValueError(f"speculative must be >= 1, got {speculative}")
        start = time.perf_counter()
        split_seed = int(self._rng.integers(2**31 - 1))
        context = self._make_context(u_train, y_train, u_test, y_test, n_classes)

        log_a = 0.5 * (self.a_range[0] + self.a_range[1])
        log_b = 0.5 * (self.b_range[0] + self.b_range[1])
        report = self.executor.run(context, [
            Candidate(index=0, A=float(10.0**log_a), B=float(10.0**log_b),
                      seed=split_seed),
        ])
        compute_seconds = report.compute_seconds
        current = report.evaluations()[0]
        evaluations = [current]
        best = current
        temperature = float(initial_temperature)
        scale = float(step_scale)
        steps_done = 0
        next_index = 1
        n_wasted = 0
        while steps_done < n_steps:
            k = min(speculative, n_steps - steps_done)
            # propose k candidates from the current point, each with the
            # scale (and remembered temperature) of the serial step it
            # speculates for
            proposals = []
            temps = []
            scale_j, temp_j = scale, temperature
            for _ in range(k):
                cand_a = float(np.clip(log_a + self._rng.normal(scale=scale_j),
                                       *self.a_range))
                cand_b = float(np.clip(log_b + self._rng.normal(scale=scale_j),
                                       *self.b_range))
                proposals.append((cand_a, cand_b))
                temps.append(temp_j)
                scale_j *= cooling
                temp_j *= cooling
            candidates = [
                Candidate(index=next_index + j, A=float(10.0**a), B=float(10.0**b),
                          seed=split_seed)
                for j, (a, b) in enumerate(proposals)
            ]
            next_index += k
            # speculation only pays off when a batch submission buys the
            # executor something — process-level overlap (multiprocess) or
            # candidate-axis fusion (vectorized).  Executors that evaluate
            # one candidate at a time anyway (serial, backend) are handed
            # proposals lazily during the scan instead, so proposals past
            # an acceptance are never computed at all and n_wasted stays
            # zero; batch-preferring executors evaluate the whole batch
            # eagerly and the discarded tail counts as real waste.
            lazy = not getattr(self.executor, "prefers_batch", False)
            if lazy:
                batch = None
            else:
                report = self.executor.run(context, candidates)
                compute_seconds += report.compute_seconds
                batch = report.evaluations()
            # Metropolis scan in proposal order; the first acceptance
            # invalidates the rest of the batch
            for j in range(k):
                if lazy:
                    report = self.executor.run(context, [candidates[j]])
                    compute_seconds += report.compute_seconds
                    candidate = report.evaluations()[0]
                else:
                    candidate = batch[j]
                evaluations.append(candidate)
                steps_done += 1
                delta = candidate.val_loss - current.val_loss
                accept = delta <= 0 or (
                    np.isfinite(delta)
                    and self._rng.random() < np.exp(-delta / max(temps[j], 1e-12))
                )
                if better_evaluation(candidate, best):
                    best = candidate
                temperature *= cooling
                scale *= cooling
                if accept:
                    log_a, log_b = proposals[j]
                    current = candidate
                    if not lazy:
                        n_wasted += k - (j + 1)
                    break
        return SearchOutcome(
            best=best,
            evaluations=evaluations,
            total_seconds=time.perf_counter() - start,
            compute_seconds=compute_seconds,
            n_wasted=n_wasted,
        )


@dataclass
class DescentOutcome(SearchOutcome):
    """Outcome of a population gradient-descent search.

    Extends :class:`SearchOutcome` with the fused training record:
    ``descent`` is the merged
    :class:`~repro.core.population.PopulationResult` of all chunks, and
    ``evaluations[i]`` scores the *endpoint* of ``members[i]``'s descent
    through the identical fixed-params protocol every other search uses.
    ``training_seconds`` is the wall-clock of the fused descent itself
    (``total_seconds`` additionally includes the endpoint scoring).
    """

    descent: Optional[PopulationResult] = None
    training_seconds: float = 0.0

    @property
    def members(self) -> List[MemberResult]:
        return self.descent.members if self.descent is not None else []

    @property
    def active_per_epoch(self) -> List[int]:
        """Fused-stack width per epoch, summed over chunks (telemetry)."""
        return (self.descent.active_per_epoch
                if self.descent is not None else [])

    @property
    def population(self) -> int:
        return self.descent.population if self.descent is not None else 0

    @property
    def n_retired(self) -> int:
        return self.descent.n_retired if self.descent is not None else 0


class PopulationDescent(_BlackBoxSearch):
    """The fifth search: K fused restarts of the paper's BP+GD.

    Draws K starting points (member 0 at the paper's ``(0.01, 0.01)``
    initialization, the rest log-uniform over the search box), descends all
    of them concurrently through the candidate-axis-vectorized training
    engine (:class:`~repro.core.population.PopulationTrainer` — one fused
    ``(K, N, ...)`` forward/backward per minibatch instead of K sequential
    :meth:`~repro.core.trainer.BackpropTrainer.fit` loops), then submits
    the K descent *endpoints* through the shared execution layer for the
    usual ridge/beta scoring, ranked by the shared selection rule.

    The fused training stack is chunked by ``candidate_block_size``
    (``REPRO_CANDIDATE_BLOCK_SIZE``) when the population exceeds it, so
    peak trace memory is bounded exactly like a vectorized evaluation
    block; every chunk shares one shuffle seed, so results are independent
    of the chunking (and, on NumPy, bit-identical to sequential per-member
    training — pinned by ``tests/test_population.py``).  Endpoint scoring
    goes through ``self.executor`` as one submission — batch-preferring
    executors (vectorized, multiprocess) consume it whole — with one shared
    holdout split for the whole population (the sibling searches'
    convention: comparable criterion, executor-independent records).

    Parameters (beyond the shared ``_BlackBoxSearch`` ones)
    ----------
    trainer_config:
        :class:`~repro.core.trainer.TrainerConfig` for the descent
        (defaults to the paper's protocol with ``batch_size=8`` — restarts
        are about endpoint quality, not the paper's per-sample update
        granularity, and fused minibatches are what make K restarts cheap).
    population:
        Default restart count for :meth:`search`; ``None`` defers to
        ``REPRO_POPULATION`` (default 8).
    retire_tol, retire_patience, retire_diverged_epochs:
        Row-wise retirement knobs, forwarded to the trainer.
    """

    def __init__(
        self,
        extractor: DFRFeatureExtractor,
        *,
        trainer_config: Optional[TrainerConfig] = None,
        population: Optional[int] = None,
        retire_tol: Optional[float] = None,
        retire_patience: int = 2,
        retire_diverged_epochs: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(extractor, **kwargs)
        if trainer_config is None:
            trainer_config = TrainerConfig(batch_size=8)
        if self.backend is not None and trainer_config.backend is None:
            trainer_config = replace(trainer_config, backend=self.backend)
        self.trainer_config = trainer_config
        self.population = population
        self.retire_tol = retire_tol
        self.retire_patience = retire_patience
        self.retire_diverged_epochs = retire_diverged_epochs

    def descend(self, u_train, y_train, *, population: Optional[int] = None,
                n_classes: Optional[int] = None) -> PopulationResult:
        """Run only the fused descent phase (no endpoint scoring).

        Returns the merged :class:`~repro.core.population.PopulationResult`
        over all chunks; members keep their population-wide indices.
        """
        if self.extractor.reservoir is None:
            raise RuntimeError("extractor must be fitted before descent")
        if n_classes is None:
            n_classes = int(np.asarray(y_train).max()) + 1
        k = resolve_population(
            population if population is not None else self.population)
        a0, b0 = draw_starting_points(
            self._rng, k, self.a_range, self.b_range,
            init_A=self.trainer_config.init_A,
            init_B=self.trainer_config.init_B,
        )
        shuffle_seed = int(self._rng.integers(2**31 - 1))
        u_std = self.extractor.standardizer.transform(u_train)
        return chunked_population_fit(
            self.extractor.reservoir,
            n_classes,
            u_std,
            y_train,
            a0,
            b0,
            dprr=self.extractor.dprr,
            config=self.trainer_config,
            shuffle_seed=shuffle_seed,
            block_size=resolve_candidate_block_size(self.candidate_block_size),
            retire_tol=self.retire_tol,
            retire_patience=self.retire_patience,
            retire_diverged_epochs=self.retire_diverged_epochs,
        )

    def search(
        self, u_train, y_train, u_test, y_test, *,
        population: Optional[int] = None,
        n_classes: Optional[int] = None,
    ) -> DescentOutcome:
        """Descend ``population`` restarts, then score every endpoint.

        The endpoint scoring pays the identical per-candidate protocol as
        grid/random/annealing (beta selection on a holdout, then a test
        score), submitted through the shared executor, so a
        :class:`DescentOutcome` is directly comparable to every other
        :class:`SearchOutcome` of this module.
        """
        start = time.perf_counter()
        y_train = np.asarray(y_train)
        if n_classes is None:
            n_classes = int(max(y_train.max(), np.asarray(y_test).max())) + 1
        split_seed = int(self._rng.integers(2**31 - 1))
        descent = self.descend(u_train, y_train, population=population,
                               n_classes=n_classes)
        training_seconds = descent.elapsed_seconds
        # endpoint scoring: one submission of all K endpoints sharing ONE
        # holdout split — the same convention as every sibling search (one
        # fixed split per grid level / random budget) — so members are
        # ranked by endpoint quality, not split luck, and the records are
        # identical under any executor
        context = self._make_context(u_train, y_train, u_test, y_test,
                                     n_classes)
        candidates = [
            Candidate(index=m.index, A=m.result.A, B=m.result.B,
                      seed=split_seed)
            for m in descent.members
        ]
        report = self.executor.run(context, candidates)
        evaluations = report.evaluations()
        return DescentOutcome(
            best=best_evaluation(evaluations),
            evaluations=evaluations,
            total_seconds=time.perf_counter() - start,
            compute_seconds=report.compute_seconds,
            descent=descent,
            training_seconds=training_seconds,
        )
