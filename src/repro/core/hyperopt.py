"""Alternative hyperparameter optimizers for the (A, B, beta) search.

The paper argues grid search is the *de facto* DFR tuning method and
replaces it with backpropagation.  For completeness the library also ships
the two black-box baselines a practitioner would reach for before gradients
existed — both operate through the identical
:func:`~repro.core.pipeline.evaluate_fixed_params` protocol used by the
grid search and by the classifier, so results are directly comparable:

* :class:`RandomSearch` — log-uniform sampling of the paper's search box
  (Bergstra & Bengio's argument: beats grids of the same budget when the
  landscape's effective dimensionality is low);
* :class:`SimulatedAnnealing` — local log-space perturbations with a
  geometric temperature schedule; a cheap trajectory-based baseline that,
  unlike recursive grid zooming, can escape a misleading basin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grid_search import PAPER_A_RANGE, PAPER_B_RANGE
from repro.core.pipeline import (
    DFRFeatureExtractor,
    FixedParamsEvaluation,
    evaluate_fixed_params,
)
from repro.readout.ridge import PAPER_BETAS
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SearchOutcome", "RandomSearch", "SimulatedAnnealing"]


def _better(candidate: FixedParamsEvaluation,
            incumbent: Optional[FixedParamsEvaluation]) -> bool:
    """Selection order shared with the grid search (val acc, then loss)."""
    if incumbent is None:
        return True
    return (candidate.val_accuracy, -candidate.val_loss) > (
        incumbent.val_accuracy, -incumbent.val_loss
    )


@dataclass
class SearchOutcome:
    """Result of a black-box (A, B, beta) search."""

    best: FixedParamsEvaluation
    evaluations: List[FixedParamsEvaluation] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)


class _BlackBoxSearch:
    """Shared plumbing: the evaluation closure and the search box."""

    def __init__(
        self,
        extractor: DFRFeatureExtractor,
        *,
        a_range: Tuple[float, float] = PAPER_A_RANGE,
        b_range: Tuple[float, float] = PAPER_B_RANGE,
        betas: Sequence[float] = PAPER_BETAS,
        val_fraction: float = 0.2,
        feature_batch_size: Optional[int] = None,
        seed: SeedLike = None,
    ):
        self.extractor = extractor
        self.a_range = tuple(a_range)
        self.b_range = tuple(b_range)
        self.betas = tuple(betas)
        self.val_fraction = float(val_fraction)
        #: chunk size for the per-candidate reservoir sweeps; bounds peak
        #: trace memory on large datasets without changing any score
        self.feature_batch_size = feature_batch_size
        self._rng = ensure_rng(seed)

    def _evaluate(self, data, log_a: float, log_b: float,
                  split_seed: int) -> FixedParamsEvaluation:
        u_train, y_train, u_test, y_test, n_classes = data
        return evaluate_fixed_params(
            self.extractor, u_train, y_train, u_test, y_test,
            10.0**log_a, 10.0**log_b,
            betas=self.betas, val_fraction=self.val_fraction,
            n_classes=n_classes, feature_batch_size=self.feature_batch_size,
            seed=split_seed,
        )


class RandomSearch(_BlackBoxSearch):
    """Log-uniform random sampling over the paper's search box."""

    def search(
        self, u_train, y_train, u_test, y_test, *, n_samples: int = 25,
        n_classes: Optional[int] = None,
    ) -> SearchOutcome:
        """Draw ``n_samples`` points and return the incumbent best."""
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        start = time.perf_counter()
        split_seed = int(self._rng.integers(2**31 - 1))
        data = (u_train, y_train, u_test, y_test, n_classes)
        evaluations = []
        best = None
        for _ in range(n_samples):
            log_a = self._rng.uniform(*self.a_range)
            log_b = self._rng.uniform(*self.b_range)
            ev = self._evaluate(data, log_a, log_b, split_seed)
            evaluations.append(ev)
            if _better(ev, best):
                best = ev
        return SearchOutcome(
            best=best,
            evaluations=evaluations,
            total_seconds=time.perf_counter() - start,
        )


class SimulatedAnnealing(_BlackBoxSearch):
    """Annealed local search in log-parameter space.

    Proposals perturb ``(log A, log B)`` with Gaussian steps whose scale
    and acceptance temperature decay geometrically; acceptance uses the
    validation-loss criterion (lower is better), with the usual Metropolis
    rule for uphill moves.
    """

    def search(
        self, u_train, y_train, u_test, y_test, *, n_steps: int = 30,
        initial_temperature: float = 0.5, cooling: float = 0.9,
        step_scale: float = 0.5, n_classes: Optional[int] = None,
    ) -> SearchOutcome:
        """Run ``n_steps`` of annealing from the center of the box."""
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must lie in (0, 1), got {cooling}")
        start = time.perf_counter()
        split_seed = int(self._rng.integers(2**31 - 1))
        data = (u_train, y_train, u_test, y_test, n_classes)

        log_a = 0.5 * (self.a_range[0] + self.a_range[1])
        log_b = 0.5 * (self.b_range[0] + self.b_range[1])
        current = self._evaluate(data, log_a, log_b, split_seed)
        evaluations = [current]
        best = current
        temperature = float(initial_temperature)
        scale = float(step_scale)
        for _ in range(n_steps):
            cand_a = np.clip(log_a + self._rng.normal(scale=scale),
                             *self.a_range)
            cand_b = np.clip(log_b + self._rng.normal(scale=scale),
                             *self.b_range)
            candidate = self._evaluate(data, float(cand_a), float(cand_b),
                                       split_seed)
            evaluations.append(candidate)
            delta = candidate.val_loss - current.val_loss
            accept = delta <= 0 or (
                np.isfinite(delta)
                and self._rng.random() < np.exp(-delta / max(temperature, 1e-12))
            )
            if accept:
                log_a, log_b = float(cand_a), float(cand_b)
                current = candidate
            if _better(candidate, best):
                best = candidate
            temperature *= cooling
            scale *= cooling
        return SearchOutcome(
            best=best,
            evaluations=evaluations,
            total_seconds=time.perf_counter() - start,
        )
