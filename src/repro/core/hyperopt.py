"""Alternative hyperparameter optimizers for the (A, B, beta) search.

The paper argues grid search is the *de facto* DFR tuning method and
replaces it with backpropagation.  For completeness the library also ships
the two black-box baselines a practitioner would reach for before gradients
existed — both operate through the identical
:func:`~repro.core.pipeline.evaluate_fixed_params` protocol used by the
grid search and by the classifier, so results are directly comparable:

* :class:`RandomSearch` — log-uniform sampling of the paper's search box
  (Bergstra & Bengio's argument: beats grids of the same budget when the
  landscape's effective dimensionality is low);
* :class:`SimulatedAnnealing` — local log-space perturbations with a
  geometric temperature schedule; a cheap trajectory-based baseline that,
  unlike recursive grid zooming, can escape a misleading basin.

Both submit their candidates through the shared execution layer
(:mod:`repro.exec`).  Random search fans its whole sample budget out in one
submission; annealing is inherently sequential, but its speculative mode
(``speculative > 1``) proposes a batch of candidates from the current point
each round, evaluates them concurrently, and accepts the first of them by
Metropolis order — trading some wasted evaluations for wall-clock when
workers are available.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grid_search import PAPER_A_RANGE, PAPER_B_RANGE
from repro.core.pipeline import DFRFeatureExtractor, FixedParamsEvaluation
from repro.core.selection import better_evaluation
from repro.exec import Candidate, CandidateExecutor, EvaluationContext, make_executor
from repro.readout.ridge import PAPER_BETAS
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SearchOutcome", "RandomSearch", "SimulatedAnnealing"]


@dataclass
class SearchOutcome:
    """Result of a black-box (A, B, beta) search.

    ``total_seconds`` is the wall-clock of the whole search (including
    executor overhead); ``compute_seconds`` sums the per-candidate
    evaluation times across workers, so speedup under parallel execution is
    measurable.  ``n_wasted`` counts speculative annealing proposals that
    were evaluated but discarded because an earlier proposal of the same
    batch was accepted — real evaluations paid for, so it is per-executor:
    lazily-fed executors (serial) never waste any, eagerly-fed ones
    (multiprocess, vectorized) report the actual discarded count.
    """

    best: FixedParamsEvaluation
    evaluations: List[FixedParamsEvaluation] = field(default_factory=list)
    total_seconds: float = 0.0
    compute_seconds: float = 0.0
    n_wasted: int = 0

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)


class _BlackBoxSearch:
    """Shared plumbing: the evaluation context, executor, and search box."""

    def __init__(
        self,
        extractor: DFRFeatureExtractor,
        *,
        a_range: Tuple[float, float] = PAPER_A_RANGE,
        b_range: Tuple[float, float] = PAPER_B_RANGE,
        betas: Sequence[float] = PAPER_BETAS,
        val_fraction: float = 0.2,
        feature_batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        executor_kind: Optional[str] = None,
        candidate_block_size: Optional[int] = None,
        executor: Optional[CandidateExecutor] = None,
        seed: SeedLike = None,
    ):
        self.extractor = extractor
        self.a_range = tuple(a_range)
        self.b_range = tuple(b_range)
        self.betas = tuple(betas)
        self.val_fraction = float(val_fraction)
        #: chunk size for the per-candidate reservoir sweeps; bounds peak
        #: trace memory on large datasets without changing any score
        self.feature_batch_size = feature_batch_size
        self.executor = (executor if executor is not None
                         else make_executor(workers, backend=backend,
                                            kind=executor_kind,
                                            candidate_block_size=candidate_block_size))
        self._rng = ensure_rng(seed)

    def _make_context(self, u_train, y_train, u_test, y_test,
                      n_classes) -> EvaluationContext:
        return EvaluationContext.from_data(
            self.extractor.snapshot(),
            u_train, y_train, u_test, y_test,
            betas=self.betas,
            val_fraction=self.val_fraction,
            n_classes=n_classes,
            feature_batch_size=self.feature_batch_size,
        )


class RandomSearch(_BlackBoxSearch):
    """Log-uniform random sampling over the paper's search box."""

    def search(
        self, u_train, y_train, u_test, y_test, *, n_samples: int = 25,
        n_classes: Optional[int] = None,
    ) -> SearchOutcome:
        """Draw ``n_samples`` points and return the incumbent best.

        All points are drawn up front (the draw order matches the historical
        serial implementation) and submitted as one batch, so the whole
        sample budget fans out across workers.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        start = time.perf_counter()
        split_seed = int(self._rng.integers(2**31 - 1))
        candidates = []
        for i in range(n_samples):
            log_a = self._rng.uniform(*self.a_range)
            log_b = self._rng.uniform(*self.b_range)
            candidates.append(Candidate(
                index=i, A=float(10.0**log_a), B=float(10.0**log_b),
                seed=split_seed,
            ))
        context = self._make_context(u_train, y_train, u_test, y_test, n_classes)
        report = self.executor.run(context, candidates)
        evaluations = report.evaluations()
        best = None
        for ev in evaluations:
            if better_evaluation(ev, best):
                best = ev
        return SearchOutcome(
            best=best,
            evaluations=evaluations,
            total_seconds=time.perf_counter() - start,
            compute_seconds=report.compute_seconds,
        )


class SimulatedAnnealing(_BlackBoxSearch):
    """Annealed local search in log-parameter space.

    Proposals perturb ``(log A, log B)`` with Gaussian steps whose scale
    and acceptance temperature decay geometrically; acceptance uses the
    validation-loss criterion (lower is better), with the usual Metropolis
    rule for uphill moves.
    """

    def search(
        self, u_train, y_train, u_test, y_test, *, n_steps: int = 30,
        initial_temperature: float = 0.5, cooling: float = 0.9,
        step_scale: float = 0.5, speculative: int = 1,
        n_classes: Optional[int] = None,
    ) -> SearchOutcome:
        """Run ``n_steps`` of annealing from the center of the box.

        ``speculative`` proposes that many candidates per round, all from
        the current point, with the step scale and Metropolis temperature
        each proposal *would* have seen serially.  The batch is evaluated
        concurrently, then scanned in proposal order: the first accepted
        proposal ends the round and later (now invalid) evaluations of the
        batch are discarded as waste.  ``speculative=1`` reproduces the
        serial trajectory exactly; larger values change the trajectory only
        through which proposals are drawn, never the acceptance rule.

        With an executor that evaluates candidates one at a time anyway
        (serial, or a single-worker pool) up-front evaluation of the batch
        would be pure waste, so proposals are then evaluated lazily one by
        one during the scan — same trajectory, no discarded work, and
        ``n_wasted`` stays 0.  Batch-preferring executors (multiprocess
        with real workers, vectorized candidate fusion) evaluate the whole
        batch eagerly; the proposals invalidated by an earlier acceptance
        were then genuinely computed, and ``n_wasted`` counts exactly
        those.
        """
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must lie in (0, 1), got {cooling}")
        if speculative < 1:
            raise ValueError(f"speculative must be >= 1, got {speculative}")
        start = time.perf_counter()
        split_seed = int(self._rng.integers(2**31 - 1))
        context = self._make_context(u_train, y_train, u_test, y_test, n_classes)

        log_a = 0.5 * (self.a_range[0] + self.a_range[1])
        log_b = 0.5 * (self.b_range[0] + self.b_range[1])
        report = self.executor.run(context, [
            Candidate(index=0, A=float(10.0**log_a), B=float(10.0**log_b),
                      seed=split_seed),
        ])
        compute_seconds = report.compute_seconds
        current = report.evaluations()[0]
        evaluations = [current]
        best = current
        temperature = float(initial_temperature)
        scale = float(step_scale)
        steps_done = 0
        next_index = 1
        n_wasted = 0
        while steps_done < n_steps:
            k = min(speculative, n_steps - steps_done)
            # propose k candidates from the current point, each with the
            # scale (and remembered temperature) of the serial step it
            # speculates for
            proposals = []
            temps = []
            scale_j, temp_j = scale, temperature
            for _ in range(k):
                cand_a = float(np.clip(log_a + self._rng.normal(scale=scale_j),
                                       *self.a_range))
                cand_b = float(np.clip(log_b + self._rng.normal(scale=scale_j),
                                       *self.b_range))
                proposals.append((cand_a, cand_b))
                temps.append(temp_j)
                scale_j *= cooling
                temp_j *= cooling
            candidates = [
                Candidate(index=next_index + j, A=float(10.0**a), B=float(10.0**b),
                          seed=split_seed)
                for j, (a, b) in enumerate(proposals)
            ]
            next_index += k
            # speculation only pays off when a batch submission buys the
            # executor something — process-level overlap (multiprocess) or
            # candidate-axis fusion (vectorized).  Executors that evaluate
            # one candidate at a time anyway (serial, backend) are handed
            # proposals lazily during the scan instead, so proposals past
            # an acceptance are never computed at all and n_wasted stays
            # zero; batch-preferring executors evaluate the whole batch
            # eagerly and the discarded tail counts as real waste.
            lazy = not getattr(self.executor, "prefers_batch", False)
            if lazy:
                batch = None
            else:
                report = self.executor.run(context, candidates)
                compute_seconds += report.compute_seconds
                batch = report.evaluations()
            # Metropolis scan in proposal order; the first acceptance
            # invalidates the rest of the batch
            for j in range(k):
                if lazy:
                    report = self.executor.run(context, [candidates[j]])
                    compute_seconds += report.compute_seconds
                    candidate = report.evaluations()[0]
                else:
                    candidate = batch[j]
                evaluations.append(candidate)
                steps_done += 1
                delta = candidate.val_loss - current.val_loss
                accept = delta <= 0 or (
                    np.isfinite(delta)
                    and self._rng.random() < np.exp(-delta / max(temps[j], 1e-12))
                )
                if better_evaluation(candidate, best):
                    best = candidate
                temperature *= cooling
                scale *= cooling
                if accept:
                    log_a, log_b = proposals[j]
                    current = candidate
                    if not lazy:
                        n_wasted += k - (j + 1)
                    break
        return SearchOutcome(
            best=best,
            evaluations=evaluations,
            total_seconds=time.perf_counter() - start,
            compute_seconds=compute_seconds,
            n_wasted=n_wasted,
        )
