"""The paper's contribution: backprop-based DFR parameter optimization."""

from repro.core.backprop import BackpropEngine, DFRGradients, reservoir_backward
from repro.core.grid_search import (
    PAPER_A_RANGE,
    PAPER_B_RANGE,
    GridLevelResult,
    GridSearch,
    GridSearchOutcome,
    RecursiveGridSearch,
    RecursiveLevel,
    grid_values,
)
from repro.core.hyperopt import RandomSearch, SearchOutcome, SimulatedAnnealing
from repro.core.optimizer import (
    Adam,
    ConstantSchedule,
    MomentumSGD,
    SGD,
    StepSchedule,
    clip_gradients,
    get_optimizer,
    paper_output_schedule,
    paper_reservoir_schedule,
)
from repro.core.pipeline import (
    DFRClassifier,
    DFRFeatureExtractor,
    ExtractorConfig,
    FixedParamsEvaluation,
    evaluate_fixed_params,
)
from repro.core.selection import best_evaluation, better_evaluation, selection_key
from repro.core.trainer import (
    BackpropTrainer,
    EpochStats,
    TrainerConfig,
    TrainingResult,
)

__all__ = [
    "BackpropEngine",
    "DFRGradients",
    "reservoir_backward",
    "PAPER_A_RANGE",
    "PAPER_B_RANGE",
    "GridLevelResult",
    "GridSearch",
    "GridSearchOutcome",
    "RecursiveGridSearch",
    "RecursiveLevel",
    "grid_values",
    "RandomSearch",
    "SearchOutcome",
    "SimulatedAnnealing",
    "Adam",
    "ConstantSchedule",
    "MomentumSGD",
    "SGD",
    "StepSchedule",
    "clip_gradients",
    "get_optimizer",
    "paper_output_schedule",
    "paper_reservoir_schedule",
    "DFRClassifier",
    "DFRFeatureExtractor",
    "ExtractorConfig",
    "FixedParamsEvaluation",
    "evaluate_fixed_params",
    "best_evaluation",
    "better_evaluation",
    "selection_key",
    "BackpropTrainer",
    "EpochStats",
    "TrainerConfig",
    "TrainingResult",
]
