"""End-to-end DFR classification pipeline (paper Sec. 4 protocol).

:class:`DFRClassifier` glues the full stack together:

1. fit a per-channel standardizer on the training inputs;
2. draw the fixed random input mask;
3. optimize ``A``, ``B`` (and a softmax readout) by truncated
   backpropagation + SGD (:class:`~repro.core.trainer.BackpropTrainer`);
4. re-train the output layer by ridge regression, selecting the
   regularizer ``beta`` from the paper's four candidates by holdout
   cross-entropy;
5. predict with the ridge readout.

:class:`DFRFeatureExtractor` (mask + reservoir + DPRR over standardized
inputs) and :func:`evaluate_fixed_params` are shared with the grid-search
baseline, so backpropagation and grid search score candidate ``(A, B,
beta)`` triples through *identical* code paths — the fairness requirement of
the Table 1 comparison.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import default_backend, resolve_backend
from repro.core.population import (
    PopulationResult,
    PopulationTrainer,
    chunked_population_fit,
    draw_starting_points,
    resolve_population,
)
from repro.core.trainer import BackpropTrainer, TrainerConfig, TrainingResult
from repro.data.preprocessing import ChannelStandardizer
from repro.readout.metrics import accuracy_score
from repro.readout.ridge import PAPER_BETAS, RidgeSelection, select_beta
from repro.representation.dprr import DPRR
from repro.reservoir.masking import InputMask
from repro.reservoir.modular import ModularDFR
from repro.reservoir.nonlinearity import NONLINEARITIES, get_nonlinearity
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import as_batch, ensure_1d_labels

__all__ = [
    "DFRFeatureExtractor",
    "ExtractorConfig",
    "CONFIG_SCHEMA_VERSION",
    "DFRClassifier",
    "FixedParamsEvaluation",
    "evaluate_fixed_params",
    "evaluate_fixed_params_block",
]

#: the paper's reservoir size
PAPER_N_NODES = 30

#: schema version of :meth:`ExtractorConfig.to_dict`; bump on any field
#: change so persisted snapshots from other releases fail loudly in
#: :meth:`ExtractorConfig.from_dict` instead of mis-deserializing
CONFIG_SCHEMA_VERSION = 1


class DFRFeatureExtractor:
    """Standardizer + mask + modular DFR + DPRR, with ``(A, B)`` left free.

    Build once per dataset (the mask and standardizer are fixed), then call
    :meth:`features` for any candidate ``(A, B)`` — this is the inner loop
    of both grid search and classifier inference.
    """

    def __init__(
        self,
        n_nodes: int = PAPER_N_NODES,
        *,
        nonlinearity="identity",
        normalize: Optional[str] = None,
        mask_kind: str = "binary",
        mask_gamma: float = 1.0,
        feature_batch_size: Optional[int] = None,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
        seed: SeedLike = None,
    ):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if mask_kind not in ("binary", "uniform"):
            raise ValueError(f"mask_kind must be 'binary' or 'uniform', got {mask_kind!r}")
        if feature_batch_size is not None and feature_batch_size < 1:
            raise ValueError(
                f"feature_batch_size must be None or >= 1, got {feature_batch_size}"
            )
        self.n_nodes = int(n_nodes)
        self.nonlinearity = get_nonlinearity(nonlinearity)
        self.dprr = DPRR(normalize=normalize)
        self.mask_kind = mask_kind
        self.mask_gamma = float(mask_gamma)
        #: when set, feature extraction runs the reservoir in chunks of this
        #: many samples so the peak trace storage is bounded at
        #: ``feature_batch_size * (T+1) * N_x`` regardless of the batch size
        self.feature_batch_size = feature_batch_size
        #: working float precision ("float64"/"float32"); None defers to
        #: the spec's @dtype suffix / REPRO_DTYPE (float64 when unset)
        self.dtype = dtype
        #: array backend spec for the reservoir/DPRR sweeps; None defers to
        #: the REPRO_BACKEND environment variable (NumPy when unset).  The
        #: spec string (not the resolved object) is what snapshots carry.
        self.set_backend(backend)
        self._rng = ensure_rng(seed)
        self.standardizer = ChannelStandardizer()
        self.reservoir: Optional[ModularDFR] = None

    @property
    def n_features(self) -> int:
        """DPRR width ``N_x (N_x + 1)``."""
        return self.dprr.n_features(self.n_nodes)

    def set_backend(self, backend: Optional[str]) -> None:
        """(Re)bind the array backend executing the feature sweeps.

        ``backend`` is a spec string (``"numpy"``, ``"torch:cuda:0"``, ...)
        or ``None`` for the ``REPRO_BACKEND`` environment default; the
        resolved :class:`~repro.backend.ArrayBackend` is cached on the
        extractor.  Used by the execution layer to re-target a rebuilt
        extractor inside a :class:`~repro.exec.BackendExecutor`.
        """
        self.backend_spec = backend
        self.backend = (
            default_backend(dtype=self.dtype) if backend is None
            else resolve_backend(backend, dtype=self.dtype)
        )

    def fit(self, u_train: np.ndarray) -> "DFRFeatureExtractor":
        """Fit the standardizer and draw the mask from the training inputs."""
        u_train = as_batch(u_train)
        self.standardizer.fit(u_train)
        n_channels = u_train.shape[2]
        factory = InputMask.binary if self.mask_kind == "binary" else InputMask.uniform
        mask = factory(self.n_nodes, n_channels, gamma=self.mask_gamma, seed=self._rng)
        self.reservoir = ModularDFR(mask, nonlinearity=self.nonlinearity)
        return self

    def features(
        self, u: np.ndarray, A, B,
        *, batch_size: Optional[int] = None,
    ) -> tuple:
        """DPRR features for a batch under candidate parameters.

        Returns ``(features, diverged)`` where ``diverged`` is the per-sample
        flag from the reservoir run; rows flagged as diverged contain
        non-finite values and must not reach the ridge solver.

        Vector-valued ``A``/``B`` (length ``K``) sweep K candidates over
        the batch in one fused reservoir program — standardization and the
        mask drive are computed once for the whole block — returning
        ``(K, N, N_r)`` features and ``(K, N)`` divergence flags.  On the
        NumPy backend each candidate row is bit-identical to a scalar call
        with that candidate (pinned by tests).

        ``batch_size`` (default: the extractor's ``feature_batch_size``)
        chunks the reservoir sweep over samples, bounding peak memory; the
        features are identical either way since samples are independent.

        The sweep runs on the extractor's array backend; the returned
        arrays are always NumPy (the ridge solver downstream is NumPy), so
        the device boundary sits exactly here.
        """
        if self.reservoir is None:
            raise RuntimeError("extractor must be fitted before use")
        xb = self.backend
        u_std = as_batch(self.standardizer.transform(u))
        if batch_size is None:
            batch_size = self.feature_batch_size
        n = u_std.shape[0]
        if batch_size is None or n <= batch_size:
            trace = self.reservoir.run(u_std, A, B, backend=xb)
            feats = xb.to_numpy(self.dprr.features(trace, backend=xb))
            return feats, trace.diverged
        stacked = not (np.ndim(A) == 0 and np.ndim(B) == 0)
        lead = (np.broadcast(np.atleast_1d(A), np.atleast_1d(B)).size,) if stacked else ()
        feats = np.empty(lead + (n, self.n_features))
        diverged = np.empty(lead + (n,), dtype=bool)
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            trace = self.reservoir.run(u_std[start:stop], A, B, backend=xb)
            feats[..., start:stop, :] = xb.to_numpy(
                self.dprr.features(trace, backend=xb))
            diverged[..., start:stop] = trace.diverged
        return feats, diverged

    def snapshot(self) -> "ExtractorConfig":
        """Freeze the fitted state into a cheaply picklable :class:`ExtractorConfig`.

        The config carries only plain arrays and scalars (mask matrix,
        standardizer statistics, nonlinearity, DPRR normalization) — no RNG
        state, no live reservoir — so it is what the execution layer ships
        to worker processes instead of the extractor itself.
        """
        if self.reservoir is None or self.standardizer.mean_ is None:
            raise RuntimeError("extractor must be fitted before snapshot()")
        return ExtractorConfig(
            n_nodes=self.n_nodes,
            nonlinearity=self.nonlinearity,
            normalize=self.dprr.normalize,
            mask_kind=self.mask_kind,
            mask_gamma=self.mask_gamma,
            feature_batch_size=self.feature_batch_size,
            mask_matrix=np.array(self.reservoir.mask.matrix, copy=True),
            mean=np.array(self.standardizer.mean_, copy=True),
            std=np.array(self.standardizer.std_, copy=True),
            backend=self.backend_spec,
            dtype=self.dtype,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DFRFeatureExtractor(n_nodes={self.n_nodes}, "
            f"nonlinearity={self.nonlinearity!r}, mask_kind={self.mask_kind!r})"
        )


@dataclass
class ExtractorConfig:
    """Picklable snapshot of a fitted :class:`DFRFeatureExtractor`.

    Rebuilding via :meth:`build` restores a functionally identical extractor
    (same mask, same standardizer statistics, same nonlinearity and DPRR
    settings) without re-fitting, so a worker process reconstructs the exact
    feature pipeline of the parent from a few small arrays.
    """

    n_nodes: int
    nonlinearity: object
    normalize: Optional[str]
    mask_kind: str
    mask_gamma: float
    feature_batch_size: Optional[int]
    mask_matrix: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    #: array-backend *spec string* (never a live backend — specs pickle,
    #: device handles do not); None re-resolves REPRO_BACKEND on build,
    #: so worker processes honour their own environment
    backend: Optional[str] = None
    #: working float precision ("float64"/"float32"); None defers to the
    #: spec's @dtype suffix / REPRO_DTYPE on build
    dtype: Optional[str] = None
    #: schema version stamped on every snapshot; :meth:`from_dict` rejects
    #: versions this release does not know how to read
    version: int = CONFIG_SCHEMA_VERSION

    def to_dict(self) -> dict:
        """A JSON-serializable dict of this snapshot (exact round trip).

        Arrays become nested lists and the nonlinearity its registry name
        plus constructor parameters; Python's ``json`` round-trips finite
        floats exactly, so :meth:`from_dict` of the serialized form rebuilds
        a bit-identical config.  This is the on-disk representation the
        serving layer's :func:`repro.serve.save_model` persists.
        """
        nl = get_nonlinearity(self.nonlinearity)
        return {
            "version": int(self.version),
            "n_nodes": int(self.n_nodes),
            "nonlinearity": {"name": nl.name, "params": dict(vars(nl))},
            "normalize": self.normalize,
            "mask_kind": self.mask_kind,
            "mask_gamma": float(self.mask_gamma),
            "feature_batch_size": self.feature_batch_size,
            "mask_matrix": np.asarray(self.mask_matrix,
                                      dtype=np.float64).tolist(),
            "mean": np.asarray(self.mean, dtype=np.float64).tolist(),
            "std": np.asarray(self.std, dtype=np.float64).tolist(),
            "backend": self.backend,
            "dtype": self.dtype,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExtractorConfig":
        """Rebuild a config from :meth:`to_dict` output — strictly.

        Unknown keys, missing keys and unsupported schema versions all
        raise ``ValueError``: a persisted snapshot from an incompatible
        release must fail loudly here rather than build a subtly wrong
        extractor.
        """
        if not isinstance(data, dict):
            raise TypeError(
                f"ExtractorConfig.from_dict needs a dict, got "
                f"{type(data).__name__}"
            )
        expected = {
            "version", "n_nodes", "nonlinearity", "normalize", "mask_kind",
            "mask_gamma", "feature_batch_size", "mask_matrix", "mean", "std",
            "backend", "dtype",
        }
        unknown = sorted(set(data) - expected)
        missing = sorted(expected - set(data))
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {unknown}")
            if missing:
                parts.append(f"missing keys {missing}")
            raise ValueError(
                f"ExtractorConfig snapshot does not match schema version "
                f"{CONFIG_SCHEMA_VERSION}: {'; '.join(parts)}"
            )
        version = data["version"]
        if version != CONFIG_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ExtractorConfig schema version {version!r}; "
                f"this release reads version {CONFIG_SCHEMA_VERSION} only"
            )
        nl_spec = data["nonlinearity"]
        if isinstance(nl_spec, dict):
            extra = sorted(set(nl_spec) - {"name", "params"})
            if extra or "name" not in nl_spec:
                raise ValueError(
                    f"nonlinearity entry must be {{'name', 'params'}}, got "
                    f"keys {sorted(nl_spec)}"
                )
            nl_name = nl_spec["name"]
            if nl_name not in NONLINEARITIES:
                raise ValueError(
                    f"unknown nonlinearity {nl_name!r}; known: "
                    f"{sorted(NONLINEARITIES)}"
                )
            nonlinearity = NONLINEARITIES[nl_name](**nl_spec.get("params", {}))
        else:
            nonlinearity = get_nonlinearity(nl_spec)
        feature_batch_size = data["feature_batch_size"]
        return cls(
            n_nodes=int(data["n_nodes"]),
            nonlinearity=nonlinearity,
            normalize=data["normalize"],
            mask_kind=data["mask_kind"],
            mask_gamma=float(data["mask_gamma"]),
            feature_batch_size=(None if feature_batch_size is None
                                else int(feature_batch_size)),
            mask_matrix=np.asarray(data["mask_matrix"], dtype=np.float64),
            mean=np.asarray(data["mean"], dtype=np.float64),
            std=np.asarray(data["std"], dtype=np.float64),
            backend=data["backend"],
            dtype=data["dtype"],
            version=int(version),
        )

    def build(self) -> DFRFeatureExtractor:
        """Reconstruct the fitted extractor this config was snapshot from."""
        extractor = DFRFeatureExtractor(
            self.n_nodes,
            nonlinearity=self.nonlinearity,
            normalize=self.normalize,
            mask_kind=self.mask_kind,
            mask_gamma=self.mask_gamma,
            feature_batch_size=self.feature_batch_size,
            backend=self.backend,
            dtype=self.dtype,
        )
        extractor.standardizer.mean_ = np.array(self.mean, copy=True)
        extractor.standardizer.std_ = np.array(self.std, copy=True)
        extractor.reservoir = ModularDFR(
            InputMask(np.array(self.mask_matrix, copy=True)),
            nonlinearity=extractor.nonlinearity,
        )
        return extractor


@dataclass
class FixedParamsEvaluation:
    """Scores of one ``(A, B)`` candidate under the shared protocol."""

    A: float
    B: float
    beta: float
    val_loss: float
    val_accuracy: float
    test_accuracy: float
    diverged: bool
    #: populated when the candidate failed outright (e.g. a worker raised)
    #: rather than merely diverging numerically
    error: Optional[str] = None

    def __eq__(self, other) -> bool:
        # field-wise equality with NaN == NaN: diverged/failed sentinels
        # carry beta=nan, and the serial-vs-parallel bit-identity checks
        # must treat two such identical sentinels as equal
        if not isinstance(other, FixedParamsEvaluation):
            return NotImplemented

        def same(a, b):
            if isinstance(a, float) and isinstance(b, float):
                return a == b or (a != a and b != b)
            return a == b

        return all(
            same(getattr(self, name), getattr(other, name))
            for name in ("A", "B", "beta", "val_loss", "val_accuracy",
                         "test_accuracy", "diverged", "error")
        )

    @classmethod
    def failed(cls, A: float, B: float, error: Optional[str] = None
               ) -> "FixedParamsEvaluation":
        """A sentinel evaluation for a candidate that could not be scored.

        Failed candidates carry infinite loss and zero accuracy so every
        selection rule ranks them last, and ``diverged=True`` so existing
        divergence handling treats them as unusable.
        """
        return cls(
            A=float(A), B=float(B), beta=float("nan"),
            val_loss=float("inf"), val_accuracy=0.0, test_accuracy=0.0,
            diverged=True, error=error,
        )


def evaluate_fixed_params(
    extractor: Union[DFRFeatureExtractor, ExtractorConfig],
    u_train: np.ndarray,
    y_train: np.ndarray,
    u_test: np.ndarray,
    y_test: np.ndarray,
    A: float,
    B: float,
    *,
    betas: Sequence[float] = PAPER_BETAS,
    val_fraction: float = 0.2,
    n_classes: Optional[int] = None,
    feature_batch_size: Optional[int] = None,
    seed: SeedLike = None,
) -> FixedParamsEvaluation:
    """Evaluate fixed reservoir parameters exactly like the pipeline would.

    Runs the reservoir, selects ``beta`` by holdout cross-entropy, refits on
    the full training set and scores the test set.  Diverged reservoirs are
    reported with infinite loss and zero accuracy instead of raising, so a
    grid sweep can cross unstable corners of the search box.
    ``feature_batch_size`` chunks the reservoir sweeps (identical features,
    bounded memory) — unrelated to the SGD minibatch size of
    :class:`~repro.core.trainer.TrainerConfig`.

    ``extractor`` may be a live (fitted) :class:`DFRFeatureExtractor` or an
    :class:`ExtractorConfig` snapshot; the two paths compute bit-identical
    results, which is what lets worker processes receive the small config
    instead of the live object.
    """
    if isinstance(extractor, ExtractorConfig):
        extractor = extractor.build()
    y_train = ensure_1d_labels(y_train)
    y_test = ensure_1d_labels(y_test)
    if n_classes is None:
        n_classes = int(max(y_train.max(), y_test.max())) + 1
    f_train, div_train = extractor.features(
        u_train, A, B, batch_size=feature_batch_size
    )
    f_test, div_test = extractor.features(
        u_test, A, B, batch_size=feature_batch_size
    )
    return _score_fixed_params(
        f_train, f_test, y_train, y_test, A, B,
        diverged=bool(div_train.any() or div_test.any()),
        betas=betas, val_fraction=val_fraction, n_classes=n_classes,
        seed=seed,
    )


def _score_fixed_params(
    f_train: np.ndarray,
    f_test: np.ndarray,
    y_train: np.ndarray,
    y_test: np.ndarray,
    A: float,
    B: float,
    *,
    diverged: bool,
    betas: Sequence[float],
    val_fraction: float,
    n_classes: int,
    seed: SeedLike,
) -> FixedParamsEvaluation:
    """Score one candidate's feature matrices (the shared protocol tail).

    This single function builds the evaluation record for both the serial
    path (:func:`evaluate_fixed_params`) and each row of the fused block
    path (:func:`evaluate_fixed_params_block`) — which is what keeps the
    two bit-identical by construction.
    """
    if diverged:
        return FixedParamsEvaluation(
            A=A, B=B, beta=float("nan"), val_loss=float("inf"),
            val_accuracy=0.0, test_accuracy=0.0, diverged=True,
        )
    selection = select_beta(
        f_train, y_train, betas=betas, val_fraction=val_fraction,
        n_classes=n_classes, seed=seed,
    )
    test_acc = selection.best_model.accuracy(f_test, y_test)
    return FixedParamsEvaluation(
        A=A,
        B=B,
        beta=selection.best_beta,
        val_loss=selection.best_val_loss,
        val_accuracy=selection.val_accuracies[selection.best_beta],
        test_accuracy=test_acc,
        diverged=False,
    )


def evaluate_fixed_params_block(
    extractor: Union[DFRFeatureExtractor, ExtractorConfig],
    u_train: np.ndarray,
    y_train: np.ndarray,
    u_test: np.ndarray,
    y_test: np.ndarray,
    A_values: Sequence[float],
    B_values: Sequence[float],
    *,
    betas: Sequence[float] = PAPER_BETAS,
    val_fraction: float = 0.2,
    n_classes: Optional[int] = None,
    feature_batch_size: Optional[int] = None,
    seeds: Optional[Sequence] = None,
) -> List[FixedParamsEvaluation]:
    """Evaluate a block of K ``(A, B)`` candidates in one fused sweep.

    The reservoir/DPRR phase — the expensive part of
    :func:`evaluate_fixed_params` — runs *once* for the whole block with a
    candidate axis stacked in front of the batch axis (standardization and
    the mask drive are shared, the per-candidate node chains go through the
    backend's stacked filter), then each candidate's ridge/beta selection
    scores its feature slice through the identical protocol.  On the NumPy
    backend every returned evaluation is bit-identical to the serial
    :func:`evaluate_fixed_params` of that candidate (pinned by tests).

    ``seeds`` carries one holdout-split seed per candidate (``None``
    entries mean an unseeded split, exactly like the serial path).

    Failure semantics are row-wise: a candidate that diverges numerically
    gets the usual diverged record, and one whose *scoring* raises gets the
    :meth:`FixedParamsEvaluation.failed` sentinel (traceback in
    ``error``) — the rest of the block is unaffected.  Non-finite
    ``A``/``B`` entries raise up front, as they would serially; callers
    that need per-row isolation for those (the vectorized executor) filter
    them before building the block.
    """
    if isinstance(extractor, ExtractorConfig):
        extractor = extractor.build()
    y_train = ensure_1d_labels(y_train)
    y_test = ensure_1d_labels(y_test)
    if n_classes is None:
        n_classes = int(max(y_train.max(), y_test.max())) + 1
    A_values = np.atleast_1d(np.asarray(A_values, dtype=np.float64))
    B_values = np.atleast_1d(np.asarray(B_values, dtype=np.float64))
    if A_values.shape != B_values.shape or A_values.ndim != 1:
        raise ValueError(
            f"A_values and B_values must be matching 1-D candidate vectors, "
            f"got shapes {A_values.shape} and {B_values.shape}"
        )
    n_cand = A_values.shape[0]
    if seeds is None:
        seeds = [None] * n_cand
    elif len(seeds) != n_cand:
        raise ValueError(
            f"need one seed per candidate ({n_cand}), got {len(seeds)}"
        )
    f_train, div_train = extractor.features(
        u_train, A_values, B_values, batch_size=feature_batch_size
    )
    f_test, div_test = extractor.features(
        u_test, A_values, B_values, batch_size=feature_batch_size
    )
    out: List[FixedParamsEvaluation] = []
    for k in range(n_cand):
        a_k = float(A_values[k])
        b_k = float(B_values[k])
        try:
            out.append(_score_fixed_params(
                f_train[k], f_test[k], y_train, y_test, a_k, b_k,
                diverged=bool(div_train[k].any() or div_test[k].any()),
                betas=betas, val_fraction=val_fraction, n_classes=n_classes,
                seed=seeds[k],
            ))
        except Exception:
            out.append(FixedParamsEvaluation.failed(
                a_k, b_k, error=traceback.format_exc(limit=10),
            ))
    return out


class DFRClassifier:
    """The paper's full method: backprop-optimized DFR + ridge readout.

    Parameters
    ----------
    n_nodes:
        Virtual-node count ``N_x`` (paper: 30).
    nonlinearity:
        Reservoir shape function (paper evaluation: identity).
    config:
        :class:`~repro.core.trainer.TrainerConfig`; defaults to the paper's
        SGD protocol (25 epochs, truncated backprop, LR schedule).
    batch_size:
        Convenience override for ``config.batch_size``: 1 (the default
        config) is the paper's per-sample SGD, larger values train through
        the vectorized minibatch engine.
    betas:
        Ridge regularizer candidates (paper: ``1e-6, 1e-4, 1e-2, 1``).
    val_fraction:
        Holdout fraction for ``beta`` selection.
    mask_kind, mask_gamma:
        Input mask family and scale.
    search:
        Parameter-optimization strategy for the backprop phase:
        ``"backprop"`` (default) is the paper's single gradient run from
        ``(0.01, 0.01)``; ``"descent"`` runs *population* gradient descent
        — ``population`` restarts descended concurrently through the
        candidate-axis-vectorized engine
        (:class:`~repro.core.population.PopulationTrainer`), with the
        winner picked by the shared validation criterion on the training
        set.  ``search="descent"`` with ``population=1`` is bit-identical
        to the default (pinned by tests).
    population:
        Restart count for ``search="descent"``; ``None`` defers to the
        ``REPRO_POPULATION`` environment variable (default 8).  Ignored by
        ``search="backprop"``.
    workers:
        Worker-process count for candidate evaluation through the shared
        execution layer (:meth:`candidate_executor`,
        :meth:`evaluate_candidates`, and any search built on this
        classifier's extractor).  ``None`` defers to the ``REPRO_WORKERS``
        environment variable; 0/1 evaluates serially.  The backprop fit
        itself is the paper's sequential algorithm and is unaffected.
    backend:
        Array backend spec (``"numpy"``, ``"torch"``, ``"torch:cuda:0"``,
        ``"cupy"``) executing the reservoir/DPRR sweeps and — when
        ``batch_size > 1`` — the batched training engine.  ``None`` defers
        to the ``REPRO_BACKEND`` environment variable (NumPy when unset);
        the per-sample SGD of ``batch_size=1`` always runs the pinned
        NumPy reference.
    dtype:
        Working float precision for the backend sweeps and the batched
        engine: ``None`` defers to the backend spec's ``@dtype`` suffix /
        ``REPRO_DTYPE`` (float64 when unset); ``"float32"`` opts into
        single precision (rtol-bounded against the float64 reference —
        tolerance contract in ``docs/ARCHITECTURE.md``).  The per-sample
        SGD path stays float64 regardless.
    seed:
        Master seed (mask, shuffling, splits).

    Examples
    --------
    >>> from repro.data import load_dataset
    >>> data = load_dataset("JPVOW", seed=0)
    >>> clf = DFRClassifier(seed=0).fit(data.u_train, data.y_train)
    >>> acc = clf.score(data.u_test, data.y_test)
    """

    def __init__(
        self,
        n_nodes: int = PAPER_N_NODES,
        *,
        nonlinearity="identity",
        config: Optional[TrainerConfig] = None,
        batch_size: Optional[int] = None,
        betas: Sequence[float] = PAPER_BETAS,
        val_fraction: float = 0.2,
        normalize: Optional[str] = None,
        mask_kind: str = "binary",
        mask_gamma: float = 1.0,
        search: str = "backprop",
        population: Optional[int] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
        seed: SeedLike = None,
    ):
        if search not in ("backprop", "descent"):
            raise ValueError(
                f"search must be 'backprop' or 'descent', got {search!r}"
            )
        self._rng = ensure_rng(seed)
        self.search = search
        self.population = population
        self.workers = workers
        self.backend = backend
        self.dtype = dtype
        self._executor = None
        self._executor_workers = None
        self.extractor = DFRFeatureExtractor(
            n_nodes,
            nonlinearity=nonlinearity,
            normalize=normalize,
            mask_kind=mask_kind,
            mask_gamma=mask_gamma,
            backend=backend,
            dtype=dtype,
            seed=self._rng,
        )
        self.config = config if config is not None else TrainerConfig()
        if batch_size is not None:
            self.config = replace(self.config, batch_size=int(batch_size))
        if backend is not None and self.config.backend is None:
            self.config = replace(self.config, backend=backend)
        if dtype is not None and self.config.dtype is None:
            self.config = replace(self.config, dtype=dtype)
        self.betas = tuple(betas)
        self.val_fraction = float(val_fraction)
        # fitted attributes
        self.A_: Optional[float] = None
        self.B_: Optional[float] = None
        self.beta_: Optional[float] = None
        self.ridge_ = None
        self.training_: Optional[TrainingResult] = None
        self.selection_: Optional[RidgeSelection] = None
        self.n_classes_: Optional[int] = None
        self.population_: Optional[PopulationResult] = None

    def fit(self, u: np.ndarray, y: np.ndarray) -> "DFRClassifier":
        """Run the full two-phase optimization on a training set."""
        u = as_batch(u)
        y = ensure_1d_labels(y, n_samples=u.shape[0])
        self.n_classes_ = int(y.max()) + 1
        self.extractor.fit(u)
        u_std = self.extractor.standardizer.transform(u)

        if self.search == "descent":
            # population gradient descent: K restarts trained as one fused
            # candidate-stacked program; member 0 starts at the paper's
            # initialization, so population=1 reproduces the default path
            # bit for bit (the winner is then the only member and the
            # shared tail below is identical)
            from repro.core.grid_search import PAPER_A_RANGE, PAPER_B_RANGE

            from repro.exec import resolve_candidate_block_size

            k = resolve_population(self.population)
            a0, b0 = draw_starting_points(
                self._rng, k, PAPER_A_RANGE, PAPER_B_RANGE,
                init_A=self.config.init_A, init_B=self.config.init_B,
            )
            if k > 1:
                # chunked by the candidate block size so the stacked trace
                # stays bounded at any population; the chunk-invariance
                # contract (every chunk re-seeds one shuffle stream, no
                # per-sample delegation inside a slice) is owned entirely
                # by chunked_population_fit — PopulationDescent.descend
                # goes through the same helper.  Only the seed preamble
                # differs between the two entry points, deliberately: at
                # population=1 this classifier must consume the live rng
                # stream exactly like the default path (the bitwise pin
                # below), so the drawn shuffle seed exists only here.
                shuffle_seed = int(self._rng.integers(2**31 - 1))
                self.population_ = chunked_population_fit(
                    self.extractor.reservoir,
                    self.n_classes_,
                    u_std,
                    y,
                    a0,
                    b0,
                    dprr=self.extractor.dprr,
                    config=self.config,
                    shuffle_seed=shuffle_seed,
                    block_size=resolve_candidate_block_size(None),
                )
                return self._select_member(u, y)
            # a population of one trains directly on the live rng stream,
            # which is what keeps it bit-identical to the default path
            trainer = PopulationTrainer(
                self.extractor.reservoir,
                self.n_classes_,
                dprr=self.extractor.dprr,
                config=self.config,
                seed=self._rng,
            )
            self.population_ = trainer.fit(u_std, y, a0, b0)
            self.training_ = self.population_.members[0].result
        else:
            trainer = BackpropTrainer(
                self.extractor.reservoir,
                self.n_classes_,
                dprr=self.extractor.dprr,
                config=self.config,
                seed=self._rng,
            )
            self.training_ = trainer.fit(u_std, y)
        self.A_ = self.training_.A
        self.B_ = self.training_.B

        features, diverged = self.extractor.features(u, self.A_, self.B_)
        if diverged.any():
            raise RuntimeError(
                "reservoir diverged at the trained parameters; this indicates "
                "an unstable configuration (check TrainerConfig.param_max)"
            )
        self.selection_ = select_beta(
            features,
            y,
            betas=self.betas,
            val_fraction=self.val_fraction,
            n_classes=self.n_classes_,
            seed=self._rng,
        )
        self.beta_ = self.selection_.best_beta
        self.ridge_ = self.selection_.best_model
        return self

    def _select_member(self, u: np.ndarray, y: np.ndarray) -> "DFRClassifier":
        """Pick the best population member by the shared validation rule.

        Every member's descent endpoint is scored on the *training* data
        only — fused feature sweeps over the population (chunked by the
        ``REPRO_CANDIDATE_BLOCK_SIZE`` block size so the stacked trace
        stays bounded at any population, like every other fused stage),
        then the usual ridge/beta selection per member on a shared holdout
        split (highest validation accuracy, cross-entropy then smallest
        ``(A, B)`` as tiebreaks — the same criterion every search uses).
        The test set plays no role, exactly as in the default path.
        """
        # selection.py imports this module, so the shared rule is pulled in
        # lazily here
        from repro.core.selection import better_evaluation
        from repro.exec import resolve_candidate_block_size

        results = self.population_.results()
        a_vec = np.array([r.A for r in results])
        b_vec = np.array([r.B for r in results])
        block = resolve_candidate_block_size(None)
        split_seed = int(self._rng.integers(2**31 - 1))
        best = None
        for lo in range(0, len(results), block):
            hi = min(lo + block, len(results))
            features, diverged = self.extractor.features(
                u, a_vec[lo:hi], b_vec[lo:hi])
            for pos, k in enumerate(range(lo, hi)):
                if diverged[pos].any():
                    continue
                result = results[k]
                selection = select_beta(
                    features[pos], y,
                    betas=self.betas,
                    val_fraction=self.val_fraction,
                    n_classes=self.n_classes_,
                    seed=split_seed,
                )
                # rank through the shared selection rule (the test accuracy
                # is deliberately absent here — the rule never consults it)
                record = FixedParamsEvaluation(
                    A=result.A,
                    B=result.B,
                    beta=selection.best_beta,
                    val_loss=selection.best_val_loss,
                    val_accuracy=selection.val_accuracies[selection.best_beta],
                    test_accuracy=float("nan"),
                    diverged=False,
                )
                if best is None or better_evaluation(record, best[0]):
                    best = (record, k, selection)
        if best is None:
            raise RuntimeError(
                "every population member diverged at its trained parameters; "
                "this indicates an unstable configuration (check "
                "TrainerConfig.param_max)"
            )
        _, winner, selection = best
        self.training_ = results[winner]
        self.A_ = self.training_.A
        self.B_ = self.training_.B
        self.selection_ = selection
        self.beta_ = selection.best_beta
        self.ridge_ = selection.best_model
        return self

    def candidate_executor(self):
        """The :class:`~repro.exec.CandidateExecutor` for this classifier.

        Serial for ``workers in (None-without-env, 0, 1)``, multiprocess
        otherwise; pass it to :class:`~repro.core.grid_search.GridSearch`
        and friends via their ``executor`` argument to share the knob.
        The executor is cached on the classifier until ``workers`` changes;
        its worker pool persists across submissions that reuse one
        evaluation context (as the searches do).
        """
        from repro.exec import make_executor, resolve_workers

        n = resolve_workers(self.workers)
        # the cache keys on the *requested* worker count, not the built
        # executor's own (a REPRO_EXECUTOR kind override may build an
        # executor whose workers differ — e.g. vectorized is always 1 —
        # and comparing against that would rebuild on every call)
        if self._executor is None or self._executor_workers != n:
            if self._executor is not None:
                self._executor.close()
            self._executor = make_executor(n)
            self._executor_workers = n
        return self._executor

    def evaluate_candidates(
        self,
        u_train: np.ndarray,
        y_train: np.ndarray,
        u_test: np.ndarray,
        y_test: np.ndarray,
        params: Sequence[Tuple[float, float]],
        *,
        seed: SeedLike = None,
    ) -> List[FixedParamsEvaluation]:
        """Score arbitrary ``(A, B)`` candidates through the execution layer.

        Uses the classifier's fitted feature pipeline and ``workers``
        setting; each candidate pays the same protocol as the grid-search
        baseline (beta selection on a shared holdout, then a test score).
        The result order matches ``params``.

        Each call builds a fresh evaluation context, so with ``workers > 1``
        it also pays one worker-pool spawn and one data shipment — batch
        your candidates into one call rather than looping over many small
        ones (or drive a :class:`~repro.core.grid_search.GridSearch`-style
        search, which reuses a single context across submissions).
        """
        from repro.exec import Candidate, EvaluationContext

        self._check_fitted()
        split_seed = int(ensure_rng(seed).integers(2**31 - 1))
        context = EvaluationContext.from_data(
            self.extractor.snapshot(),
            u_train, y_train, u_test, y_test,
            betas=self.betas,
            val_fraction=self.val_fraction,
            n_classes=self.n_classes_,
            feature_batch_size=self.extractor.feature_batch_size,
        )
        candidates = [
            Candidate(index=i, A=float(a), B=float(b), seed=split_seed)
            for i, (a, b) in enumerate(params)
        ]
        report = self.candidate_executor().run(context, candidates)
        return report.evaluations()

    def _check_fitted(self) -> None:
        if self.ridge_ is None:
            raise RuntimeError("classifier must be fitted before prediction")

    def predict(self, u: np.ndarray) -> np.ndarray:
        """Predict class labels for a batch of series."""
        self._check_fitted()
        features, diverged = self.extractor.features(u, self.A_, self.B_)
        if diverged.any():
            raise RuntimeError("reservoir diverged on the given inputs")
        return self.ridge_.predict(features)

    def predict_proba(self, u: np.ndarray) -> np.ndarray:
        """Softmax-calibrated class probabilities."""
        self._check_fitted()
        features, diverged = self.extractor.features(u, self.A_, self.B_)
        if diverged.any():
            raise RuntimeError("reservoir diverged on the given inputs")
        return self.ridge_.predict_proba(features)

    def score(self, u: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(u, y)``."""
        y = ensure_1d_labels(y)
        return accuracy_score(y, self.predict(u))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        fitted = self.ridge_ is not None
        return (
            f"DFRClassifier(n_nodes={self.extractor.n_nodes}, "
            f"nonlinearity={self.extractor.nonlinearity!r}, fitted={fitted})"
        )
