"""Population gradient descent: K restarts of the paper's BP+GD, fused.

The paper's headline result is that backpropagation + gradient descent
(Sec. 4) finds good DFR parameters far faster than grid search — but a
gradient run is only as good as its starting point, so in practice one runs
many restarts.  Run sequentially, K restarts cost K full
:meth:`~repro.core.trainer.BackpropTrainer.fit` loops.  This module descends
all K starting points *concurrently* instead: the candidate-axis-vectorized
engine (PR 4) already sweeps K ``(A, B)`` points through one fused
``(K, N, ...)`` forward/backward, so a population of restarts becomes one
device-sized array program per minibatch — per-candidate optimizer state
(:mod:`repro.core.optimizer` stacked mode), per-candidate learning
trajectories, one shared data pass.

Numerical contract (pinned by ``tests/test_population.py``):

* a population of one with ``batch_size=1`` *is* the paper's per-sample SGD
  — :class:`PopulationTrainer` delegates to
  :class:`~repro.core.trainer.BackpropTrainer` outright, so the pinned
  NumPy reference trajectory is reproduced bit for bit;
* with ``batch_size > 1``, member ``k`` of a fused K-member run is
  bit-identical (on NumPy) to a sequential ``BackpropTrainer.fit`` started
  from that member's ``(A, B)`` with the same seed — including optimizer
  moments, learning-rate schedule state, divergence pull-backs, and the
  gradient-clip arithmetic.  All members share one shuffle stream (common
  random numbers): every member sees the same sample order each epoch,
  which is what lets the forward/backward fuse, and is the usual
  variance-reduction choice when comparing restarts.

Row-wise retirement: members whose ``(A, B)`` stopped moving (or that
diverge on every sample, epoch after epoch) can drop out of the active
stack, so the fused sweep *shrinks* as the population settles.  Retirement
is off by default (keeping the bit-parity contract above unconditional);
the rule is a pure function of a member's own trajectory, so a fused run
with retirement matches per-member runs applying the same rule.

``REPRO_POPULATION`` resolves the population size for entry points that do
not receive an explicit one (``DFRClassifier(search="descent")``,
``repro-bench table1 --search descent``), mirroring ``REPRO_WORKERS`` /
``REPRO_CANDIDATE_BLOCK_SIZE``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backprop import BackpropEngine
from repro.core.optimizer import StepSchedule, clip_gradients, get_optimizer
from repro.core.trainer import (
    BackpropTrainer,
    EpochStats,
    TrainerConfig,
    TrainingResult,
)
from repro.readout.softmax import SoftmaxReadout, one_hot
from repro.representation.dprr import DPRR
from repro.reservoir.modular import ModularDFR
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import as_batch, ensure_1d_labels

__all__ = [
    "POPULATION_ENV_VAR",
    "DEFAULT_POPULATION",
    "resolve_population",
    "draw_starting_points",
    "chunked_population_fit",
    "MemberResult",
    "PopulationResult",
    "PopulationTrainer",
]

#: environment variable consulted when no explicit population size is given
POPULATION_ENV_VAR = "REPRO_POPULATION"

#: default restart count for descent-based search entry points: enough
#: starts to cover the paper's multi-modal (A, B) landscape, small enough
#: that the fused stack stays comfortably in memory
DEFAULT_POPULATION = 8


def resolve_population(population: Optional[int] = None,
                       default: int = DEFAULT_POPULATION) -> int:
    """Resolve an effective population size (>= 1).

    Explicit ``population`` wins; ``None`` consults ``REPRO_POPULATION``;
    absent/invalid both, ``default`` applies.  Env values are best-effort
    fleet-wide hints (invalid ones fall back to the default rather than
    raising in every entry point); explicit values below 1 raise.
    """
    if population is None:
        raw = os.environ.get(POPULATION_ENV_VAR, "").strip()
        try:
            population = int(raw) if raw else default
        except ValueError:
            population = default
        return population if population >= 1 else default
    population = int(population)
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    return population


def draw_starting_points(
    rng: np.random.Generator,
    population: int,
    a_range: Tuple[float, float],
    b_range: Tuple[float, float],
    *,
    init_A: float,
    init_B: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Starting ``(A, B)`` points for a population of descent restarts.

    Member 0 always starts at ``(init_A, init_B)`` — the paper's
    initialization — so a population of one reproduces the paper's protocol
    without consuming any randomness; members 1..K-1 are drawn log-uniform
    over the given log10 box (the same distribution
    :class:`~repro.core.hyperopt.RandomSearch` samples).
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    a0 = np.empty(population)
    b0 = np.empty(population)
    a0[0] = float(init_A)
    b0[0] = float(init_B)
    for i in range(1, population):
        a0[i] = 10.0 ** rng.uniform(*a_range)
        b0[i] = 10.0 ** rng.uniform(*b_range)
    return a0, b0


def chunked_population_fit(
    reservoir: ModularDFR,
    n_classes: int,
    u: np.ndarray,
    y: np.ndarray,
    a0: np.ndarray,
    b0: np.ndarray,
    *,
    dprr: Optional[DPRR] = None,
    config: Optional[TrainerConfig] = None,
    shuffle_seed: int,
    block_size: int,
    retire_tol: Optional[float] = None,
    retire_patience: int = 2,
    retire_diverged_epochs: Optional[int] = None,
) -> "PopulationResult":
    """Train ONE logical population in fused chunks of ``block_size``.

    Bounds the stacked-trace memory at any population size: each chunk is a
    separate :meth:`PopulationTrainer.fit` over at most ``block_size``
    members.  Every chunk re-seeds the same shuffle stream
    (``shuffle_seed``), so all members see identical sample orders and the
    outcome does not depend on how the population was chunked (pinned by
    ``tests/test_population.py``).  Because a chunk is a *slice* of one
    population, single-member per-sample delegation applies only when the
    whole population is one member — otherwise a trailing chunk of one
    would train through different arithmetic than the same member in a
    wider chunk.

    Returns the merged :class:`PopulationResult`; members keep their
    population-wide indices, and chunk widths sum in ``active_per_epoch``.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    k = len(a0)
    members: List[MemberResult] = []
    active_per_epoch: List[int] = []
    elapsed = 0.0
    for lo in range(0, k, block_size):
        hi = min(lo + block_size, k)
        trainer = PopulationTrainer(
            reservoir, n_classes, dprr=dprr, config=config,
            retire_tol=retire_tol, retire_patience=retire_patience,
            retire_diverged_epochs=retire_diverged_epochs,
            delegate_single=(k == 1),
            seed=shuffle_seed,
        )
        chunk = trainer.fit(u, y, a0[lo:hi], b0[lo:hi])
        for offset, member in enumerate(chunk.members):
            member.index = lo + offset
            members.append(member)
        for epoch, width in enumerate(chunk.active_per_epoch):
            if epoch < len(active_per_epoch):
                active_per_epoch[epoch] += width
            else:
                active_per_epoch.append(width)
        elapsed += chunk.elapsed_seconds
    return PopulationResult(
        members=members,
        active_per_epoch=active_per_epoch,
        elapsed_seconds=elapsed,
    )


@dataclass
class MemberResult:
    """One population member's training outcome."""

    index: int
    init_A: float
    init_B: float
    result: TrainingResult
    #: last epoch this member trained (None: ran the full epoch budget)
    retired_epoch: Optional[int] = None
    #: why it left the stack early ("converged" or "diverged")
    retired_reason: Optional[str] = None


@dataclass
class PopulationResult:
    """Outcome of one fused population-descent run."""

    members: List[MemberResult] = field(default_factory=list)
    #: width of the fused stack at each epoch (telemetry: shows the sweep
    #: shrinking as members retire)
    active_per_epoch: List[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def population(self) -> int:
        return len(self.members)

    @property
    def n_retired(self) -> int:
        return sum(1 for m in self.members if m.retired_epoch is not None)

    def results(self) -> List[TrainingResult]:
        """Per-member :class:`~repro.core.trainer.TrainingResult`, in order."""
        return [m.result for m in self.members]


class PopulationTrainer:
    """Descend K ``(A, B)`` starting points through one fused program.

    The constructor mirrors :class:`~repro.core.trainer.BackpropTrainer`
    (same reservoir / DPRR / :class:`~repro.core.trainer.TrainerConfig`
    contract — inputs must be standardized by the caller); :meth:`fit` takes
    per-member initial parameters and trains the whole population through
    the candidate-stacked engine, one fused forward/backward per minibatch.

    Parameters
    ----------
    reservoir, n_classes, dprr, config, seed:
        As for :class:`~repro.core.trainer.BackpropTrainer`.  ``seed``
        drives the *shared* shuffle stream (all members see the same sample
        order; see the module docstring).
    retire_tol:
        Convergence retirement: a member whose ``(A, B)`` moved at most
        this much (L-inf, over a whole epoch) for ``retire_patience``
        consecutive epochs leaves the active stack.  ``None`` (default)
        disables convergence retirement.
    retire_patience:
        Consecutive quiet epochs required before a member retires.
    retire_diverged_epochs:
        Divergence retirement: a member whose *every* sample diverged for
        this many consecutive epochs (it is being pulled back each time and
        still cannot complete a step) retires instead of burning fused
        compute forever.  ``None`` (default) disables it.
    delegate_single:
        Whether a population of one at ``batch_size=1`` delegates to the
        per-sample :class:`~repro.core.trainer.BackpropTrainer` reference
        (the default, and the ``population=1`` bit-parity contract).  A
        caller that splits ONE logical population across several ``fit``
        calls (:meth:`PopulationDescent.descend` chunking) passes ``False``
        so a trailing chunk of one trains through the same fused arithmetic
        as every other chunk — otherwise chunking could change a member's
        trajectory.
    """

    def __init__(
        self,
        reservoir: ModularDFR,
        n_classes: int,
        *,
        dprr: Optional[DPRR] = None,
        config: Optional[TrainerConfig] = None,
        retire_tol: Optional[float] = None,
        retire_patience: int = 2,
        retire_diverged_epochs: Optional[int] = None,
        delegate_single: bool = True,
        seed: SeedLike = None,
    ):
        if retire_tol is not None and retire_tol < 0:
            raise ValueError(f"retire_tol must be >= 0, got {retire_tol}")
        if retire_patience < 1:
            raise ValueError(
                f"retire_patience must be >= 1, got {retire_patience}"
            )
        if retire_diverged_epochs is not None and retire_diverged_epochs < 1:
            raise ValueError(
                f"retire_diverged_epochs must be None or >= 1, "
                f"got {retire_diverged_epochs}"
            )
        self.reservoir = reservoir
        self.n_classes = int(n_classes)
        self.dprr = dprr if dprr is not None else DPRR()
        self.config = config if config is not None else TrainerConfig()
        self.retire_tol = retire_tol
        self.retire_patience = int(retire_patience)
        self.retire_diverged_epochs = retire_diverged_epochs
        self.delegate_single = bool(delegate_single)
        self.rng = ensure_rng(seed)
        self.engine = BackpropEngine(
            reservoir.nonlinearity, dprr=self.dprr, window=self.config.window,
            backend=self.config.backend, dtype=self.config.dtype,
        )
        self.backend = self.engine.backend

    # ------------------------------------------------------------------ #
    # fused helpers (stacked twins of BackpropTrainer's private methods)  #
    # ------------------------------------------------------------------ #

    def _pull_back_row(self, params: Dict[str, np.ndarray], row: int,
                       count: int) -> None:
        """Row-wise twin of ``BackpropTrainer._pull_back``.

        Operates on a length-1 view so the in-place multiply and clip use
        the exact array arithmetic of the scalar trainer.
        """
        shrink = self.config.divergence_shrink ** count
        for name in ("A", "B"):
            view = params[name][row:row + 1]
            view *= shrink
            np.clip(view, self.config.param_min, self.config.param_max,
                    out=view)

    def _apply_update_stacked(self, params, grads, optimizer, lr_r, lr_o,
                              mask: Optional[np.ndarray]) -> None:
        """Stacked twin of ``BackpropTrainer._apply_update``.

        Per-candidate clip norms, one stacked optimizer step (rows outside
        ``mask`` — members whose whole minibatch diverged — are untouched,
        exactly as the sequential loop's ``continue``), then the parameter
        box clamp.  ``lr_r``/``lr_o`` are per-candidate ``(K,)`` learning
        rate vectors from the vectorized schedule lookup; the optimizers
        broadcast them over each parameter's row tail.  Row ``k`` is
        bit-identical to the scalar `_apply_update` on that member's
        gradients.
        """
        cfg = self.config
        clip_gradients(grads, cfg.grad_clip, stacked=True)
        if cfg.reservoir_grad_clip is not None:
            np.clip(grads["A"], -cfg.reservoir_grad_clip,
                    cfg.reservoir_grad_clip, out=grads["A"])
            np.clip(grads["B"], -cfg.reservoir_grad_clip,
                    cfg.reservoir_grad_clip, out=grads["B"])
        optimizer.step(
            params, grads, {"A": lr_r, "B": lr_r, "W": lr_o, "b": lr_o},
            mask=mask,
        )
        np.clip(params["A"], cfg.param_min, cfg.param_max, out=params["A"])
        np.clip(params["B"], cfg.param_min, cfg.param_max, out=params["B"])

    def _fused_epoch(self, u, y, targets, order, params, readout_geom,
                     optimizer, backward_window, t_len, lr_r, lr_o):
        """One epoch of minibatch SGD for the whole active stack.

        The stacked twin of ``BackpropTrainer._epoch_batched``: every
        minibatch runs ONE vector-``(A, B)`` forward and one candidate-
        stacked backward for all active members.  Members with diverged
        samples in the minibatch leave the fused call and are handled
        through the per-member path of the sequential trainer (same
        pull-back, same valid-row sub-batch), slicing the already-computed
        stacked trace — the stacked forward rows are bit-identical to
        scalar runs, so the fallback reproduces the sequential arithmetic
        exactly.
        """
        cfg = self.config
        xb = self.backend
        k_active = params["A"].shape[0]
        batch_size = cfg.batch_size
        losses: List[List[float]] = [[] for _ in range(k_active)]
        n_correct = np.zeros(k_active, dtype=np.int64)
        n_skipped = np.zeros(k_active, dtype=np.int64)
        for start in range(0, order.shape[0], batch_size):
            sel = order[start: start + batch_size]
            a_snap = params["A"].copy()
            b_snap = params["B"].copy()
            trace = self.reservoir.run(u[sel], a_snap, b_snap, backend=xb)
            div = np.asarray(trace.diverged)          # (K, n) — always NumPy
            n_div = div.sum(axis=1)
            win = trace.final_window(backward_window, copy=False)
            grads = {
                "A": np.zeros(k_active),
                "B": np.zeros(k_active),
                "W": np.zeros_like(params["W"]),
                "b": np.zeros_like(params["b"]),
            }
            step_mask = np.ones(k_active, dtype=bool)
            clean = np.flatnonzero(n_div == 0)
            if clean.size:
                if clean.size == k_active:
                    window_states = win.window_states
                    window_pre = win.window_pre_activations
                    feats = self.dprr.features(trace, backend=xb)
                else:
                    window_states = xb.take(win.window_states, clean, axis=0)
                    window_pre = xb.take(win.window_pre_activations, clean,
                                         axis=0)
                    feats = self.dprr.features(
                        xb.take(trace.states, clean, axis=0), backend=xb
                    )
                out = self.engine.batch_gradients(
                    window_states, window_pre, feats, readout_geom,
                    targets[sel], a_snap[clean], b_snap[clean],
                    n_steps=t_len,
                    weights=params["W"][clean], bias=params["b"][clean],
                )
                grads["A"][clean] = out.d_A.mean(axis=-1)
                grads["B"][clean] = out.d_B.mean(axis=-1)
                grads["W"][clean] = out.d_weights
                grads["b"][clean] = out.d_bias
                pred = out.probs.argmax(axis=-1)       # (K_clean, n)
                for pos, k in enumerate(clean):
                    losses[k].extend(out.losses[pos].tolist())
                    n_correct[k] += int(np.count_nonzero(pred[pos] == y[sel]))
            for k in np.flatnonzero(n_div > 0):
                k = int(k)
                n_div_k = int(n_div[k])
                n_skipped[k] += n_div_k
                self._pull_back_row(params, k, count=n_div_k)
                if n_div_k == sel.shape[0]:
                    # the whole minibatch diverged for this member: no
                    # update at all this step (the sequential loop's
                    # ``continue``)
                    step_mask[k] = False
                    continue
                valid = np.flatnonzero(~div[k])
                kept = sel[~div[k]]
                feats_k = self.dprr.features(
                    xb.take(trace.states[k], valid, axis=0), backend=xb
                )
                out_k = self.engine.batch_gradients(
                    xb.take(win.window_states[k], valid, axis=0),
                    xb.take(win.window_pre_activations[k], valid, axis=0),
                    feats_k, readout_geom, targets[kept],
                    float(a_snap[k]), float(b_snap[k]),
                    n_steps=t_len,
                    weights=params["W"][k], bias=params["b"][k],
                )
                losses[k].extend(out_k.losses.tolist())
                n_correct[k] += int(np.count_nonzero(
                    out_k.probs.argmax(axis=1) == y[kept]
                ))
                grads["A"][k] = out_k.d_A.mean()
                grads["B"][k] = out_k.d_B.mean()
                grads["W"][k] = out_k.d_weights
                grads["b"][k] = out_k.d_bias
            self._apply_update_stacked(
                params, grads, optimizer, lr_r, lr_o,
                mask=None if step_mask.all() else step_mask,
            )
        return losses, n_correct, n_skipped

    # ------------------------------------------------------------------ #
    # the public protocol                                                 #
    # ------------------------------------------------------------------ #

    def _delegate_single(self, u, y, a0: float, b0: float,
                         start: float) -> PopulationResult:
        """Population of one at ``batch_size=1``: the paper's reference.

        Runs :class:`~repro.core.trainer.BackpropTrainer` outright (same
        rng object, same config with the member's initialization), so the
        per-sample SGD trajectory is the pinned seed protocol bit for bit.
        Retirement does not apply to the delegated reference run.
        """
        trainer = BackpropTrainer(
            self.reservoir, self.n_classes, dprr=self.dprr,
            config=replace(self.config, init_A=float(a0), init_B=float(b0)),
            seed=self.rng,
        )
        result = trainer.fit(u, y)
        return PopulationResult(
            members=[MemberResult(index=0, init_A=float(a0),
                                  init_B=float(b0), result=result)],
            active_per_epoch=[1] * len(result.history),
            elapsed_seconds=time.perf_counter() - start,
        )

    def fit(self, u: np.ndarray, y: np.ndarray,
            init_A=None, init_B=None) -> PopulationResult:
        """Descend every member of the population on a training set.

        Parameters
        ----------
        u:
            Training inputs ``(N, T, C)`` (standardize beforehand, exactly
            like :meth:`BackpropTrainer.fit`).
        y:
            Integer labels ``(N,)``.
        init_A, init_B:
            Per-member starting parameters: scalars or matching ``(K,)``
            vectors (a scalar partner broadcasts).  ``None`` defaults to
            the config's ``init_A``/``init_B`` — a population of one at the
            paper's initialization.
        """
        start = time.perf_counter()
        u = as_batch(u)
        y = ensure_1d_labels(y, n_samples=u.shape[0])
        if y.size and y.max() >= self.n_classes:
            raise ValueError(
                f"label {y.max()} out of range for {self.n_classes} classes"
            )
        cfg = self.config
        a0 = np.atleast_1d(np.asarray(
            cfg.init_A if init_A is None else init_A, dtype=np.float64))
        b0 = np.atleast_1d(np.asarray(
            cfg.init_B if init_B is None else init_B, dtype=np.float64))
        if a0.ndim != 1 or b0.ndim != 1:
            raise ValueError(
                f"init_A and init_B must be scalars or 1-D member vectors, "
                f"got shapes {a0.shape} and {b0.shape}"
            )
        try:
            a0, b0 = (np.ascontiguousarray(x)
                      for x in np.broadcast_arrays(a0, b0))
        except ValueError:
            raise ValueError(
                f"init_A and init_B must have matching lengths, got "
                f"{a0.shape[0]} and {b0.shape[0]}"
            ) from None
        if not (np.isfinite(a0).all() and np.isfinite(b0).all()):
            raise ValueError("all initial (A, B) members must be finite")
        k_total = a0.shape[0]

        if k_total == 1 and cfg.batch_size == 1 and self.delegate_single:
            return self._delegate_single(u, y, a0[0], b0[0], start)

        targets = one_hot(y, self.n_classes)
        n_samples, t_len, _ = u.shape
        res_schedule = StepSchedule(
            cfg.lr_reservoir, cfg.reservoir_milestones, cfg.lr_decay
        )
        out_schedule = StepSchedule(cfg.lr_output, cfg.output_milestones,
                                    cfg.lr_decay)
        optimizer = get_optimizer(cfg.optimizer)
        optimizer.reset(n_rows=k_total)

        n_feats = self.dprr.n_features(self.reservoir.n_nodes)
        readout_geom = SoftmaxReadout(n_feats, self.n_classes)
        params = {
            "A": a0.copy(),
            "B": b0.copy(),
            "W": np.zeros((k_total, self.n_classes, n_feats)),
            "b": np.zeros((k_total, self.n_classes)),
        }
        window = self.engine.effective_window(t_len)
        backward_window = t_len if cfg.window is None else window

        alive = np.arange(k_total)                  # original member indices
        histories: List[List[EpochStats]] = [[] for _ in range(k_total)]
        final_params: List[Optional[tuple]] = [None] * k_total
        retired_epoch: List[Optional[int]] = [None] * k_total
        retired_reason: List[Optional[str]] = [None] * k_total
        conv_streak = np.zeros(k_total, dtype=np.int64)
        div_streak = np.zeros(k_total, dtype=np.int64)
        #: per-member schedule positions — all members join at epoch 1
        #: today, so the rows stay equal, but the learning rates flow
        #: through the vectorized schedule lookup as genuine per-candidate
        #: state (rows joining mid-run, e.g. re-seeded members, would
        #: simply carry later positions)
        positions = np.zeros(k_total, dtype=np.int64)
        active_per_epoch: List[int] = []

        for epoch in range(1, cfg.epochs + 1):
            if alive.size == 0:
                break
            active_per_epoch.append(int(alive.size))
            positions[alive] += 1
            lr_r = res_schedule.lr_at(positions[alive])    # (K_active,)
            lr_o = out_schedule.lr_at(positions[alive])
            order = (self.rng.permutation(n_samples) if cfg.shuffle
                     else np.arange(n_samples))
            a_before = params["A"].copy()
            b_before = params["B"].copy()
            losses, n_correct, n_skipped = self._fused_epoch(
                u, y, targets, order, params, readout_geom, optimizer,
                backward_window, t_len, lr_r, lr_o,
            )
            n_seen = np.array([len(rows) for rows in losses])
            for pos, member in enumerate(alive):
                histories[member].append(EpochStats(
                    epoch=epoch,
                    mean_loss=(float(np.mean(losses[pos])) if n_seen[pos]
                               else float("inf")),
                    accuracy=(float(n_correct[pos] / n_seen[pos])
                              if n_seen[pos] else 0.0),
                    lr_reservoir=float(lr_r[pos]),
                    lr_output=float(lr_o[pos]),
                    A=float(params["A"][pos]),
                    B=float(params["B"][pos]),
                    n_skipped=int(n_skipped[pos]),
                ))

            # --- row-wise retirement ---------------------------------- #
            retire_now = np.zeros(alive.size, dtype=bool)
            reasons = [None] * alive.size
            if self.retire_tol is not None:
                delta = np.maximum(np.abs(params["A"] - a_before),
                                   np.abs(params["B"] - b_before))
                quiet = delta <= self.retire_tol
                conv_streak[alive[quiet]] += 1
                conv_streak[alive[~quiet]] = 0
                for pos, member in enumerate(alive):
                    if conv_streak[member] >= self.retire_patience:
                        retire_now[pos] = True
                        reasons[pos] = "converged"
            if self.retire_diverged_epochs is not None:
                hopeless = n_seen == 0
                div_streak[alive[hopeless]] += 1
                div_streak[alive[~hopeless]] = 0
                for pos, member in enumerate(alive):
                    if (not retire_now[pos]
                            and div_streak[member] >= self.retire_diverged_epochs):
                        retire_now[pos] = True
                        reasons[pos] = "diverged"
            if epoch == cfg.epochs:
                # the budget is exhausted: everyone still standing finishes
                # normally, whatever the streak counters say
                retire_now[:] = False
            if retire_now.any():
                for pos in np.flatnonzero(retire_now):
                    member = int(alive[pos])
                    final_params[member] = (
                        float(params["A"][pos]), float(params["B"][pos]),
                        params["W"][pos].copy(), params["b"][pos].copy(),
                    )
                    retired_epoch[member] = epoch
                    retired_reason[member] = reasons[pos]
                keep = np.flatnonzero(~retire_now)
                for name in params:
                    params[name] = np.ascontiguousarray(params[name][keep])
                optimizer.take_rows(keep)
                alive = alive[keep]

        for pos, member in enumerate(alive):
            final_params[member] = (
                float(params["A"][pos]), float(params["B"][pos]),
                params["W"][pos].copy(), params["b"][pos].copy(),
            )

        elapsed = time.perf_counter() - start
        members = []
        for member in range(k_total):
            a_fin, b_fin, w_fin, bias_fin = final_params[member]
            readout = SoftmaxReadout(n_feats, self.n_classes)
            readout.weights = w_fin
            readout.bias = bias_fin
            members.append(MemberResult(
                index=member,
                init_A=float(a0[member]),
                init_B=float(b0[member]),
                result=TrainingResult(
                    A=a_fin, B=b_fin, readout=readout,
                    history=histories[member], elapsed_seconds=elapsed,
                ),
                retired_epoch=retired_epoch[member],
                retired_reason=retired_reason[member],
            ))
        return PopulationResult(
            members=members,
            active_per_epoch=active_per_epoch,
            elapsed_seconds=elapsed,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"PopulationTrainer(reservoir={self.reservoir!r}, "
            f"n_classes={self.n_classes}, config={self.config!r})"
        )
