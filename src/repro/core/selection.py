"""The shared candidate-selection rule for all ``(A, B, beta)`` searches.

The paper selects the winning configuration by highest *validation*
accuracy with cross-entropy loss as the tiebreak — the same criterion the
proposed method uses for ``beta``, with the test set playing no role.  This
module is the single implementation of that rule; grid search
(:mod:`repro.core.grid_search`), recursive zoom, random search, and
simulated annealing (:mod:`repro.core.hyperopt`) all rank candidates
through it, so "best" means the same thing everywhere.

Mechanics worth knowing:

* :func:`selection_key` is a *minimizing* sort key
  ``(-val_accuracy, val_loss, A, B)``; ties on ``(accuracy, loss)`` break
  toward the smallest ``(A, B)``, which makes the winner deterministic
  regardless of evaluation order — the property that lets the parallel
  execution layer (:mod:`repro.exec`) return bit-identical winners under
  any worker count or schedule.
* Diverged and failed candidates
  (:meth:`~repro.core.pipeline.FixedParamsEvaluation.failed`) carry
  ``val_accuracy = 0`` and ``val_loss = inf``, so every rule here ranks
  them strictly last without special-casing; a search over an unstable
  corner of the box therefore degrades gracefully instead of crashing or
  winning with garbage.
* :func:`better_evaluation` implements the strict "beats the incumbent"
  comparison used by incremental searches (annealing's best-so-far,
  random search's running winner); :func:`best_evaluation` is the batch
  form for finished sweeps.  Both are thin wrappers over
  :func:`selection_key` — keep any future criterion change inside that
  one function.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.pipeline import FixedParamsEvaluation

__all__ = ["selection_key", "better_evaluation", "best_evaluation"]


def selection_key(evaluation: FixedParamsEvaluation) -> Tuple[float, float, float, float]:
    """Sort key under which the *minimum* is the selected candidate."""
    return (
        -evaluation.val_accuracy,
        evaluation.val_loss,
        evaluation.A,
        evaluation.B,
    )


def better_evaluation(candidate: FixedParamsEvaluation,
                      incumbent: Optional[FixedParamsEvaluation]) -> bool:
    """Does ``candidate`` beat ``incumbent`` under the shared rule?"""
    if incumbent is None:
        return True
    return selection_key(candidate) < selection_key(incumbent)


def best_evaluation(evaluations: Iterable[FixedParamsEvaluation]
                    ) -> FixedParamsEvaluation:
    """The winner of a finished sweep (minimum :func:`selection_key`)."""
    return min(evaluations, key=selection_key)
