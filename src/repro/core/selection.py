"""The shared candidate-selection rule for all ``(A, B, beta)`` searches.

The paper selects the winning configuration by highest *validation*
accuracy with cross-entropy loss as the tiebreak — the same criterion the
proposed method uses for ``beta``, with the test set playing no role.  This
module is the single implementation of that rule; grid search, recursive
zoom, random search, and simulated annealing all rank candidates through
it, so "best" means the same thing everywhere.

Ties on ``(accuracy, loss)`` break toward the smallest ``(A, B)``, which
makes the winner deterministic regardless of evaluation order — a property
the parallel execution layer relies on.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.pipeline import FixedParamsEvaluation

__all__ = ["selection_key", "better_evaluation", "best_evaluation"]


def selection_key(evaluation: FixedParamsEvaluation) -> Tuple[float, float, float, float]:
    """Sort key under which the *minimum* is the selected candidate."""
    return (
        -evaluation.val_accuracy,
        evaluation.val_loss,
        evaluation.A,
        evaluation.B,
    )


def better_evaluation(candidate: FixedParamsEvaluation,
                      incumbent: Optional[FixedParamsEvaluation]) -> bool:
    """Does ``candidate`` beat ``incumbent`` under the shared rule?"""
    if incumbent is None:
        return True
    return selection_key(candidate) < selection_key(incumbent)


def best_evaluation(evaluations: Iterable[FixedParamsEvaluation]
                    ) -> FixedParamsEvaluation:
    """The winner of a finished sweep (minimum :func:`selection_key`)."""
    return min(evaluations, key=selection_key)
