"""Grid-search baseline for DFR parameter optimization (paper Sec. 4.1).

The comparison protocol reproduced from the paper:

* the search box is ``A in [10^-3.75, 10^-0.25]`` and
  ``B in [10^-2.75, 10^-0.25]`` in log space; ``beta`` ranges over the same
  four candidates as the proposed method;
* a grid of ``d`` *divisions* splits each range into ``d`` equal log-space
  sections and evaluates the section midpoints ("the grid divisions are
  performed equally"), i.e. ``d^2`` reservoir sweeps, each paying a full
  ridge fit per ``beta``;
* the division count is increased ``d = 1, 2, 3, ...`` until the selected
  configuration's test accuracy reaches the backpropagation result —
  cumulative over all levels, since one cannot know in advance which ``d``
  suffices ("early stopping of grid search is practically challenging");
* within a grid, the winning ``(A, B, beta)`` is the one with the highest
  validation accuracy (cross-entropy as tiebreak) — the same criterion the
  proposed method uses for ``beta`` — and the test set plays no role in
  selection.

:class:`RecursiveGridSearch` implements the alternative the paper discusses
around Fig. 6: recursively zooming into the best coarse-grid cell.  It is
linear-time but can lock onto a local optimum when the coarse level is
misleading — the failure mode Fig. 6 illustrates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import DFRFeatureExtractor, FixedParamsEvaluation
from repro.core.selection import best_evaluation, better_evaluation, selection_key
from repro.exec import Candidate, CandidateExecutor, EvaluationContext, make_executor
from repro.readout.ridge import PAPER_BETAS
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "PAPER_A_RANGE",
    "PAPER_B_RANGE",
    "grid_values",
    "GridLevelResult",
    "GridSearchOutcome",
    "GridSearch",
    "RecursiveLevel",
    "RecursiveGridSearch",
]

#: the paper's log10 search ranges for A and B
PAPER_A_RANGE = (-3.75, -0.25)
PAPER_B_RANGE = (-2.75, -0.25)


def grid_values(lo_exp: float, hi_exp: float, divisions: int) -> np.ndarray:
    """Midpoints of ``divisions`` equal log-space sections of ``[10^lo, 10^hi]``.

    With one division the single value is the geometric midpoint of the
    range; with two, the midpoints of the two halves; and so on.
    """
    if divisions < 1:
        raise ValueError(f"divisions must be >= 1, got {divisions}")
    if hi_exp <= lo_exp:
        raise ValueError(f"need lo < hi, got [{lo_exp}, {hi_exp}]")
    edges = np.linspace(lo_exp, hi_exp, divisions + 1)
    mids = 0.5 * (edges[:-1] + edges[1:])
    return 10.0**mids


@dataclass
class GridLevelResult:
    """Outcome of one full grid at a fixed division count.

    ``elapsed_seconds`` is the wall-clock of the whole level submission
    (what a user waits for, including executor overhead);
    ``compute_seconds`` sums the per-candidate evaluation times across
    workers.  Serially the two nearly coincide; under a multiprocess
    executor their ratio is the realized speedup.
    """

    divisions: int
    evaluations: List[FixedParamsEvaluation]
    best: FixedParamsEvaluation
    elapsed_seconds: float
    compute_seconds: float = 0.0

    @property
    def n_points(self) -> int:
        return len(self.evaluations)

    def accuracy_matrix(self) -> np.ndarray:
        """Test accuracies as a ``(divisions, divisions)`` matrix (A x B)."""
        mat = np.full((self.divisions, self.divisions), np.nan)
        for i, ev in enumerate(self.evaluations):
            mat[i // self.divisions, i % self.divisions] = ev.test_accuracy
        return mat


@dataclass
class GridSearchOutcome:
    """Outcome of the cumulative until-target protocol (paper Table 1)."""

    target_accuracy: float
    reached: bool
    divisions: int                      # the paper's "gs divs" column
    achieved_accuracy: float
    best: FixedParamsEvaluation
    total_seconds: float                # the paper's "gs time" column (wall)
    total_points: int
    levels: List[GridLevelResult] = field(default_factory=list)
    #: summed per-candidate evaluation time across all levels and workers;
    #: ``total_seconds / total_compute_seconds`` < 1 measures parallel gain
    total_compute_seconds: float = 0.0


class GridSearch:
    """Exhaustive ``(A, B, beta)`` grid search over the paper's box.

    Parameters
    ----------
    extractor:
        A fitted :class:`~repro.core.pipeline.DFRFeatureExtractor` (shared
        with the backpropagation pipeline for a fair comparison).
    a_range, b_range:
        Log10 ranges; default to the paper's.
    betas:
        Ridge candidates per grid point.
    val_fraction, seed:
        Holdout protocol for the selection criterion.
    feature_batch_size:
        Chunk size for each candidate's reservoir sweeps (bounds per-worker
        peak memory; no numerical effect).
    workers:
        Worker-process count for candidate evaluation; ``None`` defers to
        the ``REPRO_WORKERS`` environment variable, 0/1 is serial.  Serial
        and parallel runs are bit-identical.
    backend:
        Array-backend spec for candidate evaluation (e.g. ``"torch"``,
        ``"cupy"``); routes the sweep through a
        :class:`~repro.exec.BackendExecutor` (or stamps the spec onto the
        worker contexts when combined with ``workers``).
    executor_kind:
        Force an executor kind (``"serial"``, ``"vectorized"``,
        ``"multiprocess"``); ``None`` defers to the ``REPRO_EXECUTOR``
        environment variable, then to the ``workers``/``backend``
        resolution.  ``"vectorized"`` fuses each level's candidates into
        stacked ``(K, N, ...)`` sweeps — bit-identical to serial on NumPy.
    candidate_block_size:
        Candidates fused per sweep by a vectorized executor; ``None``
        defers to ``REPRO_CANDIDATE_BLOCK_SIZE`` (default 16).
    executor:
        A pre-built :class:`~repro.exec.CandidateExecutor`; overrides
        ``workers``/``backend``/``executor_kind`` when given.
    """

    def __init__(
        self,
        extractor: DFRFeatureExtractor,
        *,
        a_range: Tuple[float, float] = PAPER_A_RANGE,
        b_range: Tuple[float, float] = PAPER_B_RANGE,
        betas: Sequence[float] = PAPER_BETAS,
        val_fraction: float = 0.2,
        feature_batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        executor_kind: Optional[str] = None,
        candidate_block_size: Optional[int] = None,
        executor: Optional[CandidateExecutor] = None,
        seed: SeedLike = None,
    ):
        self.extractor = extractor
        self.a_range = tuple(a_range)
        self.b_range = tuple(b_range)
        self.betas = tuple(betas)
        self.val_fraction = float(val_fraction)
        self.feature_batch_size = feature_batch_size
        self.executor = (executor if executor is not None
                         else make_executor(workers, backend=backend,
                                            kind=executor_kind,
                                            candidate_block_size=candidate_block_size))
        self._rng = ensure_rng(seed)

    def _make_context(self, u_train, y_train, u_test, y_test,
                      n_classes) -> EvaluationContext:
        return EvaluationContext.from_data(
            self.extractor.snapshot(),
            u_train, y_train, u_test, y_test,
            betas=self.betas,
            val_fraction=self.val_fraction,
            n_classes=n_classes,
            feature_batch_size=self.feature_batch_size,
        )

    def run_level(
        self,
        u_train,
        y_train,
        u_test,
        y_test,
        divisions: int,
        *,
        n_classes: Optional[int] = None,
        context: Optional[EvaluationContext] = None,
    ) -> GridLevelResult:
        """Evaluate one complete ``divisions x divisions`` grid.

        All ``d^2`` candidates are submitted to the executor as one batch,
        so a multiprocess executor shards the whole level across workers.
        ``context`` lets a multi-level caller reuse one submission context
        (and thereby one worker pool) across levels; it must describe the
        same data arguments.
        """
        start = time.perf_counter()
        a_vals = grid_values(*self.a_range, divisions)
        b_vals = grid_values(*self.b_range, divisions)
        # one fixed split per level keeps the criterion comparable across
        # points (same rule as the proposed method's beta selection)
        split_seed = int(self._rng.integers(2**31 - 1))
        if context is None:
            context = self._make_context(u_train, y_train, u_test, y_test,
                                         n_classes)
        candidates = [
            Candidate(index=i * divisions + j, A=float(a_val), B=float(b_val),
                      seed=split_seed)
            for i, a_val in enumerate(a_vals)
            for j, b_val in enumerate(b_vals)
        ]
        report = self.executor.run(context, candidates)
        evaluations = report.evaluations()
        return GridLevelResult(
            divisions=divisions,
            evaluations=evaluations,
            best=best_evaluation(evaluations),
            elapsed_seconds=time.perf_counter() - start,
            compute_seconds=report.compute_seconds,
        )

    def search_until(
        self,
        u_train,
        y_train,
        u_test,
        y_test,
        target_accuracy: float,
        *,
        max_divisions: int = 20,
        n_classes: Optional[int] = None,
    ) -> GridSearchOutcome:
        """The paper's Table 1 protocol: grow the grid until parity.

        Division counts 1, 2, ... are run in turn; total time and point
        counts accumulate across levels.  The search stops at the first
        level whose *selected* configuration reaches ``target_accuracy`` on
        the test set, or at ``max_divisions``.
        """
        if max_divisions < 1:
            raise ValueError(f"max_divisions must be >= 1, got {max_divisions}")
        levels: List[GridLevelResult] = []
        total_seconds = 0.0
        total_compute = 0.0
        total_points = 0
        best_overall: Optional[FixedParamsEvaluation] = None
        # one context for all levels: a multiprocess executor keeps its
        # worker pool (and the shipped data) alive across the whole search
        context = self._make_context(u_train, y_train, u_test, y_test, n_classes)
        for divisions in range(1, max_divisions + 1):
            level = self.run_level(
                u_train, y_train, u_test, y_test, divisions,
                n_classes=n_classes, context=context,
            )
            levels.append(level)
            total_seconds += level.elapsed_seconds
            total_compute += level.compute_seconds
            total_points += level.n_points
            if better_evaluation(level.best, best_overall):
                best_overall = level.best
            if level.best.test_accuracy >= target_accuracy:
                return GridSearchOutcome(
                    target_accuracy=target_accuracy,
                    reached=True,
                    divisions=divisions,
                    achieved_accuracy=level.best.test_accuracy,
                    best=level.best,
                    total_seconds=total_seconds,
                    total_points=total_points,
                    levels=levels,
                    total_compute_seconds=total_compute,
                )
        return GridSearchOutcome(
            target_accuracy=target_accuracy,
            reached=False,
            divisions=max_divisions,
            achieved_accuracy=levels[-1].best.test_accuracy,
            best=best_overall,
            total_seconds=total_seconds,
            total_points=total_points,
            levels=levels,
            total_compute_seconds=total_compute,
        )


@dataclass
class RecursiveLevel:
    """One zoom level of the recursive grid search."""

    a_box: Tuple[float, float]          # log10 bounds searched at this level
    b_box: Tuple[float, float]
    a_values: np.ndarray
    b_values: np.ndarray
    val_loss_matrix: np.ndarray         # (d, d), selection tiebreak
    val_accuracy_matrix: np.ndarray     # (d, d), selection criterion
    accuracy_matrix: np.ndarray         # (d, d), test accuracy (reporting)
    best_index: Tuple[int, int]
    best: FixedParamsEvaluation


class RecursiveGridSearch:
    """Coarse-to-fine "zoom" grid search (the Fig. 6 alternative).

    Each level lays a ``divisions x divisions`` grid over the current box,
    then shrinks the box to the section of the best (lowest validation
    loss) grid point and recurses.  Linear in the number of levels, but the
    zoom commits to the coarse level's winner — when the accuracy landscape
    is rugged (Fig. 6), the refined grid can miss the global optimum
    entirely.
    """

    def __init__(
        self,
        extractor: DFRFeatureExtractor,
        *,
        divisions: int = 5,
        a_range: Tuple[float, float] = PAPER_A_RANGE,
        b_range: Tuple[float, float] = PAPER_B_RANGE,
        betas: Sequence[float] = PAPER_BETAS,
        val_fraction: float = 0.2,
        feature_batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        executor_kind: Optional[str] = None,
        candidate_block_size: Optional[int] = None,
        executor: Optional[CandidateExecutor] = None,
        seed: SeedLike = None,
    ):
        if divisions < 2:
            raise ValueError(f"divisions must be >= 2 to zoom, got {divisions}")
        self.divisions = int(divisions)
        self.a_range = tuple(a_range)
        self.b_range = tuple(b_range)
        self._grid = GridSearch(
            extractor,
            a_range=a_range,
            b_range=b_range,
            betas=betas,
            val_fraction=val_fraction,
            feature_batch_size=feature_batch_size,
            workers=workers,
            backend=backend,
            executor_kind=executor_kind,
            candidate_block_size=candidate_block_size,
            executor=executor,
            seed=seed,
        )

    def run(
        self,
        u_train,
        y_train,
        u_test,
        y_test,
        *,
        n_levels: int = 2,
        n_classes: Optional[int] = None,
    ) -> List[RecursiveLevel]:
        """Run ``n_levels`` of zooming; returns one record per level."""
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        a_box = self.a_range
        b_box = self.b_range
        levels = []
        d = self.divisions
        # the context is range-independent, so all zoom levels share it
        # (and, under a multiprocess executor, one worker pool)
        context = self._grid._make_context(u_train, y_train, u_test, y_test,
                                           n_classes)
        for _ in range(n_levels):
            self._grid.a_range = a_box
            self._grid.b_range = b_box
            level_result = self._grid.run_level(
                u_train, y_train, u_test, y_test, d,
                n_classes=n_classes, context=context,
            )
            val_mat = np.array(
                [ev.val_loss for ev in level_result.evaluations]
            ).reshape(d, d)
            val_acc = np.array(
                [ev.val_accuracy for ev in level_result.evaluations]
            ).reshape(d, d)
            acc_mat = level_result.accuracy_matrix()
            # selection: the shared rule (highest validation accuracy, CE
            # loss then smallest (A, B) as tiebreaks); on a grid the (A, B)
            # tiebreak equals the lowest flat index, matching the historical
            # lexsort behaviour
            evals = level_result.evaluations
            flat_best = min(range(len(evals)),
                            key=lambda i: selection_key(evals[i]))
            bi, bj = flat_best // d, flat_best % d
            a_vals = grid_values(*a_box, d)
            b_vals = grid_values(*b_box, d)
            levels.append(
                RecursiveLevel(
                    a_box=a_box,
                    b_box=b_box,
                    a_values=a_vals,
                    b_values=b_vals,
                    val_loss_matrix=val_mat,
                    val_accuracy_matrix=val_acc,
                    accuracy_matrix=acc_mat,
                    best_index=(bi, bj),
                    best=level_result.evaluations[flat_best],
                )
            )
            # zoom into the winning section of each axis
            a_edges = np.linspace(a_box[0], a_box[1], d + 1)
            b_edges = np.linspace(b_box[0], b_box[1], d + 1)
            a_box = (float(a_edges[bi]), float(a_edges[bi + 1]))
            b_box = (float(b_edges[bj]), float(b_edges[bj + 1]))
        return levels
