"""Backpropagation through the DFR stack (paper Sec. 3).

The loss gradient flows backwards through three layers:

1. **Output layer** (Sec. 3.1): closed-form softmax/cross-entropy gradients,
   delegated to :class:`repro.readout.softmax.SoftmaxReadout`.
2. **DPRR layer** (Sec. 3.2): every state ``x(k)_n`` feeds many DPRR entries;
   the summed contribution is the paper's "(bpv)" (Eq. 23).
3. **Reservoir layer** (Sec. 3.3): the recursive state update couples each
   state to its flat-chain successor (via ``B``) and to the same node one
   step later (via ``f'``); Eq. 30 resolves the recursion.

Truncation (Sec. 3.4) keeps only the last ``window`` time steps of this
backward pass.  The paper's equations (33–36) are the ``window = 1`` case;
``window = T`` reproduces full BPTT exactly (pinned by tests), so a single
implementation covers both and everything in between.

Efficient form of the backward chain
------------------------------------
Flattening node indices ``t = (k-1) N_x + n`` turns Eq. 30 into

.. math::

    g_t = \\mathrm{bpv}_t + B\\,g_{t+1} + A\\varphi'(s_{t+N_x})\\,g_{t+N_x},

so, within one time step ``k``, ``g(k)`` solves a *linear backward
recursion* in ``n`` with drive
``e(k)_n = bpv(k)_n + A phi'(s(k+1)_n) g(k+1)_n`` and boundary
``B * g(k+1)_1`` — one reversed :func:`scipy.signal.lfilter` call per step,
mirroring the forward pass.

Array backends
--------------
The batched pass (:func:`batch_reservoir_backward`,
:meth:`BackpropEngine.batch_gradients`) is pure dense array work — einsum
contractions, element-wise shape functions, and first-order filter chains —
so it routes every array op through an
:class:`~repro.backend.ArrayBackend`.  The engine resolves its backend from
its ``backend`` argument, falling back to the ``REPRO_BACKEND`` environment
variable (NumPy when unset); engine outputs always come back as NumPy
arrays, so optimizer updates and telemetry are backend-agnostic.  The
per-sample pass (:func:`reservoir_backward`, the paper's reference SGD
protocol) deliberately stays on NumPy — it is the bit-pinned baseline every
backend is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.signal import lfilter

from repro.backend import default_backend, resolve_backend
from repro.readout.softmax import SoftmaxReadout
from repro.representation.dprr import DPRR
from repro.reservoir.nonlinearity import Identity, Nonlinearity, get_nonlinearity

__all__ = [
    "DFRGradients",
    "BatchGradients",
    "BackpropEngine",
    "reservoir_backward",
    "batch_reservoir_backward",
]


@dataclass
class DFRGradients:
    """Gradients of the per-sample loss w.r.t. every trained parameter."""

    loss: float
    probs: np.ndarray        # (N_y,) predicted probabilities
    d_A: float
    d_B: float
    d_weights: np.ndarray    # (N_y, N_r)
    d_bias: np.ndarray       # (N_y,)
    #: dL/dx(k)_n over the backward window, shape (window, N_x); exposed for
    #: tests and diagnostics
    state_grads: Optional[np.ndarray] = None


@dataclass
class BatchGradients:
    """Gradients of the per-sample losses over a whole minibatch.

    Parameter gradients that are scalars per sample (``d_A``, ``d_B``) stay
    per-row so the caller controls the reduction (and can drop diverged
    rows); the dense output-layer gradients are already averaged over the
    batch, since per-sample ``(N_y, N_r)`` matrices are rank-1 and never
    needed individually.

    A candidate-stacked pass (K ``(A, B)`` candidates trained in one fused
    call) prepends a ``K`` axis to every array: ``losses`` is ``(K, N)``,
    ``d_weights`` a ``(K, N_y, N_r)`` stack, and so on.
    """

    losses: np.ndarray       # (N,) per-sample cross-entropy
    probs: np.ndarray        # (N, N_y) predicted probabilities
    d_A: np.ndarray          # (N,) per-sample dL/dA
    d_B: np.ndarray          # (N,) per-sample dL/dB
    d_weights: np.ndarray    # (N_y, N_r) mean over the batch
    d_bias: np.ndarray       # (N_y,) mean over the batch
    #: dL/dx(k)_n over the backward window, shape (N, window, N_x)
    state_grads: Optional[np.ndarray] = None

    @property
    def stacked(self) -> bool:
        """Whether a leading candidate axis is present."""
        return self.losses.ndim == 2

    @property
    def n_samples(self) -> int:
        return self.losses.shape[-1] if self.stacked else self.losses.shape[0]


def reservoir_backward(
    window_states: np.ndarray,
    window_pre: np.ndarray,
    d_repr: np.ndarray,
    A: float,
    B: float,
    *,
    n_steps: int,
    nonlinearity: Nonlinearity,
) -> tuple:
    """Backward pass through DPRR + reservoir over a window of final steps.

    Parameters
    ----------
    window_states:
        ``(window + 1, N_x)`` states ``x(T-window) .. x(T)`` (for
        ``window = T`` this is the full trace including the zero initial
        state).
    window_pre:
        ``(window, N_x)`` pre-activations ``s(T-window+1) .. s(T)``.
    d_repr:
        ``(N_x (N_x+1),)`` gradient of the loss w.r.t. the *unnormalized*
        DPRR sums (any DPRR normalization constant must already be folded
        in by the caller).
    A, B:
        Reservoir parameters.
    n_steps:
        Total series length ``T`` (needed to detect whether the window
        touches the final step, where the Eq. 23 "next step" term vanishes).

    Returns
    -------
    (d_A, d_B, state_grads):
        Scalar parameter gradients (paper Eqs. 31–32 restricted to the
        window; Eqs. 35–36 for ``window = 1``) and the ``(window, N_x)``
        array of dL/dx(k)_n.
    """
    window_states = np.asarray(window_states, dtype=np.float64)
    window_pre = np.asarray(window_pre, dtype=np.float64)
    window, nx = window_pre.shape
    if window_states.shape != (window + 1, nx):
        raise ValueError(
            f"window_states must be (window+1, N_x) = {(window + 1, nx)}, "
            f"got {window_states.shape}"
        )
    if window > n_steps:
        raise ValueError(f"window {window} exceeds series length {n_steps}")
    d_repr = np.asarray(d_repr, dtype=np.float64).reshape(-1)
    if d_repr.shape[0] != nx * (nx + 1):
        raise ValueError(
            f"d_repr must have N_x(N_x+1) = {nx * (nx + 1)} entries, "
            f"got {d_repr.shape[0]}"
        )
    g_mat = d_repr[: nx * nx].reshape(nx, nx)
    g_sum = d_repr[nx * nx:]

    b_poly = np.array([1.0, -B])
    g_next = np.zeros(nx)        # g(k+1); zero beyond the final step
    d_a = 0.0
    d_b = 0.0
    state_grads = np.zeros((window, nx))
    dphi = nonlinearity.dphi
    phi = nonlinearity.phi

    # walk k = T, T-1, ..., T-window+1; idx indexes rows of the window arrays
    for idx in range(window - 1, -1, -1):
        k_is_last = idx == window - 1  # does this row correspond to k = T?
        x_prev = window_states[idx]        # x(k-1)
        x_here = window_states[idx + 1]    # x(k)
        # Eq. 23: contribution of x(k)_n through the DPRR entries
        bpv = g_mat @ x_prev + g_sum
        if not k_is_last:
            x_next = window_states[idx + 2]
            bpv = bpv + g_mat.T @ x_next
        # Eq. 30, cross-step term A * phi'(s(k+1)) * g(k+1)
        drive = bpv
        if not k_is_last:
            drive = drive + A * dphi(window_pre[idx + 1]) * g_next
        # Eq. 30, B-chain within the step, boundary B * g(k+1)_1
        zi = np.array([B * g_next[0]])
        rev, _ = lfilter([1.0], b_poly, drive[::-1], zi=zi)
        g_here = rev[::-1]
        state_grads[idx] = g_here
        # Eqs. 31-32 restricted to the window (Eqs. 35-36 when window == 1)
        d_a += float(phi(window_pre[idx]) @ g_here)
        x_left = np.concatenate(([x_prev[-1]], x_here[:-1]))
        d_b += float(x_left @ g_here)
        g_next = g_here
    return d_a, d_b, state_grads


def batch_reservoir_backward(
    window_states: np.ndarray,
    window_pre: np.ndarray,
    d_repr: np.ndarray,
    A,
    B,
    *,
    n_steps: int,
    nonlinearity: Nonlinearity,
    backend=None,
) -> tuple:
    """Vectorized :func:`reservoir_backward` over a minibatch.

    Identical mathematics, one batch axis in front of every array: the
    per-step backward recursion is a first-order IIR filter in ``n`` (the
    reversed Eq.-30 chain), so the backend's filter kernel evaluates it for
    all samples at once exactly like the forward pass in
    :mod:`repro.reservoir.modular` — the Python loop is only over the
    ``window`` time steps, not over samples.

    A *candidate* axis stacks in front of the batch axis the same way:
    4-D inputs ``(K, N, window+1, N_x)`` with length-``K`` parameter
    vectors run the backward for K ``(A, B)`` candidates in one fused
    pass (the per-candidate ``B``-chain goes through the backend's stacked
    first-order filter; every einsum simply carries the extra leading
    axis).

    Parameters
    ----------
    window_states:
        ``(N, window + 1, N_x)`` states ``x(T-window) .. x(T)`` per sample
        — or ``(K, N, window+1, N_x)`` per candidate and sample.
    window_pre:
        ``(N, window, N_x)`` (or ``(K, N, window, N_x)``) pre-activations
        ``s(T-window+1) .. s(T)``.
    d_repr:
        ``(N, N_x (N_x+1))`` (or ``(K, N, N_x (N_x+1))``) per-sample
        gradients w.r.t. the *unnormalized* DPRR sums.
    A, B:
        Reservoir parameters: scalars for one shared candidate point, or
        length-``K`` vectors matching a candidate-stacked input.
    n_steps:
        Total series length ``T``.
    backend:
        :class:`~repro.backend.ArrayBackend` executing the pass; ``None``
        is the NumPy reference (bit-identical to the historical
        implementation).  Inputs are converted in; outputs are returned as
        that backend's arrays (the engine converts back to NumPy).

    Returns
    -------
    (d_A, d_B, state_grads):
        ``(N,)`` parameter-gradient vectors and the ``(N, window, N_x)``
        array of dL/dx(k)_n — with a leading ``K`` axis on each for a
        candidate-stacked pass.
    """
    xb = resolve_backend(backend)
    window_states = xb.asarray(window_states, dtype=xb.float_dtype)
    window_pre = xb.asarray(window_pre, dtype=xb.float_dtype)
    if window_pre.ndim not in (3, 4):
        raise ValueError(
            f"window_pre must be (N, window, N_x) or (K, N, window, N_x), "
            f"got shape {window_pre.shape}"
        )
    stacked = window_pre.ndim == 4
    lead = tuple(window_pre.shape[:-2])
    window, nx = window_pre.shape[-2:]
    if tuple(window_states.shape) != lead + (window + 1, nx):
        raise ValueError(
            f"window_states must be {lead + (window + 1, nx)}, "
            f"got {tuple(window_states.shape)}"
        )
    if window > n_steps:
        raise ValueError(f"window {window} exceeds series length {n_steps}")
    d_repr = xb.asarray(d_repr, dtype=xb.float_dtype)
    if tuple(d_repr.shape) != lead + (nx * (nx + 1),):
        raise ValueError(
            f"d_repr must be {lead + (nx * (nx + 1),)}, "
            f"got {tuple(d_repr.shape)}"
        )
    if stacked:
        # scalars broadcast against the candidate axis, mirroring the
        # mixed scalar/vector (A, B) the forward pass accepts
        try:
            a_vec = np.ascontiguousarray(np.broadcast_to(
                np.asarray(A, dtype=np.float64), (lead[0],)))
            b_vec = np.ascontiguousarray(np.broadcast_to(
                np.asarray(B, dtype=np.float64), (lead[0],)))
        except ValueError:
            raise ValueError(
                f"candidate-stacked inputs need (K,) = ({lead[0]},) parameter "
                f"vectors (or scalars), got A {np.shape(A)} and B {np.shape(B)}"
            ) from None
        a_mul = xb.asarray(a_vec)[:, None, None]
        b_mul = xb.asarray(b_vec)[:, None, None]
    else:
        A = float(A)
        B = float(B)
        a_mul, b_mul = A, B
    g_mat = d_repr[..., : nx * nx].reshape(lead + (nx, nx))
    g_sum = d_repr[..., nx * nx:]

    g_next = xb.zeros(lead + (nx,))   # g(k+1); zero beyond the final step
    d_a = xb.zeros(lead)
    d_b = xb.zeros(lead)
    state_grads = xb.zeros(lead + (window, nx))

    for idx in range(window - 1, -1, -1):
        k_is_last = idx == window - 1
        x_prev = window_states[..., idx, :]
        x_here = window_states[..., idx + 1, :]
        # Eq. 23, batched: bpv(k) = G x(k-1) + g_sum (+ G^T x(k+1)); the
        # ellipsis carries the batch axis — plus, when stacked, the
        # candidate axis in front of it
        drive = xb.einsum("...ij,...j->...i", g_mat, x_prev) + g_sum
        if not k_is_last:
            x_next = window_states[..., idx + 2, :]
            drive = drive + xb.einsum("...ji,...j->...i", g_mat, x_next)
            # Eq. 30, cross-step term A * phi'(s(k+1)) * g(k+1)
            drive = xb.fused_backward_drive(
                nonlinearity, drive, window_pre[..., idx + 1, :], g_next,
                a_mul)
        # Eq. 30, B-chain within the step, boundary B * g(k+1)_1 per sample
        zi = b_mul * g_next[..., :1]
        if stacked:
            rev = xb.first_order_filter_stacked(xb.flip(drive, -1), b_vec, zi)
        else:
            rev = xb.first_order_filter(xb.flip(drive, -1), B, zi)
        g_here = xb.flip(rev, -1)
        state_grads[..., idx, :] = g_here
        # Eqs. 31-32 restricted to the window, one dot product per sample
        d_a += xb.einsum("...i,...i->...",
                         xb.phi(nonlinearity, window_pre[..., idx, :]), g_here)
        x_left = xb.concatenate([x_prev[..., -1:], x_here[..., :-1]], axis=-1)
        d_b += xb.einsum("...i,...i->...", x_left, g_here)
        g_next = g_here
    return d_a, d_b, state_grads


class BackpropEngine:
    """Gradient computation for the modular-DFR classifier.

    :meth:`sample_gradients` is the per-sample path (the paper's SGD
    protocol); :meth:`batch_gradients` vectorizes the identical mathematics
    over a minibatch sharing one ``(A, B)`` candidate.

    Parameters
    ----------
    nonlinearity:
        The reservoir shape function (must match the forward pass).
    dprr:
        The :class:`~repro.representation.dprr.DPRR` used to build features
        (its normalization constant is folded into the backward pass).
    window:
        Number of final time steps kept in the backward pass; ``1`` is the
        paper's truncated method, ``None`` means full BPTT.
    backend:
        :class:`~repro.backend.ArrayBackend` (or spec string) executing the
        *batched* path; ``None`` defers to the ``REPRO_BACKEND``
        environment variable (NumPy when unset).  The per-sample path is
        always NumPy — it is the pinned reference.
    dtype:
        Working precision for the batched path ("float64" default,
        "float32" opt-in); ignored when ``backend`` is already an
        :class:`~repro.backend.ArrayBackend` instance.  The per-sample
        path stays float64 regardless.
    """

    def __init__(
        self,
        nonlinearity=None,
        dprr: Optional[DPRR] = None,
        window: Optional[int] = 1,
        backend=None,
        dtype: Optional[str] = None,
    ):
        self.nonlinearity = (
            Identity() if nonlinearity is None else get_nonlinearity(nonlinearity)
        )
        self.dprr = dprr if dprr is not None else DPRR()
        if window is not None and window < 1:
            raise ValueError(f"window must be None or >= 1, got {window}")
        self.window = window
        self.backend = (
            default_backend(dtype=dtype) if backend is None
            else resolve_backend(backend, dtype=dtype)
        )

    def effective_window(self, n_steps: int) -> int:
        """The realized window for a series of length ``n_steps``."""
        if self.window is None:
            return n_steps
        return min(self.window, n_steps)

    def sample_gradients(
        self,
        window_states: np.ndarray,
        window_pre: np.ndarray,
        features: np.ndarray,
        readout: SoftmaxReadout,
        target_onehot: np.ndarray,
        A: float,
        B: float,
        *,
        n_steps: int,
        keep_state_grads: bool = False,
    ) -> DFRGradients:
        """Full gradient set for one sample.

        ``window_states``/``window_pre`` must cover
        :meth:`effective_window` steps (a
        :class:`~repro.reservoir.modular.StreamingResult` provides exactly
        this; a full trace sliced with
        :meth:`~repro.reservoir.modular.ReservoirTrace.final_window` works
        too).  ``features`` is the (normalized) DPRR vector of the sample.
        """
        out = readout.loss_and_grads(features, target_onehot)
        # undo the DPRR normalization so d_repr is w.r.t. the raw sums
        d_repr = out.d_features * self.dprr.scale(n_steps)
        d_a, d_b, state_grads = reservoir_backward(
            window_states,
            window_pre,
            d_repr,
            A,
            B,
            n_steps=n_steps,
            nonlinearity=self.nonlinearity,
        )
        return DFRGradients(
            loss=out.loss,
            probs=out.probs,
            d_A=d_a,
            d_B=d_b,
            d_weights=out.d_weights,
            d_bias=out.d_bias,
            state_grads=state_grads if keep_state_grads else None,
        )

    def batch_gradients(
        self,
        window_states: np.ndarray,
        window_pre: np.ndarray,
        features: np.ndarray,
        readout: SoftmaxReadout,
        targets_onehot: np.ndarray,
        A,
        B,
        *,
        n_steps: int,
        keep_state_grads: bool = False,
        weights=None,
        bias=None,
    ) -> BatchGradients:
        """Full gradient set for a minibatch sharing one ``(A, B)`` point.

        Array arguments carry a leading batch axis: ``window_states`` is
        ``(N, window+1, N_x)``, ``window_pre`` is ``(N, window, N_x)``,
        ``features`` is ``(N, N_r)`` and ``targets_onehot`` is ``(N, N_y)``.
        Output-layer gradients come back averaged over the batch; ``d_A``,
        ``d_B`` and ``losses`` stay per-row so callers can mask diverged
        samples before reducing.

        K ``(A, B)`` candidates train in one fused call by stacking a
        candidate axis in front of the batch axis — 4-D
        ``window_states``/``window_pre`` (as produced by a vector-``(A, B)``
        reservoir run), ``(K, N, N_r)`` features, length-``K`` parameter
        vectors, and per-candidate output layers passed as a
        ``(K, N_y, N_r)``/``(K, N_y)`` ``weights``/``bias`` stack (the
        ``readout`` argument then only fixes the layer geometry).  Every
        returned array gains the leading ``K`` axis.

        The whole pass runs on the engine's array backend (inputs are
        converted in, device-resident inputs are consumed as-is), and every
        returned array is NumPy — gradients are tiny next to activations,
        so the transfer cost is negligible and downstream optimizer code
        stays backend-agnostic.
        """
        xb = self.backend
        features = xb.asarray(features, dtype=xb.float_dtype)
        if features.ndim < 2:
            features = xb.atleast_2d(features)
        stacked = features.ndim == 3
        out = readout.batch_loss_and_grads(
            features, targets_onehot, backend=xb, weights=weights, bias=bias,
        )
        # undo the DPRR normalization so d_repr is w.r.t. the raw sums
        d_repr = out.d_features * self.dprr.scale(n_steps)
        d_a, d_b, state_grads = batch_reservoir_backward(
            window_states,
            window_pre,
            d_repr,
            A,
            B,
            n_steps=n_steps,
            nonlinearity=self.nonlinearity,
            backend=xb,
        )
        n = features.shape[-2]
        if stacked:
            # per-candidate reduction: (K, N_y, N) @ (K, N, N_r) — the same
            # BLAS reduction as the 2-D path, once per candidate
            d_weights = xb.swapaxes(out.deltas, -1, -2) @ features / n
        else:
            d_weights = out.deltas.T @ features / n
        return BatchGradients(
            losses=xb.to_numpy(out.losses),
            probs=xb.to_numpy(out.probs),
            d_A=xb.to_numpy(d_a),
            d_B=xb.to_numpy(d_b),
            d_weights=xb.to_numpy(d_weights),
            d_bias=xb.to_numpy(xb.mean(out.deltas, axis=-2)),
            state_grads=xb.to_numpy(state_grads) if keep_state_grads else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        win = "full" if self.window is None else self.window
        return (
            f"BackpropEngine(nonlinearity={self.nonlinearity!r}, "
            f"dprr={self.dprr!r}, window={win})"
        )
