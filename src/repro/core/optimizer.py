"""Gradient-descent optimizers and learning-rate schedules.

The paper trains with plain stochastic gradient descent and a step schedule:
the learning rate starts at 1 and is multiplied by 0.1 at fixed epochs —
{5, 10, 15, 20} for the reservoir parameters and {10, 15, 20} for the output
layer (Sec. 4).  :class:`StepSchedule` encodes exactly that; Momentum and
Adam are provided as extensions for the ablation benches.

Optimizers operate on *parameter dictionaries* mapping names to numpy arrays
(scalars are 0-d arrays), so one optimizer instance can drive the whole
parameter set while per-group learning rates stay with the caller.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = [
    "ConstantSchedule",
    "StepSchedule",
    "paper_reservoir_schedule",
    "paper_output_schedule",
    "SGD",
    "MomentumSGD",
    "Adam",
    "get_optimizer",
    "clip_gradients",
]


class ConstantSchedule:
    """A learning rate that never changes."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def lr_at(self, epoch: int) -> float:
        """Learning rate during 1-indexed ``epoch``."""
        return self.lr

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConstantSchedule(lr={self.lr})"


class StepSchedule:
    """Multiply the learning rate by ``gamma`` at each milestone epoch.

    The milestone applies from the *start* of the listed (1-indexed) epoch:
    with ``initial_lr=1``, ``milestones=(5, 10)`` and ``gamma=0.1``, epochs
    1–4 run at 1.0, epochs 5–9 at 0.1, and epoch 10 onwards at 0.01.
    """

    def __init__(self, initial_lr: float, milestones: Sequence[int], gamma: float = 0.1):
        if initial_lr <= 0:
            raise ValueError(f"initial_lr must be positive, got {initial_lr}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        milestones = tuple(int(m) for m in milestones)
        if any(m < 1 for m in milestones):
            raise ValueError("milestones are 1-indexed epochs and must be >= 1")
        if list(milestones) != sorted(set(milestones)):
            raise ValueError("milestones must be strictly increasing")
        self.initial_lr = float(initial_lr)
        self.milestones = milestones
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        """Learning rate during 1-indexed ``epoch``."""
        if epoch < 1:
            raise ValueError(f"epoch is 1-indexed, got {epoch}")
        n_decays = sum(1 for m in self.milestones if epoch >= m)
        return self.initial_lr * self.gamma**n_decays

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StepSchedule(initial_lr={self.initial_lr}, "
            f"milestones={self.milestones}, gamma={self.gamma})"
        )


def paper_reservoir_schedule(initial_lr: float = 1.0) -> StepSchedule:
    """The paper's reservoir-parameter schedule: x0.1 at epochs 5, 10, 15, 20."""
    return StepSchedule(initial_lr, milestones=(5, 10, 15, 20), gamma=0.1)


def paper_output_schedule(initial_lr: float = 1.0) -> StepSchedule:
    """The paper's output-layer schedule: x0.1 at epochs 10, 15, 20."""
    return StepSchedule(initial_lr, milestones=(10, 15, 20), gamma=0.1)


def clip_gradients(grads: Dict[str, np.ndarray], max_norm: float) -> float:
    """Scale all gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm.  A ``max_norm`` of ``None`` or ``inf``
    disables clipping.  The paper does not describe its numerical guards;
    clipping is this implementation's (documented) stabilizer for the
    learning-rate-1 regime.
    """
    total = float(np.sqrt(sum(float(np.sum(g**2)) for g in grads.values())))
    if max_norm is None or not np.isfinite(max_norm):
        return total
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads.values():
            g *= scale
    return total


class SGD:
    """Plain stochastic gradient descent (the paper's optimizer)."""

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray],
             lrs: Dict[str, float]) -> None:
        """In-place update ``p -= lr * g`` for every parameter."""
        for name, p in params.items():
            p -= lrs[name] * grads[name]

    def reset(self) -> None:
        """No internal state."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "SGD()"


class MomentumSGD:
    """SGD with classical momentum (extension; not used by the paper)."""

    def __init__(self, momentum: float = 0.9):
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params, grads, lrs) -> None:
        for name, p in params.items():
            v = self._velocity.get(name)
            if v is None:
                v = np.zeros_like(p)
            v = self.momentum * v - lrs[name] * grads[name]
            self._velocity[name] = v
            p += v

    def reset(self) -> None:
        self._velocity.clear()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MomentumSGD(momentum={self.momentum})"


class Adam:
    """Adam optimizer (extension; not used by the paper)."""

    def __init__(self, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must lie in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params, grads, lrs) -> None:
        self._t += 1
        for name, p in params.items():
            g = grads[name]
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(p)
                v = np.zeros_like(p)
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g**2
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            p -= lrs[name] * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Adam(beta1={self.beta1}, beta2={self.beta2}, eps={self.eps})"


_OPTIMIZERS = {"sgd": SGD, "momentum": MomentumSGD, "adam": Adam}


def get_optimizer(spec):
    """Resolve an optimizer name or pass an instance through."""
    if isinstance(spec, (SGD, MomentumSGD, Adam)):
        return spec
    if isinstance(spec, str):
        try:
            return _OPTIMIZERS[spec]()
        except KeyError:
            known = ", ".join(sorted(_OPTIMIZERS))
            raise ValueError(f"unknown optimizer {spec!r}; known: {known}") from None
    raise TypeError(f"optimizer must be a name or instance, got {type(spec).__name__}")
