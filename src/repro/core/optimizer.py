"""Gradient-descent optimizers and learning-rate schedules.

The paper trains with plain stochastic gradient descent and a step schedule:
the learning rate starts at 1 and is multiplied by 0.1 at fixed epochs —
{5, 10, 15, 20} for the reservoir parameters and {10, 15, 20} for the output
layer (Sec. 4).  :class:`StepSchedule` encodes exactly that; Momentum and
Adam are provided as extensions for the ablation benches.

Optimizers operate on *parameter dictionaries* mapping names to numpy arrays
(scalars are 0-d arrays), so one optimizer instance can drive the whole
parameter set while per-group learning rates stay with the caller.

Stacked (population) mode
-------------------------
A population trainer (:mod:`repro.core.population`) descends K ``(A, B)``
candidates concurrently, so every parameter array carries a leading
candidate axis: ``A`` is ``(K,)``, the output weights are ``(K, N_y, N_r)``
and so on.  The optimizers support this natively:

* ``reset(n_rows=K)`` switches an optimizer into stacked mode with
  *per-candidate* internal state (velocities, Adam moments, per-row step
  counts);
* ``step(..., mask=row_mask)`` (a boolean ``(K,)`` mask) updates only the
  flagged rows — rows outside the mask keep their parameters *and* their
  optimizer state untouched, exactly as if their member had skipped that
  minibatch;
* ``take_rows(rows)`` re-indexes the internal state along the candidate
  axis when retired members are compacted out of the stack;
* learning rates may be per-candidate ``(K,)`` vectors; they broadcast
  against the parameter tails.

Every stacked update is element-wise along the candidate axis, so row ``k``
of a stacked optimizer is bit-identical to an independent scalar-mode
optimizer driving that candidate alone (pinned by
``tests/test_optimizer.py``).  :func:`clip_gradients` likewise computes
*per-candidate* norms when told the gradients are stacked.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "ConstantSchedule",
    "StepSchedule",
    "paper_reservoir_schedule",
    "paper_output_schedule",
    "SGD",
    "MomentumSGD",
    "Adam",
    "get_optimizer",
    "clip_gradients",
]


class ConstantSchedule:
    """A learning rate that never changes."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def lr_at(self, epoch):
        """Learning rate during 1-indexed ``epoch`` (scalar or array)."""
        epoch = np.asarray(epoch)
        if epoch.ndim:
            return np.full(epoch.shape, self.lr)
        return self.lr

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConstantSchedule(lr={self.lr})"


class StepSchedule:
    """Multiply the learning rate by ``gamma`` at each milestone epoch.

    The milestone applies from the *start* of the listed (1-indexed) epoch:
    with ``initial_lr=1``, ``milestones=(5, 10)`` and ``gamma=0.1``, epochs
    1–4 run at 1.0, epochs 5–9 at 0.1, and epoch 10 onwards at 0.01.
    """

    def __init__(self, initial_lr: float, milestones: Sequence[int], gamma: float = 0.1):
        if initial_lr <= 0:
            raise ValueError(f"initial_lr must be positive, got {initial_lr}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        milestones = tuple(int(m) for m in milestones)
        if any(m < 1 for m in milestones):
            raise ValueError("milestones are 1-indexed epochs and must be >= 1")
        if list(milestones) != sorted(set(milestones)):
            raise ValueError("milestones must be strictly increasing")
        self.initial_lr = float(initial_lr)
        self.milestones = milestones
        self.gamma = float(gamma)

    def lr_at(self, epoch):
        """Learning rate during 1-indexed ``epoch``.

        ``epoch`` may also be an integer array of per-candidate schedule
        positions (stacked population training); the result is then the
        matching array of learning rates, each entry computed with exactly
        the scalar arithmetic, so a stacked schedule lookup is bit-identical
        to per-candidate scalar lookups.
        """
        epoch_arr = np.asarray(epoch)
        if epoch_arr.ndim:
            if np.any(epoch_arr < 1):
                raise ValueError(f"epochs are 1-indexed, got {epoch_arr}")
            return np.array([self.lr_at(int(e)) for e in epoch_arr.ravel()]
                            ).reshape(epoch_arr.shape)
        if epoch < 1:
            raise ValueError(f"epoch is 1-indexed, got {epoch}")
        n_decays = sum(1 for m in self.milestones if epoch >= m)
        return self.initial_lr * self.gamma**n_decays

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StepSchedule(initial_lr={self.initial_lr}, "
            f"milestones={self.milestones}, gamma={self.gamma})"
        )


def paper_reservoir_schedule(initial_lr: float = 1.0) -> StepSchedule:
    """The paper's reservoir-parameter schedule: x0.1 at epochs 5, 10, 15, 20."""
    return StepSchedule(initial_lr, milestones=(5, 10, 15, 20), gamma=0.1)


def paper_output_schedule(initial_lr: float = 1.0) -> StepSchedule:
    """The paper's output-layer schedule: x0.1 at epochs 10, 15, 20."""
    return StepSchedule(initial_lr, milestones=(10, 15, 20), gamma=0.1)


def clip_gradients(grads: Dict[str, np.ndarray], max_norm: float,
                   *, stacked: bool = False):
    """Scale all gradients in place so their L2 norm is <= max_norm.

    Returns the pre-clipping norm.  A ``max_norm`` of ``None`` or ``inf``
    disables clipping.  The paper does not describe its numerical guards;
    clipping is this implementation's (documented) stabilizer for the
    learning-rate-1 regime.

    With ``stacked=True`` every gradient carries a leading candidate axis
    (``(K,)`` scalars, ``(K, N_y, N_r)`` weight stacks, ...) and the norm is
    computed — and the clip applied — *per candidate*: the return value is
    the ``(K,)`` vector of pre-clipping norms, and each row is scaled by its
    own factor, so row ``k`` is bit-identical to a scalar-mode call on that
    candidate's gradients alone.
    """
    if not stacked:
        total = float(np.sqrt(sum(float(np.sum(g**2)) for g in grads.values())))
        if max_norm is None or not np.isfinite(max_norm):
            return total
        if max_norm <= 0:
            raise ValueError(f"max_norm must be positive, got {max_norm}")
        if total > max_norm and total > 0:
            scale = max_norm / total
            for g in grads.values():
                g *= scale
        return total

    # per-candidate norms: reduce each gradient over its row tail (the
    # reshape keeps the reduction a contiguous last-axis sum, matching the
    # flattened full-array sum the scalar path performs per candidate)
    sq = None
    for g in grads.values():
        arr = np.asarray(g)
        if arr.ndim == 0:
            raise ValueError(
                "stacked=True needs gradients with a leading candidate axis"
            )
        contrib = np.sum((arr**2).reshape(arr.shape[0], -1), axis=-1)
        sq = contrib if sq is None else sq + contrib
    total = np.sqrt(sq)
    if max_norm is None or not np.isfinite(max_norm):
        return total
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    need = (total > max_norm) & (total > 0)
    if need.any():
        scale = np.ones_like(total)
        scale[need] = max_norm / total[need]
        for g in grads.values():
            # rows not clipped multiply by exactly 1.0 (bitwise identity)
            g *= scale.reshape(scale.shape + (1,) * (g.ndim - 1))
    return total


def _rowwise(lr, ndim: int):
    """Reshape a per-candidate ``(K,)`` learning rate to broadcast over a
    ``(K, ...)`` parameter tail; scalars pass through untouched."""
    arr = np.asarray(lr)
    if arr.ndim == 0:
        return lr
    return arr.reshape(arr.shape + (1,) * (ndim - arr.ndim))


def _check_mask(mask, stacked: bool):
    """Validate a row mask: stacked mode only, boolean dtype only.

    A mask in scalar mode would boolean-index the *first parameter axis*
    (e.g. the readout's class rows) instead of a candidate axis, and an
    integer index array would silently corrupt Adam's per-row step counts
    (``t += mask`` adds the index *values*) — both are silent misupdates,
    so they fail loudly for every optimizer.
    """
    if mask is None:
        return None
    if not stacked:
        raise ValueError("mask requires stacked mode (reset(n_rows=K))")
    mask = np.asarray(mask)
    if mask.dtype != np.bool_:
        raise ValueError(
            f"mask must be a boolean row mask, got dtype {mask.dtype}"
        )
    return mask


class SGD:
    """Plain stochastic gradient descent (the paper's optimizer)."""

    def __init__(self):
        self._stacked = False

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray],
             lrs: Dict[str, float], mask: Optional[np.ndarray] = None) -> None:
        """In-place update ``p -= lr * g`` for every parameter.

        ``mask`` (stacked mode only, boolean) restricts the update to the
        flagged candidate rows; other rows are untouched.
        """
        mask = _check_mask(mask, self._stacked)
        for name, p in params.items():
            lr = _rowwise(lrs[name], p.ndim)
            if mask is None:
                p -= lr * grads[name]
            else:
                upd = lr * grads[name]
                p[mask] = p[mask] - upd[mask]

    def reset(self, n_rows: Optional[int] = None) -> None:
        """No internal state; ``n_rows`` only arms stacked-mode masking."""
        self._stacked = n_rows is not None

    def take_rows(self, rows: np.ndarray) -> None:
        """No internal state to re-index."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "SGD()"


class MomentumSGD:
    """SGD with classical momentum (extension; not used by the paper)."""

    def __init__(self, momentum: float = 0.9):
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[str, np.ndarray] = {}
        self._stacked = False

    def step(self, params, grads, lrs, mask=None) -> None:
        mask = _check_mask(mask, self._stacked)
        for name, p in params.items():
            v = self._velocity.get(name)
            if v is None:
                v = np.zeros_like(p)
            lr = _rowwise(lrs[name], p.ndim)
            v_new = self.momentum * v - lr * grads[name]
            if mask is None:
                self._velocity[name] = v_new
                p += v_new
            else:
                v[mask] = v_new[mask]
                self._velocity[name] = v
                p[mask] = p[mask] + v_new[mask]

    def reset(self, n_rows: Optional[int] = None) -> None:
        self._velocity.clear()
        self._stacked = n_rows is not None

    def take_rows(self, rows: np.ndarray) -> None:
        """Compact the per-candidate velocities to the kept ``rows``."""
        for name in self._velocity:
            self._velocity[name] = self._velocity[name][rows]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MomentumSGD(momentum={self.momentum})"


class Adam:
    """Adam optimizer (extension; not used by the paper).

    ``reset(n_rows=K)`` switches to stacked mode: the step count ``t`` (and
    with it the bias correction) is tracked *per candidate row*, so a row
    that skips a minibatch (mask) or joins the stack late stays bit-identical
    to an independent scalar-mode Adam driving that candidate alone.
    """

    def __init__(self, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must lie in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params, grads, lrs, mask=None) -> None:
        stacked = isinstance(self._t, np.ndarray)
        mask = _check_mask(mask, stacked)
        if not stacked:
            self._t += 1
            corr1 = 1 - self.beta1**self._t
            corr2 = 1 - self.beta2**self._t
        else:
            t_new = self._t + (1 if mask is None else
                               mask.astype(np.int64))
            # python-float pow per row keeps the bias correction bitwise
            # identical to a scalar-mode Adam at the same step count (rows
            # outside the mask get a placeholder — their values are never
            # written back)
            corr1 = np.array([1 - self.beta1 ** int(t) if t > 0 else 1.0
                              for t in t_new])
            corr2 = np.array([1 - self.beta2 ** int(t) if t > 0 else 1.0
                              for t in t_new])
        for name, p in params.items():
            g = grads[name]
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(p)
                v = np.zeros_like(p)
            m_new = self.beta1 * m + (1 - self.beta1) * g
            v_new = self.beta2 * v + (1 - self.beta2) * g**2
            m_hat = m_new / _rowwise(corr1, p.ndim)
            v_hat = v_new / _rowwise(corr2, p.ndim)
            upd = _rowwise(lrs[name], p.ndim) * m_hat / (np.sqrt(v_hat) + self.eps)
            if mask is None:
                self._m[name] = m_new
                self._v[name] = v_new
                p -= upd
            else:
                m[mask] = m_new[mask]
                v[mask] = v_new[mask]
                self._m[name] = m
                self._v[name] = v
                p[mask] = p[mask] - upd[mask]
        if stacked:
            self._t = t_new if mask is None else np.where(mask, t_new, self._t)

    def reset(self, n_rows: Optional[int] = None) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0 if n_rows is None else np.zeros(int(n_rows), dtype=np.int64)

    def take_rows(self, rows: np.ndarray) -> None:
        """Compact the per-candidate moments and step counts to ``rows``."""
        for state in (self._m, self._v):
            for name in state:
                state[name] = state[name][rows]
        if isinstance(self._t, np.ndarray):
            self._t = self._t[rows]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Adam(beta1={self.beta1}, beta2={self.beta2}, eps={self.eps})"


_OPTIMIZERS = {"sgd": SGD, "momentum": MomentumSGD, "adam": Adam}


def get_optimizer(spec):
    """Resolve an optimizer name or pass an instance through."""
    if isinstance(spec, (SGD, MomentumSGD, Adam)):
        return spec
    if isinstance(spec, str):
        try:
            return _OPTIMIZERS[spec]()
        except KeyError:
            known = ", ".join(sorted(_OPTIMIZERS))
            raise ValueError(f"unknown optimizer {spec!r}; known: {known}") from None
    raise TypeError(f"optimizer must be a name or instance, got {type(spec).__name__}")
