"""SGD training of the DFR parameters by backpropagation (paper Sec. 4).

The training protocol reproduced here is exactly the paper's:

* parameters ``A``, ``B`` initialized to 0.01 each, output layer ``W``, ``b``
  initialized to zeros;
* per-sample stochastic gradient descent for 25 epochs
  (``batch_size=1``; larger minibatches vectorize the identical gradients
  over samples and average them, trading the paper's update granularity for
  throughput);
* learning rates start at 1; the reservoir rate decays x0.1 at epochs
  5/10/15/20, the output rate at 10/15/20;
* backpropagation truncated to the final reservoir state (``window=1``),
  with full BPTT available for comparison (``window=None``).

Numerical guards (the paper is silent on these; both are configurable and
documented): global gradient-norm clipping, and clamping ``A``, ``B`` to a
positive box so the identity-shape reservoir cannot be driven into
divergence by one bad step.  Divergent forward passes are skipped and
counted rather than allowed to poison the parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.backend import resolve_backend
from repro.core.backprop import BackpropEngine
from repro.core.optimizer import StepSchedule, clip_gradients, get_optimizer
from repro.readout.softmax import SoftmaxReadout, one_hot
from repro.representation.dprr import DPRR
from repro.reservoir.modular import ModularDFR
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import as_batch, ensure_1d_labels

__all__ = ["TrainerConfig", "EpochStats", "TrainingResult", "BackpropTrainer"]


@dataclass
class TrainerConfig:
    """Hyperparameters of the backpropagation phase (defaults = the paper)."""

    epochs: int = 25
    #: samples per SGD update; 1 = the paper's per-sample protocol (kept
    #: numerically identical to the original loop), > 1 runs the batched
    #: engine: one vectorized forward/backward per minibatch, gradients
    #: averaged over the batch's non-diverged rows
    batch_size: int = 1
    lr_reservoir: float = 1.0
    lr_output: float = 1.0
    reservoir_milestones: tuple = (5, 10, 15, 20)
    output_milestones: tuple = (10, 15, 20)
    lr_decay: float = 0.1
    init_A: float = 0.01
    init_B: float = 0.01
    #: truncation window; 1 = the paper's method, None = full BPTT
    window: Optional[int] = 1
    #: global L2 gradient-norm clip (None disables); implementation guard
    grad_clip: Optional[float] = 10.0
    #: separate magnitude clip for the scalar dA/dB gradients, so one noisy
    #: sample cannot jump the reservoir into the unstable region
    reservoir_grad_clip: Optional[float] = 1.0
    #: clamp box for A and B after each update; the default upper bound is
    #: the top of the paper's own grid-search range (10^-0.25 ~ 0.562),
    #: i.e. the region the paper considers meaningful
    param_min: float = 1e-6
    param_max: float = 10 ** (-0.25)
    #: multiplicative pull-back applied to A and B when a forward pass
    #: diverges, so training recovers instead of skipping samples forever
    divergence_shrink: float = 0.7
    shuffle: bool = True
    optimizer: str = "sgd"
    #: array backend for the *batched* engine (``batch_size > 1``): a name
    #: such as "numpy" / "torch" / "torch:cuda:0" / "cupy", or None to
    #: defer to the ``REPRO_BACKEND`` environment variable (NumPy when
    #: unset).  The ``batch_size=1`` per-sample path is the paper's pinned
    #: NumPy reference and ignores this knob.
    backend: Optional[str] = None
    #: working float precision of the batched engine: None defers to the
    #: spec's ``@dtype`` suffix / ``REPRO_DTYPE`` (float64 when unset);
    #: "float32" opts into single precision (rtol-bounded, see
    #: docs/ARCHITECTURE.md).  The per-sample path stays float64.
    dtype: Optional[str] = None

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.dtype not in (None, "float64", "float32"):
            raise ValueError(
                f"dtype must be None, 'float64' or 'float32', "
                f"got {self.dtype!r}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.window is not None and self.window < 1:
            raise ValueError(f"window must be None or >= 1, got {self.window}")
        if self.param_min <= 0 or self.param_max <= self.param_min:
            raise ValueError("need 0 < param_min < param_max")
        if not 0.0 < self.divergence_shrink < 1.0:
            raise ValueError(
                f"divergence_shrink must lie in (0, 1), got {self.divergence_shrink}"
            )


@dataclass
class EpochStats:
    """Per-epoch training telemetry."""

    epoch: int
    mean_loss: float
    accuracy: float
    lr_reservoir: float
    lr_output: float
    A: float
    B: float
    n_skipped: int = 0


@dataclass
class TrainingResult:
    """Outcome of the backpropagation phase."""

    A: float
    B: float
    readout: SoftmaxReadout
    history: List[EpochStats] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.history[-1].mean_loss if self.history else float("nan")


class BackpropTrainer:
    """Trains ``(A, B, W, b)`` of a modular-DFR classifier by SGD.

    Parameters
    ----------
    reservoir:
        The :class:`~repro.reservoir.modular.ModularDFR` (mask and
        nonlinearity fixed; ``A`` and ``B`` are what gets trained).
    n_classes:
        Number of output classes.
    dprr:
        Feature extractor; defaults to a length-normalized DPRR.
    config:
        :class:`TrainerConfig`; defaults to the paper's protocol.
    seed:
        Seed for shuffling.
    """

    def __init__(
        self,
        reservoir: ModularDFR,
        n_classes: int,
        *,
        dprr: Optional[DPRR] = None,
        config: Optional[TrainerConfig] = None,
        seed: SeedLike = None,
    ):
        self.reservoir = reservoir
        self.n_classes = int(n_classes)
        self.dprr = dprr if dprr is not None else DPRR()
        self.config = config if config is not None else TrainerConfig()
        self.rng = ensure_rng(seed)
        self.engine = BackpropEngine(
            reservoir.nonlinearity, dprr=self.dprr, window=self.config.window,
            backend=self.config.backend, dtype=self.config.dtype,
        )
        #: backend executing the batched forward/backward (the per-sample
        #: path always runs the NumPy reference)
        self.backend = self.engine.backend
        self._numpy = resolve_backend(None)

    def _pull_back(self, params, count: int = 1) -> None:
        """Shrink A and B after divergent forward passes (recovery guard).

        ``count`` divergent samples apply the shrink ``count`` times, exactly
        as the per-sample loop would have done one sample at a time.
        """
        shrink = self.config.divergence_shrink ** count
        params["A"] *= shrink
        params["B"] *= shrink
        np.clip(params["A"], self.config.param_min, self.config.param_max,
                out=params["A"])
        np.clip(params["B"], self.config.param_min, self.config.param_max,
                out=params["B"])

    def _apply_update(self, params, grads, optimizer, lr_r: float,
                      lr_o: float) -> None:
        """Clip, step and clamp — shared by both execution paths."""
        cfg = self.config
        clip_gradients(grads, cfg.grad_clip)
        if cfg.reservoir_grad_clip is not None:
            np.clip(grads["A"], -cfg.reservoir_grad_clip,
                    cfg.reservoir_grad_clip, out=grads["A"])
            np.clip(grads["B"], -cfg.reservoir_grad_clip,
                    cfg.reservoir_grad_clip, out=grads["B"])
        optimizer.step(
            params, grads, {"A": lr_r, "B": lr_r, "W": lr_o, "b": lr_o}
        )
        np.clip(params["A"], cfg.param_min, cfg.param_max, out=params["A"])
        np.clip(params["B"], cfg.param_min, cfg.param_max, out=params["B"])

    def fit(self, u: np.ndarray, y: np.ndarray) -> TrainingResult:
        """Run the full SGD protocol on a training set.

        Parameters
        ----------
        u:
            Training inputs ``(N, T, C)`` (standardize beforehand; the
            pipeline does this automatically).
        y:
            Integer labels ``(N,)``.
        """
        start = time.perf_counter()
        u = as_batch(u)
        y = ensure_1d_labels(y, n_samples=u.shape[0])
        if y.size and y.max() >= self.n_classes:
            raise ValueError(
                f"label {y.max()} out of range for {self.n_classes} classes"
            )
        cfg = self.config
        targets = one_hot(y, self.n_classes)
        n_samples, t_len, _ = u.shape

        res_schedule = StepSchedule(
            cfg.lr_reservoir, cfg.reservoir_milestones, cfg.lr_decay
        )
        out_schedule = StepSchedule(cfg.lr_output, cfg.output_milestones, cfg.lr_decay)
        optimizer = get_optimizer(cfg.optimizer)
        optimizer.reset()

        readout = SoftmaxReadout(self.dprr.n_features(self.reservoir.n_nodes),
                                 self.n_classes)
        params = {
            "A": np.array(float(cfg.init_A)),
            "B": np.array(float(cfg.init_B)),
            "W": readout.weights,
            "b": readout.bias,
        }
        window = self.engine.effective_window(t_len)
        use_full_trace = cfg.window is None

        backward_window = t_len if use_full_trace else window
        run_epoch = (
            self._epoch_per_sample if cfg.batch_size == 1 else self._epoch_batched
        )

        history: List[EpochStats] = []
        for epoch in range(1, cfg.epochs + 1):
            lr_r = res_schedule.lr_at(epoch)
            lr_o = out_schedule.lr_at(epoch)
            order = self.rng.permutation(n_samples) if cfg.shuffle else np.arange(
                n_samples
            )
            losses, n_correct, n_skipped = run_epoch(
                u, y, targets, order, params, readout, optimizer,
                backward_window, t_len, lr_r, lr_o,
            )
            n_seen = len(losses)
            history.append(
                EpochStats(
                    epoch=epoch,
                    mean_loss=float(np.mean(losses)) if n_seen else float("inf"),
                    accuracy=n_correct / n_seen if n_seen else 0.0,
                    lr_reservoir=lr_r,
                    lr_output=lr_o,
                    A=float(params["A"]),
                    B=float(params["B"]),
                    n_skipped=n_skipped,
                )
            )
        return TrainingResult(
            A=float(params["A"]),
            B=float(params["B"]),
            readout=readout,
            history=history,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _epoch_per_sample(self, u, y, targets, order, params, readout,
                          optimizer, backward_window, t_len, lr_r, lr_o):
        """One epoch of the paper's per-sample SGD (``batch_size=1``).

        This is the seed training loop verbatim; the ``batch_size=1``
        trajectory is pinned bit-for-bit by regression tests, so any change
        here must keep the arithmetic (and its order) intact.
        """
        losses = []
        n_correct = 0
        n_skipped = 0
        for idx in order:
            a_val = float(params["A"])
            b_val = float(params["B"])
            sample = u[idx: idx + 1]
            # The full trace is computed for speed (the identity shape
            # admits a single-filter forward); the backward pass then
            # consumes only the truncation window, so the *mathematics*
            # is identical to the memory-bounded streaming execution
            # (ModularDFR.run_streaming), as pinned by tests.  The NumPy
            # backend is forced here: this loop is the paper's reference
            # protocol, pinned bit-for-bit regardless of REPRO_BACKEND.
            trace = self.reservoir.run(sample, a_val, b_val,
                                       backend=self._numpy)
            if trace.diverged[0]:
                n_skipped += 1
                self._pull_back(params)
                continue
            feats = self.dprr.features(trace)[0]
            win = trace.final_window(backward_window, copy=False)
            grads_out = self.engine.sample_gradients(
                win.window_states[0],
                win.window_pre_activations[0],
                feats,
                readout,
                targets[idx],
                a_val,
                b_val,
                n_steps=t_len,
            )
            losses.append(grads_out.loss)
            if int(np.argmax(grads_out.probs)) == y[idx]:
                n_correct += 1
            grads = {
                "A": np.array(grads_out.d_A),
                "B": np.array(grads_out.d_B),
                "W": grads_out.d_weights,
                "b": grads_out.d_bias,
            }
            self._apply_update(params, grads, optimizer, lr_r, lr_o)
        return losses, n_correct, n_skipped

    def _epoch_batched(self, u, y, targets, order, params, readout,
                       optimizer, backward_window, t_len, lr_r, lr_o):
        """One epoch of minibatch SGD through the vectorized engine.

        Every minibatch shares one ``(A, B)`` snapshot for its forward and
        backward pass; gradients are averaged over the batch's non-diverged
        rows, and each diverged row triggers the same pull-back the
        per-sample loop would have applied for that sample.

        Forward states, DPRR features and the backward pass all run on the
        trainer's array backend (``TrainerConfig.backend``); the engine
        hands back NumPy gradients, so the update step below is
        backend-agnostic.
        """
        batch_size = self.config.batch_size
        xb = self.backend
        losses = []
        n_correct = 0
        n_skipped = 0
        for start in range(0, order.shape[0], batch_size):
            sel = order[start: start + batch_size]
            a_val = float(params["A"])
            b_val = float(params["B"])
            trace = self.reservoir.run(u[sel], a_val, b_val, backend=xb)
            diverged = trace.diverged
            n_div = int(diverged.sum())
            win = trace.final_window(backward_window, copy=False)
            if n_div:
                n_skipped += n_div
                self._pull_back(params, count=n_div)
                if n_div == sel.shape[0]:
                    continue
                # drop the diverged rows (this copies; the common all-valid
                # case below stays on the no-copy views)
                valid = np.flatnonzero(~diverged)
                kept = sel[~diverged]
                feats = self.dprr.features(
                    xb.take(trace.states, valid, axis=0), backend=xb
                )
                window_states = xb.take(win.window_states, valid, axis=0)
                window_pre = xb.take(win.window_pre_activations, valid, axis=0)
            else:
                kept = sel
                feats = self.dprr.features(trace, backend=xb)
                window_states = win.window_states
                window_pre = win.window_pre_activations
            grads_out = self.engine.batch_gradients(
                window_states,
                window_pre,
                feats,
                readout,
                targets[kept],
                a_val,
                b_val,
                n_steps=t_len,
            )
            losses.extend(grads_out.losses.tolist())
            n_correct += int(
                np.count_nonzero(grads_out.probs.argmax(axis=1) == y[kept])
            )
            grads = {
                "A": np.array(grads_out.d_A.mean()),
                "B": np.array(grads_out.d_B.mean()),
                "W": grads_out.d_weights,
                "b": grads_out.d_bias,
            }
            self._apply_update(params, grads, optimizer, lr_r, lr_o)
        return losses, n_correct, n_skipped

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BackpropTrainer(reservoir={self.reservoir!r}, "
            f"n_classes={self.n_classes}, config={self.config!r})"
        )
