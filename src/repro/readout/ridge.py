"""Ridge-regression readout with regularization selection (paper Sec. 4).

After the backpropagation phase fixes the reservoir parameters, the paper
retrains the output layer by ridge regression on one-hot targets, trying
``beta in {1e-6, 1e-4, 1e-2, 1}`` and keeping "the one with the smallest
loss L".  The split used for that loss is not specified; selecting by
*training* loss degenerates to the smallest ``beta``, so this implementation
scores each candidate on a seeded stratified holdout of the training set
(documented substitution — see DESIGN.md).  Grid search uses the identical
criterion so the comparison stays fair.

Conventions
-----------
* Features are *centered* (and targets centered) so the intercept never
  needs regularizing, but **not variance-scaled** by default: with the
  identity reservoir shape, feature variance scales as ``A^2``, and it is
  precisely the interplay between that scale and a fixed ``beta`` that
  makes the paper's accuracy landscape depend on ``A`` (Fig. 6).  Full
  standardization (``standardize=True``) is available but would flatten
  the ``A`` axis of the landscape.
* The normal equations use ``(X^T X + beta * n * I)`` — scaling the
  regularizer by the sample count makes ``beta`` comparable across datasets
  of different sizes.
* For model selection, scores are converted to probabilities with a softmax
  and scored by cross-entropy, mirroring the loss the backpropagation phase
  optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg

from repro.data.preprocessing import stratified_split
from repro.readout.softmax import cross_entropy, one_hot, softmax
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import ensure_1d_labels

__all__ = [
    "RidgeModel",
    "fit_ridge",
    "fit_ridge_sweep",
    "RidgeSelection",
    "select_beta",
    "RidgeRegressor",
    "fit_ridge_regressor",
]

#: the paper's candidate regularization values
PAPER_BETAS = (1e-6, 1e-4, 1e-2, 1.0)


@dataclass
class RidgeModel:
    """A fitted multi-output ridge readout."""

    beta: float
    coef: np.ndarray        # (N_r, N_y)
    intercept: np.ndarray   # (N_y,)
    feature_mean: np.ndarray
    feature_std: np.ndarray
    n_classes: int

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Linear scores ``(N, N_y)`` (one-hot regression outputs)."""
        f = np.atleast_2d(np.asarray(features, dtype=np.float64))
        z = (f - self.feature_mean) / self.feature_std
        return z @ self.coef + self.intercept

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.scores(features).argmax(axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax-calibrated probabilities of the linear scores."""
        return softmax(self.scores(features))

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean softmax cross-entropy on ``(features, labels)``."""
        labels = ensure_1d_labels(labels)
        probs = self.predict_proba(features)
        return float(cross_entropy(probs, one_hot(labels, self.n_classes)).mean())

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on ``(features, labels)``."""
        labels = ensure_1d_labels(labels)
        return float((self.predict(features) == labels).mean())

    def to_dict(self) -> dict:
        """A JSON-serializable dict of the fitted readout (exact round trip).

        Python's ``json`` serializes finite floats via ``repr`` and parses
        them back to the same IEEE-754 doubles, so :meth:`from_dict` of the
        serialized form scores bit-identically.
        """
        return {
            "beta": float(self.beta),
            "coef": np.asarray(self.coef, dtype=np.float64).tolist(),
            "intercept": np.asarray(self.intercept,
                                    dtype=np.float64).tolist(),
            "feature_mean": np.asarray(self.feature_mean,
                                       dtype=np.float64).tolist(),
            "feature_std": np.asarray(self.feature_std,
                                      dtype=np.float64).tolist(),
            "n_classes": int(self.n_classes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RidgeModel":
        """Rebuild a readout from :meth:`to_dict` output — strictly.

        Unknown or missing keys raise ``ValueError`` so a snapshot written
        by an incompatible release fails loudly instead of scoring wrong.
        """
        if not isinstance(data, dict):
            raise TypeError(
                f"RidgeModel.from_dict needs a dict, got "
                f"{type(data).__name__}"
            )
        expected = {"beta", "coef", "intercept", "feature_mean",
                    "feature_std", "n_classes"}
        unknown = sorted(set(data) - expected)
        missing = sorted(expected - set(data))
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {unknown}")
            if missing:
                parts.append(f"missing keys {missing}")
            raise ValueError(
                f"RidgeModel snapshot does not match schema: "
                f"{'; '.join(parts)}"
            )
        return cls(
            beta=float(data["beta"]),
            coef=np.asarray(data["coef"], dtype=np.float64),
            intercept=np.asarray(data["intercept"], dtype=np.float64),
            feature_mean=np.asarray(data["feature_mean"], dtype=np.float64),
            feature_std=np.asarray(data["feature_std"], dtype=np.float64),
            n_classes=int(data["n_classes"]),
        )


def _center_or_standardize(
    features: np.ndarray, standardize: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = features.mean(axis=0)
    if standardize:
        std = features.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
    else:
        std = np.ones(features.shape[1])
    return (features - mean) / std, mean, std


def fit_ridge(
    features: np.ndarray,
    labels: np.ndarray,
    beta: float,
    *,
    n_classes: Optional[int] = None,
    standardize: bool = False,
) -> RidgeModel:
    """Fit one ridge readout; see :func:`fit_ridge_sweep` for several betas."""
    return fit_ridge_sweep(
        features, labels, [beta], n_classes=n_classes, standardize=standardize
    )[beta]


def fit_ridge_sweep(
    features: np.ndarray,
    labels: np.ndarray,
    betas: Sequence[float],
    *,
    n_classes: Optional[int] = None,
    standardize: bool = False,
) -> Dict[float, RidgeModel]:
    """Fit ridge readouts for several ``beta`` values, sharing the Gram matrix.

    The Gram matrix ``X^T X`` and cross-moment ``X^T Y`` are computed once;
    each ``beta`` then costs only one symmetric solve — this mirrors how a
    careful grid-search implementation amortizes the per-point ridge cost.

    Parameters
    ----------
    features:
        ``(N, N_r)`` training representations.
    labels:
        ``(N,)`` integer labels.
    betas:
        Regularization values (must be positive).
    n_classes:
        Total class count; inferred as ``max(labels) + 1`` when omitted.
    """
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    labels = ensure_1d_labels(labels, n_samples=features.shape[0])
    if not np.all(np.isfinite(features)):
        raise ValueError("features contain non-finite values (diverged reservoir?)")
    if n_classes is None:
        n_classes = int(labels.max()) + 1
    n = features.shape[0]
    x, mean, std = _center_or_standardize(features, standardize)
    targets = one_hot(labels, n_classes)
    y_mean = targets.mean(axis=0)
    y_c = targets - y_mean

    gram = x.T @ x
    cross = x.T @ y_c
    eye = np.eye(gram.shape[0])
    models = {}
    for beta in betas:
        beta = float(beta)
        if beta <= 0.0:
            raise ValueError(f"beta must be positive, got {beta}")
        lhs = gram + beta * n * eye
        try:
            cho = scipy.linalg.cho_factor(lhs, check_finite=False)
            coef = scipy.linalg.cho_solve(cho, cross, check_finite=False)
        except scipy.linalg.LinAlgError:
            coef = np.linalg.lstsq(lhs, cross, rcond=None)[0]
        models[beta] = RidgeModel(
            beta=beta,
            coef=coef,
            intercept=y_mean,
            feature_mean=mean,
            feature_std=std,
            n_classes=n_classes,
        )
    return models


@dataclass
class RidgeSelection:
    """Outcome of the ``beta`` model selection."""

    best_beta: float
    best_model: RidgeModel          # refitted on the full training set
    val_losses: Dict[float, float] = field(default_factory=dict)
    val_accuracies: Dict[float, float] = field(default_factory=dict)

    @property
    def best_val_loss(self) -> float:
        return self.val_losses[self.best_beta]


def select_beta(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    betas: Sequence[float] = PAPER_BETAS,
    val_fraction: float = 0.2,
    n_classes: Optional[int] = None,
    standardize: bool = False,
    seed: SeedLike = None,
) -> RidgeSelection:
    """Select ``beta`` by holdout cross-entropy and refit on all data.

    A stratified ``val_fraction`` holdout of the training set scores each
    candidate ``beta`` by validation error, with mean softmax cross-entropy
    as the tiebreak and smaller ``beta`` last; the winning ``beta`` is then
    refitted on the full training set.  (The paper selects by "the smallest
    loss L" without specifying the split; cross-entropy on raw ridge outputs
    is ill-defined — they can be negative — so holdout error with a CE
    tiebreak is the faithful executable version.  See DESIGN.md.)

    When the holdout would be empty (tiny datasets where every class has one
    sample), selection falls back to training loss on the full set.
    """
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    labels = ensure_1d_labels(labels, n_samples=features.shape[0])
    if n_classes is None:
        n_classes = int(labels.max()) + 1
    rng = ensure_rng(seed)
    fit_idx, val_idx = stratified_split(labels, val_fraction, seed=rng)
    if val_idx.size == 0:
        fit_idx = np.arange(features.shape[0])
        val_idx = fit_idx  # degenerate fallback: score on the fit data

    sweep = fit_ridge_sweep(
        features[fit_idx], labels[fit_idx], betas, n_classes=n_classes,
        standardize=standardize,
    )
    val_losses = {}
    val_accs = {}
    for beta, model in sweep.items():
        val_losses[beta] = model.loss(features[val_idx], labels[val_idx])
        val_accs[beta] = model.accuracy(features[val_idx], labels[val_idx])
    best_beta = min(
        val_losses, key=lambda b: (-val_accs[b], val_losses[b], b)
    )
    final = fit_ridge_sweep(
        features, labels, [best_beta], n_classes=n_classes, standardize=standardize
    )
    return RidgeSelection(
        best_beta=best_beta,
        best_model=final[best_beta],
        val_losses=val_losses,
        val_accuracies=val_accs,
    )


@dataclass
class RidgeRegressor:
    """A fitted multi-output ridge *regressor* (continuous targets).

    The classification pipeline uses :class:`RidgeModel`; this lighter
    variant serves the time-series regression tasks of the classic DFR
    literature (NARMA-10, Mackey-Glass prediction; see
    ``examples/narma_prediction.py``).
    """

    beta: float
    coef: np.ndarray        # (N_f, N_out)
    intercept: np.ndarray   # (N_out,)
    feature_mean: np.ndarray

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted targets ``(N, N_out)`` (squeezed to 1-D for N_out=1)."""
        f = np.atleast_2d(np.asarray(features, dtype=np.float64))
        out = (f - self.feature_mean) @ self.coef + self.intercept
        return out[:, 0] if out.shape[1] == 1 else out


def fit_ridge_regressor(
    features: np.ndarray, targets: np.ndarray, beta: float
) -> RidgeRegressor:
    """Fit centered ridge regression of continuous ``targets`` on ``features``.

    Parameters
    ----------
    features:
        ``(N, N_f)`` design matrix.
    targets:
        ``(N,)`` or ``(N, N_out)`` continuous targets.
    beta:
        Regularization strength (scaled by ``N`` as in the classifier).
    """
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    targets = np.asarray(targets, dtype=np.float64)
    if targets.ndim == 1:
        targets = targets[:, np.newaxis]
    if targets.shape[0] != features.shape[0]:
        raise ValueError(
            f"{targets.shape[0]} targets for {features.shape[0]} samples"
        )
    if beta <= 0.0:
        raise ValueError(f"beta must be positive, got {beta}")
    if not np.all(np.isfinite(features)):
        raise ValueError("features contain non-finite values")
    n = features.shape[0]
    mean = features.mean(axis=0)
    x = features - mean
    y_mean = targets.mean(axis=0)
    y_c = targets - y_mean
    lhs = x.T @ x + beta * n * np.eye(x.shape[1])
    try:
        cho = scipy.linalg.cho_factor(lhs, check_finite=False)
        coef = scipy.linalg.cho_solve(cho, x.T @ y_c, check_finite=False)
    except scipy.linalg.LinAlgError:
        coef = np.linalg.lstsq(lhs, x.T @ y_c, rcond=None)[0]
    return RidgeRegressor(beta=float(beta), coef=coef, intercept=y_mean,
                          feature_mean=mean)
