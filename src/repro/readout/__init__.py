"""Output layers (softmax for training, ridge for the final readout) and metrics."""

from repro.readout.metrics import (
    accuracy_score,
    confusion_matrix,
    macro_f1,
    mse,
    nrmse,
)
from repro.readout.ridge import (
    PAPER_BETAS,
    RidgeModel,
    RidgeRegressor,
    RidgeSelection,
    fit_ridge,
    fit_ridge_regressor,
    fit_ridge_sweep,
    select_beta,
)
from repro.readout.softmax import (
    OutputGradients,
    SoftmaxReadout,
    cross_entropy,
    one_hot,
    softmax,
)

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "macro_f1",
    "mse",
    "nrmse",
    "PAPER_BETAS",
    "RidgeModel",
    "RidgeRegressor",
    "RidgeSelection",
    "fit_ridge",
    "fit_ridge_regressor",
    "fit_ridge_sweep",
    "select_beta",
    "OutputGradients",
    "SoftmaxReadout",
    "cross_entropy",
    "one_hot",
    "softmax",
]
