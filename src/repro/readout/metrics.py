"""Evaluation metrics for classification and time-series regression."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_1d_labels

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "macro_f1",
    "mse",
    "nrmse",
]


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = ensure_1d_labels(y_true)
    y_pred = ensure_1d_labels(y_pred, n_samples=y_true.shape[0])
    if y_true.size == 0:
        raise ValueError("cannot score an empty label set")
    return float((y_true == y_pred).mean())


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int = None
) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true ``i`` predicted ``j``."""
    y_true = ensure_1d_labels(y_true)
    y_pred = ensure_1d_labels(y_pred, n_samples=y_true.shape[0])
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    mat = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(mat, (y_true, y_pred), 1)
    return mat


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int = None) -> float:
    """Macro-averaged F1 score (classes with no support contribute 0)."""
    mat = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(mat).astype(np.float64)
    fp = mat.sum(axis=0) - tp
    fn = mat.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    f1 = np.divide(2 * tp, denom, out=np.zeros_like(tp), where=denom > 0)
    return float(f1.mean())


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error over all elements."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def nrmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error normalized by the target standard deviation.

    The standard reservoir-computing figure of merit for tasks like NARMA-10;
    0 is perfect, 1 matches predicting the mean.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    std = y_true.std()
    if std == 0.0:
        raise ValueError("target has zero variance; NRMSE is undefined")
    return float(np.sqrt(mse(y_true, y_pred)) / std)
