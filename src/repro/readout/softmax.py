"""Softmax/cross-entropy output layer (paper Sec. 3.1).

The trained output layer computes ``z = W r + b`` (paper Eq. 12) and the
loss is the cross-entropy of the softmax of ``z`` against a one-hot target
(paper Eqs. 14–15).  The paper's Eq. 16, ``dL/dy = y - d``, is exactly the
gradient of that composite with respect to the pre-softmax activations, so
the layer here makes the softmax explicit.

All gradients of Eq. 17 are implemented in closed form:

.. math::

    \\frac{\\partial L}{\\partial b} = \\delta,\\qquad
    \\frac{\\partial L}{\\partial W} = \\delta r^T,\\qquad
    \\frac{\\partial L}{\\partial r} = W^T \\delta,
    \\qquad \\delta = y - d.

The batched path (:meth:`SoftmaxReadout.batch_loss_and_grads`) routes its
array ops through an :class:`~repro.backend.ArrayBackend` — inferred from
the feature matrix by default — so device-resident features produce
device-resident gradients; the layer's parameters stay NumPy (they are
tiny and updated by the NumPy optimizer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import infer_backend, resolve_backend

__all__ = [
    "softmax",
    "cross_entropy",
    "one_hot",
    "SoftmaxReadout",
    "OutputGradients",
    "BatchOutputGradients",
]

#: clamp for log() arguments so that a confidently wrong prediction yields a
#: large-but-finite loss
_EPS = 1e-300


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    z = np.asarray(z, dtype=np.float64)
    shifted = z - z.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def cross_entropy(probs: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Cross-entropy per sample (paper Eq. 15).

    Parameters
    ----------
    probs:
        ``(N, N_y)`` predicted class probabilities.
    targets:
        ``(N, N_y)`` one-hot targets.
    """
    probs = np.asarray(probs, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    return -(targets * np.log(np.maximum(probs, _EPS))).sum(axis=-1)


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer labels ``(N,)`` as a one-hot matrix ``(N, n_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(
            f"labels must lie in [0, {n_classes - 1}], got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], n_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


@dataclass
class OutputGradients:
    """Closed-form gradients of the output layer for one sample."""

    loss: float
    probs: np.ndarray     # (N_y,)
    d_weights: np.ndarray  # (N_y, N_r)
    d_bias: np.ndarray     # (N_y,)
    d_features: np.ndarray  # (N_r,)


@dataclass
class BatchOutputGradients:
    """Closed-form output-layer gradients for a whole minibatch.

    Per-sample weight gradients are rank-1 (``dL_i/dW = outer(deltas[i],
    r[i])``), so the batch carries ``deltas`` instead of materializing ``N``
    full ``(N_y, N_r)`` matrices; reduced weight/bias gradients follow as
    ``deltas.T @ r / N`` and ``deltas.mean(axis=0)``.

    Candidate-stacked batches (``(K, N, N_r)`` features against a
    ``(K, N_y, N_r)`` weight stack) prepend the candidate axis to every
    array here.
    """

    losses: np.ndarray      # (N,)   [stacked: (K, N)]
    probs: np.ndarray       # (N, N_y) = probs - targets  [stacked: (K, N, N_y)]
    deltas: np.ndarray      # (N, N_y) (Eq. 16, per row)  [stacked: (K, N, N_y)]
    d_features: np.ndarray  # (N, N_r) = deltas @ W (Eq. 17) [stacked: (K, N, N_r)]


class SoftmaxReadout:
    """Trainable softmax output layer ``y = softmax(W r + b)``.

    Parameters
    ----------
    n_features:
        Representation width ``N_r``.
    n_classes:
        Class count ``N_y``.

    The paper initializes both ``W`` and ``b`` to zero (Sec. 4).
    """

    def __init__(self, n_features: int, n_classes: int):
        if n_features < 1 or n_classes < 2:
            raise ValueError(
                f"need n_features >= 1 and n_classes >= 2, got {n_features}, {n_classes}"
            )
        self.weights = np.zeros((n_classes, n_features))
        self.bias = np.zeros(n_classes)

    @property
    def n_features(self) -> int:
        return self.weights.shape[1]

    @property
    def n_classes(self) -> int:
        return self.weights.shape[0]

    def logits(self, features: np.ndarray) -> np.ndarray:
        """Pre-softmax activations ``z = W r + b`` for a batch ``(N, N_r)``."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return features @ self.weights.T + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of representations."""
        return softmax(self.logits(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard class predictions for a batch of representations."""
        return self.predict_proba(features).argmax(axis=-1)

    def loss_and_grads(
        self, features: np.ndarray, target_onehot: np.ndarray
    ) -> OutputGradients:
        """Loss and all Eq.-17 gradients for ONE sample.

        Parameters
        ----------
        features:
            ``(N_r,)`` representation vector ``r``.
        target_onehot:
            ``(N_y,)`` one-hot target ``d``.
        """
        r = np.asarray(features, dtype=np.float64).reshape(-1)
        d = np.asarray(target_onehot, dtype=np.float64).reshape(-1)
        if r.shape[0] != self.n_features:
            raise ValueError(
                f"feature size {r.shape[0]} != readout width {self.n_features}"
            )
        if d.shape[0] != self.n_classes:
            raise ValueError(
                f"target size {d.shape[0]} != class count {self.n_classes}"
            )
        z = self.weights @ r + self.bias
        probs = softmax(z)
        loss = float(cross_entropy(probs[np.newaxis], d[np.newaxis])[0])
        delta = probs - d                      # Eq. 16 (w.r.t. pre-softmax z)
        return OutputGradients(
            loss=loss,
            probs=probs,
            d_weights=np.outer(delta, r),      # Eq. 17
            d_bias=delta,                      # Eq. 17
            d_features=self.weights.T @ delta,  # Eq. 17
        )

    def batch_loss_and_grads(
        self, features: np.ndarray, targets_onehot: np.ndarray,
        *, backend=None, weights=None, bias=None,
    ) -> BatchOutputGradients:
        """Vectorized Eq.-17 gradients for a minibatch.

        Parameters
        ----------
        features:
            ``(N, N_r)`` representation matrix (one row per sample) — or
            ``(K, N, N_r)`` for K candidate models evaluated on the same
            (or per-candidate) batch in one fused call.
        targets_onehot:
            ``(N, N_y)`` one-hot target matrix; a candidate-stacked call
            may also pass a per-candidate ``(K, N, N_y)`` stack.
        backend:
            :class:`~repro.backend.ArrayBackend` executing the batch;
            ``None`` infers it from ``features``.  All returned arrays are
            that backend's arrays (NumPy in the default case).
        weights, bias:
            Optional parameter overrides.  A candidate-stacked call trains
            one output layer *per candidate*, so it passes a
            ``(K, N_y, N_r)`` weight stack and ``(K, N_y)`` bias stack here
            instead of mutating K readout objects; ``None`` uses this
            readout's own (shared) parameters for every candidate.
        """
        xb = infer_backend(features) if backend is None else resolve_backend(backend)
        r = xb.asarray(features, dtype=xb.float_dtype)
        if r.ndim < 2:
            r = xb.atleast_2d(r)
        stacked = r.ndim == 3
        d = xb.asarray(targets_onehot, dtype=xb.float_dtype)
        if not stacked:
            d = xb.atleast_2d(d)
        if r.shape[-1] != self.n_features:
            raise ValueError(
                f"feature size {r.shape[-1]} != readout width {self.n_features}"
            )
        expected = tuple(r.shape[:-1]) + (self.n_classes,)
        if tuple(d.shape) != expected and tuple(d.shape) != expected[-2:]:
            raise ValueError(
                f"targets must be {expected}"
                + (f" or {expected[-2:]}" if stacked else "")
                + f", got {tuple(d.shape)}"
            )
        weights = xb.asarray(self.weights if weights is None else weights,
                             dtype=xb.float_dtype)
        bias = xb.asarray(self.bias if bias is None else bias,
                          dtype=xb.float_dtype)
        if weights.ndim == 3:
            if not stacked or weights.shape[0] != r.shape[0]:
                raise ValueError(
                    f"a weight stack {tuple(weights.shape)} needs matching "
                    f"(K, N, N_r) features, got {tuple(r.shape)}"
                )
            # batched matmul per candidate — the same BLAS call row the
            # 2-D path makes, once per stack entry
            z = r @ xb.swapaxes(weights, -1, -2)
        else:
            z = r @ weights.T
        # the bias may be a (K, N_y) per-candidate stack or a shared (N_y,)
        # vector, independently of how the weights were passed
        if bias.ndim == 2:
            if not stacked or tuple(bias.shape) != (r.shape[0], self.n_classes):
                raise ValueError(
                    f"a bias stack {tuple(bias.shape)} needs matching "
                    f"(K, N, N_r) features, got {tuple(r.shape)}"
                )
            z = z + bias[:, None, :]
        else:
            z = z + bias
        # inline backend form of softmax()/cross_entropy(): same ops in the
        # same order, so the NumPy backend is bit-identical to those helpers
        shifted = z - xb.max(z, axis=-1, keepdims=True)
        e = xb.exp(shifted)
        probs = e / xb.sum(e, axis=-1, keepdims=True)
        # _EPS (1e-300) underflows to 0 in float32 working precision, which
        # would reintroduce log(0); floor it at the dtype's smallest normal.
        # In float64 tiny < _EPS, so the bit-pinned floor is unchanged.
        eps = max(_EPS, float(np.finfo(np.dtype(xb.dtype_name)).tiny))
        losses = -xb.sum(d * xb.log(xb.maximum_scalar(probs, eps)), axis=-1)
        deltas = probs - d
        return BatchOutputGradients(
            losses=losses,
            probs=probs,
            deltas=deltas,
            d_features=deltas @ weights,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SoftmaxReadout(n_features={self.n_features}, n_classes={self.n_classes})"
