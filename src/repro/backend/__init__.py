"""Pluggable array backends for the batched hot path.

The batched DFR forward/backward (paper Eqs. 13, 23, 30-32), the DPRR
contraction (Eqs. 10-11) and the batched softmax gradients (Eqs. 14-17)
are expressed as dense array ops — exactly what accelerator array
libraries provide.  This package is the seam that makes those ops
retargetable:

* :class:`~repro.backend.base.ArrayBackend` — the protocol (conversion,
  ``einsum``, first-order ``lfilter`` chains, fused element-wise chains,
  reductions, shape-function evaluation);
* :class:`~repro.backend.numpy_backend.NumpyBackend` — the CPU reference,
  delegating to the exact NumPy/SciPy calls of the pre-backend code
  (bit-identical, pinned by tests);
* ``TorchBackend`` / ``CupyBackend`` — lazily imported GPU-capable
  implementations; requesting one without the library installed raises
  :class:`BackendUnavailableError` (no silent NumPy fallback).

Resolution
----------
``resolve_backend(None)`` is the NumPy reference; ``default_backend()``
additionally consults the ``REPRO_BACKEND`` environment variable, which is
how the pipeline-level entry points (:class:`~repro.core.trainer.TrainerConfig`,
:class:`~repro.core.pipeline.DFRClassifier`,
:class:`~repro.core.pipeline.DFRFeatureExtractor`,
:class:`~repro.exec.BackendExecutor`) pick their default.  Specs are
``"name[:device][@dtype]"`` — e.g. ``REPRO_BACKEND=torch:cuda:1`` or
``REPRO_BACKEND=torch:cuda:0@float32``.  The ``@dtype`` suffix selects the
working precision (``float64`` default, ``float32`` opt-in); the
``REPRO_DTYPE`` environment variable and the ``dtype=`` keyword of
:func:`resolve_backend`/:func:`default_backend` set it for specs that do
not carry a suffix (an explicit ``@dtype`` in the spec always wins).
Low-level components (:class:`~repro.reservoir.modular.ModularDFR`,
:class:`~repro.representation.dprr.DPRR`,
:class:`~repro.readout.softmax.SoftmaxReadout`) stay on NumPy unless a
backend is passed explicitly, so the paper-pinned reference numerics never
shift underneath an environment variable.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Union

from repro.backend.base import (
    ArrayBackend,
    BackendUnavailableError,
    TransferStats,
)
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "TransferStats",
    "NumpyBackend",
    "BACKEND_ENV_VAR",
    "DTYPE_ENV_VAR",
    "BACKEND_NAMES",
    "DTYPE_NAMES",
    "resolve_backend",
    "default_backend",
    "available_backends",
    "infer_backend",
    "with_dtype",
]

#: environment variable selecting the default backend for pipeline entry
#: points (``"numpy"``, ``"torch"``, ``"torch:cuda:0@float32"``, ...)
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: environment variable selecting the default working precision for specs
#: without an explicit ``@dtype`` suffix ("float64" or "float32")
DTYPE_ENV_VAR = "REPRO_DTYPE"

#: registry names, in resolution-preference order
BACKEND_NAMES = ("numpy", "torch", "cupy")

#: recognized working precisions
DTYPE_NAMES = ("float64", "float32")

_NUMPY = NumpyBackend()
#: resolved-instance cache, keyed by normalized "name:device@dtype" spec
#: (the default "@float64" suffix is stripped during normalization, so
#: "numpy" and "numpy@float64" share one instance)
_INSTANCES: Dict[str, ArrayBackend] = {"numpy": _NUMPY}

_INSTALL_HINTS = {
    "torch": "pip install 'repro[torch]' (or: pip install torch)",
    "cupy": "pip install 'repro[cupy]' (or: pip install cupy-cuda12x)",
}


def _split_spec(spec: str) -> Tuple[str, Optional[str], Optional[str]]:
    """Split ``"name[:device][@dtype]"`` into its three parts.

    Returns ``(name, device, dtype)`` with ``None`` for absent parts; the
    dtype, when present, is validated against :data:`DTYPE_NAMES`.
    """
    body, _, dtype = spec.partition("@")
    dtype = dtype.strip() or None
    if dtype is not None and dtype not in DTYPE_NAMES:
        known = ", ".join(DTYPE_NAMES)
        raise ValueError(
            f"backend dtype suffix must be one of {known}; got {dtype!r} "
            f"(in spec {spec!r})"
        )
    name, _, device = body.strip().partition(":")
    return name, device or None, dtype


def with_dtype(spec: Union[None, str, ArrayBackend], dtype: str) -> str:
    """A spec string equal to ``spec`` but with working precision ``dtype``.

    Useful for threading a precision choice through pickled configuration
    (the dtype travels *inside* the spec string, so worker processes
    reconstruct the same backend).  An instance maps to its own
    ``name:device`` spec; ``None`` maps to the NumPy reference.
    """
    if dtype not in DTYPE_NAMES:
        known = ", ".join(DTYPE_NAMES)
        raise ValueError(f"dtype must be one of {known}; got {dtype!r}")
    if spec is None:
        body = "numpy"
    elif isinstance(spec, ArrayBackend):
        body = spec.name if spec.device in (None, "cpu") \
            else f"{spec.name}:{spec.device}"
    else:
        name, device, _ = _split_spec(spec.strip().lower())
        body = name if device is None else f"{name}:{device}"
    return body if dtype == "float64" else f"{body}@{dtype}"


def _construct(name: str, device: Optional[str],
               dtype: str) -> ArrayBackend:
    if name == "numpy":
        return _NUMPY if dtype == "float64" else NumpyBackend(dtype=dtype)
    try:
        if name == "torch":
            from repro.backend.torch_backend import TorchBackend

            return TorchBackend(device, dtype=dtype)
        if name == "cupy":
            from repro.backend.cupy_backend import CupyBackend

            return CupyBackend(device, dtype=dtype)
    except ImportError as exc:
        hint = _INSTALL_HINTS.get(name, "")
        raise BackendUnavailableError(
            f"array backend {name!r} requested but its library is not "
            f"importable ({exc}); install it with: {hint}"
        ) from exc
    known = ", ".join(BACKEND_NAMES)
    raise ValueError(f"unknown array backend {name!r}; known: {known}")


def resolve_backend(spec: Union[None, str, ArrayBackend] = None,
                    dtype: Optional[str] = None) -> ArrayBackend:
    """Resolve ``spec`` into an :class:`ArrayBackend` instance.

    ``None`` means the NumPy reference (the environment variable is *not*
    consulted here — see :func:`default_backend`).  A string is a registry
    name with optional device and dtype suffixes
    (``"torch:cuda:1@float32"``); instances pass through unchanged.  The
    ``dtype`` keyword supplies a working precision for specs without an
    explicit ``@dtype`` suffix (the suffix wins when both are given).
    Resolved backends are cached per normalized spec, so two components
    asking for the same spec share one instance (and its device caches).
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        if dtype in (None, "float64"):
            return _NUMPY
        spec = "numpy"
    if not isinstance(spec, str):
        raise TypeError(
            f"backend must be None, a name, or an ArrayBackend, got "
            f"{type(spec).__name__}"
        )
    name, device, spec_dtype = _split_spec(spec.strip().lower())
    eff_dtype = spec_dtype or dtype or "float64"
    if eff_dtype not in DTYPE_NAMES:
        known = ", ".join(DTYPE_NAMES)
        raise ValueError(f"dtype must be one of {known}; got {eff_dtype!r}")
    key = name if device is None else f"{name}:{device}"
    if eff_dtype != "float64":
        key = f"{key}@{eff_dtype}"
    if key in _INSTANCES:
        return _INSTANCES[key]
    backend = _construct(name, device, eff_dtype)
    _INSTANCES[key] = backend
    return backend


def default_backend(dtype: Optional[str] = None) -> ArrayBackend:
    """The backend pipeline entry points use when none is given explicitly.

    Consults ``REPRO_BACKEND``; unset or empty means NumPy.  The working
    precision comes from (in priority order) an explicit ``@dtype`` spec
    suffix, the ``dtype`` keyword, then ``REPRO_DTYPE``.  A variable
    naming an uninstalled backend raises :class:`BackendUnavailableError`
    — loudly, so a mis-configured environment cannot silently run on CPU.
    """
    spec = os.environ.get(BACKEND_ENV_VAR, "").strip()
    if dtype is None:
        env_dtype = os.environ.get(DTYPE_ENV_VAR, "").strip().lower()
        if env_dtype:
            if env_dtype not in DTYPE_NAMES:
                known = ", ".join(DTYPE_NAMES)
                raise ValueError(
                    f"{DTYPE_ENV_VAR} must be one of {known}; got "
                    f"{env_dtype!r}"
                )
            dtype = env_dtype
    return resolve_backend(spec or None, dtype=dtype)


def available_backends() -> List[str]:
    """Names of the registry backends whose libraries import on this host."""
    out = []
    for name in BACKEND_NAMES:
        try:
            resolve_backend(name)
        except Exception:  # unavailable lib, or a broken CUDA runtime
            continue
        out.append(name)
    return out


def infer_backend(array) -> ArrayBackend:
    """The backend an array belongs to, judged by its type *and device*.

    Lets consumers that receive already-materialized arrays (e.g.
    :meth:`~repro.representation.dprr.DPRR.features` fed a device-resident
    trace) stay on the producing device without explicit threading — a
    tensor pinned to ``cuda:1`` (or to CPU) resolves to a backend on that
    same device, never to the auto-selected default.  Only checks
    libraries that are already imported, so the test never pays an import.
    """
    import sys

    import numpy as np

    if isinstance(array, np.ndarray):
        return _NUMPY
    torch = sys.modules.get("torch")
    if torch is not None and isinstance(array, torch.Tensor):
        return resolve_backend(f"torch:{array.device}")
    cupy = sys.modules.get("cupy")
    if cupy is not None and isinstance(array, cupy.ndarray):
        return resolve_backend(f"cupy:{array.device.id}")
    return _NUMPY
