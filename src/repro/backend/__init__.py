"""Pluggable array backends for the batched hot path.

The batched DFR forward/backward (paper Eqs. 13, 23, 30-32), the DPRR
contraction (Eqs. 10-11) and the batched softmax gradients (Eqs. 14-17)
are expressed as dense array ops — exactly what accelerator array
libraries provide.  This package is the seam that makes those ops
retargetable:

* :class:`~repro.backend.base.ArrayBackend` — the protocol (conversion,
  ``einsum``, first-order ``lfilter`` chains, reductions, shape-function
  evaluation);
* :class:`~repro.backend.numpy_backend.NumpyBackend` — the CPU reference,
  delegating to the exact NumPy/SciPy calls of the pre-backend code
  (bit-identical, pinned by tests);
* ``TorchBackend`` / ``CupyBackend`` — lazily imported GPU-capable
  implementations; requesting one without the library installed raises
  :class:`BackendUnavailableError` (no silent NumPy fallback).

Resolution
----------
``resolve_backend(None)`` is the NumPy reference; ``default_backend()``
additionally consults the ``REPRO_BACKEND`` environment variable, which is
how the pipeline-level entry points (:class:`~repro.core.trainer.TrainerConfig`,
:class:`~repro.core.pipeline.DFRClassifier`,
:class:`~repro.core.pipeline.DFRFeatureExtractor`,
:class:`~repro.exec.BackendExecutor`) pick their default.  Specs are
``"name"`` or ``"name:device"`` — e.g. ``REPRO_BACKEND=torch:cuda:1``.
Low-level components (:class:`~repro.reservoir.modular.ModularDFR`,
:class:`~repro.representation.dprr.DPRR`,
:class:`~repro.readout.softmax.SoftmaxReadout`) stay on NumPy unless a
backend is passed explicitly, so the paper-pinned reference numerics never
shift underneath an environment variable.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from repro.backend.base import ArrayBackend, BackendUnavailableError
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "resolve_backend",
    "default_backend",
    "available_backends",
    "infer_backend",
]

#: environment variable selecting the default backend for pipeline entry
#: points (``"numpy"``, ``"torch"``, ``"torch:cuda:0"``, ``"cupy"``, ...)
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: registry names, in resolution-preference order
BACKEND_NAMES = ("numpy", "torch", "cupy")

_NUMPY = NumpyBackend()
#: resolved-instance cache, keyed by normalized "name:device" spec
_INSTANCES: Dict[str, ArrayBackend] = {"numpy": _NUMPY}

_INSTALL_HINTS = {
    "torch": "pip install 'repro[torch]' (or: pip install torch)",
    "cupy": "pip install 'repro[cupy]' (or: pip install cupy-cuda12x)",
}


def _construct(name: str, device: Optional[str]) -> ArrayBackend:
    if name == "numpy":
        return _NUMPY
    try:
        if name == "torch":
            from repro.backend.torch_backend import TorchBackend

            return TorchBackend(device)
        if name == "cupy":
            from repro.backend.cupy_backend import CupyBackend

            return CupyBackend(device)
    except ImportError as exc:
        hint = _INSTALL_HINTS.get(name, "")
        raise BackendUnavailableError(
            f"array backend {name!r} requested but its library is not "
            f"importable ({exc}); install it with: {hint}"
        ) from exc
    known = ", ".join(BACKEND_NAMES)
    raise ValueError(f"unknown array backend {name!r}; known: {known}")


def resolve_backend(spec: Union[None, str, ArrayBackend] = None) -> ArrayBackend:
    """Resolve ``spec`` into an :class:`ArrayBackend` instance.

    ``None`` means the NumPy reference (the environment variable is *not*
    consulted here — see :func:`default_backend`).  A string is a registry
    name with an optional device suffix (``"torch:cuda:1"``); instances
    pass through unchanged.  Resolved backends are cached per spec, so two
    components asking for the same spec share one instance (and its device
    caches).
    """
    if spec is None:
        return _NUMPY
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"backend must be None, a name, or an ArrayBackend, got "
            f"{type(spec).__name__}"
        )
    key = spec.strip().lower()
    if key in _INSTANCES:
        return _INSTANCES[key]
    name, _, device = key.partition(":")
    backend = _construct(name, device or None)
    _INSTANCES[key] = backend
    return backend


def default_backend() -> ArrayBackend:
    """The backend pipeline entry points use when none is given explicitly.

    Consults ``REPRO_BACKEND``; unset or empty means NumPy.  A variable
    naming an uninstalled backend raises :class:`BackendUnavailableError`
    — loudly, so a mis-configured environment cannot silently run on CPU.
    """
    spec = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return resolve_backend(spec or None)


def available_backends() -> List[str]:
    """Names of the registry backends whose libraries import on this host."""
    out = []
    for name in BACKEND_NAMES:
        try:
            resolve_backend(name)
        except Exception:  # unavailable lib, or a broken CUDA runtime
            continue
        out.append(name)
    return out


def infer_backend(array) -> ArrayBackend:
    """The backend an array belongs to, judged by its type *and device*.

    Lets consumers that receive already-materialized arrays (e.g.
    :meth:`~repro.representation.dprr.DPRR.features` fed a device-resident
    trace) stay on the producing device without explicit threading — a
    tensor pinned to ``cuda:1`` (or to CPU) resolves to a backend on that
    same device, never to the auto-selected default.  Only checks
    libraries that are already imported, so the test never pays an import.
    """
    import sys

    import numpy as np

    if isinstance(array, np.ndarray):
        return _NUMPY
    torch = sys.modules.get("torch")
    if torch is not None and isinstance(array, torch.Tensor):
        return resolve_backend(f"torch:{array.device}")
    cupy = sys.modules.get("cupy")
    if cupy is not None and isinstance(array, cupy.ndarray):
        return resolve_backend(f"cupy:{array.device.id}")
    return _NUMPY
