"""Backend-generic shape-function evaluation (Torch/CuPy helpers).

The :class:`~repro.reservoir.nonlinearity.Nonlinearity` classes implement
``phi``/``dphi`` with NumPy ufuncs; NumPy's registry names are enough to
re-express every built-in shape with another array library's primitives
(``tanh``, ``sin``, ``cos``, ``abs``, ``clip`` and plain arithmetic), which
keeps the reservoir forward/backward device-resident.  An unknown (user-
defined) nonlinearity falls back to a NumPy round trip through the
backend's ``to_numpy``/``asarray`` — correct on any device, just not
resident.

``xp`` is the array module (``torch`` or ``cupy``); ``bool_to_float``
adapts the one spelling difference between them (casting a boolean mask to
the float dtype of ``s``).
"""

from __future__ import annotations

__all__ = ["generic_phi", "generic_dphi"]


def generic_phi(xp, nonlinearity, s):
    """Evaluate ``nonlinearity.phi`` with ``xp`` primitives; None if unknown."""
    name = getattr(nonlinearity, "name", None)
    if name == "identity":
        return s
    if name == "tanh":
        return xp.tanh(s)
    if name == "sine":
        return xp.sin(nonlinearity.omega * s)
    if name == "mackey-glass":
        return s / (1.0 + xp.abs(s) ** nonlinearity.p)
    if name == "sat-linear":
        return xp.clip(s, -nonlinearity.limit, nonlinearity.limit)
    return None


def generic_dphi(xp, nonlinearity, s, bool_to_float):
    """Evaluate ``nonlinearity.dphi`` with ``xp`` primitives; None if unknown."""
    name = getattr(nonlinearity, "name", None)
    if name == "identity":
        return xp.ones_like(s)
    if name == "tanh":
        t = xp.tanh(s)
        return 1.0 - t * t
    if name == "sine":
        return nonlinearity.omega * xp.cos(nonlinearity.omega * s)
    if name == "mackey-glass":
        p = nonlinearity.p
        a = xp.abs(s) ** p
        return (1.0 + (1.0 - p) * a) / (1.0 + a) ** 2
    if name == "sat-linear":
        return bool_to_float(xp.abs(s) <= nonlinearity.limit, s)
    return None
