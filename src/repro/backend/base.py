"""The :class:`ArrayBackend` protocol — one numerics seam for the hot path.

PR 1 reduced the batched DFR forward/backward (paper Eqs. 13, 23, 30-32) to
dense array operations: element-wise shape functions, ``einsum``
contractions, and first-order IIR filters (``lfilter``) along the virtual-
node axis.  Exactly this op set is what an accelerator array library
provides, so the hot path talks to arrays only through the small protocol
below and any conforming backend — NumPy (the reference), PyTorch, CuPy —
can execute it.

Design rules
------------
* **NumPy is the reference.**  :class:`~repro.backend.numpy_backend.NumpyBackend`
  delegates every method to the very NumPy/SciPy call the pre-backend code
  made, in the same order, so routing through the shim is *bit-identical*
  to the historical implementation (pinned by ``tests/test_backend.py``).
* **Arrays stay device-resident.**  A backend's methods accept and return
  its native array type; conversion happens only at the seam boundaries
  (:meth:`ArrayBackend.asarray` on the way in, :meth:`ArrayBackend.to_numpy`
  on the way out).  Python operators (``+``, ``*``, ``@``, slicing,
  ``None``-indexing) are shared across NumPy/Torch/CuPy and are used
  directly; only the operations whose spelling differs between libraries
  go through protocol methods.
* **Missing libraries fail loudly, not silently.**  Resolving a backend
  whose library is not importable raises
  :class:`~repro.backend.BackendUnavailableError`; nothing silently falls
  back to NumPy, so a mis-configured ``REPRO_BACKEND`` cannot masquerade
  as an accelerated run.

The one structurally interesting method is :meth:`first_order_filter`: the
recursion ``y_n = x_n + c * y_{n-1}`` is the Eq.-13 node chain (forward)
and the reversed Eq.-30 chain (backward).  SciPy and CuPy evaluate it with
a C/CUDA ``lfilter``; backends without an ``lfilter`` may use the
closed-form ``y = x @ T(c) + zi * c**k`` with a cached lower-triangular
Toeplitz matrix of powers — exact for any first-order filter and fully
parallel — or, beyond a crossover chain length, the log-depth associative
scan of :mod:`repro.backend.scan` (``REPRO_FILTER_IMPL`` pins the choice).

Fused element-wise chains
-------------------------
The per-step hot loops string 4–6 element-wise dispatches between two
filter calls (mask drive, pre-activation, shape function, feedback
boundary; the ``dphi`` drive term on the way back).  The
:meth:`masked_drive` / :meth:`fused_filter_prep` /
:meth:`fused_backward_drive` seam methods bundle each chain into ONE
backend call: the base implementations below compose the protocol
primitives in exactly the historical order (so NumPy stays bit-identical),
and device backends may override them with genuinely fused kernels
(``torch.compile`` on Torch, ``cupy.fuse`` on CuPy).

Precision
---------
Backends carry a working float dtype (:attr:`ArrayBackend.float_dtype`,
named by :attr:`ArrayBackend.dtype_name`): ``float64`` is the default and
the bit-pinned reference; ``float32`` is an opt-in for device throughput,
validated against the float64 reference by rtol-bounded parity tests (the
tolerance contract lives in ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["ArrayBackend", "BackendUnavailableError", "TransferStats"]


class BackendUnavailableError(ImportError):
    """Raised when a requested backend's library cannot be imported."""


@dataclass
class TransferStats:
    """Counters for array crossings of the numpy <-> backend seam.

    The serving layer's device-residency contract is *structural*: between
    scheduler ticks every carried array stays backend-native, and host
    conversions happen only at declared result boundaries.  These counters
    make that contract assertable.  A "transfer" is one array conversion
    at the seam — a real device copy when the backend sits on an
    accelerator, a cheap (often zero-copy) type hop on CPU backends; the
    count is the same either way, which is exactly what lets the NumPy
    reference pin the *structure* of the hot loop in tests.

    Attributes
    ----------
    to_device:
        ``asarray`` calls that converted a host ``numpy.ndarray`` into a
        native backend array (input boundary: chunk uploads, parameter
        stacks).
    to_host:
        Plain ``to_numpy`` calls that converted a native backend array to
        NumPy.  The serving hot loop must keep this at **zero** for
        resident sessions — any growth means a per-tick host round-trip
        crept back in.
    boundary_to_host:
        Host conversions routed through :meth:`ArrayBackend.to_numpy_boundary`
        — declared result/control-flow boundaries (final features and
        scores, per-sweep divergence flags).  These are expected and
        excluded from the residency assertion.
    """

    to_device: int = 0
    to_host: int = 0
    boundary_to_host: int = 0

    def reset(self) -> None:
        self.to_device = 0
        self.to_host = 0
        self.boundary_to_host = 0

    def as_dict(self) -> dict:
        return {
            "to_device": self.to_device,
            "to_host": self.to_host,
            "boundary_to_host": self.boundary_to_host,
        }


class ArrayBackend:
    """Protocol for array numerics executed by the batched hot path.

    Subclasses provide a ``name`` (registry key), a ``float64`` dtype
    handle, a ``device`` description, and the operations below.  All array
    arguments are the backend's native arrays unless stated otherwise;
    ``shape`` arguments are plain tuples and ``axis`` arguments plain ints.
    """

    #: registry name ("numpy", "torch", "cupy")
    name: str = "base"
    #: the backend's double-precision dtype handle
    float64: object = None
    #: the backend's *working* float dtype handle — equals :attr:`float64`
    #: by default; a ``dtype="float32"`` backend points it at the library's
    #: single-precision dtype and the hot path allocates/converts with it
    float_dtype: object = None
    #: name of the working dtype ("float64" or "float32")
    dtype_name: str = "float64"
    #: human-readable device the backend computes on (e.g. "cpu", "cuda:0")
    device: Optional[str] = None
    #: whether :meth:`lfilter_general` is implemented (an arbitrary-order
    #: IIR filter; the identity-reservoir flat-chain fast path needs it)
    has_general_lfilter: bool = False

    # -------------------------------------------------------------- #
    # construction / conversion
    # -------------------------------------------------------------- #

    def asarray(self, a, dtype=None):
        """Convert ``a`` (any array-like) to this backend's array type."""
        raise NotImplementedError

    def to_numpy(self, a):
        """Convert a backend array to ``numpy.ndarray`` (host transfer)."""
        raise NotImplementedError

    @property
    def transfers(self) -> TransferStats:
        """Seam-crossing counters (lazily created per backend instance).

        Device backends increment these from :meth:`asarray` /
        :meth:`to_numpy`; the NumPy reference leaves them at zero (there
        is no seam to cross), but instrumented test subclasses may count
        through the same property to pin hot-loop structure.
        """
        stats = self.__dict__.get("_transfer_stats")
        if stats is None:
            stats = TransferStats()
            self.__dict__["_transfer_stats"] = stats
        return stats

    def to_numpy_boundary(self, a):
        """Host conversion at a *declared* result boundary.

        Same conversion as :meth:`to_numpy`, but any seam crossing it
        performs is booked under ``transfers.boundary_to_host`` instead of
        ``transfers.to_host`` — so the serving layer can export final
        features/scores (and the per-sweep divergence flags, which are
        control flow) while the hot-loop residency assertion
        ``transfers.to_host == 0`` stays meaningful.
        """
        stats = self.transfers
        before = stats.to_host
        out = self.to_numpy(a)
        crossed = stats.to_host - before
        if crossed:
            stats.to_host = before
            stats.boundary_to_host += crossed
        return out

    def zeros(self, shape):
        raise NotImplementedError

    def empty(self, shape):
        raise NotImplementedError

    def atleast_2d(self, a):
        raise NotImplementedError

    # -------------------------------------------------------------- #
    # structural ops
    # -------------------------------------------------------------- #

    def flip(self, a, axis: int):
        raise NotImplementedError

    def roll(self, a, shift: int, axis: int):
        raise NotImplementedError

    def concatenate(self, arrays: Sequence, axis: int = 0):
        raise NotImplementedError

    def stack(self, arrays: Sequence, axis: int = 0):
        raise NotImplementedError

    def take(self, a, indices, axis: int = 0):
        """Select rows/entries by integer index along ``axis``."""
        raise NotImplementedError

    def swapaxes(self, a, axis1: int, axis2: int):
        """Exchange two axes (a view where the library supports one)."""
        raise NotImplementedError

    # -------------------------------------------------------------- #
    # math
    # -------------------------------------------------------------- #

    def einsum(self, subscripts: str, *operands):
        raise NotImplementedError

    def exp(self, a):
        raise NotImplementedError

    def log(self, a):
        raise NotImplementedError

    def abs(self, a):
        raise NotImplementedError

    def maximum_scalar(self, a, value: float):
        """Element-wise ``max(a, value)`` against a scalar floor."""
        raise NotImplementedError

    def isfinite(self, a):
        raise NotImplementedError

    def any(self, a, axis: Optional[int] = None):
        raise NotImplementedError

    def sum(self, a, axis: Optional[int] = None, keepdims: bool = False):
        raise NotImplementedError

    def mean(self, a, axis: Optional[int] = None):
        raise NotImplementedError

    def max(self, a, axis: Optional[int] = None, keepdims: bool = False):
        raise NotImplementedError

    # -------------------------------------------------------------- #
    # DFR-specific ops
    # -------------------------------------------------------------- #

    def phi(self, nonlinearity, s):
        """Evaluate a reservoir shape function on a backend array."""
        raise NotImplementedError

    def dphi(self, nonlinearity, s):
        """Evaluate a shape-function derivative on a backend array."""
        raise NotImplementedError

    # -------------------------------------------------------------- #
    # fused element-wise chains (defaults = the historical op order)
    # -------------------------------------------------------------- #

    def masked_drive(self, mask, u):
        """Masked input drive ``j = u @ M.T`` as a backend array.

        ``mask`` is an :class:`~repro.reservoir.masking.InputMask` and
        ``u`` a host NumPy batch ``(N, T, C)``.  The base implementation
        is the historical host matmul followed by one transfer; device
        backends may override to ship the (smaller) raw inputs and run the
        contraction on device instead.
        """
        return self.asarray(mask.apply(u))

    def streaming_masked_drive(self, mask, u):
        """Masked drive for the *streaming* sweep (chunk-invariant bits).

        Semantically identical to :meth:`masked_drive`; the NumPy reference
        overrides it to evaluate the mask GEMM one time step at a time so
        the result bits never depend on the chunk length a stream happens
        to arrive in (BLAS picks different kernels for different GEMM
        shapes).  That exactness is what lets a resumed
        ``ModularDFR.run_streaming`` chunk sequence reproduce the one-shot
        sweep bit for bit — the serving layer's correctness contract.
        Device backends keep the fast full-chunk contraction: off NumPy
        there is no bitwise contract, only the tolerance contract.
        """
        return self.masked_drive(mask, u)

    def fused_filter_prep(self, nonlinearity, j_k, x_prev, a_mul, b_mul):
        """One forward step's element-wise chain before the node filter.

        Computes, in the historical order, the pre-activation
        ``s = j(k) + x(k-1)``, the filter drive ``c = A * phi(s)`` and the
        feedback boundary ``zi = B * x(k-1)_{N_x}`` (trailing axis 1).
        ``a_mul``/``b_mul`` are scalars, or broadcast-shaped candidate
        arrays for a stacked sweep.  Returns ``(s, c, zi)``.
        """
        s = j_k + x_prev
        c = a_mul * self.phi(nonlinearity, s)
        zi = (b_mul * x_prev[..., -1])[..., None]
        return s, c, zi

    def fused_backward_drive(self, nonlinearity, drive, pre_next, g_next,
                             a_mul):
        """The Eq.-30 cross-step term fused onto an existing drive.

        Returns ``drive + A * dphi(s(k+1)) * g(k+1)`` — the element-wise
        tail of the backward step's drive assembly, in the historical
        order.
        """
        return drive + a_mul * self.dphi(nonlinearity, pre_next) * g_next

    def first_order_filter(self, x, coef: float, zi):
        """Solve ``y_n = x_n + coef * y_{n-1}`` along the last axis.

        ``zi`` is the SciPy ``lfilter`` initial condition with trailing axis
        1 (i.e. ``y_0 = x_0 + zi``); this recursion is the Eq.-13 node chain
        of the forward pass and the reversed Eq.-30 chain of the backward
        pass.  Returns ``y`` with the shape of ``x``.
        """
        raise NotImplementedError

    def first_order_filter_stacked(self, x, coefs, zi):
        """Per-candidate :meth:`first_order_filter` along a leading axis.

        ``x`` is ``(K, ..., n)`` and candidate ``k`` solves
        ``y_n = x_n + coefs[k] * y_{n-1}`` along the last axis with its own
        initial condition ``zi[k]`` (trailing axis 1).  ``coefs`` is host
        control data — a plain 1-D NumPy array of K filter coefficients,
        exactly like the scalar ``coef`` of :meth:`first_order_filter`.

        This is the candidate-axis analogue of the Eq.-13/Eq.-30 node
        chain: one call sweeps K ``(A, B)`` candidates.  The NumPy
        reference loops candidates over the identical SciPy ``lfilter``
        call, so each row is bit-identical to a scalar sweep of that
        candidate; Torch extends the cached Toeplitz-of-powers closed form
        to a ``(K, n, n)`` stack evaluated by one batched matmul.
        """
        raise NotImplementedError

    def lfilter_general(self, b, a, x, axis: int = -1):
        """Arbitrary-order IIR filter (SciPy ``lfilter`` semantics).

        Only required when :attr:`has_general_lfilter` is True; the
        identity-reservoir flat-chain fast path uses it, every other hot-
        path filter is first-order and goes through
        :meth:`first_order_filter`.
        """
        raise NotImplementedError

    # -------------------------------------------------------------- #
    # misc
    # -------------------------------------------------------------- #

    def synchronize(self) -> None:
        """Block until queued device work finishes (timing fairness)."""

    @contextmanager
    def errstate(self):
        """Suppress overflow/invalid warnings during a divergent sweep."""
        yield

    def __repr__(self) -> str:  # pragma: no cover - trivial
        dev = f", device={self.device!r}" if self.device else ""
        return f"{type(self).__name__}(name={self.name!r}{dev})"
