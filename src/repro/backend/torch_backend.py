"""PyTorch backend: CPU or CUDA execution of the batched hot path.

Imported lazily by the registry (:func:`repro.backend.resolve_backend`);
importing *this module* requires ``torch`` and raises ``ImportError``
otherwise, which the registry converts into a
:class:`~repro.backend.base.BackendUnavailableError` with install guidance.

Torch has no ``lfilter``, so the Eq.-13/Eq.-30 node-chain recursion
``y_n = x_n + c * y_{n-1}`` is evaluated by one of two exact closed forms,
auto-selected per call by chain length (``REPRO_FILTER_IMPL`` pins one):

* **Toeplitz matmul** (short chains, e.g. the paper's ``N_x = 30``):

  .. math::

      y_k = \\sum_{j \\le k} c^{k-j} x_j + c^k \\cdot zi
          \\;\\Longleftrightarrow\\; y = x\\,T(c) + zi \\cdot c^{[0..n)}

  with :math:`T(c)` the lower-triangular Toeplitz matrix of powers of
  ``c``, held in an LRU cache keyed ``(c, n)`` (one stale entry evicted
  per insert beyond 64 — a sweep's working set survives).

* **Associative scan** (long chains): the log-depth recursive-doubling
  scan of :mod:`repro.backend.scan` — O(n log n) fused multiply-adds
  instead of an O(n²) matrix that stops fitting in cache (or memory) at
  long ``T``.

The identity-reservoir *flat-chain* fast path needs an arbitrary-order
filter, which Torch does not get (``has_general_lfilter = False``); the
reservoir transparently falls back to its per-step path there, computing
the same trajectory through first-order filters only.

Fused chains & precision
------------------------
The :meth:`~repro.backend.base.ArrayBackend.fused_filter_prep` /
``fused_backward_drive`` seam methods are wrapped in ``torch.compile``
(one compiled artifact per nonlinearity, shared across shapes via
``dynamic=True``) when compilation is available *and* enabled —
``REPRO_TORCH_COMPILE=1`` forces it on, ``0`` off; unset enables it on
CUDA devices only, since CPU inductor compile times usually exceed the
fusion win for short sweeps.  Any compile/runtime failure falls back to
the eager composition permanently (same arithmetic, just unfused).
``masked_drive`` ships the raw ``(N, T, C)`` inputs and runs the mask
contraction on device — a C/N_x-fold cut in host->device traffic.

A ``dtype="float32"`` backend runs the whole hot path in single
precision (float64 stays the default and the parity-pinned reference).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

import numpy as np
import torch

from repro.backend._shape_ops import generic_dphi, generic_phi
from repro.backend.base import ArrayBackend
from repro.backend.scan import (
    LRUCache,
    first_order_scan,
    first_order_scan_stacked,
    use_scan,
)

__all__ = ["TorchBackend"]

#: environment variable gating torch.compile on the fused chains:
#: "1" forces on, "0" forces off, unset = on for CUDA devices only
TORCH_COMPILE_ENV_VAR = "REPRO_TORCH_COMPILE"


class TorchBackend(ArrayBackend):
    """Torch execution, on CPU or a CUDA device.

    Parameters
    ----------
    device:
        Torch device string (``"cpu"``, ``"cuda"``, ``"cuda:1"``); ``None``
        auto-selects CUDA when available, else CPU.  Reachable from the
        environment as ``REPRO_BACKEND=torch:cuda`` etc.
    dtype:
        Working float precision, ``"float64"`` (default) or ``"float32"``
        (``REPRO_BACKEND=torch:cuda@float32``).
    """

    name = "torch"
    float64 = torch.float64
    has_general_lfilter = False

    def __init__(self, device: Optional[str] = None, dtype: str = "float64"):
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        if dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        self._device = torch.device(device)
        self.device = str(self._device)
        self.dtype_name = dtype
        self.float_dtype = (
            torch.float64 if dtype == "float64" else torch.float32
        )
        self._toeplitz_cache = LRUCache(maxsize=64)
        #: single-entry cache for the stacked (K, n, n) Toeplitz pile: a
        #: fused sweep reuses one coefficient tuple for every time step,
        #: but tuples rarely recur across blocks, so holding more than the
        #: most recent stack would only pin dead device memory
        self._stacked_cache: Optional[Tuple] = None
        #: compiled fused-chain kernels keyed by (kind, nonlinearity);
        #: values fall back to the eager composition when compilation is
        #: disabled, unavailable, or failed at runtime
        self._fused_cache: dict = {}
        self._compile_enabled = self._resolve_compile_policy()

    def _resolve_compile_policy(self) -> bool:
        if not hasattr(torch, "compile"):
            return False
        flag = os.environ.get(TORCH_COMPILE_ENV_VAR, "").strip()
        if flag == "1":
            return True
        if flag == "0":
            return False
        # unset: CPU inductor compiles usually cost more than they save on
        # the short sweeps of the test/bench suites; CUDA is where the
        # kernel-launch fusion pays
        return self._device.type == "cuda"

    def asarray(self, a, dtype=None):
        if isinstance(a, np.ndarray) and not a.flags.writeable:
            # torch.as_tensor warns on (and would alias) read-only views,
            # e.g. the trainer's no-copy final_window slices
            a = np.array(a)
        if dtype is None and not isinstance(a, torch.Tensor):
            if isinstance(a, np.ndarray):
                # float64 mode: NumPy inputs keep their dtype (bit-pinned
                # reference behaviour); float32 mode narrows double data
                if (self.float_dtype is not torch.float64
                        and a.dtype == np.float64):
                    dtype = self.float_dtype
            else:
                # Python scalars/lists promote to the working precision
                dtype = self.float_dtype
        if isinstance(a, np.ndarray):
            # a host array entering the backend: one seam crossing (a real
            # H2D copy on CUDA, a zero-copy wrap on CPU — counted either
            # way so residency is assertable structurally)
            self.transfers.to_device += 1
        return torch.as_tensor(a, dtype=dtype, device=self._device)

    def to_numpy(self, a):
        if isinstance(a, torch.Tensor):
            self.transfers.to_host += 1
            return a.detach().cpu().numpy()
        return np.asarray(a)

    def zeros(self, shape):
        return torch.zeros(shape, dtype=self.float_dtype, device=self._device)

    def empty(self, shape):
        return torch.empty(shape, dtype=self.float_dtype, device=self._device)

    def atleast_2d(self, a):
        return torch.atleast_2d(a)

    def flip(self, a, axis: int):
        return torch.flip(a, dims=(axis,))

    def roll(self, a, shift: int, axis: int):
        return torch.roll(a, shifts=shift, dims=axis)

    def concatenate(self, arrays: Sequence, axis: int = 0):
        return torch.cat(tuple(arrays), dim=axis)

    def stack(self, arrays: Sequence, axis: int = 0):
        return torch.stack(tuple(arrays), dim=axis)

    def take(self, a, indices, axis: int = 0):
        index = torch.as_tensor(np.asarray(indices), dtype=torch.long,
                                device=self._device)
        return torch.index_select(a, axis, index)

    def swapaxes(self, a, axis1: int, axis2: int):
        return torch.transpose(a, axis1, axis2)

    def einsum(self, subscripts: str, *operands):
        return torch.einsum(subscripts, *operands)

    def exp(self, a):
        return torch.exp(a)

    def log(self, a):
        return torch.log(a)

    def abs(self, a):
        return torch.abs(a)

    def maximum_scalar(self, a, value: float):
        return torch.clamp(a, min=value)

    def isfinite(self, a):
        return torch.isfinite(a)

    def any(self, a, axis: Optional[int] = None):
        if axis is None:
            return torch.any(a)
        return torch.any(a, dim=axis)

    def sum(self, a, axis: Optional[int] = None, keepdims: bool = False):
        if axis is None:
            return torch.sum(a)
        return torch.sum(a, dim=axis, keepdim=keepdims)

    def mean(self, a, axis: Optional[int] = None):
        if axis is None:
            return torch.mean(a)
        return torch.mean(a, dim=axis)

    def max(self, a, axis: Optional[int] = None, keepdims: bool = False):
        if axis is None:
            return torch.max(a)
        return torch.amax(a, dim=axis, keepdim=keepdims)

    def phi(self, nonlinearity, s):
        out = generic_phi(torch, nonlinearity, s)
        if out is None:  # unknown shape: NumPy round trip (host evaluation)
            out = self.asarray(nonlinearity.phi(self.to_numpy(s)))
        return out

    def dphi(self, nonlinearity, s):
        out = generic_dphi(torch, nonlinearity, s,
                           lambda mask, ref: mask.to(ref.dtype))
        if out is None:
            out = self.asarray(nonlinearity.dphi(self.to_numpy(s)))
        return out

    # -------------------------------------------------------------- #
    # fused element-wise chains (torch.compile with eager fallback)
    # -------------------------------------------------------------- #

    def _fused(self, kind: str, nonlinearity, make_eager):
        """Resolve the fused kernel for ``(kind, nonlinearity)``.

        Compiles lazily; any failure (no compiler backend, unsupported op,
        runtime error on first call) demotes the entry to the eager
        composition permanently — identical arithmetic, just unfused.
        """
        key = (kind, type(nonlinearity).__name__, repr(nonlinearity))
        entry = self._fused_cache.get(key)
        if entry is None:
            eager = make_eager()
            compiled = None
            if (self._compile_enabled
                    and generic_phi(torch, nonlinearity,
                                    torch.zeros(1)) is not None):
                try:
                    compiled = torch.compile(eager, dynamic=True)
                except Exception:
                    compiled = None
            entry = [compiled, eager]
            self._fused_cache[key] = entry
        return entry

    def fused_filter_prep(self, nonlinearity, j_k, x_prev, a_mul, b_mul):
        def make():
            def prep(j_k, x_prev, a_mul):
                s = j_k + x_prev
                return s, a_mul * self.phi(nonlinearity, s)
            return prep

        entry = self._fused("prep", nonlinearity, make)
        fn = entry[0] if entry[0] is not None else entry[1]
        try:
            s, c = fn(j_k, x_prev, a_mul)
        except Exception:
            if entry[0] is None:
                raise
            entry[0] = None  # compiled artifact misbehaved: stay eager
            s, c = entry[1](j_k, x_prev, a_mul)
        zi = (b_mul * x_prev[..., -1])[..., None]
        return s, c, zi

    def fused_backward_drive(self, nonlinearity, drive, pre_next, g_next,
                             a_mul):
        def make():
            def tail(drive, pre_next, g_next, a_mul):
                return drive + a_mul * self.dphi(nonlinearity, pre_next) * g_next
            return tail

        entry = self._fused("bwd", nonlinearity, make)
        fn = entry[0] if entry[0] is not None else entry[1]
        try:
            return fn(drive, pre_next, g_next, a_mul)
        except Exception:
            if entry[0] is None:
                raise
            entry[0] = None
            return entry[1](drive, pre_next, g_next, a_mul)

    def masked_drive(self, mask, u):
        # ship the raw (N, T, C) inputs and contract on device: C is the
        # channel count, N_x the node count — a N_x/C-fold traffic cut
        u_dev = self.asarray(np.ascontiguousarray(u))
        m_dev = self.asarray(mask.matrix)
        return u_dev @ m_dev.transpose(0, 1)

    # -------------------------------------------------------------- #
    # first-order node chains: Toeplitz matmul or associative scan
    # -------------------------------------------------------------- #

    def _toeplitz(self, coef: float, n: int, dtype):
        key = (float(coef), n, dtype)
        cached = self._toeplitz_cache.get(key)
        if cached is None:
            idx = torch.arange(n, dtype=dtype, device=self._device)
            diff = idx.view(1, -1) - idx.view(-1, 1)  # diff[j, k] = k - j
            zero = torch.zeros((), dtype=dtype, device=self._device)
            # clamp the exponent before pow so masked entries never overflow
            mat = torch.where(diff >= 0,
                              coef ** torch.clamp(diff, min=0.0), zero)
            powers = coef ** idx
            cached = (mat, powers)
            self._toeplitz_cache.put(key, cached)
        return cached

    def first_order_filter(self, x, coef: float, zi):
        if use_scan(x.shape[-1]):
            return first_order_scan(self, x, coef, zi)
        mat, powers = self._toeplitz(coef, x.shape[-1], x.dtype)
        return x @ mat + zi * powers

    def first_order_filter_stacked(self, x, coefs, zi):
        n = x.shape[-1]
        if use_scan(n):
            return first_order_scan_stacked(self, x, coefs, zi)
        key = (tuple(float(c) for c in coefs), n)
        if self._stacked_cache is not None and self._stacked_cache[0] == key:
            _, mats, powers = self._stacked_cache
        else:
            per = [self._toeplitz(float(c), n, x.dtype) for c in coefs]
            mats = torch.stack([m for m, _ in per])
            powers = torch.stack([p for _, p in per])
            self._stacked_cache = (key, mats, powers)
        # x (K, ..., n) @ mats (K, n, n): one batched matmul sweeps every
        # candidate's chain; zi (K, ..., 1) scales each candidate's powers.
        # A bare (K, n) input becomes a one-sample batch first — matmul
        # would otherwise read it as ONE matrix against the whole stack
        squeeze = x.ndim == 2
        if squeeze:
            x = x[:, None, :]
            zi = zi[:, None, :]
        k = len(coefs)
        mats = mats.reshape((k,) + (1,) * (x.ndim - 3) + (n, n))
        powers = powers.reshape((k,) + (1,) * (x.ndim - 2) + (n,))
        out = torch.matmul(x, mats) + zi * powers
        return out[:, 0, :] if squeeze else out

    def synchronize(self) -> None:
        if self._device.type == "cuda":  # pragma: no cover - needs GPU
            torch.cuda.synchronize(self._device)
