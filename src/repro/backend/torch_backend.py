"""PyTorch backend: CPU or CUDA execution of the batched hot path.

Imported lazily by the registry (:func:`repro.backend.resolve_backend`);
importing *this module* requires ``torch`` and raises ``ImportError``
otherwise, which the registry converts into a
:class:`~repro.backend.base.BackendUnavailableError` with install guidance.

Torch has no ``lfilter``, so the Eq.-13/Eq.-30 node-chain recursion
``y_n = x_n + c * y_{n-1}`` is evaluated in closed form:

.. math::

    y_k = \\sum_{j \\le k} c^{k-j} x_j + c^k \\cdot zi
        \\;\\Longleftrightarrow\\; y = x\\,T(c) + zi \\cdot c^{[0..n)}

with :math:`T(c)` the lower-triangular Toeplitz matrix of powers of ``c``
(cached per ``(c, n, device)``).  One ``(N, n) @ (n, n)`` matmul replaces
the sequential scan — exact, and the shape accelerators are built for.
The identity-reservoir *flat-chain* fast path needs an arbitrary-order
filter, which Torch does not get (``has_general_lfilter = False``); the
reservoir transparently falls back to its per-step path there, computing
the same trajectory through first-order filters only.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np
import torch

from repro.backend._shape_ops import generic_dphi, generic_phi
from repro.backend.base import ArrayBackend

__all__ = ["TorchBackend"]


class TorchBackend(ArrayBackend):
    """Double-precision Torch execution, on CPU or a CUDA device.

    Parameters
    ----------
    device:
        Torch device string (``"cpu"``, ``"cuda"``, ``"cuda:1"``); ``None``
        auto-selects CUDA when available, else CPU.  Reachable from the
        environment as ``REPRO_BACKEND=torch:cuda`` etc.
    """

    name = "torch"
    float64 = torch.float64
    has_general_lfilter = False

    def __init__(self, device: Optional[str] = None):
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self._device = torch.device(device)
        self.device = str(self._device)
        self._toeplitz_cache: Dict[Tuple[float, int], Tuple] = {}
        #: single-entry cache for the stacked (K, n, n) Toeplitz pile: a
        #: fused sweep reuses one coefficient tuple for every time step,
        #: but tuples rarely recur across blocks, so holding more than the
        #: most recent stack would only pin dead device memory
        self._stacked_cache: Optional[Tuple] = None

    def asarray(self, a, dtype=None):
        if isinstance(a, np.ndarray) and not a.flags.writeable:
            # torch.as_tensor warns on (and would alias) read-only views,
            # e.g. the trainer's no-copy final_window slices
            a = np.array(a)
        if dtype is None and not isinstance(a, torch.Tensor):
            # float64 end to end: NumPy inputs keep their dtype, Python
            # scalars/lists promote to the backend's double precision
            dtype = None if isinstance(a, np.ndarray) else self.float64
        return torch.as_tensor(a, dtype=dtype, device=self._device)

    def to_numpy(self, a):
        if isinstance(a, torch.Tensor):
            return a.detach().cpu().numpy()
        return np.asarray(a)

    def zeros(self, shape):
        return torch.zeros(shape, dtype=self.float64, device=self._device)

    def empty(self, shape):
        return torch.empty(shape, dtype=self.float64, device=self._device)

    def atleast_2d(self, a):
        return torch.atleast_2d(a)

    def flip(self, a, axis: int):
        return torch.flip(a, dims=(axis,))

    def roll(self, a, shift: int, axis: int):
        return torch.roll(a, shifts=shift, dims=axis)

    def concatenate(self, arrays: Sequence, axis: int = 0):
        return torch.cat(tuple(arrays), dim=axis)

    def stack(self, arrays: Sequence, axis: int = 0):
        return torch.stack(tuple(arrays), dim=axis)

    def take(self, a, indices, axis: int = 0):
        index = torch.as_tensor(np.asarray(indices), dtype=torch.long,
                                device=self._device)
        return torch.index_select(a, axis, index)

    def swapaxes(self, a, axis1: int, axis2: int):
        return torch.transpose(a, axis1, axis2)

    def einsum(self, subscripts: str, *operands):
        return torch.einsum(subscripts, *operands)

    def exp(self, a):
        return torch.exp(a)

    def log(self, a):
        return torch.log(a)

    def abs(self, a):
        return torch.abs(a)

    def maximum_scalar(self, a, value: float):
        return torch.clamp(a, min=value)

    def isfinite(self, a):
        return torch.isfinite(a)

    def any(self, a, axis: Optional[int] = None):
        if axis is None:
            return torch.any(a)
        return torch.any(a, dim=axis)

    def sum(self, a, axis: Optional[int] = None, keepdims: bool = False):
        if axis is None:
            return torch.sum(a)
        return torch.sum(a, dim=axis, keepdim=keepdims)

    def mean(self, a, axis: Optional[int] = None):
        if axis is None:
            return torch.mean(a)
        return torch.mean(a, dim=axis)

    def max(self, a, axis: Optional[int] = None, keepdims: bool = False):
        if axis is None:
            return torch.max(a)
        return torch.amax(a, dim=axis, keepdim=keepdims)

    def phi(self, nonlinearity, s):
        out = generic_phi(torch, nonlinearity, s)
        if out is None:  # unknown shape: NumPy round trip (host evaluation)
            out = self.asarray(nonlinearity.phi(self.to_numpy(s)))
        return out

    def dphi(self, nonlinearity, s):
        out = generic_dphi(torch, nonlinearity, s,
                           lambda mask, ref: mask.to(ref.dtype))
        if out is None:
            out = self.asarray(nonlinearity.dphi(self.to_numpy(s)))
        return out

    def _toeplitz(self, coef: float, n: int, dtype):
        key = (float(coef), n)
        cached = self._toeplitz_cache.get(key)
        if cached is None:
            idx = torch.arange(n, dtype=dtype, device=self._device)
            diff = idx.view(1, -1) - idx.view(-1, 1)  # diff[j, k] = k - j
            zero = torch.zeros((), dtype=dtype, device=self._device)
            # clamp the exponent before pow so masked entries never overflow
            mat = torch.where(diff >= 0,
                              coef ** torch.clamp(diff, min=0.0), zero)
            powers = coef ** idx
            cached = (mat, powers)
            if len(self._toeplitz_cache) > 64:  # bound the per-(A, B) cache
                self._toeplitz_cache.clear()
            self._toeplitz_cache[key] = cached
        return cached

    def first_order_filter(self, x, coef: float, zi):
        mat, powers = self._toeplitz(coef, x.shape[-1], x.dtype)
        return x @ mat + zi * powers

    def first_order_filter_stacked(self, x, coefs, zi):
        n = x.shape[-1]
        key = (tuple(float(c) for c in coefs), n)
        if self._stacked_cache is not None and self._stacked_cache[0] == key:
            _, mats, powers = self._stacked_cache
        else:
            per = [self._toeplitz(float(c), n, x.dtype) for c in coefs]
            mats = torch.stack([m for m, _ in per])
            powers = torch.stack([p for _, p in per])
            self._stacked_cache = (key, mats, powers)
        # x (K, ..., n) @ mats (K, n, n): one batched matmul sweeps every
        # candidate's chain; zi (K, ..., 1) scales each candidate's powers.
        # A bare (K, n) input becomes a one-sample batch first — matmul
        # would otherwise read it as ONE matrix against the whole stack
        squeeze = x.ndim == 2
        if squeeze:
            x = x[:, None, :]
            zi = zi[:, None, :]
        k = len(coefs)
        mats = mats.reshape((k,) + (1,) * (x.ndim - 3) + (n, n))
        powers = powers.reshape((k,) + (1,) * (x.ndim - 2) + (n,))
        out = torch.matmul(x, mats) + zi * powers
        return out[:, 0, :] if squeeze else out

    def synchronize(self) -> None:
        if self._device.type == "cuda":  # pragma: no cover - needs GPU
            torch.cuda.synchronize(self._device)
