"""Log-depth associative scan for the first-order node chain.

The Eq.-13/Eq.-30 recursion ``y_n = x_n + c * y_{n-1}`` is a linear
recurrence, i.e. a prefix "sum" under the associative pair composition

.. math:: (a, b) \\circ (c, d) = (a \\cdot c,\\; b \\cdot c + d),

where a pair ``(a, b)`` represents the affine map ``y -> a*y + b``.  With a
*constant* coefficient the multiplier of every pair is the same ``c``, so
the Blelloch/Hillis-Steele scan collapses to recursive doubling: after step
``s`` each position holds the weighted window sum
:math:`y_k^{(s)} = \\sum_{j=k-2^s+1}^{k} c^{k-j} x_j`, and one fused
multiply-add per step doubles the window:

.. math:: y_k^{(s+1)} = y_k^{(s)} + c^{2^s}\\, y_{k-2^s}^{(s)}.

``ceil(log2 n)`` vectorized passes replace either the sequential C scan
(``lfilter``) or the O(n²) Toeplitz-of-powers matmul — the win on
accelerators at long chain lengths, where the ``(n, n)`` Toeplitz stops
fitting in cache (or memory: n = 8192 is a 512 MB float64 matrix).

The SciPy ``zi`` initial condition (``y_0 = x_0 + zi``) folds into the
scan for free: adding ``zi`` to the first sample injects it at position 0,
and the scan then propagates the required ``zi * c^k`` term to every
position — no separate powers vector.

Everything here is backend-generic: the functions take an
:class:`~repro.backend.base.ArrayBackend` and use only protocol methods
plus shared Python operators, so NumPy arrays exercise the identical
arithmetic the Torch/CuPy backends run on device (the long-``T`` parity
tests lean on this).  The NumPy *backend* itself keeps its exact
``lfilter`` path — the scan is selected only by the device backends.

Implementation selection
------------------------
``REPRO_FILTER_IMPL`` pins the device-backend filter kernel:

* ``auto`` (default) — Toeplitz matmul below :func:`scan_crossover`
  samples (cached matmuls win at the paper's ``N_x = 30``), the scan at or
  above it;
* ``toeplitz`` / ``scan`` — force one kernel unconditionally.

``REPRO_SCAN_CROSSOVER`` overrides the auto crossover length (default
``256``); the long-``T`` microbenchmark in
``benchmarks/test_component_speed.py`` measures where the true crossover
sits on a given machine.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

__all__ = [
    "FILTER_IMPL_ENV_VAR",
    "SCAN_CROSSOVER_ENV_VAR",
    "DEFAULT_SCAN_CROSSOVER",
    "FILTER_IMPLS",
    "LRUCache",
    "resolve_filter_impl",
    "scan_crossover",
    "use_scan",
    "first_order_scan",
    "first_order_scan_stacked",
]

#: environment variable pinning the device-backend filter kernel
FILTER_IMPL_ENV_VAR = "REPRO_FILTER_IMPL"
#: environment variable overriding the auto-selection crossover length
SCAN_CROSSOVER_ENV_VAR = "REPRO_SCAN_CROSSOVER"
#: chain length at which ``auto`` switches from Toeplitz matmul to the scan
DEFAULT_SCAN_CROSSOVER = 256
#: recognized ``REPRO_FILTER_IMPL`` values
FILTER_IMPLS = ("auto", "toeplitz", "scan")


class LRUCache:
    """A bounded mapping that evicts the *least recently used* entry only.

    The device backends key their Toeplitz-of-powers matrices by
    ``(coef, n)``; a grid sweep touches many coefficients per pass, so
    evicting the whole dict on overflow (the previous behaviour) threw the
    entire working set away mid-sweep.  This cache drops exactly one stale
    entry per insert beyond capacity, and a :meth:`get` refreshes recency.

    All operations take an internal lock: the serving engine ticks from
    whatever thread the caller drives it on while ``REPRO_WORKERS`` feature
    extraction fans out across a pool, and ``OrderedDict.move_to_end`` under
    concurrent mutation can corrupt the recency list or raise spuriously.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key):
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                return None
            return self._data[key]

    def put(self, key, value) -> None:
        """Insert/overwrite ``key``, evicting only the oldest on overflow."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def keys(self):
        """Keys in recency order (oldest first)."""
        with self._lock:
            return list(self._data.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LRUCache(maxsize={self.maxsize}, len={len(self._data)})"


def resolve_filter_impl(env: Optional[str] = None) -> str:
    """The pinned filter implementation (``auto`` when unset).

    Reads ``REPRO_FILTER_IMPL`` (or the explicit ``env`` override) and
    validates it against :data:`FILTER_IMPLS` — an unknown value raises
    rather than silently running the wrong kernel.
    """
    value = os.environ.get(FILTER_IMPL_ENV_VAR, "") if env is None else env
    value = value.strip().lower() or "auto"
    if value not in FILTER_IMPLS:
        known = ", ".join(FILTER_IMPLS)
        raise ValueError(
            f"{FILTER_IMPL_ENV_VAR} must be one of {known}; got {value!r}"
        )
    return value


def scan_crossover() -> int:
    """Chain length where ``auto`` switches to the scan kernel."""
    raw = os.environ.get(SCAN_CROSSOVER_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_SCAN_CROSSOVER
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{SCAN_CROSSOVER_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{SCAN_CROSSOVER_ENV_VAR} must be >= 1, got {value}"
        )
    return value


def use_scan(n: int) -> bool:
    """Whether a device backend should scan a length-``n`` chain.

    Resolved per call so a pinned ``REPRO_FILTER_IMPL`` takes effect
    immediately (the env read is nanoseconds next to any filter kernel).
    """
    impl = resolve_filter_impl()
    if impl == "auto":
        return n >= scan_crossover()
    return impl == "scan"


def _doubling_scan(xb, y, factor):
    """The recursive-doubling core: inclusive scan of ``y`` under ``c``.

    ``factor`` is the current window multiplier ``c^{2^s}`` — a Python
    float for a scalar-coefficient chain, or a backend array broadcastable
    against ``y[..., :-offset]`` for a stacked per-candidate chain (it is
    squared in place of kind each step, staying on device).
    """
    n = y.shape[-1]
    offset = 1
    while offset < n:
        y = xb.concatenate(
            [y[..., :offset], y[..., offset:] + factor * y[..., :-offset]],
            axis=-1,
        )
        factor = factor * factor
        offset <<= 1
    return y


def first_order_scan(xb, x, coef: float, zi):
    """Scan form of ``ArrayBackend.first_order_filter`` (same semantics).

    Solves ``y_n = x_n + coef * y_{n-1}`` along the last axis with the
    SciPy initial condition ``y_0 = x_0 + zi`` (``zi`` has trailing axis 1).
    """
    # folding zi into sample 0 makes the scan propagate zi * c^k for free
    y = xb.concatenate([x[..., :1] + zi, x[..., 1:]], axis=-1)
    # a Python float stays a weak scalar under NumPy/Torch promotion (a
    # float32 chain is not silently upcast) and its squaring overflows to
    # inf at |c| > 1, matching the Toeplitz entries' behaviour
    return _doubling_scan(xb, y, float(coef))


def first_order_scan_stacked(xb, x, coefs, zi):
    """Scan form of ``ArrayBackend.first_order_filter_stacked``.

    ``x`` is ``(K, ..., n)``, ``coefs`` a 1-D host array of K coefficients
    and ``zi[k]`` the per-candidate initial condition (trailing axis 1).
    One fused scan sweeps all K chains — the per-candidate coefficient just
    rides along as a broadcast ``(K, 1, ..., 1)`` multiplier.
    """
    coefs = np.asarray(coefs, dtype=np.float64)
    factor = xb.asarray(coefs, dtype=getattr(x, "dtype", None))
    factor = factor.reshape((coefs.shape[0],) + (1,) * (x.ndim - 1))
    y = xb.concatenate([x[..., :1] + zi, x[..., 1:]], axis=-1)
    return _doubling_scan(xb, y, factor)
