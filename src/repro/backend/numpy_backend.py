"""The reference backend: NumPy + SciPy, bit-identical to the seed code.

Every method delegates to exactly the NumPy/SciPy call the pre-backend hot
path made (same functions, same argument order), so a pipeline routed
through :class:`NumpyBackend` reproduces the historical results *bit for
bit* — ``tests/test_backend.py`` pins this with hard-coded gradients, and
the seed-trajectory pins in ``tests/test_batched_training.py`` ride on it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

import numpy as np
from scipy.signal import lfilter

from repro.backend.base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """CPU reference backend (NumPy arrays, SciPy filters).

    Parameters
    ----------
    dtype:
        Working float precision: ``"float64"`` (default — the bit-pinned
        reference; every operation below is then byte-for-byte the
        historical call) or ``"float32"`` (opt-in reduced precision,
        validated against the float64 reference by rtol-bounded parity
        tests).
    """

    name = "numpy"
    float64 = np.float64
    device = "cpu"
    has_general_lfilter = True

    def __init__(self, dtype: str = "float64"):
        if dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        self.dtype_name = dtype
        self.float_dtype = np.float64 if dtype == "float64" else np.float32

    def asarray(self, a, dtype=None):
        out = np.asarray(a, dtype=dtype)
        # float32 mode narrows incoming double-precision data; the default
        # float64 mode never touches the array (bit-pinned reference path)
        if (dtype is None and self.float_dtype is not np.float64
                and out.dtype == np.float64):
            out = out.astype(self.float_dtype)
        return out

    def to_numpy(self, a):
        return np.asarray(a)

    def zeros(self, shape):
        return np.zeros(shape, dtype=self.float_dtype)

    def empty(self, shape):
        return np.empty(shape, dtype=self.float_dtype)

    def atleast_2d(self, a):
        return np.atleast_2d(a)

    def flip(self, a, axis: int):
        # the slice spelling the hot path historically used; a view, no copy
        index = [slice(None)] * a.ndim
        index[axis] = slice(None, None, -1)
        return a[tuple(index)]

    def roll(self, a, shift: int, axis: int):
        return np.roll(a, shift, axis=axis)

    def concatenate(self, arrays: Sequence, axis: int = 0):
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays: Sequence, axis: int = 0):
        return np.stack(arrays, axis=axis)

    def take(self, a, indices, axis: int = 0):
        return np.take(a, indices, axis=axis)

    def swapaxes(self, a, axis1: int, axis2: int):
        return np.swapaxes(a, axis1, axis2)

    def einsum(self, subscripts: str, *operands):
        return np.einsum(subscripts, *operands)

    def exp(self, a):
        return np.exp(a)

    def log(self, a):
        return np.log(a)

    def abs(self, a):
        return np.abs(a)

    def maximum_scalar(self, a, value: float):
        return np.maximum(a, value)

    def isfinite(self, a):
        return np.isfinite(a)

    def any(self, a, axis: Optional[int] = None):
        return np.any(a, axis=axis)

    def sum(self, a, axis: Optional[int] = None, keepdims: bool = False):
        return np.sum(a, axis=axis, keepdims=keepdims)

    def mean(self, a, axis: Optional[int] = None):
        return np.mean(a, axis=axis)

    def max(self, a, axis: Optional[int] = None, keepdims: bool = False):
        return np.max(a, axis=axis, keepdims=keepdims)

    def phi(self, nonlinearity, s):
        return nonlinearity.phi(s)

    def dphi(self, nonlinearity, s):
        return nonlinearity.dphi(s)

    def streaming_masked_drive(self, mask, u):
        # one GEMM per time step: the (N, 1, C) @ (C, N_x) kernel is the
        # same whatever chunk length the stream arrives in, so streaming
        # drives are bit-identical across any chunking of the same series
        # (BLAS picks shape-dependent kernels for a full-chunk GEMM, which
        # shifts last-ulp bits between chunk sizes)
        u = np.asarray(u, dtype=np.float64)
        n, t_len, _ = u.shape
        out = np.empty((n, t_len, mask.n_nodes))
        for k in range(t_len):
            out[:, k, :] = mask.apply(u[:, k:k + 1, :])[:, 0, :]
        return self.asarray(out)

    def first_order_filter(self, x, coef: float, zi):
        y, _ = lfilter([1.0], np.array([1.0, -coef]), x, axis=-1, zi=zi)
        if y.dtype != self.float_dtype:  # float32 mode: lfilter upcasts
            y = y.astype(self.float_dtype)
        return y

    def first_order_filter_stacked(self, x, coefs, zi):
        # candidate rows are swept by the very lfilter call the scalar path
        # makes, so row k is bit-identical to a scalar sweep with coefs[k]
        out = np.empty_like(x)
        for k, coef in enumerate(coefs):
            out[k], _ = lfilter([1.0], np.array([1.0, -coef]), x[k],
                                axis=-1, zi=zi[k])
        return out

    def lfilter_general(self, b, a, x, axis: int = -1):
        return lfilter(b, a, x, axis=axis)

    @contextmanager
    def errstate(self):
        with np.errstate(over="ignore", invalid="ignore"):
            yield
