"""CuPy backend: CUDA execution with NumPy-compatible semantics.

Imported lazily by the registry; importing *this module* requires ``cupy``
(and a working CUDA runtime) and raises ``ImportError`` otherwise, which
the registry converts into a
:class:`~repro.backend.base.BackendUnavailableError`.

CuPy mirrors the NumPy API, so most methods are one-line delegations.  The
IIR filters prefer ``cupyx.scipy.signal.lfilter`` (a true GPU ``lfilter``,
including the arbitrary-order form the identity flat-chain fast path
wants); on CuPy builds without it, first-order chains fall back to the
same closed-form Toeplitz matmul the Torch backend uses below a crossover
chain length and to the log-depth associative scan of
:mod:`repro.backend.scan` beyond it (``REPRO_FILTER_IMPL=scan`` forces
the scan even over ``lfilter`` — useful at long ``T``, where the scan's
``log2(n)`` fused kernels beat the sequential scan inside ``lfilter``).
The Toeplitz matrices live in an LRU cache (one stale entry evicted per
insert beyond 64, so a sweep's working set survives).

The :meth:`~repro.backend.base.ArrayBackend.fused_filter_prep` /
``fused_backward_drive`` element-wise chains are fused with ``cupy.fuse``
(one fused kernel per nonlinearity); any fuse failure falls back to the
eager composition permanently.  A ``dtype="float32"`` backend
(``REPRO_BACKEND=cupy@float32``) runs the hot path in single precision.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import cupy as cp
import numpy as np

from repro.backend._shape_ops import generic_dphi, generic_phi
from repro.backend.base import ArrayBackend
from repro.backend.scan import (
    LRUCache,
    first_order_scan,
    first_order_scan_stacked,
    resolve_filter_impl,
    use_scan,
)

try:  # pragma: no cover - depends on the installed CuPy build
    from cupyx.scipy.signal import lfilter as _cupy_lfilter
except ImportError:  # pragma: no cover
    _cupy_lfilter = None

__all__ = ["CupyBackend"]


def _parse_device(device: Optional[str]) -> int:
    """Parse a device suffix into a CUDA ordinal.

    Accepts the same grammar the Torch backend documents — ``"cuda:1"``,
    ``"cuda"`` (current device), a bare ordinal ``"1"`` — or ``None`` for
    the current device, so ``REPRO_BACKEND=cupy:cuda:0`` and
    ``REPRO_BACKEND=torch:cuda:0`` pin devices with one spelling.
    """
    if device is None or device == "" or device == "cuda":
        return cp.cuda.runtime.getDevice()
    text = device[len("cuda:"):] if device.startswith("cuda:") else device
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"cupy device spec must be 'cuda', 'cuda:<N>' or '<N>', "
            f"got {device!r}"
        ) from None


class CupyBackend(ArrayBackend):
    """CuPy execution on the current CUDA device."""

    name = "cupy"
    float64 = cp.float64
    has_general_lfilter = _cupy_lfilter is not None

    def __init__(self, device: Optional[str] = None, dtype: str = "float64"):
        if dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        self._device_id = _parse_device(device)
        self.device = f"cuda:{self._device_id}"
        self.dtype_name = dtype
        self.float_dtype = cp.float64 if dtype == "float64" else cp.float32
        self._toeplitz_cache = LRUCache(maxsize=64)
        #: single-entry cache for the stacked (K, n, n) Toeplitz pile (a
        #: fused sweep reuses one coefficient tuple per time step; tuples
        #: rarely recur across blocks)
        self._stacked_cache: Optional[Tuple] = None
        #: cupy.fuse'd element-wise chains keyed by (kind, nonlinearity);
        #: a value of None marks a permanent fallback to the eager path
        self._fused_cache: dict = {}

    def asarray(self, a, dtype=None):
        if isinstance(a, np.ndarray):
            # host array entering the backend: one H2D seam crossing
            self.transfers.to_device += 1
        with cp.cuda.Device(self._device_id):
            out = cp.asarray(a, dtype=dtype)
            if (dtype is None and self.float_dtype is not cp.float64
                    and out.dtype == cp.float64):
                out = out.astype(self.float_dtype)
            return out

    def to_numpy(self, a):
        if isinstance(a, cp.ndarray):
            self.transfers.to_host += 1
            return cp.asnumpy(a)
        return np.asarray(a)

    def zeros(self, shape):
        with cp.cuda.Device(self._device_id):
            return cp.zeros(shape, dtype=self.float_dtype)

    def empty(self, shape):
        with cp.cuda.Device(self._device_id):
            return cp.empty(shape, dtype=self.float_dtype)

    def atleast_2d(self, a):
        return cp.atleast_2d(a)

    def flip(self, a, axis: int):
        index = [slice(None)] * a.ndim
        index[axis] = slice(None, None, -1)
        return a[tuple(index)]

    def roll(self, a, shift: int, axis: int):
        return cp.roll(a, shift, axis=axis)

    def concatenate(self, arrays: Sequence, axis: int = 0):
        return cp.concatenate(arrays, axis=axis)

    def stack(self, arrays: Sequence, axis: int = 0):
        return cp.stack(arrays, axis=axis)

    def take(self, a, indices, axis: int = 0):
        return cp.take(a, self.asarray(np.asarray(indices)), axis=axis)

    def swapaxes(self, a, axis1: int, axis2: int):
        return cp.swapaxes(a, axis1, axis2)

    def einsum(self, subscripts: str, *operands):
        return cp.einsum(subscripts, *operands)

    def exp(self, a):
        return cp.exp(a)

    def log(self, a):
        return cp.log(a)

    def abs(self, a):
        return cp.abs(a)

    def maximum_scalar(self, a, value: float):
        return cp.maximum(a, value)

    def isfinite(self, a):
        return cp.isfinite(a)

    def any(self, a, axis: Optional[int] = None):
        return cp.any(a, axis=axis)

    def sum(self, a, axis: Optional[int] = None, keepdims: bool = False):
        return cp.sum(a, axis=axis, keepdims=keepdims)

    def mean(self, a, axis: Optional[int] = None):
        return cp.mean(a, axis=axis)

    def max(self, a, axis: Optional[int] = None, keepdims: bool = False):
        return cp.max(a, axis=axis, keepdims=keepdims)

    def phi(self, nonlinearity, s):
        out = generic_phi(cp, nonlinearity, s)
        if out is None:
            out = self.asarray(nonlinearity.phi(self.to_numpy(s)))
        return out

    def dphi(self, nonlinearity, s):
        out = generic_dphi(cp, nonlinearity, s,
                           lambda mask, ref: mask.astype(ref.dtype))
        if out is None:
            out = self.asarray(nonlinearity.dphi(self.to_numpy(s)))
        return out

    # -------------------------------------------------------------- #
    # fused element-wise chains (cupy.fuse with eager fallback)
    # -------------------------------------------------------------- #

    def _fused(self, kind: str, nonlinearity, make_eager):
        key = (kind, type(nonlinearity).__name__, repr(nonlinearity))
        if key not in self._fused_cache:
            fused = None
            # only ufunc-expressible shapes can enter a fused kernel
            if generic_phi(cp, nonlinearity, cp.zeros(1)) is not None:
                try:  # pragma: no cover - needs CUDA
                    fused = cp.fuse()(make_eager())
                except Exception:
                    fused = None
            self._fused_cache[key] = fused
        return self._fused_cache[key]

    def fused_filter_prep(self, nonlinearity, j_k, x_prev, a_mul, b_mul):
        def make():
            def prep(j_k, x_prev, a_mul):
                s = j_k + x_prev
                return s, a_mul * generic_phi(cp, nonlinearity, s)
            return prep

        fused = self._fused("prep", nonlinearity, make)
        if fused is not None:  # pragma: no cover - needs CUDA
            try:
                s, c = fused(j_k, x_prev, a_mul)
                zi = (b_mul * x_prev[..., -1])[..., None]
                return s, c, zi
            except Exception:
                self._fused_cache[
                    ("prep", type(nonlinearity).__name__, repr(nonlinearity))
                ] = None
        return super().fused_filter_prep(
            nonlinearity, j_k, x_prev, a_mul, b_mul)

    def fused_backward_drive(self, nonlinearity, drive, pre_next, g_next,
                             a_mul):
        def make():
            def tail(drive, pre_next, g_next, a_mul):
                dphi = generic_dphi(cp, nonlinearity, pre_next,
                                    lambda mask, ref: mask.astype(ref.dtype))
                return drive + a_mul * dphi * g_next
            return tail

        fused = self._fused("bwd", nonlinearity, make)
        if fused is not None:  # pragma: no cover - needs CUDA
            try:
                return fused(drive, pre_next, g_next, a_mul)
            except Exception:
                self._fused_cache[
                    ("bwd", type(nonlinearity).__name__, repr(nonlinearity))
                ] = None
        return super().fused_backward_drive(
            nonlinearity, drive, pre_next, g_next, a_mul)

    def masked_drive(self, mask, u):
        # contract on device: ship (N, T, C) instead of (N, T, N_x)
        u_dev = self.asarray(np.ascontiguousarray(u))
        m_dev = self.asarray(mask.matrix)
        return u_dev @ m_dev.T

    # -------------------------------------------------------------- #
    # first-order node chains: lfilter, Toeplitz matmul, or scan
    # -------------------------------------------------------------- #

    def _toeplitz(self, coef: float, n: int, dtype=None):
        dtype = cp.float64 if dtype is None else dtype
        key = (float(coef), n, cp.dtype(dtype).name)
        cached = self._toeplitz_cache.get(key)
        if cached is None:
            idx = cp.arange(n, dtype=dtype)
            diff = idx[None, :] - idx[:, None]  # diff[j, k] = k - j
            mat = cp.where(diff >= 0, coef ** cp.maximum(diff, 0.0), 0.0)
            mat = mat.astype(dtype, copy=False)
            powers = coef ** idx
            cached = (mat, powers)
            self._toeplitz_cache.put(key, cached)
        return cached

    def first_order_filter(self, x, coef: float, zi):
        impl = resolve_filter_impl()
        if impl == "scan" or (impl != "toeplitz" and _cupy_lfilter is None
                              and use_scan(x.shape[-1])):
            return first_order_scan(self, x, coef, zi)
        if impl == "auto" and _cupy_lfilter is not None:
            y, _ = _cupy_lfilter(cp.asarray([1.0]),
                                 cp.asarray([1.0, -coef]), x,
                                 axis=-1, zi=zi)
            if y.dtype != x.dtype:
                y = y.astype(x.dtype)
            return y
        mat, powers = self._toeplitz(coef, x.shape[-1], x.dtype)
        return x @ mat + zi * powers

    def first_order_filter_stacked(self, x, coefs, zi):
        n = x.shape[-1]
        impl = resolve_filter_impl()
        if impl == "scan" or (impl != "toeplitz" and _cupy_lfilter is None
                              and use_scan(n)):
            return first_order_scan_stacked(self, x, coefs, zi)
        if impl == "auto" and _cupy_lfilter is not None:
            out = cp.empty_like(x)
            for k, coef in enumerate(coefs):
                out[k], _ = _cupy_lfilter(cp.asarray([1.0]),
                                          cp.asarray([1.0, -float(coef)]),
                                          x[k], axis=-1, zi=zi[k])
            return out
        k = len(coefs)
        key = (tuple(float(c) for c in coefs), n)
        if self._stacked_cache is not None and self._stacked_cache[0] == key:
            _, mats, powers = self._stacked_cache
        else:
            per = [self._toeplitz(float(c), n, x.dtype) for c in coefs]
            mats = cp.stack([m for m, _ in per])
            powers = cp.stack([p for _, p in per])
            self._stacked_cache = (key, mats, powers)
        # a bare (K, n) input becomes a one-sample batch first — matmul
        # would otherwise read it as ONE matrix against the whole stack
        squeeze = x.ndim == 2
        if squeeze:
            x = x[:, None, :]
            zi = zi[:, None, :]
        mats = mats.reshape((k,) + (1,) * (x.ndim - 3) + (n, n))
        powers = powers.reshape((k,) + (1,) * (x.ndim - 2) + (n,))
        out = cp.matmul(x, mats) + zi * powers
        return out[:, 0, :] if squeeze else out

    def lfilter_general(self, b, a, x, axis: int = -1):
        if _cupy_lfilter is None:  # pragma: no cover - build-dependent
            raise NotImplementedError(
                "this CuPy build lacks cupyx.scipy.signal.lfilter"
            )
        return _cupy_lfilter(cp.asarray(b, dtype=cp.float64),
                             cp.asarray(a, dtype=cp.float64), x, axis=axis)

    def synchronize(self) -> None:  # pragma: no cover - needs GPU
        cp.cuda.get_current_stream().synchronize()
