"""CuPy backend: CUDA execution with NumPy-compatible semantics.

Imported lazily by the registry; importing *this module* requires ``cupy``
(and a working CUDA runtime) and raises ``ImportError`` otherwise, which
the registry converts into a
:class:`~repro.backend.base.BackendUnavailableError`.

CuPy mirrors the NumPy API, so most methods are one-line delegations.  The
IIR filters prefer ``cupyx.scipy.signal.lfilter`` (a true GPU ``lfilter``,
including the arbitrary-order form the identity flat-chain fast path
wants); on CuPy builds without it, first-order chains fall back to the
same closed-form Toeplitz matmul the Torch backend uses and the reservoir
takes its per-step path instead of the flat-chain one.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import cupy as cp
import numpy as np

from repro.backend._shape_ops import generic_dphi, generic_phi
from repro.backend.base import ArrayBackend

try:  # pragma: no cover - depends on the installed CuPy build
    from cupyx.scipy.signal import lfilter as _cupy_lfilter
except ImportError:  # pragma: no cover
    _cupy_lfilter = None

__all__ = ["CupyBackend"]


def _parse_device(device: Optional[str]) -> int:
    """Parse a device suffix into a CUDA ordinal.

    Accepts the same grammar the Torch backend documents — ``"cuda:1"``,
    ``"cuda"`` (current device), a bare ordinal ``"1"`` — or ``None`` for
    the current device, so ``REPRO_BACKEND=cupy:cuda:0`` and
    ``REPRO_BACKEND=torch:cuda:0`` pin devices with one spelling.
    """
    if device is None or device == "" or device == "cuda":
        return cp.cuda.runtime.getDevice()
    text = device[len("cuda:"):] if device.startswith("cuda:") else device
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"cupy device spec must be 'cuda', 'cuda:<N>' or '<N>', "
            f"got {device!r}"
        ) from None


class CupyBackend(ArrayBackend):
    """Double-precision CuPy execution on the current CUDA device."""

    name = "cupy"
    float64 = cp.float64
    has_general_lfilter = _cupy_lfilter is not None

    def __init__(self, device: Optional[str] = None):
        self._device_id = _parse_device(device)
        self.device = f"cuda:{self._device_id}"
        self._toeplitz_cache: Dict[Tuple[float, int], Tuple] = {}
        #: single-entry cache for the stacked (K, n, n) Toeplitz pile (a
        #: fused sweep reuses one coefficient tuple per time step; tuples
        #: rarely recur across blocks)
        self._stacked_cache: Optional[Tuple] = None

    def asarray(self, a, dtype=None):
        with cp.cuda.Device(self._device_id):
            return cp.asarray(a, dtype=dtype)

    def to_numpy(self, a):
        if isinstance(a, cp.ndarray):
            return cp.asnumpy(a)
        return np.asarray(a)

    def zeros(self, shape):
        with cp.cuda.Device(self._device_id):
            return cp.zeros(shape)

    def empty(self, shape):
        with cp.cuda.Device(self._device_id):
            return cp.empty(shape)

    def atleast_2d(self, a):
        return cp.atleast_2d(a)

    def flip(self, a, axis: int):
        index = [slice(None)] * a.ndim
        index[axis] = slice(None, None, -1)
        return a[tuple(index)]

    def roll(self, a, shift: int, axis: int):
        return cp.roll(a, shift, axis=axis)

    def concatenate(self, arrays: Sequence, axis: int = 0):
        return cp.concatenate(arrays, axis=axis)

    def stack(self, arrays: Sequence, axis: int = 0):
        return cp.stack(arrays, axis=axis)

    def take(self, a, indices, axis: int = 0):
        return cp.take(a, self.asarray(np.asarray(indices)), axis=axis)

    def swapaxes(self, a, axis1: int, axis2: int):
        return cp.swapaxes(a, axis1, axis2)

    def einsum(self, subscripts: str, *operands):
        return cp.einsum(subscripts, *operands)

    def exp(self, a):
        return cp.exp(a)

    def log(self, a):
        return cp.log(a)

    def abs(self, a):
        return cp.abs(a)

    def maximum_scalar(self, a, value: float):
        return cp.maximum(a, value)

    def isfinite(self, a):
        return cp.isfinite(a)

    def any(self, a, axis: Optional[int] = None):
        return cp.any(a, axis=axis)

    def sum(self, a, axis: Optional[int] = None, keepdims: bool = False):
        return cp.sum(a, axis=axis, keepdims=keepdims)

    def mean(self, a, axis: Optional[int] = None):
        return cp.mean(a, axis=axis)

    def max(self, a, axis: Optional[int] = None, keepdims: bool = False):
        return cp.max(a, axis=axis, keepdims=keepdims)

    def phi(self, nonlinearity, s):
        out = generic_phi(cp, nonlinearity, s)
        if out is None:
            out = self.asarray(nonlinearity.phi(self.to_numpy(s)))
        return out

    def dphi(self, nonlinearity, s):
        out = generic_dphi(cp, nonlinearity, s,
                           lambda mask, ref: mask.astype(ref.dtype))
        if out is None:
            out = self.asarray(nonlinearity.dphi(self.to_numpy(s)))
        return out

    def _toeplitz(self, coef: float, n: int):
        key = (float(coef), n)
        cached = self._toeplitz_cache.get(key)
        if cached is None:
            idx = cp.arange(n, dtype=cp.float64)
            diff = idx[None, :] - idx[:, None]  # diff[j, k] = k - j
            mat = cp.where(diff >= 0, coef ** cp.maximum(diff, 0.0), 0.0)
            powers = coef ** idx
            cached = (mat, powers)
            if len(self._toeplitz_cache) > 64:
                self._toeplitz_cache.clear()
            self._toeplitz_cache[key] = cached
        return cached

    def first_order_filter(self, x, coef: float, zi):
        if _cupy_lfilter is not None:
            y, _ = _cupy_lfilter(cp.asarray([1.0]),
                                 cp.asarray([1.0, -coef]), x,
                                 axis=-1, zi=zi)
            return y
        mat, powers = self._toeplitz(coef, x.shape[-1])
        return x @ mat + zi * powers

    def first_order_filter_stacked(self, x, coefs, zi):
        if _cupy_lfilter is not None:
            out = cp.empty_like(x)
            for k, coef in enumerate(coefs):
                out[k], _ = _cupy_lfilter(cp.asarray([1.0]),
                                          cp.asarray([1.0, -float(coef)]),
                                          x[k], axis=-1, zi=zi[k])
            return out
        n = x.shape[-1]
        k = len(coefs)
        key = (tuple(float(c) for c in coefs), n)
        if self._stacked_cache is not None and self._stacked_cache[0] == key:
            _, mats, powers = self._stacked_cache
        else:
            per = [self._toeplitz(float(c), n) for c in coefs]
            mats = cp.stack([m for m, _ in per])
            powers = cp.stack([p for _, p in per])
            self._stacked_cache = (key, mats, powers)
        # a bare (K, n) input becomes a one-sample batch first — matmul
        # would otherwise read it as ONE matrix against the whole stack
        squeeze = x.ndim == 2
        if squeeze:
            x = x[:, None, :]
            zi = zi[:, None, :]
        mats = mats.reshape((k,) + (1,) * (x.ndim - 3) + (n, n))
        powers = powers.reshape((k,) + (1,) * (x.ndim - 2) + (n,))
        out = cp.matmul(x, mats) + zi * powers
        return out[:, 0, :] if squeeze else out

    def lfilter_general(self, b, a, x, axis: int = -1):
        if _cupy_lfilter is None:  # pragma: no cover - build-dependent
            raise NotImplementedError(
                "this CuPy build lacks cupyx.scipy.signal.lfilter"
            )
        return _cupy_lfilter(cp.asarray(b, dtype=cp.float64),
                             cp.asarray(a, dtype=cp.float64), x, axis=axis)

    def synchronize(self) -> None:  # pragma: no cover - needs GPU
        cp.cuda.get_current_stream().synchronize()
