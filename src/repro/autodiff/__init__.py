"""Scalar reverse-mode autodiff used as an independent gradient oracle in tests."""

from repro.autodiff.dfr_graph import GraphGradients, dfr_loss_gradients
from repro.autodiff.scalar import Value

__all__ = ["Value", "GraphGradients", "dfr_loss_gradients"]
