"""Minimal scalar reverse-mode autodiff (an independent gradient oracle).

The analytic backward pass in :mod:`repro.core.backprop` transcribes the
paper's hand-derived equations.  To check that derivation (rather than just
our transcription of it), the tests rebuild the whole DFR computation from
scalar primitives on this tape and compare gradients.  The tape is
deliberately tiny and slow — it exists only for verification on small
instances, never on the training path.
"""

from __future__ import annotations

import math

__all__ = ["Value"]


class Value:
    """A scalar node in a dynamically built computation graph.

    Supports the arithmetic needed by the DFR stack: ``+ - * / **const``,
    ``abs``, ``tanh``, ``sin``, ``exp``, ``log``.  Call :meth:`backward` on
    the final scalar to populate ``grad`` on every upstream node.
    """

    __slots__ = ("data", "grad", "_backward", "_prev")

    def __init__(self, data: float, _prev: tuple = ()):
        self.data = float(data)
        self.grad = 0.0
        self._backward = None
        self._prev = _prev

    # -------------------------------------------------------------- #
    # primitives
    # -------------------------------------------------------------- #

    def __add__(self, other: "Value") -> "Value":
        other = other if isinstance(other, Value) else Value(other)
        out = Value(self.data + other.data, (self, other))

        def _backward():
            self.grad += out.grad
            other.grad += out.grad

        out._backward = _backward
        return out

    def __mul__(self, other: "Value") -> "Value":
        other = other if isinstance(other, Value) else Value(other)
        out = Value(self.data * other.data, (self, other))

        def _backward():
            self.grad += other.data * out.grad
            other.grad += self.data * out.grad

        out._backward = _backward
        return out

    def __pow__(self, exponent: float) -> "Value":
        if isinstance(exponent, Value):
            raise TypeError("only constant exponents are supported")
        out = Value(self.data**exponent, (self,))

        def _backward():
            self.grad += exponent * self.data ** (exponent - 1) * out.grad

        out._backward = _backward
        return out

    def __neg__(self) -> "Value":
        return self * -1.0

    def __sub__(self, other) -> "Value":
        return self + (-other if isinstance(other, Value) else Value(-other))

    def __truediv__(self, other) -> "Value":
        other = other if isinstance(other, Value) else Value(other)
        return self * other**-1.0

    def __radd__(self, other) -> "Value":
        return self + other

    def __rmul__(self, other) -> "Value":
        return self * other

    def __rsub__(self, other) -> "Value":
        return Value(other) - self

    def abs(self) -> "Value":
        """|x| with the subgradient sign(x) (0 at the origin)."""
        sign = 1.0 if self.data > 0 else (-1.0 if self.data < 0 else 0.0)
        out = Value(abs(self.data), (self,))

        def _backward():
            self.grad += sign * out.grad

        out._backward = _backward
        return out

    def tanh(self) -> "Value":
        t = math.tanh(self.data)
        out = Value(t, (self,))

        def _backward():
            self.grad += (1.0 - t * t) * out.grad

        out._backward = _backward
        return out

    def sin(self) -> "Value":
        out = Value(math.sin(self.data), (self,))

        def _backward():
            self.grad += math.cos(self.data) * out.grad

        out._backward = _backward
        return out

    def exp(self) -> "Value":
        e = math.exp(self.data)
        out = Value(e, (self,))

        def _backward():
            self.grad += e * out.grad

        out._backward = _backward
        return out

    def log(self) -> "Value":
        out = Value(math.log(self.data), (self,))

        def _backward():
            self.grad += out.grad / self.data

        out._backward = _backward
        return out

    # -------------------------------------------------------------- #
    # reverse pass
    # -------------------------------------------------------------- #

    def backward(self) -> None:
        """Populate ``grad`` on every node reachable from this one."""
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:  # iterative DFS: graphs can exceed the recursion limit
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = 1.0
        for node in reversed(order):
            if node._backward is not None:
                node._backward()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Value(data={self.data:.6g}, grad={self.grad:.6g})"
