"""Scalar-graph construction of the full DFR forward + loss.

Builds the modular-DFR reservoir (Eq. 13), the DPRR (Eqs. 18–19), the linear
output layer (Eq. 12) and the softmax cross-entropy loss (Eq. 15) entirely
out of :class:`repro.autodiff.scalar.Value` nodes, so that reverse-mode
autodiff yields gradients for ``A``, ``B``, ``W`` and ``b`` that are
*independent* of the paper's hand-derived backward equations.  Used by the
gradient-verification tests on small instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autodiff.scalar import Value

__all__ = ["GraphGradients", "dfr_loss_gradients"]


@dataclass
class GraphGradients:
    """Loss value and gradients computed by the autodiff oracle."""

    loss: float
    d_A: float
    d_B: float
    d_weights: np.ndarray
    d_bias: np.ndarray


def _phi_graph(s: Value, nonlinearity: str, p: float) -> Value:
    """Apply the named shape function to a scalar graph node."""
    if nonlinearity == "identity":
        return s
    if nonlinearity == "tanh":
        return s.tanh()
    if nonlinearity == "sine":
        return s.sin()
    if nonlinearity == "mackey-glass":
        return s / (s.abs() ** p + 1.0)
    raise ValueError(f"unsupported nonlinearity for the graph oracle: {nonlinearity!r}")


def dfr_loss_gradients(
    u: np.ndarray,
    mask_matrix: np.ndarray,
    A: float,
    B: float,
    weights: np.ndarray,
    bias: np.ndarray,
    target_onehot: np.ndarray,
    *,
    nonlinearity: str = "identity",
    mg_p: float = 2.0,
    normalize: Optional[str] = "length",
) -> GraphGradients:
    """Compute loss and gradients for ONE sample via the scalar tape.

    Mirrors exactly the composition reservoir -> DPRR -> softmax CE used by
    the production pipeline, including the node-chain boundary
    ``x(k)_0 = x(k-1)_{N_x}`` and the optional DPRR length normalization.
    """
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 2:
        raise ValueError(f"u must be one (T, C) sample, got shape {u.shape}")
    mask_matrix = np.asarray(mask_matrix, dtype=np.float64)
    t_len = u.shape[0]
    nx = mask_matrix.shape[0]
    n_classes = int(np.asarray(bias).shape[0])

    a_node = Value(A)
    b_node = Value(B)
    w_nodes = [[Value(w) for w in row] for row in np.asarray(weights, dtype=np.float64)]
    b_nodes = [Value(v) for v in np.asarray(bias, dtype=np.float64)]

    # ---- reservoir forward (Eq. 13) -------------------------------------
    states = [[Value(0.0) for _ in range(nx)]]  # x(0) = 0
    for k in range(t_len):
        j_k = mask_matrix @ u[k]
        row = []
        for node in range(nx):
            s = states[k][node] + float(j_k[node])
            c = a_node * _phi_graph(s, nonlinearity, mg_p)
            x_left = states[k][nx - 1] if node == 0 else row[node - 1]
            row.append(c + b_node * x_left)
        states.append(row)

    # ---- DPRR (Eqs. 18-19) ----------------------------------------------
    scale = 1.0 / t_len if normalize == "length" else 1.0
    r_nodes = []
    for i in range(nx):
        for j in range(nx):
            acc = Value(0.0)
            for k in range(1, t_len + 1):
                acc = acc + states[k][i] * states[k - 1][j]
            r_nodes.append(acc * scale)
    for i in range(nx):
        acc = Value(0.0)
        for k in range(1, t_len + 1):
            acc = acc + states[k][i]
        r_nodes.append(acc * scale)

    # ---- output layer + softmax cross-entropy (Eqs. 12, 15) -------------
    logits = []
    for cls in range(n_classes):
        z = b_nodes[cls]
        for i, r in enumerate(r_nodes):
            z = z + w_nodes[cls][i] * r
        logits.append(z)
    # stable log-sum-exp with a *constant* shift (constants don't change
    # the gradient of logsumexp)
    shift = max(z.data for z in logits)
    exp_sum = Value(0.0)
    for z in logits:
        exp_sum = exp_sum + (z - shift).exp()
    log_norm = exp_sum.log() + shift
    loss = Value(0.0)
    target = np.asarray(target_onehot, dtype=np.float64)
    for cls in range(n_classes):
        if target[cls] != 0.0:
            loss = loss + float(target[cls]) * (log_norm - logits[cls])

    loss.backward()
    return GraphGradients(
        loss=loss.data,
        d_A=a_node.grad,
        d_B=b_node.grad,
        d_weights=np.array([[w.grad for w in row] for row in w_nodes]),
        d_bias=np.array([v.grad for v in b_nodes]),
    )
