"""Command-line entry point for the benchmark harnesses.

Usage (installed as ``repro-bench``, or ``python -m repro.bench``):

.. code-block:: console

    repro-bench table1 [--datasets JPVOW LIB ...] [--size-profile bench]
                       [--workers 4] [--backend torch] [--dtype float32]
                       [--search descent --population 16]
    repro-bench table2
    repro-bench fig6 [--dataset CHAR] [--divisions 5] [--workers 4]
                     [--backend torch] [--dtype float32]
    repro-bench ablation-truncation [--dataset LIB]
    repro-bench ablation-nonlinearity [--datasets JPVOW LIB]
    repro-bench ablation-bitwidth [--dataset JPVOW]
    repro-bench ablation-optimizer [--dataset JPVOW]
    repro-bench serve [--streams 64] [--max-batch 64] [--json out.json]
    repro-bench matrix [--specs harmonic:n_classes=2 LIB ...]
                       [--backends numpy] [--executors serial vectorized]
                       [--searches random grid] [--budget 8] [--json -]
    repro-bench all            # everything, in EXPERIMENTS.md order
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.ablations import (
    format_bitwidth_ablation,
    format_nonlinearity_ablation,
    format_optimizer_ablation,
    format_truncation_ablation,
    run_bitwidth_ablation,
    run_nonlinearity_ablation,
    run_optimizer_ablation,
    run_truncation_ablation,
)
from repro.bench.fig6 import format_fig6, run_fig6
from repro.bench.matrix import (
    compare_matrix_reports,
    format_matrix_compare,
    MATRIX_SEARCHES,
    format_matrix,
    parse_spec_arg,
    run_matrix,
)
from repro.bench.serve import format_serve, run_serve_bench
from repro.bench.table1 import format_table1, run_table1
from repro.bench.table2 import format_table2, run_table2
from repro.data.metadata import dataset_keys


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--size-profile", choices=("bench", "paper"), default="bench"
    )
    parser.add_argument("--n-nodes", type=int, default=30)
    parser.add_argument("--epochs", type=int, default=25)


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for (A, B) candidate evaluation (grid "
             "levels shard across them; results are bit-identical to "
             "serial). Default: the REPRO_WORKERS environment variable, "
             "else serial",
    )


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None,
        help="array backend executing the reservoir/DPRR sweeps: 'numpy', "
             "'torch', 'torch:cuda:0', 'cupy'. Default: the REPRO_BACKEND "
             "environment variable, else numpy. The vectorized candidate "
             "executor (REPRO_EXECUTOR=vectorized) composes with any of "
             "them",
    )


def _add_dtype(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dtype", choices=("float32", "float64"), default=None,
        help="working float precision of the backend sweeps (float64 is "
             "the bit-pinned default; float32 trades exactness for device "
             "throughput, bounded by the tolerance contract in "
             "docs/ARCHITECTURE.md). Default: the backend spec's @dtype "
             "suffix, else the REPRO_DTYPE environment variable, else "
             "float64",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="bp vs grid search (Table 1)")
    p.add_argument("--datasets", nargs="+", default=None,
                   choices=list(dataset_keys()))
    p.add_argument("--max-divisions", type=int, default=20)
    p.add_argument(
        "--batch-size", type=int, default=1,
        help="minibatch size for the backprop phase (1 = the paper's "
             "per-sample SGD; run once with 1 and once with e.g. 32 to "
             "compare per-sample vs batched training throughput)",
    )
    p.add_argument(
        "--search", choices=("backprop", "descent"), default="backprop",
        help="parameter search for the proposed-method phase: 'backprop' "
             "(the paper's single gradient run) or 'descent' (population "
             "gradient descent — --population restarts trained as one "
             "fused candidate-stacked program)",
    )
    p.add_argument(
        "--population", type=int, default=None,
        help="restart count for --search descent. Default: the "
             "REPRO_POPULATION environment variable, else 8",
    )
    _add_workers(p)
    _add_backend(p)
    _add_dtype(p)
    _add_common(p)

    p = sub.add_parser("table2", help="storage reduction (Table 2, exact)")
    p.add_argument("--window", type=int, default=1)

    p = sub.add_parser("fig6", help="recursive grid failure (Fig. 6)")
    p.add_argument("--dataset", default="CHAR", choices=list(dataset_keys()))
    p.add_argument("--divisions", type=int, default=5)
    p.add_argument("--reference-divisions", type=int, default=10)
    _add_workers(p)
    _add_backend(p)
    _add_dtype(p)
    _add_common(p)

    p = sub.add_parser("ablation-truncation", help="backward-window sweep")
    p.add_argument("--dataset", default="LIB", choices=list(dataset_keys()))
    _add_common(p)

    p = sub.add_parser("ablation-nonlinearity", help="shape-function sweep")
    p.add_argument("--datasets", nargs="+", default=["JPVOW", "LIB"],
                   choices=list(dataset_keys()))
    _add_common(p)

    p = sub.add_parser("ablation-bitwidth", help="fixed-point precision sweep")
    p.add_argument("--dataset", default="JPVOW", choices=list(dataset_keys()))
    _add_common(p)

    p = sub.add_parser("ablation-optimizer", help="SGD vs momentum vs Adam")
    p.add_argument("--dataset", default="JPVOW", choices=list(dataset_keys()))
    _add_common(p)

    p = sub.add_parser(
        "serve",
        help="streaming inference under replayed traffic (serial vs "
             "continuous batching, bitwise-verified)",
    )
    p.add_argument("--streams", type=int, default=64,
                   help="concurrent sessions in the replayed trace")
    p.add_argument("--chunks", type=int, default=4,
                   help="chunks each session submits")
    p.add_argument("--chunk-len", type=int, default=32,
                   help="time steps per chunk")
    p.add_argument("--channels", type=int, default=1)
    p.add_argument("--n-nodes", type=int, default=30)
    p.add_argument("--models", type=int, default=1,
                   help="deployed models sharing the feature pipeline "
                        "(>1 exercises the candidate-axis packing)")
    p.add_argument(
        "--max-batch", type=int, default=None,
        help="sessions per fused sweep for the batched engine. Default: "
             "--streams (one full-width sweep per round of arrivals)",
    )
    p.add_argument(
        "--max-wait-ms", type=float, default=None,
        help="continuous-batching deferral budget for partial batches. "
             "Default: the REPRO_SERVE_MAX_WAIT_MS environment variable, "
             "else 0 (never defer)",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=10.0,
        help="per-chunk deadline budget for the paced deadline legs "
             "(sync tick-on-submit vs async background loop)",
    )
    p.add_argument(
        "--slack-margin-ms", type=float, default=5.0,
        help="how early the async engine's background loop fires a "
             "deadline-held batch",
    )
    p.add_argument(
        "--deadline-rate-hz", type=float, default=4.0,
        help="per-stream arrival rate the deadline legs are paced at "
             "(the recorded 200 Hz trace is stretched to this)",
    )
    p.add_argument("--repeats", type=int, default=3,
                   help="replay repetitions; fastest wall-clock is kept")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the result dict as JSON to PATH "
                        "('-' for stdout)")
    _add_backend(p)
    _add_dtype(p)

    p = sub.add_parser(
        "matrix",
        help="scenario matrix: registry dataset specs x backends x "
             "executors x searches, one comparable table",
    )
    p.add_argument(
        "--specs", nargs="+", metavar="SPEC",
        default=["harmonic:n_classes=2,n_train=24,n_test=24",
                 "regime:n_classes=2,n_train=24,n_test=24"],
        help="dataset specs: a registered generator with optional "
             "'name:key=value,...' overrides (dotted keys nest, 'seed' "
             "sets the spec seed), or a bare paper dataset key (e.g. LIB). "
             "See EXPERIMENTS.md for the grammar",
    )
    p.add_argument("--backends", nargs="+", default=[None], metavar="BACKEND",
                   help="array backends to cross (default: numpy)")
    p.add_argument("--executors", nargs="+", default=["serial"],
                   choices=("serial", "vectorized", "multiprocess",
                            "multiprocess+vectorized"),
                   help="candidate executors to cross (scores are "
                        "executor-invariant on numpy; timing moves)")
    p.add_argument("--searches", nargs="+", default=["random"],
                   choices=MATRIX_SEARCHES,
                   help="parameter searches to cross")
    p.add_argument(
        "--budget", type=int, default=8,
        help="per-cell search budget: samples (random), steps (anneal), "
             "or restarts (descent); grid uses --divisions^2 points",
    )
    p.add_argument("--divisions", type=int, default=4,
                   help="grid divisions per axis for --searches grid")
    p.add_argument(
        "--compare", nargs=2, metavar=("OLD.json", "NEW.json"), default=None,
        help="instead of running, diff two saved matrix reports "
             "cell-by-cell (accuracy + timing deltas); exits non-zero on "
             "a regression beyond the floors",
    )
    p.add_argument("--accuracy-floor", type=float, default=0.05,
                   help="allowed absolute test-accuracy drop per cell "
                        "before --compare flags a regression")
    p.add_argument("--time-floor", type=float, default=0.5,
                   help="allowed fractional slowdown per cell before "
                        "--compare flags a regression (0.5 = 1.5x)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the report dict as JSON to PATH "
                        "('-' for stdout)")
    _add_common(p)

    p = sub.add_parser("all", help="run every harness")
    _add_common(p)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        rows = run_table1(
            args.datasets,
            n_nodes=args.n_nodes,
            size_profile=args.size_profile,
            seed=args.seed,
            max_divisions=args.max_divisions,
            epochs=args.epochs,
            batch_size=args.batch_size,
            search=args.search,
            population=args.population,
            workers=args.workers,
            backend=args.backend,
            dtype=args.dtype,
        )
        print()
        print(format_table1(rows))
    elif args.command == "table2":
        print(format_table2(run_table2(window=args.window)))
    elif args.command == "fig6":
        result = run_fig6(
            args.dataset,
            n_nodes=args.n_nodes,
            divisions=args.divisions,
            reference_divisions=args.reference_divisions,
            size_profile=args.size_profile,
            seed=args.seed,
            workers=args.workers,
            backend=args.backend,
            dtype=args.dtype,
        )
        print()
        print(format_fig6(result))
    elif args.command == "ablation-truncation":
        points = run_truncation_ablation(
            args.dataset, n_nodes=args.n_nodes, epochs=args.epochs,
            seed=args.seed, size_profile=args.size_profile,
        )
        print()
        print(format_truncation_ablation(args.dataset, points))
    elif args.command == "ablation-nonlinearity":
        points = run_nonlinearity_ablation(
            args.datasets, n_nodes=args.n_nodes, epochs=args.epochs,
            seed=args.seed, size_profile=args.size_profile,
        )
        print()
        print(format_nonlinearity_ablation(points))
    elif args.command == "ablation-bitwidth":
        points = run_bitwidth_ablation(
            args.dataset, n_nodes=args.n_nodes, epochs=args.epochs,
            seed=args.seed, size_profile=args.size_profile,
        )
        print()
        print(format_bitwidth_ablation(args.dataset, points))
    elif args.command == "ablation-optimizer":
        points = run_optimizer_ablation(
            args.dataset, n_nodes=args.n_nodes, epochs=args.epochs,
            seed=args.seed, size_profile=args.size_profile,
        )
        print()
        print(format_optimizer_ablation(args.dataset, points))
    elif args.command == "serve":
        result = run_serve_bench(
            streams=args.streams,
            chunks_per_session=args.chunks,
            chunk_len=args.chunk_len,
            n_channels=args.channels,
            n_nodes=args.n_nodes,
            n_models=args.models,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            deadline_ms=args.deadline_ms,
            slack_margin_ms=args.slack_margin_ms,
            deadline_rate_hz=args.deadline_rate_hz,
            repeats=args.repeats,
            seed=args.seed,
            backend=args.backend,
            dtype=args.dtype,
        )
        print()
        print(format_serve(result))
        if args.json == "-":
            json.dump(result, sys.stdout, indent=2)
            print()
        elif args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(result, fh, indent=2)
                fh.write("\n")
        if result["bitwise_mismatches"]:
            return 1
    elif args.command == "matrix":
        if args.compare is not None:
            old_path, new_path = args.compare
            with open(old_path, "r", encoding="utf-8") as fh:
                old_report = json.load(fh)
            with open(new_path, "r", encoding="utf-8") as fh:
                new_report = json.load(fh)
            diff = compare_matrix_reports(
                old_report, new_report,
                accuracy_floor=args.accuracy_floor,
                time_floor=args.time_floor,
            )
            print()
            print(format_matrix_compare(diff))
            if args.json == "-":
                json.dump(diff, sys.stdout, indent=2)
                print()
            elif args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    json.dump(diff, fh, indent=2)
                    fh.write("\n")
            return 0 if diff["ok"] else 1
        specs = [parse_spec_arg(text, default_seed=args.seed)
                 for text in args.specs]
        report = run_matrix(
            specs,
            backends=args.backends,
            executors=args.executors,
            searches=args.searches,
            budget=args.budget,
            divisions=args.divisions,
            n_nodes=args.n_nodes,
            epochs=args.epochs,
            seed=args.seed,
        )
        print()
        print(format_matrix(report))
        if args.json == "-":
            json.dump(report, sys.stdout, indent=2)
            print()
        elif args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
    elif args.command == "all":
        print(format_table2(run_table2()))
        print()
        rows = run_table1(
            None, n_nodes=args.n_nodes, size_profile=args.size_profile,
            seed=args.seed, epochs=args.epochs,
        )
        print()
        print(format_table1(rows))
        print()
        result = run_fig6(seed=args.seed, n_nodes=args.n_nodes,
                          size_profile=args.size_profile)
        print(format_fig6(result))
        print()
        points = run_truncation_ablation(seed=args.seed, n_nodes=args.n_nodes,
                                         epochs=args.epochs)
        print(format_truncation_ablation("LIB", points))
        print()
        nl_points = run_nonlinearity_ablation(seed=args.seed,
                                              n_nodes=args.n_nodes,
                                              epochs=args.epochs)
        print(format_nonlinearity_ablation(nl_points))
        print()
        bw_points = run_bitwidth_ablation(seed=args.seed, n_nodes=args.n_nodes,
                                          epochs=args.epochs)
        print(format_bitwidth_ablation("JPVOW", bw_points))
        print()
        opt_points = run_optimizer_ablation(seed=args.seed, n_nodes=args.n_nodes,
                                            epochs=args.epochs)
        print(format_optimizer_ablation("JPVOW", opt_points))
    return 0


if __name__ == "__main__":
    sys.exit(main())
