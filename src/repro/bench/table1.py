"""Table 1 harness: backpropagation vs grid search, per dataset.

Reproduces the paper's Table 1 protocol end to end:

1. train the full pipeline (25-epoch truncated backprop + ridge/beta
   selection), record test accuracy and wall-clock time;
2. run grid search with divisions 1, 2, 3, ... (cumulative time) until the
   grid-selected configuration reaches the backprop accuracy;
3. report: bp accuracy, bp time, grid divisions, grid time, and the
   gs/bp time ratio.

Absolute times differ from the paper (different machine, synthetic data,
scaled sample counts — see DESIGN.md); the reproduction claim is the
*shape*: grid search pays a rapidly growing multiple of the backprop cost
on datasets that need fine grids, and only the datasets whose coarse grid
already wins (divs = 1) stay at ratio ~1 or below.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.reporting import format_table
from repro.core.grid_search import GridSearch
from repro.core.pipeline import DFRClassifier, DFRFeatureExtractor
from repro.core.trainer import TrainerConfig
from repro.data.loaders import load_dataset
from repro.data.metadata import N_X_PAPER, PAPER_TABLE1, dataset_keys

__all__ = ["Table1Row", "run_dataset", "run_table1", "format_table1"]


@dataclass
class Table1Row:
    """One measured row of Table 1."""

    dataset: str
    bp_accuracy: float
    bp_seconds: float
    gs_divisions: int
    gs_seconds: float
    gs_accuracy: float
    ratio: float
    gs_reached_target: bool
    #: minibatch size used for the backprop phase (1 = the paper's
    #: per-sample SGD); lets one report compare per-sample vs batched
    #: training throughput
    batch_size: int = 1
    #: worker-process count used for the grid-search phase (1 = serial)
    workers: int = 1
    #: summed per-candidate grid evaluation time across workers;
    #: ``gs_seconds / gs_compute_seconds`` < 1 measures the parallel gain
    gs_compute_seconds: float = 0.0
    #: parameter search of the backprop phase: "backprop" (the paper's
    #: single run) or "descent" (fused population gradient descent)
    search: str = "backprop"
    #: restart count of the descent phase (1 for plain backprop)
    population: int = 1
    #: working float precision of the backend phases
    dtype: str = "float64"


def run_dataset(
    key: str,
    *,
    n_nodes: int = N_X_PAPER,
    size_profile: str = "bench",
    seed: int = 0,
    max_divisions: int = 20,
    epochs: int = 25,
    batch_size: int = 1,
    search: str = "backprop",
    population: Optional[int] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
) -> Table1Row:
    """Run the full bp-vs-grid-search protocol on one dataset.

    ``batch_size=1`` reproduces the paper's per-sample SGD timing; larger
    values time the vectorized minibatch engine instead, so two runs of the
    harness report per-sample vs batched training throughput directly.

    ``search="descent"`` replaces the single backprop run with fused
    population gradient descent (``population`` restarts trained as one
    candidate-stacked program; ``None`` defers to ``REPRO_POPULATION``) —
    the "bp" columns then measure the multi-start method, against the same
    grid-search baseline.

    ``workers`` shards the grid-search candidates across processes through
    the shared execution layer (results are bit-identical to serial; only
    the reported wall-clock changes).  ``None`` defers to ``REPRO_WORKERS``.

    ``backend`` selects the array backend for both phases — the batched
    training engine (when ``batch_size > 1``) and every grid candidate's
    reservoir/DPRR sweeps; ``None`` defers to ``REPRO_BACKEND``.

    ``dtype`` selects the working float precision of those backend phases
    ("float64" default, "float32" opt-in); ``None`` defers to the spec's
    ``@dtype`` suffix / ``REPRO_DTYPE``.
    """
    data = load_dataset(key, size_profile=size_profile, seed=seed)

    # --- proposed method: backprop + ridge ---------------------------------
    start = time.perf_counter()
    clf = DFRClassifier(
        n_nodes=n_nodes,
        config=TrainerConfig(epochs=epochs, batch_size=batch_size),
        search=search,
        population=population,
        workers=workers,
        backend=backend,
        dtype=dtype,
        seed=seed,
    )
    clf.fit(data.u_train, data.y_train)
    bp_acc = clf.score(data.u_test, data.y_test)
    bp_seconds = time.perf_counter() - start

    # --- baseline: cumulative grid search until parity ----------------------
    # a fresh extractor with the same seed gives the identical mask and
    # standardizer, so both methods see the same feature pipeline
    extractor = DFRFeatureExtractor(n_nodes=n_nodes, seed=seed,
                                    backend=backend,
                                    dtype=dtype).fit(data.u_train)
    grid = GridSearch(extractor, seed=seed, workers=workers, backend=backend)
    outcome = grid.search_until(
        data.u_train,
        data.y_train,
        data.u_test,
        data.y_test,
        target_accuracy=bp_acc,
        max_divisions=max_divisions,
        n_classes=data.n_classes,
    )
    return Table1Row(
        dataset=key,
        bp_accuracy=bp_acc,
        bp_seconds=bp_seconds,
        gs_divisions=outcome.divisions,
        gs_seconds=outcome.total_seconds,
        gs_accuracy=outcome.achieved_accuracy,
        ratio=outcome.total_seconds / bp_seconds if bp_seconds > 0 else float("inf"),
        gs_reached_target=outcome.reached,
        batch_size=batch_size,
        workers=grid.executor.workers,
        gs_compute_seconds=outcome.total_compute_seconds,
        search=search,
        population=(clf.population_.population
                    if clf.population_ is not None else 1),
        dtype=dtype or "float64",
    )


def run_table1(
    keys: Optional[Sequence[str]] = None,
    *,
    n_nodes: int = N_X_PAPER,
    size_profile: str = "bench",
    seed: int = 0,
    max_divisions: int = 20,
    epochs: int = 25,
    batch_size: int = 1,
    search: str = "backprop",
    population: Optional[int] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    verbose: bool = True,
) -> List[Table1Row]:
    """Run the Table 1 protocol over a set of datasets (default: all 12)."""
    keys = list(keys) if keys is not None else list(dataset_keys())
    rows = []
    for key in keys:
        if verbose:
            print(f"[table1] running {key} ...", flush=True)
        row = run_dataset(
            key,
            n_nodes=n_nodes,
            size_profile=size_profile,
            seed=seed,
            max_divisions=max_divisions,
            epochs=epochs,
            batch_size=batch_size,
            search=search,
            population=population,
            workers=workers,
            backend=backend,
            dtype=dtype,
        )
        if verbose:
            print(
                f"[table1]   bp acc {row.bp_accuracy:.3f} in {row.bp_seconds:.1f}s | "
                f"gs divs {row.gs_divisions} acc {row.gs_accuracy:.3f} in "
                f"{row.gs_seconds:.1f}s | ratio {row.ratio:.1f}x",
                flush=True,
            )
        rows.append(row)
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render measured rows next to the paper's reference values."""
    table_rows = []
    for row in rows:
        paper = PAPER_TABLE1.get(row.dataset)
        paper_divs = paper[2] if paper else "-"
        paper_ratio = paper[4] if paper else "-"
        table_rows.append(
            [
                row.dataset,
                f"{row.bp_accuracy:.3f}",
                f"{row.bp_seconds:.1f}",
                f"{row.batch_size}",
                f"{row.population}",
                f"{row.gs_divisions}{'' if row.gs_reached_target else '+'}",
                f"{row.gs_seconds:.1f}",
                f"{row.workers}",
                f"{row.ratio:.1f}",
                f"{paper_divs}",
                f"{paper_ratio}",
            ]
        )
    dtypes = sorted({row.dtype for row in rows}) or ["float64"]
    return format_table(
        [
            "dataset",
            "bp acc",
            "bp time (s)",
            "bp bs",
            "bp pop",
            "gs divs",
            "gs time (s)",
            "gs wk",
            "(gs)/(bp)",
            "paper divs",
            "paper ratio",
        ],
        table_rows,
        title="Table 1 — backpropagation vs grid search "
        f"[dtype {'/'.join(dtypes)}] "
        "('+' marks grids stopped at the division cap)",
    )
