"""Scenario-matrix benchmark: registry specs x backends x executors x searches.

The per-harness benchmarks (``table1``, ``fig6``, ``serve``) each fix the
workload and sweep one implementation axis.  This harness is the cross
product: every *cell* is one dataset spec from the generator registry
(:mod:`repro.data.registry`) evaluated under one array backend, one
candidate executor, and one parameter search, all sharing the seed and the
selection protocol — so a single run answers "does the story hold across
workloads?" with one comparable table.

Determinism contract: on the NumPy backend every cell's scores are a pure
function of ``(spec, search, seed)`` — the executor axis changes only the
timing columns (serial and vectorized execution are bit-identical; see
``tests/test_bench_harnesses.py``).  The JSON report is versioned the same
way as dataset specs and model envelopes, and feeds
``tools/bench_history.py --suite matrix``.

Spec-argument grammar (``parse_spec_arg``)::

    harmonic                          registry generator, defaults
    harmonic:n_classes=2,seed=5       override params (and the seed)
    drift:base.name=harmonic,base.params.n_classes=2,gain_depth=0.3
                                      dotted keys build nested dicts
    LIB                               a paper dataset key -> spec_for_dataset

Values go through ``json.loads`` where possible (``2`` is an int, ``0.3``
a float, ``true`` a bool, ``null`` None) and fall back to plain strings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.reporting import format_table
from repro.core.grid_search import GridSearch
from repro.core.hyperopt import (
    PopulationDescent,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.core.pipeline import DFRFeatureExtractor
from repro.core.trainer import TrainerConfig
from repro.data.metadata import dataset_keys
from repro.data.registry import (
    GeneratorSpec,
    dataset_from_spec,
    get_generator,
    make_spec,
    spec_for_dataset,
)

__all__ = [
    "MATRIX_FORMAT",
    "MATRIX_FORMAT_VERSION",
    "MATRIX_SEARCHES",
    "MatrixCell",
    "parse_spec_arg",
    "run_matrix",
    "format_matrix",
    "compare_matrix_reports",
    "format_matrix_compare",
]

MATRIX_FORMAT = "repro-matrix-report"
MATRIX_FORMAT_VERSION = 1

#: parameter searches a cell can run; all share the evaluation protocol
#: (holdout beta selection, then a test score) so their columns compare
MATRIX_SEARCHES = ("grid", "random", "anneal", "descent")


def _parse_value(text: str):
    try:
        return json.loads(text)
    except (json.JSONDecodeError, ValueError):
        return text


def parse_spec_arg(text: str, *, default_seed: int = 0) -> GeneratorSpec:
    """Parse one ``--specs`` argument into a :class:`GeneratorSpec`.

    See the module docstring for the grammar.  A bare paper dataset key
    (e.g. ``LIB``) resolves through :func:`spec_for_dataset`; anything
    else must name a registered generator, optionally followed by
    ``:key=value,...`` overrides where dotted keys build nested dicts and
    the pseudo-param ``seed`` sets the spec seed.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty dataset spec argument")
    name, _, params_text = text.partition(":")
    name = name.strip()
    if name in dataset_keys():
        if params_text:
            raise ValueError(
                f"paper dataset key {name!r} takes no parameters "
                f"(got {params_text!r}); use a generator name to customize"
            )
        return spec_for_dataset(name, seed=default_seed)
    params: Dict[str, object] = {}
    seed = default_seed
    if params_text:
        for item in params_text.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value_text = item.partition("=")
            if not eq:
                raise ValueError(
                    f"malformed spec parameter {item!r} (expected key=value)"
                )
            key = key.strip()
            value = _parse_value(value_text.strip())
            if key == "seed":
                seed = int(value)
                continue
            node = params
            parts = key.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
                if not isinstance(node, dict):
                    raise ValueError(
                        f"spec parameter {key!r} descends into non-dict "
                        f"{part!r}"
                    )
            node[parts[-1]] = value
    return make_spec(name, seed=seed, **params)


@dataclass
class MatrixCell:
    """One (spec, backend, executor, search) evaluation."""

    spec: str               # GeneratorSpec.label()
    backend: str
    executor: str
    search: str
    val_accuracy: float
    test_accuracy: float
    best_A: float
    best_B: float
    best_beta: float
    diverged: bool
    n_evaluations: int
    total_seconds: float
    compute_seconds: float
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "backend": self.backend,
            "executor": self.executor,
            "search": self.search,
            "val_accuracy": self.val_accuracy,
            "test_accuracy": self.test_accuracy,
            "best_A": self.best_A,
            "best_B": self.best_B,
            "best_beta": self.best_beta,
            "diverged": self.diverged,
            "n_evaluations": self.n_evaluations,
            "total_seconds": self.total_seconds,
            "compute_seconds": self.compute_seconds,
            "error": self.error,
        }


def _run_cell(
    data,
    spec_label: str,
    backend: Optional[str],
    executor: str,
    search: str,
    *,
    budget: int,
    divisions: int,
    n_nodes: int,
    epochs: int,
    seed: int,
) -> MatrixCell:
    extractor = DFRFeatureExtractor(
        n_nodes, seed=seed, backend=backend
    ).fit(data.u_train)
    common = dict(seed=seed, backend=backend, executor_kind=executor)
    if search == "grid":
        level = GridSearch(extractor, **common).run_level(
            data.u_train, data.y_train, data.u_test, data.y_test,
            divisions, n_classes=data.n_classes,
        )
        best = level.best
        evaluations = level.evaluations
        total_seconds = level.elapsed_seconds
        compute_seconds = level.compute_seconds
    else:
        if search == "random":
            outcome = RandomSearch(extractor, **common).search(
                data.u_train, data.y_train, data.u_test, data.y_test,
                n_samples=budget, n_classes=data.n_classes,
            )
        elif search == "anneal":
            outcome = SimulatedAnnealing(extractor, **common).search(
                data.u_train, data.y_train, data.u_test, data.y_test,
                n_steps=budget, n_classes=data.n_classes,
            )
        elif search == "descent":
            outcome = PopulationDescent(
                extractor,
                trainer_config=TrainerConfig(epochs=epochs, batch_size=8),
                **common,
            ).search(
                data.u_train, data.y_train, data.u_test, data.y_test,
                population=budget, n_classes=data.n_classes,
            )
        else:
            known = ", ".join(MATRIX_SEARCHES)
            raise ValueError(f"unknown search {search!r}; known: {known}")
        best = outcome.best
        evaluations = outcome.evaluations
        total_seconds = outcome.total_seconds
        compute_seconds = outcome.compute_seconds
    if best is None:  # pragma: no cover - every candidate failed
        return MatrixCell(
            spec=spec_label, backend=backend or "numpy", executor=executor,
            search=search, val_accuracy=0.0, test_accuracy=0.0,
            best_A=float("nan"), best_B=float("nan"),
            best_beta=float("nan"), diverged=True,
            n_evaluations=len(evaluations), total_seconds=total_seconds,
            compute_seconds=compute_seconds, error="no candidate scored",
        )
    return MatrixCell(
        spec=spec_label,
        backend=backend or "numpy",
        executor=executor,
        search=search,
        val_accuracy=float(best.val_accuracy),
        test_accuracy=float(best.test_accuracy),
        best_A=float(best.A),
        best_B=float(best.B),
        best_beta=float(best.beta),
        diverged=bool(best.diverged),
        n_evaluations=len(evaluations),
        total_seconds=float(total_seconds),
        compute_seconds=float(compute_seconds),
        error=best.error,
    )


def run_matrix(
    specs: Sequence[GeneratorSpec],
    *,
    backends: Sequence[Optional[str]] = (None,),
    executors: Sequence[str] = ("serial",),
    searches: Sequence[str] = ("random",),
    budget: int = 8,
    divisions: int = 4,
    n_nodes: int = 30,
    epochs: int = 5,
    seed: int = 0,
) -> dict:
    """Run the full scenario matrix and return a versioned report dict.

    Every cell rebuilds its extractor and search from ``seed``, so cells
    are independent: reordering or subsetting the axes never changes any
    cell's scores, and on NumPy the executor axis is score-invariant (it
    only moves the timing columns).

    ``budget`` is the per-cell search budget — samples for ``random``,
    steps for ``anneal``, restarts for ``descent`` — while ``grid`` uses
    ``divisions``^2 points.
    """
    if not specs:
        raise ValueError("need at least one dataset spec")
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if divisions < 2:
        raise ValueError(f"divisions must be >= 2, got {divisions}")
    for search in searches:
        if search not in MATRIX_SEARCHES:
            known = ", ".join(MATRIX_SEARCHES)
            raise ValueError(f"unknown search {search!r}; known: {known}")
    cells: List[MatrixCell] = []
    for spec in specs:
        get_generator(spec.name)  # fail fast on an unknown generator
        data = dataset_from_spec(spec)
        for backend in backends:
            for executor in executors:
                for search in searches:
                    cells.append(_run_cell(
                        data, spec.label(), backend, executor, search,
                        budget=budget, divisions=divisions,
                        n_nodes=n_nodes, epochs=epochs, seed=seed,
                    ))
    return {
        "format": MATRIX_FORMAT,
        "format_version": MATRIX_FORMAT_VERSION,
        "seed": int(seed),
        "budget": int(budget),
        "divisions": int(divisions),
        "n_nodes": int(n_nodes),
        "epochs": int(epochs),
        "specs": [spec.to_dict() for spec in specs],
        "backends": [b or "numpy" for b in backends],
        "executors": list(executors),
        "searches": list(searches),
        "cells": [cell.to_dict() for cell in cells],
    }


def _validate_matrix_report(report: dict, which: str) -> None:
    """Refuse anything but a well-formed matrix-report envelope."""
    if not isinstance(report, dict):
        raise TypeError(
            f"{which} report must be a dict, got {type(report).__name__}"
        )
    if report.get("format") != MATRIX_FORMAT:
        raise ValueError(
            f"{which} report is not a {MATRIX_FORMAT} document "
            f"(format={report.get('format')!r})"
        )
    if report.get("format_version") != MATRIX_FORMAT_VERSION:
        raise ValueError(
            f"{which} report has format_version "
            f"{report.get('format_version')!r}; this release reads version "
            f"{MATRIX_FORMAT_VERSION} only"
        )
    if not isinstance(report.get("cells"), list):
        raise ValueError(f"{which} report has no 'cells' list")


def _cell_key(cell: dict) -> tuple:
    return (cell["spec"], cell["backend"], cell["executor"], cell["search"])


def compare_matrix_reports(old: dict, new: dict, *,
                           accuracy_floor: float = 0.05,
                           time_floor: float = 0.5) -> dict:
    """Cell-by-cell diff of two matrix reports (``repro-bench matrix``).

    Cells match on ``(spec, backend, executor, search)``.  A matched cell
    *regresses* when its test accuracy drops by more than
    ``accuracy_floor`` (absolute), or when it slows down by more than
    ``time_floor`` (fractional: 0.5 allows up to 1.5x the old wall time —
    generous because CI timing is noisy), or when it newly reports an
    error.  Added/removed cells are listed but are not regressions; cells
    that errored in *both* runs are skipped.  Returns a JSON-ready dict
    whose ``regressions`` list is the exit-status signal.
    """
    _validate_matrix_report(old, "old")
    _validate_matrix_report(new, "new")
    for name, value in (("accuracy_floor", accuracy_floor),
                        ("time_floor", time_floor)):
        if not np.isfinite(value) or value < 0:
            raise ValueError(f"{name} must be finite and >= 0, got {value}")
    old_cells = {_cell_key(c): c for c in old["cells"]}
    new_cells = {_cell_key(c): c for c in new["cells"]}
    added = sorted(set(new_cells) - set(old_cells))
    removed = sorted(set(old_cells) - set(new_cells))
    rows: List[dict] = []
    regressions: List[str] = []
    for key in sorted(set(old_cells) & set(new_cells)):
        o, n = old_cells[key], new_cells[key]
        label = "/".join(key)
        if o.get("error") and n.get("error"):
            continue  # broken on both sides; nothing comparable
        if n.get("error"):
            regressions.append(f"{label}: now errors ({n['error']})")
            rows.append({"key": list(key), "error": n["error"]})
            continue
        if o.get("error"):
            rows.append({"key": list(key), "recovered": True})
            continue
        acc_delta = n["test_accuracy"] - o["test_accuracy"]
        val_delta = n["val_accuracy"] - o["val_accuracy"]
        ratio = (n["total_seconds"] / o["total_seconds"]
                 if o["total_seconds"] > 0 else 1.0)
        row = {
            "key": list(key),
            "old_test_accuracy": o["test_accuracy"],
            "new_test_accuracy": n["test_accuracy"],
            "test_accuracy_delta": acc_delta,
            "val_accuracy_delta": val_delta,
            "old_seconds": o["total_seconds"],
            "new_seconds": n["total_seconds"],
            "time_ratio": ratio,
        }
        if acc_delta < -accuracy_floor:
            regressions.append(
                f"{label}: test accuracy {o['test_accuracy']:.3f} -> "
                f"{n['test_accuracy']:.3f} (drop {-acc_delta:.3f} > floor "
                f"{accuracy_floor:.3f})"
            )
        if ratio > 1.0 + time_floor:
            regressions.append(
                f"{label}: wall time {o['total_seconds']:.3f}s -> "
                f"{n['total_seconds']:.3f}s ({ratio:.2f}x > allowed "
                f"{1.0 + time_floor:.2f}x)"
            )
        rows.append(row)
    return {
        "matched": len(rows),
        "added": ["/".join(k) for k in added],
        "removed": ["/".join(k) for k in removed],
        "accuracy_floor": float(accuracy_floor),
        "time_floor": float(time_floor),
        "cells": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def format_matrix_compare(diff: dict) -> str:
    """Render a :func:`compare_matrix_reports` diff for the console."""
    headers = ("dataset spec", "backend", "executor", "search",
               "test acc old", "new", "delta", "time old s", "new s",
               "ratio")
    rows = []
    for cell in diff["cells"]:
        key = cell["key"]
        if "error" in cell or "recovered" in cell:
            status = (f"ERROR: {cell['error']}" if "error" in cell
                      else "recovered")
            rows.append(tuple(key) + (status, "", "", "", "", ""))
            continue
        rows.append(tuple(key) + (
            f"{cell['old_test_accuracy']:.3f}",
            f"{cell['new_test_accuracy']:.3f}",
            f"{cell['test_accuracy_delta']:+.3f}",
            f"{cell['old_seconds']:.3f}",
            f"{cell['new_seconds']:.3f}",
            f"{cell['time_ratio']:.2f}x",
        ))
    title = (
        f"Matrix compare — {diff['matched']} matched cell(s), "
        f"{len(diff['added'])} added, {len(diff['removed'])} removed"
    )
    lines = [format_table(headers, rows, title=title)]
    for name in ("added", "removed"):
        if diff[name]:
            lines.append(f"  {name}: " + ", ".join(diff[name]))
    if diff["regressions"]:
        lines.append("REGRESSIONS:")
        lines.extend(f"  - {msg}" for msg in diff["regressions"])
    else:
        lines.append(
            f"no regressions (accuracy floor {diff['accuracy_floor']:.3f}, "
            f"time floor {diff['time_floor']:.2f})"
        )
    return "\n".join(lines)


def format_matrix(report: dict) -> str:
    """Render a matrix report as the standard fixed-width table."""
    headers = ("dataset spec", "backend", "executor", "search",
               "val acc", "test acc", "best A", "best B", "evals",
               "wall s")
    rows = []
    for cell in report["cells"]:
        rows.append((
            cell["spec"], cell["backend"], cell["executor"], cell["search"],
            cell["val_accuracy"], cell["test_accuracy"],
            f"{cell['best_A']:.4g}", f"{cell['best_B']:.4g}",
            cell["n_evaluations"], cell["total_seconds"],
        ))
    title = (
        f"Scenario matrix — seed {report['seed']}, budget "
        f"{report['budget']}, {len(report['cells'])} cells"
    )
    return format_table(headers, rows, title=title)
