"""Ablation benches for the design choices DESIGN.md calls out.

* **Truncation window** (supports Sec. 3.4): accuracy, training time, and
  training storage as the backward window grows from 1 (the paper's
  choice) to the full series.
* **Nonlinearity** (supports Sec. 2.3): the modular DFR's swappable ``f``
  under the identical training protocol.
* **Bit width** (embedded-hardware context): accuracy of the trained
  reservoir when re-run on a fixed-point datapath of decreasing precision.
* **Optimizer**: the paper's plain SGD vs momentum and Adam.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.reporting import format_table
from repro.core.pipeline import DFRClassifier
from repro.core.trainer import TrainerConfig
from repro.data.loaders import load_dataset
from repro.data.metadata import N_X_PAPER
from repro.hardware.fixed_point import QFormat, QuantizedModularDFR
from repro.memory.accounting import naive_storage, truncated_storage
from repro.readout.ridge import select_beta
from repro.representation.dprr import DPRR

__all__ = [
    "TruncationPoint",
    "run_truncation_ablation",
    "format_truncation_ablation",
    "NonlinearityPoint",
    "run_nonlinearity_ablation",
    "format_nonlinearity_ablation",
    "BitwidthPoint",
    "run_bitwidth_ablation",
    "format_bitwidth_ablation",
    "OptimizerPoint",
    "run_optimizer_ablation",
    "format_optimizer_ablation",
]


# --------------------------------------------------------------------- #
# truncation window
# --------------------------------------------------------------------- #

@dataclass
class TruncationPoint:
    window: Optional[int]          # None = full BPTT
    accuracy: float
    train_seconds: float
    storage_values: int


def run_truncation_ablation(
    dataset: str = "LIB",
    *,
    windows: Sequence[Optional[int]] = (1, 2, 4, 8, None),
    n_nodes: int = N_X_PAPER,
    epochs: int = 25,
    seed: int = 0,
    size_profile: str = "bench",
    verbose: bool = True,
) -> List[TruncationPoint]:
    """Sweep the backward window on one dataset."""
    data = load_dataset(dataset, size_profile=size_profile, seed=seed)
    points = []
    for window in windows:
        config = TrainerConfig(epochs=epochs, window=window)
        start = time.perf_counter()
        clf = DFRClassifier(n_nodes=n_nodes, config=config, seed=seed)
        clf.fit(data.u_train, data.y_train)
        elapsed = time.perf_counter() - start
        acc = clf.score(data.u_test, data.y_test)
        if window is None:
            storage = naive_storage(data.length, n_nodes, data.n_classes).total
        else:
            storage = truncated_storage(
                n_nodes, data.n_classes, window=min(window, data.length)
            ).total
        if verbose:
            label = "full" if window is None else window
            print(
                f"[trunc] {dataset} window={label}: acc {acc:.3f}, "
                f"{elapsed:.1f}s, {storage} stored values",
                flush=True,
            )
        points.append(
            TruncationPoint(
                window=window,
                accuracy=acc,
                train_seconds=elapsed,
                storage_values=storage,
            )
        )
    return points


def format_truncation_ablation(dataset: str, points: Sequence[TruncationPoint]) -> str:
    rows = [
        [
            "full" if p.window is None else p.window,
            f"{p.accuracy:.3f}",
            f"{p.train_seconds:.1f}",
            p.storage_values,
        ]
        for p in points
    ]
    return format_table(
        ["window", "test acc", "train time (s)", "stored values"],
        rows,
        title=f"Ablation — truncation window on {dataset} "
        "(paper uses window=1; Sec. 3.4)",
    )


# --------------------------------------------------------------------- #
# nonlinearity
# --------------------------------------------------------------------- #

@dataclass
class NonlinearityPoint:
    dataset: str
    nonlinearity: str
    accuracy: float
    train_seconds: float


def run_nonlinearity_ablation(
    datasets: Sequence[str] = ("JPVOW", "LIB"),
    *,
    nonlinearities: Sequence[str] = ("identity", "mackey-glass", "tanh", "sine"),
    n_nodes: int = N_X_PAPER,
    epochs: int = 25,
    seed: int = 0,
    size_profile: str = "bench",
    verbose: bool = True,
) -> List[NonlinearityPoint]:
    """Swap the modular DFR's shape function under the same protocol."""
    points = []
    for key in datasets:
        data = load_dataset(key, size_profile=size_profile, seed=seed)
        for name in nonlinearities:
            start = time.perf_counter()
            clf = DFRClassifier(
                n_nodes=n_nodes,
                nonlinearity=name,
                config=TrainerConfig(epochs=epochs),
                seed=seed,
            )
            clf.fit(data.u_train, data.y_train)
            elapsed = time.perf_counter() - start
            acc = clf.score(data.u_test, data.y_test)
            if verbose:
                print(f"[nonl] {key} f={name}: acc {acc:.3f} ({elapsed:.1f}s)",
                      flush=True)
            points.append(
                NonlinearityPoint(
                    dataset=key, nonlinearity=name, accuracy=acc,
                    train_seconds=elapsed,
                )
            )
    return points


def format_nonlinearity_ablation(points: Sequence[NonlinearityPoint]) -> str:
    rows = [
        [p.dataset, p.nonlinearity, f"{p.accuracy:.3f}", f"{p.train_seconds:.1f}"]
        for p in points
    ]
    return format_table(
        ["dataset", "f", "test acc", "train time (s)"],
        rows,
        title="Ablation — modular-DFR nonlinearity under the bp protocol "
        "(paper evaluation uses the identity; Sec. 4)",
    )


# --------------------------------------------------------------------- #
# fixed-point bit width
# --------------------------------------------------------------------- #

@dataclass
class BitwidthPoint:
    frac_bits: int
    total_bits: int
    accuracy: float


def run_bitwidth_ablation(
    dataset: str = "JPVOW",
    *,
    frac_bits: Sequence[int] = (0, 1, 2, 4, 6, 8, 12),
    int_bits: int = 3,
    n_nodes: int = N_X_PAPER,
    epochs: int = 25,
    seed: int = 0,
    size_profile: str = "bench",
    verbose: bool = True,
) -> List[BitwidthPoint]:
    """Train in float, then infer on a fixed-point datapath.

    The trained ``(A, B)`` and ridge readout stay fixed; only the reservoir
    datapath is quantized, matching the deploy-to-hardware workflow.
    """
    data = load_dataset(dataset, size_profile=size_profile, seed=seed)
    clf = DFRClassifier(
        n_nodes=n_nodes, config=TrainerConfig(epochs=epochs), seed=seed
    )
    clf.fit(data.u_train, data.y_train)
    float_acc = clf.score(data.u_test, data.y_test)
    if verbose:
        print(f"[bits] {dataset} float64 reference acc: {float_acc:.3f}", flush=True)

    dprr = clf.extractor.dprr
    std = clf.extractor.standardizer
    points = []
    for fb in frac_bits:
        qfmt = QFormat(int_bits, fb)
        qdfr = QuantizedModularDFR(
            clf.extractor.reservoir.mask, qfmt,
            nonlinearity=clf.extractor.nonlinearity,
        )
        # re-fit the ridge on quantized training features (retraining the
        # cheap readout for the deployed datapath is standard practice),
        # then score quantized test features
        f_train = dprr.features(
            _trace_like(qdfr.run(std.transform(data.u_train), clf.A_, clf.B_))
        )
        f_test = dprr.features(
            _trace_like(qdfr.run(std.transform(data.u_test), clf.A_, clf.B_))
        )
        selection = select_beta(f_train, data.y_train,
                                n_classes=data.n_classes, seed=seed)
        acc = selection.best_model.accuracy(f_test, data.y_test)
        if verbose:
            print(f"[bits] {qfmt} ({qfmt.total_bits} bits): acc {acc:.3f}",
                  flush=True)
        points.append(
            BitwidthPoint(frac_bits=fb, total_bits=qfmt.total_bits, accuracy=acc)
        )
    return points


def _trace_like(states):
    """Quantized runs return raw state arrays; DPRR accepts those directly."""
    return states


def format_bitwidth_ablation(dataset: str, points: Sequence[BitwidthPoint]) -> str:
    rows = [
        [f"Q3.{p.frac_bits}", p.total_bits, f"{p.accuracy:.3f}"] for p in points
    ]
    return format_table(
        ["format", "word bits", "test acc"],
        rows,
        title=f"Ablation — fixed-point datapath precision on {dataset}",
    )


# --------------------------------------------------------------------- #
# optimizer
# --------------------------------------------------------------------- #

@dataclass
class OptimizerPoint:
    optimizer: str
    accuracy: float
    final_loss: float
    train_seconds: float


def run_optimizer_ablation(
    dataset: str = "JPVOW",
    *,
    optimizers: Sequence[str] = ("sgd", "momentum", "adam"),
    n_nodes: int = N_X_PAPER,
    epochs: int = 25,
    seed: int = 0,
    size_profile: str = "bench",
    verbose: bool = True,
) -> List[OptimizerPoint]:
    """The paper's SGD against momentum/Adam under the same schedule."""
    data = load_dataset(dataset, size_profile=size_profile, seed=seed)
    points = []
    for name in optimizers:
        config = TrainerConfig(epochs=epochs, optimizer=name)
        start = time.perf_counter()
        clf = DFRClassifier(n_nodes=n_nodes, config=config, seed=seed)
        clf.fit(data.u_train, data.y_train)
        elapsed = time.perf_counter() - start
        acc = clf.score(data.u_test, data.y_test)
        if verbose:
            print(f"[opt] {dataset} {name}: acc {acc:.3f} ({elapsed:.1f}s)",
                  flush=True)
        points.append(
            OptimizerPoint(
                optimizer=name,
                accuracy=acc,
                final_loss=clf.training_.final_loss,
                train_seconds=elapsed,
            )
        )
    return points


def format_optimizer_ablation(dataset: str, points: Sequence[OptimizerPoint]) -> str:
    rows = [
        [p.optimizer, f"{p.accuracy:.3f}", f"{p.final_loss:.4f}",
         f"{p.train_seconds:.1f}"]
        for p in points
    ]
    return format_table(
        ["optimizer", "test acc", "final train loss", "train time (s)"],
        rows,
        title=f"Ablation — optimizer choice on {dataset} (paper uses SGD)",
    )
