"""Benchmark harnesses regenerating every table and figure of the paper."""

from repro.bench.ablations import (
    run_bitwidth_ablation,
    run_nonlinearity_ablation,
    run_optimizer_ablation,
    run_truncation_ablation,
)
from repro.bench.fig6 import Fig6Result, format_fig6, run_fig6
from repro.bench.matrix import (
    MATRIX_SEARCHES,
    MatrixCell,
    format_matrix,
    parse_spec_arg,
    run_matrix,
)
from repro.bench.table1 import Table1Row, format_table1, run_dataset, run_table1
from repro.bench.table2 import Table2Row, format_table2, run_table2

__all__ = [
    "run_bitwidth_ablation",
    "run_nonlinearity_ablation",
    "run_optimizer_ablation",
    "run_truncation_ablation",
    "Fig6Result",
    "format_fig6",
    "run_fig6",
    "MATRIX_SEARCHES",
    "MatrixCell",
    "format_matrix",
    "parse_spec_arg",
    "run_matrix",
    "Table1Row",
    "format_table1",
    "run_dataset",
    "run_table1",
    "Table2Row",
    "format_table2",
    "run_table2",
]
