"""Fig. 6 harness: the recursive grid-search failure mode on CHAR.

The paper's Fig. 6 shows two grid levels on the CHAR dataset: the coarse
level-1 grid over the full ``(A, B)`` box and the level-2 grid zoomed into
the level-1 winner's cell.  Because the accuracy landscape is rugged, the
zoom can lock onto a region that does *not* contain the globally best
parameters — which is why the paper rejects recursive refinement and uses
exhaustive grids (making grid search expensive, and backprop attractive).

This harness regenerates both heat maps and quantifies the failure: it
compares the level-2 winner against the best point of an exhaustive
reference grid over the full box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.bench.reporting import ascii_heatmap
from repro.core.grid_search import GridSearch, RecursiveGridSearch, RecursiveLevel
from repro.core.pipeline import DFRFeatureExtractor
from repro.data.loaders import load_dataset
from repro.data.metadata import N_X_PAPER

__all__ = ["Fig6Result", "run_fig6", "format_fig6"]


@dataclass
class Fig6Result:
    """Outcome of the two-level recursive search plus the reference grid."""

    dataset: str
    levels: List[RecursiveLevel]
    reference_best_accuracy: float
    reference_divisions: int
    zoom_final_accuracy: float

    @property
    def zoom_missed_optimum(self) -> bool:
        """Did recursive refinement end below the exhaustive-grid best?"""
        return self.zoom_final_accuracy < self.reference_best_accuracy - 1e-9

    @property
    def accuracy_gap(self) -> float:
        return self.reference_best_accuracy - self.zoom_final_accuracy


def run_fig6(
    dataset: str = "CHAR",
    *,
    n_nodes: int = N_X_PAPER,
    divisions: int = 5,
    n_levels: int = 2,
    reference_divisions: int = 10,
    size_profile: str = "bench",
    seed: int = 0,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    verbose: bool = True,
) -> Fig6Result:
    """Run the two-level recursive zoom plus an exhaustive reference grid.

    ``workers`` shards each grid level's candidates across processes
    (bit-identical results; ``None`` defers to ``REPRO_WORKERS``) — the
    ``reference_divisions**2``-point exhaustive grid benefits the most.

    ``backend`` selects the array backend executing every candidate's
    reservoir/DPRR sweeps (``"numpy"``, ``"torch[:device]"``, ``"cupy"``);
    ``None`` defers to ``REPRO_BACKEND``.  It threads through both the
    feature extractor and the search executors, exactly like
    ``repro-bench table1 --backend``.

    ``dtype`` selects the working float precision of those sweeps
    ("float64" default, "float32" opt-in); ``None`` defers to the spec's
    ``@dtype`` suffix / ``REPRO_DTYPE``.
    """
    data = load_dataset(dataset, size_profile=size_profile, seed=seed)
    if verbose:
        print(f"[fig6] {data.summary()}", flush=True)
    extractor = DFRFeatureExtractor(n_nodes=n_nodes, seed=seed,
                                    backend=backend,
                                    dtype=dtype).fit(data.u_train)

    recursive = RecursiveGridSearch(extractor, divisions=divisions, seed=seed,
                                    workers=workers, backend=backend)
    levels = recursive.run(
        data.u_train, data.y_train, data.u_test, data.y_test,
        n_levels=n_levels, n_classes=data.n_classes,
    )
    if verbose:
        for i, lvl in enumerate(levels, start=1):
            print(
                f"[fig6] level {i}: best A={lvl.best.A:.4f} B={lvl.best.B:.4f} "
                f"test acc {lvl.best.test_accuracy:.3f}",
                flush=True,
            )

    reference = GridSearch(extractor, seed=seed + 1, workers=workers,
                           backend=backend)
    ref_level = reference.run_level(
        data.u_train, data.y_train, data.u_test, data.y_test,
        reference_divisions, n_classes=data.n_classes,
    )
    ref_best_acc = max(ev.test_accuracy for ev in ref_level.evaluations)
    return Fig6Result(
        dataset=dataset,
        levels=levels,
        reference_best_accuracy=ref_best_acc,
        reference_divisions=reference_divisions,
        zoom_final_accuracy=levels[-1].best.test_accuracy,
    )


def format_fig6(result: Fig6Result) -> str:
    """Render both grid levels as heat maps plus the failure summary."""
    chunks = []
    for i, lvl in enumerate(result.levels, start=1):
        row_labels = [f"{a:.4f}" for a in lvl.a_values]
        col_labels = [f"{b:.4f}" for b in lvl.b_values]
        chunks.append(
            ascii_heatmap(
                lvl.accuracy_matrix,
                row_labels=row_labels,
                col_labels=col_labels,
                title=(
                    f"Fig. 6 ({result.dataset}) — grid level {i}: test accuracy "
                    f"over A (rows) x B (cols); '*' = selected"
                ),
                mark=lvl.best_index,
            )
        )
    verdict = (
        f"recursive zoom final accuracy: {result.zoom_final_accuracy:.3f} vs "
        f"exhaustive {result.reference_divisions}x{result.reference_divisions} "
        f"grid best: {result.reference_best_accuracy:.3f} -> "
        + (
            "zoom MISSED the global optimum (the paper's Fig. 6 failure mode)"
            if result.zoom_missed_optimum
            else "zoom found the optimum on this draw"
        )
    )
    chunks.append(verdict)
    return "\n\n".join(chunks)
